//! Workspace-level helper crate for the FIXAR reproduction.
//!
//! The real functionality lives in the `fixar-*` crates; this package only
//! hosts the repository-level examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). It re-exports the facade crate for
//! convenience so examples can simply `use fixar_repro::prelude::*`.

pub use fixar;

/// Convenience re-exports used by the repository examples and tests.
pub mod prelude {
    pub use fixar::prelude::*;
}
