//! Offline shim for the `bytes` crate: an owned, cheaply-cloneable byte
//! container with the small API surface this workspace touches
//! (`Bytes::from(Vec<u8>)`, slice deref, `len`). Cheap cloning uses
//! `Arc` rather than the real crate's refcounted buffer views.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self { data: v.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn roundtrips_and_derefs() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(Bytes::new().len(), 0);
    }
}
