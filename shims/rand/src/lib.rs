//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *interface* the FIXAR reproduction actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range` / `gen_bool`.
//!
//! The generator is SplitMix64 — statistically solid for simulation
//! seeding and batch sampling, deterministic per seed, but **not** the
//! ChaCha12 stream of the real `rand::rngs::StdRng`: sequences differ
//! from upstream `rand` for the same seed. Nothing in this repository
//! asserts on absolute draws, only on determinism and distribution-level
//! behaviour, so the swap is behaviour-preserving at the test level.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// `u64 → f64` uniform in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a uniform value can be drawn from. Implemented as blanket
/// impls over [`SampleUniform`] (like upstream rand), so type inference
/// can flow from the range literal to the sampled type and back.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = unit_f64(rng.next_u64());
                let v = lo + u as $t * (hi - lo);
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + unit_f64(rng.next_u64()) as $t * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator with the same name/role as
    /// `rand::rngs::StdRng` (SplitMix64 under the hood — see the crate
    /// docs for the compatibility caveat).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut rng = Self { state };
            // Discard one output so consecutive small seeds decorrelate.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen_range(0.0..1.0f64), c.gen_range(0.0..1.0f64));
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
            let m = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn unit_interval_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0..1.0f64)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }
}
