//! Offline shim of the `criterion` API used by `crates/bench`.
//!
//! The build environment cannot fetch crates.io, so this crate provides
//! the same macros/types (`criterion_group!`, `criterion_main!`,
//! [`Criterion`], benchmark groups, `Bencher::iter`) backed by a simple
//! but honest wall-clock harness: each benchmark is warmed up, then
//! sampled `sample_size` times with an iteration count calibrated to a
//! per-sample time budget, and the median/mean per-iteration time is
//! printed in criterion's familiar `time: [...]` shape. No statistics
//! beyond that — good enough to compare kernels at order-of-magnitude
//! to 2× resolution, which is what the FIXAR benches assert about.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness handle (one per `criterion_group!` function).
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement: Duration::from_millis(400),
            warm_up: Duration::from_millis(80),
        }
    }
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            id.as_ref(),
            self.sample_size,
            self.measurement,
            self.warm_up,
            &mut f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_benchmark(
            &full,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.measurement,
            self.criterion.warm_up,
            &mut f,
        );
        self
    }

    /// Ends the group (parity with criterion; nothing to flush here).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; drives the measured routine.
pub struct Bencher {
    /// Mean per-iteration time of the median sample, in nanoseconds.
    result_ns: f64,
    iters_per_sample: u64,
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Measures `routine`, called in a tight loop.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up budget elapses, counting calls
        // so we can calibrate the per-sample iteration count.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            std_black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement.as_secs_f64() / self.samples as f64;
        self.iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);

        let mut sample_means: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(routine());
            }
            sample_means.push(t.elapsed().as_secs_f64() * 1e9 / self.iters_per_sample as f64);
        }
        sample_means.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        self.result_ns = sample_means[sample_means.len() / 2];
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_benchmark<F>(id: &str, samples: usize, measurement: Duration, warm_up: Duration, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        result_ns: 0.0,
        iters_per_sample: 0,
        samples: samples.max(2),
        warm_up,
        measurement,
    };
    f(&mut b);
    println!(
        "{id:<48} time: [{}]  ({} iters/sample × {} samples)",
        format_time(b.result_ns),
        b.iters_per_sample,
        b.samples.max(2),
    );
}

/// Declares a group function running each listed benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_orders_cheap_vs_expensive() {
        let mut c = Criterion {
            sample_size: 4,
            measurement: Duration::from_millis(20),
            warm_up: Duration::from_millis(2),
        };
        let mut cheap_ns = 0.0;
        let mut costly_ns = 0.0;
        {
            let mut g = c.benchmark_group("t");
            g.bench_function("warm", |b| b.iter(|| black_box(1u64).wrapping_mul(3)));
            g.finish();
        }
        // Direct Bencher probing for the ordering assertion.
        let mut b = Bencher {
            result_ns: 0.0,
            iters_per_sample: 0,
            samples: 4,
            warm_up: Duration::from_millis(2),
            measurement: Duration::from_millis(20),
        };
        b.iter(|| black_box(2u64).wrapping_add(2));
        cheap_ns = f64::max(cheap_ns, b.result_ns);
        b.iter(|| (0..2000u64).fold(0u64, |a, x| a.wrapping_add(black_box(x))));
        costly_ns = f64::max(costly_ns, b.result_ns);
        assert!(costly_ns > cheap_ns * 5.0, "{costly_ns} vs {cheap_ns}");
    }
}
