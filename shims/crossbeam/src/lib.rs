//! Offline shim for the subset of `crossbeam` used by this workspace:
//! `crossbeam::thread::scope(...)` with `scope.spawn(|_| ...)` and
//! `handle.join()`, implemented over `std::thread::scope` (stable since
//! Rust 1.63). Semantics match the workspace's usage: all threads join
//! before `scope` returns, and panics surface through `join()`.

#![forbid(unsafe_code)]

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Scope handle passed to the closure given to [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` if the
        /// thread panicked).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a placeholder
        /// argument for signature compatibility with `crossbeam`, which
        /// passes the scope itself (no caller in this workspace uses it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing, non-`'static` threads
    /// can be spawned; returns once every spawned thread has joined.
    ///
    /// # Errors
    ///
    /// The real crossbeam returns `Err` when an *unjoined* thread
    /// panicked. With `std::thread::scope` such a panic propagates as a
    /// panic instead, so this shim always returns `Ok` — callers that
    /// `.expect()` the result behave identically either way.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_all_threads_and_collects_results() {
        let data = [1, 2, 3, 4];
        let chunks: Vec<&[i32]> = data.chunks(2).collect();
        let sums: Vec<i32> = super::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|c| scope.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        })
        .expect("scope");
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn join_surfaces_panics() {
        let caught = super::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            h.join()
        })
        .expect("scope itself succeeds");
        assert!(caught.is_err());
    }
}
