//! Offline shim of the `proptest` API surface used by this workspace.
//!
//! Provides the [`Strategy`] trait (ranges, tuples, `any::<T>()`,
//! `prop::collection::vec`, `prop_map` / `prop_flat_map`), the
//! [`proptest!`] macro with `#![proptest_config(...)]` support, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking** — a failing case reports its inputs (via the
//!   assertion message) but is not minimized.
//! * **Deterministic seeding** — cases derive from a fixed seed mixed
//!   with the case index, so test runs are reproducible without
//!   `proptest-regressions` files.

#![forbid(unsafe_code)]

use core::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner/config types (`proptest::test_runner` in the real crate).
pub mod test_runner {
    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert!`-style macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }
}

/// Source of randomness handed to strategies.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Deterministic RNG for one test, derived from its name hash.
    pub fn for_test(name_hash: u64) -> Self {
        Self(StdRng::seed_from_u64(name_hash ^ 0x9E37_79B9_7F4A_7C15))
    }
}

/// A generator of values of an associated type.
///
/// The real proptest `Strategy` produces shrinkable value *trees*; this
/// shim generates plain values.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 candidates", self.whence);
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws a uniformly distributed value over the whole type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.0.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.gen_bool(0.5)
    }
}

/// Full-range strategy for `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Namespaced helpers mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection`).
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use core::ops::Range;
        use rand::Rng;

        /// Length specification: an exact `usize` or a `Range<usize>`.
        pub trait IntoSizeRange {
            /// Draws a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.0.gen_range(self.clone())
            }
        }

        /// Strategy producing `Vec`s of values from `element`.
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a `use proptest::prelude::*;` test expects in scope.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop, proptest, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne};
}

/// Compile-time FNV-1a hash of a test name, for deterministic seeding.
#[must_use]
pub const fn fnv1a(name: &str) -> u64 {
    let bytes = name.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
        i += 1;
    }
    hash
}

/// Declares property tests: each `#[test] fn name(x in strategy, ...)`
/// runs its body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@block ($cfg) $($rest)*);
    };
    (
        $(#[$meta:meta])* fn $name:ident $($rest:tt)*
    ) => {
        $crate::proptest!(@block ($crate::test_runner::Config::default())
            $(#[$meta])* fn $name $($rest)*);
    };
    (@block ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::for_test($crate::fnv1a(stringify!($name)));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        case + 1,
                        config.cases,
                        e.0
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the surrounding proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the surrounding proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let lhs = $a;
        let rhs = $b;
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", lhs, rhs),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let lhs = $a;
        let rhs = $b;
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// `assert_ne!` that fails the surrounding proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let lhs = $a;
        let rhs = $b;
        if lhs == rhs {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                lhs, rhs
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respected(x in -3.0..3.0f64, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n), "n={n}");
        }

        #[test]
        fn vec_lengths_respected(xs in prop::collection::vec(0.0..1.0f64, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn flat_map_composes(m in (1usize..5, 1usize..5).prop_flat_map(|(r, c)| {
            prop::collection::vec(0.0..1.0f64, r * c).prop_map(move |v| (r, c, v))
        })) {
            let (r, c, v) = m;
            prop_assert_eq!(v.len(), r * c);
        }

        #[test]
        fn any_covers_negative_ints(_x in any::<i32>()) {
            // Smoke: generation itself succeeds.
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_test(crate::fnv1a("t"));
        let mut b = crate::TestRng::for_test(crate::fnv1a("t"));
        let s = 0.0..1.0f64;
        for _ in 0..20 {
            assert_eq!(
                crate::Strategy::generate(&s, &mut a),
                crate::Strategy::generate(&s, &mut b)
            );
        }
    }
}
