//! Serving actions to live clients while training continues: the
//! request-driven front door end to end.
//!
//! A trainer improves a Pendulum policy in short chunks; after every
//! chunk it publishes an immutable snapshot of the actor to the
//! [`ActionServer`]. Meanwhile client threads stream observations at
//! the server; the per-shard batchers coalesce them into micro-batches
//! (flush on `max_batch` or `max_delay`, whichever comes first) and
//! every response is stamped with the id of the snapshot that served
//! it — so at the end the whole served trajectory replays offline,
//! bit-for-bit.
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```

use std::collections::HashMap;
use std::thread;
use std::time::{Duration, Instant};

use fixar_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small Pendulum agent; the server starts on its untrained
    // weights as snapshot 0.
    let cfg = DdpgConfig::small_test().with_seed(11);
    let mut trainer =
        Trainer::<Fx32>::new(EnvKind::Pendulum.make(1), EnvKind::Pendulum.make(2), cfg)?;
    let server = ActionServer::start(
        trainer.agent().policy_snapshot(0),
        ServeConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(200),
            shards: 2,
            workers: 2,
        },
    )?;
    let publisher = server.publisher();

    // Keep a replica of every published snapshot for the offline audit.
    let mut replicas: HashMap<u64, PolicySnapshot<Fx32>> = HashMap::new();
    replicas.insert(0, trainer.agent().policy_snapshot(0));

    // Three clients stream 200 observations each, a handful in flight
    // at a time, recording what they were served.
    let clients: Vec<_> = (0..3)
        .map(|c| {
            let client = server.client();
            thread::spawn(move || {
                let mut served = Vec::new();
                let mut latencies_us = Vec::new();
                for i in 0..200usize {
                    let obs: Vec<f64> = (0..3)
                        .map(|d| ((c * 1000 + i * 3 + d) as f64 * 0.31).sin())
                        .collect();
                    let t0 = Instant::now();
                    let resp = client.request(&obs).expect("serve");
                    latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
                    served.push((obs, resp));
                }
                (served, latencies_us)
            })
        })
        .collect();

    // Meanwhile: train in chunks, publishing a fresh snapshot after
    // each one. Clients never block on training — they keep being
    // served by the last published replica.
    for round in 1..=3u64 {
        trainer.run(150, 150, 1)?;
        publisher.publish(trainer.agent().policy_snapshot(round))?;
        replicas.insert(round, trainer.agent().policy_snapshot(round));
    }

    let mut served = Vec::new();
    let mut latencies_us = Vec::new();
    for t in clients {
        let (s, l) = t.join().expect("client thread");
        served.extend(s);
        latencies_us.extend(l);
    }
    let stats = server.shutdown();

    // Every response replays bit-identically against the snapshot it
    // names — the determinism contract that makes serving auditable.
    let mut per_snapshot: HashMap<u64, usize> = HashMap::new();
    for (obs, resp) in &served {
        let replayed = replicas[&resp.snapshot_id].select_action(obs)?;
        assert_eq!(resp.action, replayed, "served ≠ offline replay");
        *per_snapshot.entry(resp.snapshot_id).or_default() += 1;
    }

    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies_us[((latencies_us.len() - 1) as f64 * p) as usize];
    println!(
        "served {} requests over {} micro-batches (mean {:.1} rows/batch)",
        stats.requests(),
        stats.batches(),
        stats.mean_batch_rows()
    );
    println!("latency p50 {:.0}us  p99 {:.0}us", pct(0.50), pct(0.99));
    let mut ids: Vec<_> = per_snapshot.into_iter().collect();
    ids.sort_unstable();
    for (id, n) in ids {
        println!("  snapshot {id}: {n} responses, all replay bit-identically");
    }
    Ok(())
}
