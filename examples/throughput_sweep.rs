//! Platform throughput sweep: Figs. 8–10 in one run — FIXAR vs the
//! CPU-GPU baseline across benchmarks and batch sizes, with the
//! execution-time breakdown and energy efficiency.
//!
//! ```text
//! cargo run --release --example throughput_sweep
//! ```

use fixar_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu = CpuGpuPlatformModel::for_benchmark();
    let power = PowerModel::default();

    println!("=== end-to-end platform IPS (post-QAT) ===");
    println!(
        "{:<12} {:>6} {:>12} {:>12} {:>9}",
        "benchmark", "batch", "FIXAR", "CPU-GPU", "speedup"
    );
    for kind in EnvKind::PAPER_BENCHMARKS {
        let spec_env = kind.make(0);
        let spec = spec_env.spec();
        let model = FixarPlatformModel::for_benchmark(spec.obs_dim, spec.action_dim)?;
        for batch in [64usize, 128, 256, 512] {
            let f = model.ips(batch, Precision::Half16)?;
            let g = gpu.ips(batch);
            println!(
                "{:<12} {:>6} {:>12.1} {:>12.1} {:>8.2}x",
                kind.name(),
                batch,
                f,
                g,
                f / g
            );
        }
    }

    println!("\n=== HalfCheetah timestep breakdown (ms) ===");
    let model = FixarPlatformModel::for_benchmark(17, 6)?;
    println!(
        "{:>6} {:>8} {:>9} {:>8} {:>8}  bottleneck",
        "batch", "CPU", "runtime", "FPGA", "total"
    );
    for batch in [64usize, 128, 256, 512] {
        let b = model.breakdown(batch, Precision::Half16)?;
        println!(
            "{:>6} {:>8.2} {:>9.2} {:>8.2} {:>8.2}  {}",
            batch,
            b.cpu_env_s * 1e3,
            b.runtime_s * 1e3,
            b.accel_s * 1e3,
            b.total_s() * 1e3,
            b.bottleneck()
        );
    }

    println!("\n=== accelerator-only comparison at batch 512 ===");
    let f_ips = model.accelerator_ips(512, Precision::Half16);
    let g_ips = gpu.accelerator_ips(512);
    let util = model.accelerator_utilization(512, Precision::Half16);
    let f_w = power.fpga_power_w(util);
    println!(
        "FIXAR: {f_ips:>9.1} IPS at {f_w:.1} W -> {:>7.1} IPS/W",
        f_ips / f_w
    );
    println!(
        "GPU:   {g_ips:>9.1} IPS at {:.1} W -> {:>7.1} IPS/W",
        56.7,
        power.gpu_ips_per_watt(g_ips)
    );
    println!(
        "gaps: {:.1}x throughput, {:.1}x efficiency (paper: 5.5x and 15.4x)",
        f_ips / g_ips,
        (f_ips / f_w) / power.gpu_ips_per_watt(g_ips)
    );
    Ok(())
}
