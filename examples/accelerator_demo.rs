//! Tour of the FIXAR accelerator model: load the paper's DDPG networks
//! into the on-chip memories, run structural inference through the
//! configurable-datapath PE array in both precision modes, inspect the
//! cycle/throughput/resource/power models.
//!
//! ```text
//! cargo run --release --example accelerator_demo
//! ```

use fixar_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's HalfCheetah agent: actor 17-400-300-6, critic 23-400-300-1.
    let actor = Mlp::<Fx32>::new_random(
        &MlpConfig::new(vec![17, 400, 300, 6]).with_output_activation(Activation::Tanh),
        7,
    )?;
    let critic = Mlp::<Fx32>::new_random(&MlpConfig::new(vec![23, 400, 300, 1]), 8)?;

    let mut accel = FixarAccelerator::new(AccelConfig::default())?;
    accel.load_ddpg(&actor, &critic)?;
    println!("FIXAR accelerator (Alveo U50 model): 2 AAP cores x 256 PEs @ 164 MHz");
    println!(
        "model loaded on-chip: {:.3} MB (paper: 1.05 MB), no external DRAM\n",
        accel.model_bytes() as f64 / 1e6
    );

    // Structural inference through the PE array, both datapath modes.
    let state: Vec<Fx32> = (0..17)
        .map(|i| Fx32::from_f64((i as f64 * 0.3).sin()))
        .collect();
    let (action_full, cycles_full) = accel.actor_inference(&state, Precision::Full32)?;
    let (action_half, cycles_half) = accel.actor_inference(&state, Precision::Half16)?;
    let sw_action = actor.forward(&state)?;
    println!("actor inference (state -> 6 actions):");
    println!("  full precision: {cycles_full} cycles");
    println!(
        "  half precision: {cycles_half} cycles ({:.2}x fewer)",
        cycles_full as f64 / cycles_half as f64
    );
    let max_dev = action_full
        .iter()
        .zip(&sw_action)
        .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
        .fold(0.0, f64::max);
    println!("  bit-exactness vs software reference: max deviation {max_dev:e}");
    let quant_dev = action_full
        .iter()
        .zip(&action_half)
        .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
        .fold(0.0, f64::max);
    println!("  full-vs-half action deviation: {quant_dev:.4} (activation quantization)\n");

    // Training timestep cycle breakdown at the paper's largest batch.
    let t = accel.train_timestep_cycles(512, Precision::Half16)?;
    println!("training timestep, batch 512, post-QAT:");
    println!("  forward {:>9} cycles", t.forward);
    println!("  backward {:>8} cycles", t.backward);
    println!("  adam WU {:>9} cycles", t.weight_update);
    println!("  inference {:>7} cycles", t.inference);
    println!(
        "  total {:>11} cycles = {:.2} ms -> {:.0} IPS (paper: 53826.8)\n",
        t.total,
        t.seconds * 1e3,
        t.ips
    );

    // Resource and power models.
    let resources = ResourceModel::new(*accel.config());
    let total = resources.total();
    let (lut, _, bram, _, dsp) = resources.utilization(&U50_BUDGET);
    println!("resources (Table I model):");
    println!(
        "  {:.1}K LUT ({:.1}%), {:.0} BRAM ({:.1}%), {:.0} DSP ({:.1}%)",
        total.lut / 1e3,
        lut * 100.0,
        total.bram,
        bram * 100.0,
        total.dsp,
        dsp * 100.0
    );
    let power = PowerModel::default();
    let watts = power.fpga_power_w(t.utilization);
    println!("power model at this occupancy: {watts:.1} W");
    println!(
        "energy efficiency at the paper's measured 20.4 W board power: \
         {:.0} IPS/W (paper: 2638.0)\n",
        t.ips / 20.4
    );

    // The hardware PRNG that injects exploration noise.
    let noise = accel.exploration_noise(6, 0.1);
    println!(
        "PRNG exploration noise (sigma 0.1): {:?}",
        noise
            .iter()
            .map(|v| (v.to_f64() * 1e4).round() / 1e4)
            .collect::<Vec<_>>()
    );
    Ok(())
}
