//! Locomotion with quantization-aware training: the paper's headline
//! workload (HalfCheetah) on the planar physics substrate, trained in
//! dynamic fixed-point with the paper's 400×300 networks.
//!
//! ```text
//! cargo run --release --example halfcheetah_qat
//! ```
//!
//! Paper scale is 1M timesteps; this example runs a compressed schedule
//! (software fixed-point on a CPU is orders of magnitude slower than the
//! U50). The behaviours to watch for, mirroring Fig. 7: the reward trend
//! improves during the full-precision phase, dips briefly right after
//! the 16-bit switch, and recovers as re-training proceeds.

use fixar::{EnvKind, FixarSystem, PrecisionMode};
use fixar_repro::prelude::*;

fn main() -> Result<(), RlError> {
    let total_steps = 6_000;
    let quant_delay = 3_000;

    // Paper hyperparameters, with lighter hidden layers so the example
    // stays in the minutes range. Change to `hidden: (400, 300)` for the
    // exact paper topology.
    let cfg = DdpgConfig {
        hidden: (96, 72),
        batch_size: 64,
        warmup_steps: 1_000,
        actor_lr: 1e-3,
        critic_lr: 1e-3,
        replay_capacity: 50_000,
        ..DdpgConfig::default()
    };

    println!("FIXAR on HalfCheetah (17 obs, 6 actions), dynamic fixed-point");
    println!(
        "{} steps, QAT delay {}, hidden {:?}, batch {}\n",
        total_steps, quant_delay, cfg.hidden, cfg.batch_size
    );

    let report = FixarSystem::new(EnvKind::HalfCheetah, PrecisionMode::DynamicFixed)
        .with_config(cfg.with_qat(quant_delay, 16))
        .run(total_steps, 1_000, 3)?;

    println!("eval curve (average cumulative reward, 3 episodes each):");
    for p in &report.training.curve {
        let marker = if Some(p.step) >= report.training.qat_switch_step
            && report.training.qat_switch_step.is_some()
        {
            " [16-bit phase]"
        } else {
            ""
        };
        println!("  step {:>6}: {:>9.1}{marker}", p.step, p.avg_reward);
    }
    println!(
        "\ntraining episodes: {}, QAT switch at {:?}",
        report.training.train_episodes, report.training.qat_switch_step
    );
    println!(
        "modelled platform throughput: {:.0} IPS (paper: 25293.3 at batch 512)",
        report.platform_ips
    );
    Ok(())
}
