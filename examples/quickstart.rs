//! Quickstart: train a DDPG agent with FIXAR's dynamic fixed-point
//! quantization-aware training on the fast Pendulum task.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The run starts in 32-bit fixed-point, calibrates activation ranges,
//! switches to 16-bit activations at the quantization delay, and keeps
//! learning — the core behaviour of the paper's Algorithm 1 — in about a
//! minute of CPU time.

use fixar::{EnvKind, FixarSystem, PrecisionMode};
use fixar_repro::prelude::*;

fn main() -> Result<(), RlError> {
    // Small networks keep the software fixed-point simulation quick; the
    // full paper-scale configuration is `DdpgConfig::default()`.
    let mut cfg = DdpgConfig::small_test();
    cfg.hidden = (64, 48);
    cfg.batch_size = 64;
    cfg.warmup_steps = 500;
    cfg.actor_lr = 1e-3;
    cfg.critic_lr = 1e-3;
    cfg.exploration_sigma = 0.15;

    let total_steps = 8_000;
    let quant_delay = 3_000;

    println!("FIXAR quickstart: DDPG on Pendulum, dynamic fixed-point (32 -> 16 bit)");
    println!("training {total_steps} steps, quantization delay {quant_delay}...\n");

    let report = FixarSystem::new(EnvKind::Pendulum, PrecisionMode::DynamicFixed)
        .with_config(cfg.clone().with_qat(quant_delay, 16))
        .run(total_steps, 1_000, 4)?;

    println!("reward curve (Pendulum: closer to 0 is better):");
    for point in &report.training.curve {
        let bar = "#".repeat(((point.avg_reward + 1600.0) / 40.0).max(0.0) as usize);
        println!(
            "  step {:>5}  avg reward {:>8.1}  {bar}",
            point.step, point.avg_reward
        );
    }
    if let Some(switch) = report.training.qat_switch_step {
        println!("\nactivations quantized to 16-bit fixed-point at step {switch}");
    }
    println!(
        "final avg reward: {:.1} (a random policy scores about -1200)",
        report.training.tail_mean(2)
    );
    println!(
        "modelled FIXAR platform throughput at batch {}: {:.0} IPS",
        cfg.batch_size, report.platform_ips
    );
    Ok(())
}
