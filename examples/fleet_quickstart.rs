//! Serving a fleet of environments from one agent: the vectorized
//! rollout path end to end, plus the accelerator's batched structural
//! twin.
//!
//! ```text
//! cargo run --release --example fleet_quickstart
//! ```

use fixar_repro::prelude::*;
use fixar_rl::VecTrainer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-env Pendulum fleet: independent seeds and episode
    // lifecycles, one shared agent, every action-selection pass batched
    // through the worker pool.
    let fleet_size = 8;
    let cfg = DdpgConfig::small_test().with_seed(7);
    let pool = EnvPool::from_kind(EnvKind::Pendulum, fleet_size, cfg.seed);
    let mut trainer = VecTrainer::<Fx32>::new(pool, EnvKind::Pendulum.make(99), cfg)?;

    // 400 fleet steps = 3200 env steps; evaluate twice along the way.
    let report = trainer.run(400, 200, 2)?;
    println!(
        "fleet of {fleet_size}: {} env steps, {} episodes finished, replay holds {}",
        report.total_steps,
        report.train_episodes,
        trainer.replay_len()
    );
    for point in &report.curve {
        println!(
            "  eval @ step {:>5}: avg reward {:.2}",
            point.step, point.avg_reward
        );
    }
    println!(
        "per-slot episodes completed: {:?}",
        trainer.pool().episodes_completed()
    );

    // The accelerator twin: the same fleet observations served by the
    // cycle-level AAP-core model in one batched pass, bit-exact against
    // the software path the trainer just used.
    let mut accel = FixarAccelerator::new(AccelConfig::default())?;
    accel.load_ddpg(trainer.agent().actor(), trainer.agent().critic())?;
    let states = trainer.pool().observations().cast::<Fx32>();
    let (hw_actions, cycles) = accel.actor_inference_batch(&states, Precision::Full32)?;
    let sw_actions = trainer.agent().actor().forward_batch(&states)?;
    assert_eq!(hw_actions, sw_actions, "structural twin must be bit-exact");
    println!(
        "accelerator serves the fleet in {cycles} cycles ({} actions, batched schedule)",
        hw_actions.rows()
    );
    Ok(())
}
