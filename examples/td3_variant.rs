//! TD3 in fixed point — the "DDPG variant" extension.
//!
//! ```text
//! cargo run --release --example td3_variant
//! ```
//!
//! Trains a TD3 agent (twin critics, delayed policy updates, target
//! smoothing) on Pendulum in 32-bit fixed-point, sharing every numeric
//! kernel with the DDPG pipeline — the accelerator primitives are
//! algorithm-agnostic, which is the point of this example.

use fixar_repro::prelude::*;
use fixar_rl::{Td3, Td3Config};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), RlError> {
    let mut cfg = Td3Config::small_test();
    cfg.hidden = (64, 48);
    cfg.actor_lr = 1e-3;
    cfg.critic_lr = 1e-3;

    let mut agent = Td3::<Fx32>::new(3, 1, cfg)?;
    let mut env = fixar_env::Pendulum::new(1);
    let mut eval_env = fixar_env::Pendulum::new(99);
    let mut replay = ReplayBuffer::new(20_000);
    let mut rng = StdRng::seed_from_u64(7);

    let total_steps = 6_000;
    let warmup = 500;
    let batch = 64;

    println!("TD3 (fixed32) on Pendulum: {total_steps} steps, twin critics, policy delay 2\n");
    let mut obs = env.reset();
    for step in 1..=total_steps {
        let action = if step <= warmup {
            vec![rng.gen_range(-1.0..1.0)]
        } else {
            let mut a = agent.act(&obs)?;
            a[0] = (a[0] + rng.gen_range(-0.15..0.15)).clamp(-1.0, 1.0);
            a
        };
        let res = env.step(&action);
        replay.push(Transition {
            state: obs.clone(),
            action,
            reward: res.reward,
            next_state: res.observation.clone(),
            terminal: res.terminated,
        });
        obs = if res.done() {
            env.reset()
        } else {
            res.observation
        };

        if step > warmup {
            let sample = replay.sample(batch, &mut rng);
            if !sample.is_empty() {
                let refs: Vec<&Transition> = sample.iter().collect();
                agent.train_batch(&refs)?;
            }
        }

        if step % 1_500 == 0 {
            // Evaluate noise-free over 3 episodes.
            let mut total = 0.0;
            for _ in 0..3 {
                let mut o = eval_env.reset();
                loop {
                    let a = agent.act(&o)?;
                    let r = eval_env.step(&a);
                    total += r.reward;
                    if r.done() {
                        break;
                    }
                    o = r.observation;
                }
            }
            println!(
                "  step {:>5}: avg eval reward {:>8.1}  (critic updates: {}, actor updates: {})",
                step,
                total / 3.0,
                agent.critic_updates(),
                agent.critic_updates() / 2
            );
        }
    }
    println!("\nrandom policy scores about -1200; TD3's clipped double-Q fights the");
    println!("overestimation that single-critic DDPG is prone to.");
    Ok(())
}
