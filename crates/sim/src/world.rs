//! The simulation world: integration loop, contacts, drag.

use crate::body::{BodyDef, BodyHandle, RigidBody};
use crate::joint::{JointDef, JointHandle, RevoluteJoint};
use crate::vec2::Vec2;

/// Tunable parameters of a [`World`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldConfig {
    /// Integration timestep (s). Environments typically run several
    /// substeps per control step.
    pub dt: f64,
    /// Gravitational acceleration (m/s², applied along −y).
    pub gravity: f64,
    /// Sequential-impulse iterations per step.
    pub solver_iterations: usize,
    /// Baumgarte position-correction factor in `[0, 1]`.
    pub baumgarte: f64,
    /// Height of the ground plane (contacts act below this y).
    pub ground_y: f64,
    /// Ground normal penalty stiffness (N/m).
    pub contact_stiffness: f64,
    /// Ground normal penalty damping (N·s/m).
    pub contact_damping: f64,
    /// Coulomb friction coefficient.
    pub friction: f64,
    /// Linear velocity damping per second (dimensionless rate).
    pub linear_damping: f64,
    /// Angular velocity damping per second.
    pub angular_damping: f64,
    /// Soft joint-limit stiffness (N·m/rad).
    pub limit_stiffness: f64,
    /// Soft joint-limit damping (N·m·s/rad).
    pub limit_damping: f64,
    /// Viscous fluid drag (Swimmer): force per unit velocity
    /// perpendicular to a capsule's axis. Zero disables the medium.
    pub fluid_drag_perp: f64,
    /// Viscous fluid drag parallel to a capsule's axis.
    pub fluid_drag_par: f64,
    /// Whether ground contacts are active (disabled for the Swimmer,
    /// which lives in the fluid plane).
    pub ground_enabled: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            dt: 0.002,
            gravity: 9.81,
            solver_iterations: 10,
            baumgarte: 0.2,
            ground_y: 0.0,
            contact_stiffness: 3.0e4,
            contact_damping: 3.0e2,
            friction: 1.0,
            linear_damping: 0.02,
            angular_damping: 0.05,
            limit_stiffness: 150.0,
            limit_damping: 3.0,
            fluid_drag_perp: 0.0,
            fluid_drag_par: 0.0,
            ground_enabled: true,
        }
    }
}

/// Deterministic planar rigid-body world.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct World {
    config: WorldConfig,
    bodies: Vec<RigidBody>,
    joints: Vec<RevoluteJoint>,
    time: f64,
    steps: u64,
}

impl World {
    /// Creates an empty world.
    ///
    /// # Panics
    ///
    /// Panics if `config.dt <= 0` or `solver_iterations == 0`.
    pub fn new(config: WorldConfig) -> Self {
        assert!(config.dt > 0.0, "dt must be positive");
        assert!(config.solver_iterations > 0, "need at least one iteration");
        Self {
            config,
            bodies: Vec::new(),
            joints: Vec::new(),
            time: 0.0,
            steps: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Adds a body; the returned handle stays valid for the world's life.
    pub fn add_body(&mut self, def: BodyDef) -> BodyHandle {
        self.bodies.push(RigidBody::from_def(&def));
        BodyHandle(self.bodies.len() - 1)
    }

    /// Adds a revolute joint between two existing bodies. The reference
    /// angle is captured from the current relative pose, so limits are
    /// measured from the assembly configuration.
    ///
    /// # Panics
    ///
    /// Panics if either handle is stale or the bodies are the same.
    pub fn add_joint(&mut self, def: JointDef) -> JointHandle {
        assert!(def.body_a.0 < self.bodies.len(), "stale body_a handle");
        assert!(def.body_b.0 < self.bodies.len(), "stale body_b handle");
        assert_ne!(def.body_a, def.body_b, "joint needs two distinct bodies");
        let reference = self.bodies[def.body_b.0].angle() - self.bodies[def.body_a.0].angle();
        self.joints.push(RevoluteJoint::new(def, reference));
        JointHandle(self.joints.len() - 1)
    }

    /// Borrows a body.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle.
    pub fn body(&self, h: BodyHandle) -> &RigidBody {
        &self.bodies[h.0]
    }

    /// Mutably borrows a body (resets, external forces).
    ///
    /// # Panics
    ///
    /// Panics on a stale handle.
    pub fn body_mut(&mut self, h: BodyHandle) -> &mut RigidBody {
        &mut self.bodies[h.0]
    }

    /// Borrows a joint.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle.
    pub fn joint(&self, h: JointHandle) -> &RevoluteJoint {
        &self.joints[h.0]
    }

    /// Sets a joint's motor torque (clamped to its budget).
    ///
    /// # Panics
    ///
    /// Panics on a stale handle.
    pub fn set_motor_torque(&mut self, h: JointHandle, torque: f64) {
        self.joints[h.0].set_motor_torque(torque);
    }

    /// Relative angle and angular velocity of a joint (observation
    /// building).
    ///
    /// # Panics
    ///
    /// Panics on a stale handle.
    pub fn joint_state(&self, h: JointHandle) -> (f64, f64) {
        let j = &self.joints[h.0];
        let a = &self.bodies[j.def.body_a.0];
        let b = &self.bodies[j.def.body_b.0];
        (j.relative_angle(a, b), j.relative_velocity(a, b))
    }

    /// Number of bodies.
    pub fn body_count(&self) -> usize {
        self.bodies.len()
    }

    /// Handle of the `index`-th added body (insertion order), if any —
    /// lets callers re-enumerate an assembled morphology.
    pub fn body_handle(&self, index: usize) -> Option<BodyHandle> {
        if index < self.bodies.len() {
            Some(BodyHandle(index))
        } else {
            None
        }
    }

    /// Number of joints.
    pub fn joint_count(&self) -> usize {
        self.joints.len()
    }

    /// Simulated time (s).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Completed steps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Total kinetic energy of all bodies (diagnostics/tests).
    pub fn kinetic_energy(&self) -> f64 {
        self.bodies.iter().map(RigidBody::kinetic_energy).sum()
    }

    /// Advances the simulation by one `dt`:
    /// forces (gravity, motors, limits, contacts, drag) → velocity
    /// integration → joint impulses → position integration.
    pub fn step(&mut self) {
        let cfg = self.config;

        // 1. External forces.
        for body in &mut self.bodies {
            if body.is_static() {
                continue;
            }
            let m = 1.0 / body.inv_mass;
            body.apply_force(Vec2::new(0.0, -cfg.gravity * m));
        }
        for ji in 0..self.joints.len() {
            let (ai, bi) = {
                let j = &self.joints[ji];
                (j.def.body_a.0, j.def.body_b.0)
            };
            let (a, b) = borrow_two(&mut self.bodies, ai, bi);
            let j = &self.joints[ji];
            j.apply_torques(a, b, cfg.limit_stiffness, cfg.limit_damping);
        }
        if cfg.ground_enabled {
            self.apply_ground_contacts();
        }
        if cfg.fluid_drag_perp > 0.0 || cfg.fluid_drag_par > 0.0 {
            self.apply_fluid_drag();
        }

        // 2. Integrate velocities and apply damping.
        let lin_decay = 1.0 / (1.0 + cfg.dt * cfg.linear_damping);
        let ang_decay = 1.0 / (1.0 + cfg.dt * cfg.angular_damping);
        for body in &mut self.bodies {
            if body.is_static() {
                body.force = Vec2::ZERO;
                body.torque = 0.0;
                continue;
            }
            body.velocity += body.force * (body.inv_mass * cfg.dt);
            body.angular_velocity += body.torque * (body.inv_inertia * cfg.dt);
            body.velocity = body.velocity * lin_decay;
            body.angular_velocity *= ang_decay;
            body.force = Vec2::ZERO;
            body.torque = 0.0;
        }

        // 3. Sequential-impulse joint solve.
        let bias = cfg.baumgarte / cfg.dt;
        for _ in 0..cfg.solver_iterations {
            for ji in 0..self.joints.len() {
                let (ai, bi) = {
                    let j = &self.joints[ji];
                    (j.def.body_a.0, j.def.body_b.0)
                };
                let (a, b) = borrow_two(&mut self.bodies, ai, bi);
                self.joints[ji].solve_velocity(a, b, bias);
            }
        }

        // 4. Integrate positions.
        for body in &mut self.bodies {
            if body.is_static() {
                continue;
            }
            body.position += body.velocity * cfg.dt;
            body.angle += body.angular_velocity * cfg.dt;
        }

        self.time += cfg.dt;
        self.steps += 1;
    }

    /// Penalty ground contact: spring-damper normal force with Coulomb
    /// friction clamp, applied at each shape's contact sample points.
    fn apply_ground_contacts(&mut self) {
        let cfg = self.config;
        for body in &mut self.bodies {
            if body.is_static() {
                continue;
            }
            let shape = body.shape();
            let radius = shape.contact_radius();
            for local in shape.contact_points() {
                let p = body.world_point(local);
                let surface_y = p.y - radius;
                let penetration = cfg.ground_y - surface_y;
                if penetration <= 0.0 {
                    continue;
                }
                let v = body.velocity_at(p);
                let normal_force =
                    (cfg.contact_stiffness * penetration - cfg.contact_damping * v.y).max(0.0);
                // Friction: viscous model clamped by the Coulomb cone.
                let max_friction = cfg.friction * normal_force;
                let tangential =
                    (-cfg.contact_stiffness * 0.1 * v.x).clamp(-max_friction, max_friction);
                body.apply_force_at(Vec2::new(tangential, normal_force), p);
            }
        }
    }

    /// Anisotropic viscous drag on capsule bodies — the Swimmer's fluid.
    /// Perpendicular motion is resisted much more than axial motion,
    /// which is what makes undulation propulsive.
    fn apply_fluid_drag(&mut self) {
        let cfg = self.config;
        for body in &mut self.bodies {
            if body.is_static() {
                continue;
            }
            let axis = Vec2::new(1.0, 0.0).rotated(body.angle());
            for local in body.shape().contact_points() {
                let p = body.world_point(local);
                let v = body.velocity_at(p);
                let v_par = axis * v.dot(axis);
                let v_perp = v - v_par;
                let drag = -(v_perp * cfg.fluid_drag_perp) - (v_par * cfg.fluid_drag_par);
                body.apply_force_at(drag, p);
            }
            // Rotational drag keeps spinning bounded in the medium.
            let w = body.angular_velocity();
            body.apply_torque(-cfg.fluid_drag_perp * 0.05 * w);
        }
    }
}

/// Splits two distinct mutable borrows out of the body arena.
fn borrow_two(bodies: &mut [RigidBody], i: usize, j: usize) -> (&mut RigidBody, &mut RigidBody) {
    assert_ne!(i, j, "joint connects a body to itself");
    if i < j {
        let (lo, hi) = bodies.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = bodies.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Shape;

    fn ball_world() -> (World, BodyHandle) {
        let mut w = World::new(WorldConfig::default());
        let b = w
            .add_body(BodyDef::dynamic(1.0, Shape::Circle { radius: 0.1 }).at(Vec2::new(0.0, 2.0)));
        (w, b)
    }

    #[test]
    fn free_fall_matches_kinematics() {
        let cfg = WorldConfig {
            ground_enabled: false,
            linear_damping: 0.0,
            ..WorldConfig::default()
        };
        let mut w = World::new(cfg);
        let b = w.add_body(
            BodyDef::dynamic(1.0, Shape::Circle { radius: 0.1 }).at(Vec2::new(0.0, 100.0)),
        );
        for _ in 0..500 {
            w.step();
        }
        let t = w.time();
        let expected = 100.0 - 0.5 * 9.81 * t * t;
        let got = w.body(b).position().y;
        // Semi-implicit Euler lags the exact parabola by O(dt·g·t).
        assert!(
            (got - expected).abs() < 0.05,
            "got={got} expected={expected}"
        );
    }

    #[test]
    fn ball_settles_on_ground() {
        let (mut w, b) = ball_world();
        for _ in 0..5000 {
            w.step();
        }
        let y = w.body(b).position().y;
        assert!(y > 0.05 && y < 0.15, "resting height {y}");
        assert!(w.body(b).velocity().length() < 0.05);
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = || {
            let (mut w, b) = ball_world();
            let j = w.add_body(
                BodyDef::dynamic(
                    0.5,
                    Shape::Capsule {
                        half_len: 0.3,
                        radius: 0.05,
                    },
                )
                .at(Vec2::new(0.3, 2.0)),
            );
            w.add_joint(
                JointDef::new(b, j, Vec2::new(0.1, 0.0), Vec2::new(-0.3, 0.0)).with_motor(5.0),
            );
            for i in 0..500 {
                w.set_motor_torque(JointHandle(0), (i as f64 * 0.01).sin() * 5.0);
                w.step();
            }
            (
                w.body(b).position(),
                w.body(j).position(),
                w.kinetic_energy(),
            )
        };
        let (p1, q1, e1) = run();
        let (p2, q2, e2) = run();
        assert_eq!(p1, p2);
        assert_eq!(q1, q2);
        assert_eq!(e1, e2);
    }

    #[test]
    fn pendulum_swings_and_energy_stays_bounded() {
        let cfg = WorldConfig {
            ground_enabled: false,
            linear_damping: 0.0,
            angular_damping: 0.0,
            ..WorldConfig::default()
        };
        let mut w = World::new(cfg);
        let pivot =
            w.add_body(BodyDef::fixed(Shape::Circle { radius: 0.01 }).at(Vec2::new(0.0, 2.0)));
        let bob = w.add_body(
            BodyDef::dynamic(1.0, Shape::Circle { radius: 0.05 }).at(Vec2::new(1.0, 2.0)),
        );
        w.add_joint(JointDef::new(pivot, bob, Vec2::ZERO, Vec2::new(-1.0, 0.0)));
        let mut min_y = f64::MAX;
        let mut max_e: f64 = 0.0;
        for _ in 0..3000 {
            w.step();
            min_y = min_y.min(w.body(bob).position().y);
            max_e = max_e.max(w.kinetic_energy());
        }
        // It swung down…
        assert!(min_y < 1.3, "min_y={min_y}");
        // …with kinetic energy bounded by the released potential energy
        // (m·g·h = 9.81) plus solver slack.
        assert!(max_e < 1.3 * 9.81, "max_e={max_e}");
        // The rod length is approximately conserved by the constraint.
        let d = (w.body(bob).position() - w.body(pivot).position()).length();
        assert!((d - 1.0).abs() < 0.05, "rod length {d}");
    }

    #[test]
    fn motor_spins_a_free_wheel() {
        let cfg = WorldConfig {
            ground_enabled: false,
            gravity: 0.0,
            ..WorldConfig::default()
        };
        let mut w = World::new(cfg);
        let anchor = w.add_body(BodyDef::fixed(Shape::Circle { radius: 0.01 }));
        let wheel = w.add_body(BodyDef::dynamic(1.0, Shape::Circle { radius: 0.2 }));
        let j = w.add_joint(JointDef::new(anchor, wheel, Vec2::ZERO, Vec2::ZERO).with_motor(2.0));
        w.set_motor_torque(j, 2.0);
        for _ in 0..100 {
            w.step();
        }
        assert!(w.body(wheel).angular_velocity() > 1.0);
        let (angle, vel) = w.joint_state(j);
        assert!(angle > 0.0 && vel > 0.0);
    }

    #[test]
    fn fluid_drag_slows_motion() {
        let cfg = WorldConfig {
            ground_enabled: false,
            gravity: 0.0,
            fluid_drag_perp: 5.0,
            fluid_drag_par: 0.5,
            ..WorldConfig::default()
        };
        let mut w = World::new(cfg);
        let b = w.add_body(BodyDef::dynamic(
            1.0,
            Shape::Capsule {
                half_len: 0.5,
                radius: 0.05,
            },
        ));
        w.body_mut(b)
            .set_state(Vec2::ZERO, 0.0, Vec2::new(0.0, 1.0), 0.0);
        let v0 = w.body(b).velocity().length();
        for _ in 0..200 {
            w.step();
        }
        let v1 = w.body(b).velocity().length();
        assert!(v1 < v0 * 0.5, "perpendicular drag should halve speed: {v1}");
    }

    #[test]
    fn drag_is_anisotropic() {
        let decay = |vel: Vec2| {
            let cfg = WorldConfig {
                ground_enabled: false,
                gravity: 0.0,
                linear_damping: 0.0,
                fluid_drag_perp: 5.0,
                fluid_drag_par: 0.2,
                ..WorldConfig::default()
            };
            let mut w = World::new(cfg);
            let b = w.add_body(BodyDef::dynamic(
                1.0,
                Shape::Capsule {
                    half_len: 0.5,
                    radius: 0.05,
                },
            ));
            w.body_mut(b).set_state(Vec2::ZERO, 0.0, vel, 0.0);
            for _ in 0..100 {
                w.step();
            }
            w.body(b).velocity().length()
        };
        let along = decay(Vec2::new(1.0, 0.0));
        let across = decay(Vec2::new(0.0, 1.0));
        assert!(
            across < along * 0.5,
            "axial {along} vs perpendicular {across}"
        );
    }

    #[test]
    #[should_panic(expected = "stale body_a")]
    fn stale_joint_handle_rejected() {
        let mut w = World::new(WorldConfig::default());
        let b = w.add_body(BodyDef::dynamic(1.0, Shape::Circle { radius: 0.1 }));
        let _ = w.add_joint(JointDef::new(BodyHandle(5), b, Vec2::ZERO, Vec2::ZERO));
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn invalid_config_rejected() {
        let cfg = WorldConfig {
            dt: 0.0,
            ..WorldConfig::default()
        };
        let _ = World::new(cfg);
    }

    #[test]
    fn chain_does_not_explode_under_agitation() {
        // A 4-link chain with driven joints must remain numerically sane.
        let mut w = World::new(WorldConfig::default());
        let mut prev = w.add_body(
            BodyDef::dynamic(
                2.0,
                Shape::Capsule {
                    half_len: 0.25,
                    radius: 0.05,
                },
            )
            .at(Vec2::new(0.0, 1.0)),
        );
        let mut joints = Vec::new();
        for i in 1..4 {
            let next = w.add_body(
                BodyDef::dynamic(
                    1.0,
                    Shape::Capsule {
                        half_len: 0.25,
                        radius: 0.05,
                    },
                )
                .at(Vec2::new(0.5 * i as f64, 1.0)),
            );
            joints.push(
                w.add_joint(
                    JointDef::new(prev, next, Vec2::new(0.25, 0.0), Vec2::new(-0.25, 0.0))
                        .with_motor(30.0)
                        .with_limits(-1.0, 1.0),
                ),
            );
            prev = next;
        }
        for s in 0..2000 {
            for (k, &j) in joints.iter().enumerate() {
                w.set_motor_torque(j, 30.0 * ((s as f64) * 0.05 + k as f64).sin());
            }
            w.step();
        }
        for i in 0..w.body_count() {
            let b = w.body(BodyHandle(i));
            assert!(b.position().length() < 100.0, "body {i} flew away");
            assert!(b.velocity().length() < 100.0, "body {i} exploded");
        }
    }
}
