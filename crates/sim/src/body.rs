//! Rigid bodies and their mass properties.

use crate::vec2::Vec2;

/// Collision/inertia shape of a body.
///
/// Locomotion morphologies are built from capsules (limbs), boxes
/// (torsos/feet), and circles (simple probes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// Capsule along the body-local x axis: segment of half-length
    /// `half_len` with end radius `radius`.
    Capsule {
        /// Half the segment length (m).
        half_len: f64,
        /// End-cap radius (m).
        radius: f64,
    },
    /// Axis-aligned box in body frame with half extents.
    Box {
        /// Half width (m).
        hx: f64,
        /// Half height (m).
        hy: f64,
    },
    /// Circle of the given radius.
    Circle {
        /// Radius (m).
        radius: f64,
    },
}

impl Shape {
    /// Moment of inertia about the centroid for unit mass.
    pub fn unit_inertia(&self) -> f64 {
        match *self {
            // Rod-with-caps approximation: rod of length 2L dominates.
            Shape::Capsule { half_len, radius } => {
                (2.0 * half_len).powi(2) / 12.0 + radius * radius / 2.0
            }
            Shape::Box { hx, hy } => (4.0 * hx * hx + 4.0 * hy * hy) / 12.0,
            Shape::Circle { radius } => radius * radius / 2.0,
        }
    }

    /// Contact sample points in the body frame (the points tested against
    /// the ground plane). Ends and center for elongated shapes; bottom
    /// corners for boxes.
    pub fn contact_points(&self) -> Vec<Vec2> {
        match *self {
            Shape::Capsule { half_len, .. } => vec![
                Vec2::new(-half_len, 0.0),
                Vec2::new(0.0, 0.0),
                Vec2::new(half_len, 0.0),
            ],
            Shape::Box { hx, hy } => vec![
                Vec2::new(-hx, -hy),
                Vec2::new(hx, -hy),
                Vec2::new(-hx, hy),
                Vec2::new(hx, hy),
            ],
            Shape::Circle { .. } => vec![Vec2::ZERO],
        }
    }

    /// Effective surface offset below a contact point (capsule/circle
    /// radius; zero for box corners which are already on the hull).
    pub fn contact_radius(&self) -> f64 {
        match *self {
            Shape::Capsule { radius, .. } => radius,
            Shape::Box { .. } => 0.0,
            Shape::Circle { radius } => radius,
        }
    }
}

/// Builder-style body description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodyDef {
    /// Mass in kg; `None` marks a static (infinite-mass) body.
    pub mass: Option<f64>,
    /// Shape for inertia and contacts.
    pub shape: Shape,
    /// Initial world position of the center of mass.
    pub position: Vec2,
    /// Initial orientation (radians).
    pub angle: f64,
}

impl BodyDef {
    /// A dynamic body of the given mass and shape at the origin.
    ///
    /// # Panics
    ///
    /// Panics if `mass <= 0`.
    pub fn dynamic(mass: f64, shape: Shape) -> Self {
        assert!(mass > 0.0, "dynamic body requires positive mass");
        Self {
            mass: Some(mass),
            shape,
            position: Vec2::ZERO,
            angle: 0.0,
        }
    }

    /// A static body (anchors, scenery).
    pub fn fixed(shape: Shape) -> Self {
        Self {
            mass: None,
            shape,
            position: Vec2::ZERO,
            angle: 0.0,
        }
    }

    /// Sets the initial position.
    pub fn at(mut self, position: Vec2) -> Self {
        self.position = position;
        self
    }

    /// Sets the initial orientation (radians).
    pub fn rotated(mut self, angle: f64) -> Self {
        self.angle = angle;
        self
    }
}

/// Opaque handle to a body inside a [`crate::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BodyHandle(pub(crate) usize);

/// A rigid body in maximal coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct RigidBody {
    pub(crate) position: Vec2,
    pub(crate) angle: f64,
    pub(crate) velocity: Vec2,
    pub(crate) angular_velocity: f64,
    pub(crate) force: Vec2,
    pub(crate) torque: f64,
    pub(crate) inv_mass: f64,
    pub(crate) inv_inertia: f64,
    mass: f64,
    shape: Shape,
}

impl RigidBody {
    pub(crate) fn from_def(def: &BodyDef) -> Self {
        let (mass, inv_mass, inv_inertia) = match def.mass {
            Some(m) => {
                let inertia = m * def.shape.unit_inertia();
                (m, 1.0 / m, 1.0 / inertia)
            }
            None => (f64::INFINITY, 0.0, 0.0),
        };
        Self {
            position: def.position,
            angle: def.angle,
            velocity: Vec2::ZERO,
            angular_velocity: 0.0,
            force: Vec2::ZERO,
            torque: 0.0,
            inv_mass,
            inv_inertia,
            mass,
            shape: def.shape,
        }
    }

    /// World position of the center of mass.
    #[inline]
    pub fn position(&self) -> Vec2 {
        self.position
    }

    /// Orientation in radians.
    #[inline]
    pub fn angle(&self) -> f64 {
        self.angle
    }

    /// Linear velocity of the center of mass.
    #[inline]
    pub fn velocity(&self) -> Vec2 {
        self.velocity
    }

    /// Angular velocity (rad/s).
    #[inline]
    pub fn angular_velocity(&self) -> f64 {
        self.angular_velocity
    }

    /// Mass (kg); infinite for static bodies.
    #[inline]
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// Shape used for inertia and contact sampling.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// `true` for infinite-mass bodies.
    #[inline]
    pub fn is_static(&self) -> bool {
        self.inv_mass == 0.0
    }

    /// Transforms a body-local point into world coordinates.
    #[inline]
    pub fn world_point(&self, local: Vec2) -> Vec2 {
        self.position + local.rotated(self.angle)
    }

    /// Velocity of a world-space point rigidly attached to the body.
    #[inline]
    pub fn velocity_at(&self, world_point: Vec2) -> Vec2 {
        let r = world_point - self.position;
        self.velocity + Vec2::cross_scalar(self.angular_velocity, r)
    }

    /// Accumulates a force through the center of mass for the next step.
    #[inline]
    pub fn apply_force(&mut self, f: Vec2) {
        self.force += f;
    }

    /// Accumulates a force acting at a world-space point (adds torque).
    #[inline]
    pub fn apply_force_at(&mut self, f: Vec2, world_point: Vec2) {
        self.force += f;
        let r = world_point - self.position;
        self.torque += r.cross(f);
    }

    /// Accumulates a pure torque for the next step.
    #[inline]
    pub fn apply_torque(&mut self, t: f64) {
        self.torque += t;
    }

    /// Applies an instantaneous impulse at a world-space point.
    #[inline]
    pub fn apply_impulse_at(&mut self, p: Vec2, world_point: Vec2) {
        self.velocity += p * self.inv_mass;
        let r = world_point - self.position;
        self.angular_velocity += r.cross(p) * self.inv_inertia;
    }

    /// Overrides the kinematic state (environment resets).
    pub fn set_state(&mut self, position: Vec2, angle: f64, velocity: Vec2, angular_velocity: f64) {
        self.position = position;
        self.angle = angle;
        self.velocity = velocity;
        self.angular_velocity = angular_velocity;
        self.force = Vec2::ZERO;
        self.torque = 0.0;
    }

    /// Kinetic energy (translational + rotational).
    pub fn kinetic_energy(&self) -> f64 {
        if self.is_static() {
            return 0.0;
        }
        let inertia = 1.0 / self.inv_inertia;
        0.5 * self.mass * self.velocity.length_sq()
            + 0.5 * inertia * self.angular_velocity * self.angular_velocity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_body_mass_properties() {
        let b = RigidBody::from_def(&BodyDef::dynamic(2.0, Shape::Circle { radius: 0.5 }));
        assert_eq!(b.mass(), 2.0);
        assert!((b.inv_mass - 0.5).abs() < 1e-12);
        // I = m r²/2 = 0.25 ⇒ inv = 4.
        assert!((b.inv_inertia - 4.0).abs() < 1e-12);
        assert!(!b.is_static());
    }

    #[test]
    fn static_body_has_no_response() {
        let mut b = RigidBody::from_def(&BodyDef::fixed(Shape::Box { hx: 1.0, hy: 1.0 }));
        assert!(b.is_static());
        b.apply_impulse_at(Vec2::new(100.0, 0.0), Vec2::ZERO);
        assert_eq!(b.velocity(), Vec2::ZERO);
        assert_eq!(b.kinetic_energy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn zero_mass_rejected() {
        let _ = BodyDef::dynamic(0.0, Shape::Circle { radius: 0.1 });
    }

    #[test]
    fn world_point_rotates_with_body() {
        let def = BodyDef::dynamic(1.0, Shape::Circle { radius: 0.1 })
            .at(Vec2::new(1.0, 1.0))
            .rotated(std::f64::consts::FRAC_PI_2);
        let b = RigidBody::from_def(&def);
        let p = b.world_point(Vec2::new(1.0, 0.0));
        assert!((p - Vec2::new(1.0, 2.0)).length() < 1e-12);
    }

    #[test]
    fn velocity_at_includes_spin() {
        let mut b = RigidBody::from_def(&BodyDef::dynamic(1.0, Shape::Circle { radius: 0.1 }));
        b.set_state(Vec2::ZERO, 0.0, Vec2::new(1.0, 0.0), 2.0);
        let v = b.velocity_at(Vec2::new(1.0, 0.0));
        assert!((v - Vec2::new(1.0, 2.0)).length() < 1e-12);
    }

    #[test]
    fn force_at_point_produces_torque() {
        let mut b = RigidBody::from_def(&BodyDef::dynamic(1.0, Shape::Circle { radius: 0.1 }));
        b.apply_force_at(Vec2::new(0.0, 1.0), Vec2::new(1.0, 0.0));
        assert_eq!(b.force, Vec2::new(0.0, 1.0));
        assert_eq!(b.torque, 1.0);
    }

    #[test]
    fn capsule_contact_points_span_the_segment() {
        let pts = Shape::Capsule {
            half_len: 0.5,
            radius: 0.05,
        }
        .contact_points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].x, -0.5);
        assert_eq!(pts[2].x, 0.5);
    }
}
