//! Minimal 2-D vector algebra.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Two-dimensional vector in `f64`.
///
/// The simulator runs entirely in `f64` on the "host CPU" side of the
/// platform, like the paper's Python MuJoCo process; only the agent's
/// observations get converted to the accelerator's fixed-point formats.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Vec2 {
    /// Horizontal component (locomotion direction).
    pub x: f64,
    /// Vertical component (gravity axis).
    pub y: f64,
}

impl Vec2 {
    /// Zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec2) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// 2-D cross product (returns the scalar z-component).
    #[inline]
    pub fn cross(self, rhs: Vec2) -> f64 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Scalar × vector cross product `w × v = (-w·v.y, w·v.x)` — the
    /// velocity of a point at offset `v` on a body spinning at `w`.
    #[inline]
    pub fn cross_scalar(w: f64, v: Vec2) -> Vec2 {
        Vec2::new(-w * v.y, w * v.x)
    }

    /// Euclidean norm.
    #[inline]
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm.
    #[inline]
    pub fn length_sq(self) -> f64 {
        self.dot(self)
    }

    /// Rotates the vector by `angle` radians.
    #[inline]
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Unit vector in the same direction (zero stays zero).
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let len = self.length();
        if len < 1e-12 {
            Vec2::ZERO
        } else {
            self / len
        }
    }

    /// Perpendicular vector (rotated +90°).
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, v: Vec2) -> Vec2 {
        v * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
        assert_eq!(a.cross(a), 0.0);
    }

    #[test]
    fn rotation_preserves_length() {
        let v = Vec2::new(3.0, 4.0);
        let r = v.rotated(1.234);
        assert!((r.length() - 5.0).abs() < 1e-12);
        // Rotating by 90° gives perp.
        let p = v.rotated(std::f64::consts::FRAC_PI_2);
        assert!((p - v.perp()).length() < 1e-12);
    }

    #[test]
    fn cross_scalar_gives_tangential_velocity() {
        let r = Vec2::new(1.0, 0.0);
        let v = Vec2::cross_scalar(2.0, r);
        assert!((v - Vec2::new(0.0, 2.0)).length() < 1e-12);
    }

    #[test]
    fn normalized_handles_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        let n = Vec2::new(0.0, -3.0).normalized();
        assert!((n - Vec2::new(0.0, -1.0)).length() < 1e-12);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Vec2::new(1.5, -2.5);
        assert_eq!(a + Vec2::ZERO, a);
        assert_eq!(a - a, Vec2::ZERO);
        assert_eq!(-(-a), a);
        assert_eq!((a * 2.0) / 2.0, a);
        assert_eq!(2.0 * a, a * 2.0);
    }
}
