//! Planar rigid-body physics engine — the MuJoCo substitute of the FIXAR
//! reproduction.
//!
//! The paper evaluates FIXAR on MuJoCo locomotion tasks (HalfCheetah,
//! Hopper, Swimmer) with the environment emulated on the host CPU. MuJoCo
//! is proprietary-grade C we do not reimplement verbatim; instead this
//! crate provides a deterministic 2-D articulated rigid-body simulator
//! with the ingredients those tasks need:
//!
//! * maximal-coordinate [`RigidBody`]s (position, angle, velocities) with
//!   capsule/box/circle shapes and consistent mass properties,
//! * [`RevoluteJoint`]s solved by velocity-level **sequential impulses**
//!   with Baumgarte position stabilization, plus torque motors and soft
//!   angle limits,
//! * penalty-based ground contact with Coulomb-clamped friction (MuJoCo
//!   itself uses soft contacts),
//! * optional linear/angular damping and per-body viscous fluid drag
//!   (the Swimmer medium),
//! * a fixed-timestep, deterministic [`World::step`].
//!
//! Determinism matters: FIXAR's precision study compares four training
//! runs that must see identical environments given identical action
//! streams.
//!
//! # Example
//!
//! ```
//! use fixar_sim::{BodyDef, Shape, Vec2, World, WorldConfig};
//!
//! let mut world = World::new(WorldConfig::default());
//! let ball = world.add_body(
//!     BodyDef::dynamic(1.0, Shape::Circle { radius: 0.1 })
//!         .at(Vec2::new(0.0, 1.0)),
//! );
//! for _ in 0..1000 {
//!     world.step();
//! }
//! // The ball fell and now rests on the ground near y = radius.
//! let y = world.body(ball).position().y;
//! assert!(y > 0.0 && y < 0.2, "y={y}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod body;
mod joint;
mod vec2;
mod world;

pub use body::{BodyDef, BodyHandle, RigidBody, Shape};
pub use joint::{JointDef, JointHandle, RevoluteJoint};
pub use vec2::Vec2;
pub use world::{World, WorldConfig};
