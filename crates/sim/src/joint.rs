//! Revolute joints with torque motors and soft angle limits.

use crate::body::{BodyHandle, RigidBody};
use crate::vec2::Vec2;

/// Opaque handle to a joint inside a [`crate::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JointHandle(pub(crate) usize);

/// Description of a revolute (pin) joint between two bodies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointDef {
    /// First body.
    pub body_a: BodyHandle,
    /// Second body.
    pub body_b: BodyHandle,
    /// Anchor in `body_a`'s local frame.
    pub local_anchor_a: Vec2,
    /// Anchor in `body_b`'s local frame.
    pub local_anchor_b: Vec2,
    /// Optional soft angle limits on the *relative* angle
    /// `angle_b − angle_a − reference`, in radians.
    pub limits: Option<(f64, f64)>,
    /// Maximum motor torque magnitude (N·m); actions are scaled by this.
    pub max_motor_torque: f64,
    /// Passive spring stiffness toward the assembly angle (N·m/rad) —
    /// MuJoCo models use this heavily (e.g. HalfCheetah thighs).
    pub spring_stiffness: f64,
    /// Passive damping on the relative joint velocity (N·m·s/rad).
    pub spring_damping: f64,
}

impl JointDef {
    /// Joint pinning `body_b` to `body_a` at the given local anchors.
    pub fn new(body_a: BodyHandle, body_b: BodyHandle, anchor_a: Vec2, anchor_b: Vec2) -> Self {
        Self {
            body_a,
            body_b,
            local_anchor_a: anchor_a,
            local_anchor_b: anchor_b,
            limits: None,
            max_motor_torque: 0.0,
            spring_stiffness: 0.0,
            spring_damping: 0.0,
        }
    }

    /// Adds soft relative-angle limits (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn with_limits(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "joint limits require lo <= hi");
        self.limits = Some((lo, hi));
        self
    }

    /// Sets the motor torque budget (builder style).
    pub fn with_motor(mut self, max_torque: f64) -> Self {
        self.max_motor_torque = max_torque;
        self
    }

    /// Adds a passive return spring toward the assembly angle (builder
    /// style).
    pub fn with_spring(mut self, stiffness: f64, damping: f64) -> Self {
        self.spring_stiffness = stiffness;
        self.spring_damping = damping;
        self
    }
}

/// Internal state of a revolute joint.
#[derive(Debug, Clone, PartialEq)]
pub struct RevoluteJoint {
    pub(crate) def: JointDef,
    /// Relative angle at assembly time, so limits are measured from the
    /// initial pose.
    pub(crate) reference_angle: f64,
    /// Commanded motor torque for the next step (clamped to the budget).
    pub(crate) motor_torque: f64,
}

impl RevoluteJoint {
    pub(crate) fn new(def: JointDef, reference_angle: f64) -> Self {
        Self {
            def,
            reference_angle,
            motor_torque: 0.0,
        }
    }

    /// Joint definition.
    pub fn def(&self) -> &JointDef {
        &self.def
    }

    /// Currently commanded motor torque.
    pub fn motor_torque(&self) -> f64 {
        self.motor_torque
    }

    /// Sets the motor torque, clamped to `±max_motor_torque`.
    pub fn set_motor_torque(&mut self, torque: f64) {
        let cap = self.def.max_motor_torque;
        self.motor_torque = torque.clamp(-cap, cap);
    }

    /// Relative joint angle `angle_b − angle_a − reference`.
    pub fn relative_angle(&self, a: &RigidBody, b: &RigidBody) -> f64 {
        b.angle() - a.angle() - self.reference_angle
    }

    /// Relative joint angular velocity `w_b − w_a`.
    pub fn relative_velocity(&self, a: &RigidBody, b: &RigidBody) -> f64 {
        b.angular_velocity() - a.angular_velocity()
    }

    /// Applies motor and soft-limit torques (equal and opposite) to the
    /// connected bodies. Limit stiffness/damping are passed by the world.
    pub(crate) fn apply_torques(
        &self,
        a: &mut RigidBody,
        b: &mut RigidBody,
        limit_stiffness: f64,
        limit_damping: f64,
    ) {
        let mut torque = self.motor_torque;
        let rel = b.angle - a.angle - self.reference_angle;
        let rel_vel = b.angular_velocity - a.angular_velocity;
        torque += -self.def.spring_stiffness * rel - self.def.spring_damping * rel_vel;
        if let Some((lo, hi)) = self.def.limits {
            if rel < lo {
                torque += limit_stiffness * (lo - rel) - limit_damping * rel_vel;
            } else if rel > hi {
                torque += limit_stiffness * (hi - rel) - limit_damping * rel_vel;
            }
        }
        // Motor torque acts on b, reaction on a.
        b.apply_torque(torque);
        a.apply_torque(-torque);
    }

    /// One velocity-level sequential-impulse iteration of the
    /// point-to-point constraint, with Baumgarte position feedback.
    pub(crate) fn solve_velocity(
        &self,
        a: &mut RigidBody,
        b: &mut RigidBody,
        baumgarte_over_dt: f64,
    ) {
        let pa = a.world_point(self.def.local_anchor_a);
        let pb = b.world_point(self.def.local_anchor_b);
        let ra = pa - a.position;
        let rb = pb - b.position;

        // Effective mass matrix K of the point constraint.
        let k11 =
            a.inv_mass + b.inv_mass + a.inv_inertia * ra.y * ra.y + b.inv_inertia * rb.y * rb.y;
        let k12 = -a.inv_inertia * ra.x * ra.y - b.inv_inertia * rb.x * rb.y;
        let k22 =
            a.inv_mass + b.inv_mass + a.inv_inertia * ra.x * ra.x + b.inv_inertia * rb.x * rb.x;
        let det = k11 * k22 - k12 * k12;
        if det.abs() < 1e-12 {
            return; // two static bodies — nothing to solve
        }

        // Velocity error plus position (Baumgarte) bias.
        let vel_err = (b.velocity + Vec2::cross_scalar(b.angular_velocity, rb))
            - (a.velocity + Vec2::cross_scalar(a.angular_velocity, ra));
        let c = pb - pa;
        let rhs = -(vel_err + c * baumgarte_over_dt);

        // Solve K·P = rhs (2x2 inverse).
        let p = Vec2::new(
            (k22 * rhs.x - k12 * rhs.y) / det,
            (k11 * rhs.y - k12 * rhs.x) / det,
        );
        a.apply_impulse_at(-p, pa);
        b.apply_impulse_at(p, pb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{BodyDef, Shape};

    fn two_bodies() -> (RigidBody, RigidBody) {
        let a = RigidBody::from_def(&BodyDef::fixed(Shape::Circle { radius: 0.1 }));
        let b = RigidBody::from_def(
            &BodyDef::dynamic(1.0, Shape::Circle { radius: 0.1 }).at(Vec2::new(1.0, 0.0)),
        );
        (a, b)
    }

    fn joint(def: JointDef) -> RevoluteJoint {
        RevoluteJoint::new(def, 0.0)
    }

    #[test]
    fn motor_torque_is_clamped() {
        let (a, b) = two_bodies();
        let _ = (&a, &b);
        let mut j = joint(
            JointDef::new(
                BodyHandle(0),
                BodyHandle(1),
                Vec2::ZERO,
                Vec2::new(-1.0, 0.0),
            )
            .with_motor(10.0),
        );
        j.set_motor_torque(50.0);
        assert_eq!(j.motor_torque(), 10.0);
        j.set_motor_torque(-50.0);
        assert_eq!(j.motor_torque(), -10.0);
    }

    #[test]
    fn motor_applies_equal_and_opposite() {
        let (mut a, mut b) = two_bodies();
        // Make `a` dynamic so we can observe the reaction torque.
        let mut a_dyn = RigidBody::from_def(&BodyDef::dynamic(1.0, Shape::Circle { radius: 0.1 }));
        std::mem::swap(&mut a, &mut a_dyn);
        let mut j = joint(
            JointDef::new(
                BodyHandle(0),
                BodyHandle(1),
                Vec2::ZERO,
                Vec2::new(-1.0, 0.0),
            )
            .with_motor(5.0),
        );
        j.set_motor_torque(3.0);
        j.apply_torques(&mut a, &mut b, 0.0, 0.0);
        assert_eq!(b.torque, 3.0);
        assert_eq!(a.torque, -3.0);
    }

    #[test]
    fn limits_push_back_when_exceeded() {
        let (mut a, mut b) = two_bodies();
        let j = joint(
            JointDef::new(
                BodyHandle(0),
                BodyHandle(1),
                Vec2::ZERO,
                Vec2::new(-1.0, 0.0),
            )
            .with_limits(-0.5, 0.5),
        );
        b.set_state(b.position, 1.0, Vec2::ZERO, 0.0); // rel angle = 1.0 > hi
        j.apply_torques(&mut a, &mut b, 100.0, 1.0);
        assert!(
            b.torque < 0.0,
            "limit torque must push back, got {}",
            b.torque
        );
    }

    #[test]
    fn solve_velocity_zeroes_anchor_separation_velocity() {
        let (mut a, mut b) = two_bodies();
        let j = joint(JointDef::new(
            BodyHandle(0),
            BodyHandle(1),
            Vec2::new(1.0, 0.0),
            Vec2::ZERO,
        ));
        b.set_state(Vec2::new(1.0, 0.0), 0.0, Vec2::new(0.0, 2.0), 0.0);
        for _ in 0..10 {
            j.solve_velocity(&mut a, &mut b, 0.0);
        }
        // Anchor coincides with b's CoM, so b's velocity must vanish.
        assert!(b.velocity().length() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_limits_rejected() {
        let _ = JointDef::new(BodyHandle(0), BodyHandle(1), Vec2::ZERO, Vec2::ZERO)
            .with_limits(1.0, -1.0);
    }

    #[test]
    fn relative_angle_uses_reference() {
        let (a, mut b) = two_bodies();
        let j = RevoluteJoint::new(
            JointDef::new(BodyHandle(0), BodyHandle(1), Vec2::ZERO, Vec2::ZERO),
            0.25,
        );
        b.set_state(b.position, 1.0, Vec2::ZERO, 0.0);
        assert!((j.relative_angle(&a, &b) - 0.75).abs() < 1e-12);
    }
}
