//! Deep Deterministic Policy Gradients in backend arithmetic.

use fixar_fixed::Scalar;
use fixar_nn::{
    Activation, Adam, AdamConfig, Mlp, MlpConfig, MlpGrads, PrecisionPolicy, QatMode, QatRuntime,
};
use fixar_pool::Parallelism;
use fixar_tensor::Matrix;

use crate::error::RlError;
use crate::replay::{ReplayStrategy, Transition, TransitionBatch};

/// Runs `f` over every item on the pool behind `par`, one task per
/// item, collecting the outcomes in **ascending item order** (the
/// deterministic shard-merge order). Falls back to a plain sequential
/// loop when `par` carries no pool or when already on a pool thread.
///
/// Worker panics are contained by the pool and surface as
/// [`RlError::Worker`] instead of aborting the process.
pub(crate) fn pool_shard_map<I, T, F>(
    par: &Parallelism,
    items: &[I],
    f: F,
) -> Result<Vec<T>, RlError>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> Result<T, RlError> + Sync,
{
    if par.shards(items.len()) <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(idx, item)| f(idx, item))
            .collect();
    }
    let pool = par.pool().expect("shards > 1 implies a pool");
    let mut slots: Vec<Option<Result<T, RlError>>> = Vec::new();
    slots.resize_with(items.len(), || None);
    pool.scope(|scope| {
        let f = &f;
        for (slot, (idx, item)) in slots.iter_mut().zip(items.iter().enumerate()) {
            scope.execute(move || {
                *slot = Some(f(idx, item));
            });
        }
    })?;
    slots
        .into_iter()
        .map(|slot| slot.expect("scope joined every task"))
        .collect()
}

/// Algorithm 1's schedule: full-precision calibration for `delay`
/// training timesteps, then quantized activations.
///
/// The format each activation point freezes to is governed per network
/// by a [`PrecisionPolicy`]: `actor_policy` drives the actor and
/// actor-target runtimes, `critic_policy` the critic side. Leaving a
/// policy `None` falls back to [`PrecisionPolicy::Uniform`] at `bits` —
/// bit-for-bit the legacy global-bits behaviour. Split policies are the
/// mixed-precision serving story: an 8-bit actor on the request path
/// with 16-bit critics for training.
#[derive(Debug, Clone, PartialEq)]
pub struct QatSchedule {
    /// Quantization delay `d` in timesteps.
    pub delay: u64,
    /// Post-delay activation bit width `n` (paper: 16) — the fallback
    /// when a per-network policy is not set.
    pub bits: u32,
    /// Calibration headroom: frozen ranges widen by this factor away
    /// from zero so moderate post-delay activation drift quantizes
    /// instead of clamping (see `QatRuntime::with_headroom`). Default 1.5.
    pub headroom: f64,
    /// Precision policy for the actor and actor-target runtimes
    /// (`None` = uniform at `bits`).
    pub actor_policy: Option<PrecisionPolicy>,
    /// Precision policy for the critic and critic-target runtimes
    /// (`None` = uniform at `bits`).
    pub critic_policy: Option<PrecisionPolicy>,
}

impl QatSchedule {
    /// The legacy uniform schedule: every network quantizes to `bits`
    /// bits after `delay` steps, with the default 1.5× headroom.
    pub fn uniform(delay: u64, bits: u32) -> Self {
        Self {
            delay,
            bits,
            headroom: 1.5,
            actor_policy: None,
            critic_policy: None,
        }
    }

    /// Builder-style actor-side precision policy.
    pub fn with_actor_policy(mut self, policy: PrecisionPolicy) -> Self {
        self.actor_policy = Some(policy);
        self
    }

    /// Builder-style critic-side precision policy.
    pub fn with_critic_policy(mut self, policy: PrecisionPolicy) -> Self {
        self.critic_policy = Some(policy);
        self
    }

    /// The effective actor-side policy (fallback: uniform at `bits`).
    pub fn actor_policy(&self) -> PrecisionPolicy {
        self.actor_policy
            .clone()
            .unwrap_or(PrecisionPolicy::Uniform { bits: self.bits })
    }

    /// The effective critic-side policy (fallback: uniform at `bits`).
    pub fn critic_policy(&self) -> PrecisionPolicy {
        self.critic_policy
            .clone()
            .unwrap_or(PrecisionPolicy::Uniform { bits: self.bits })
    }
}

/// DDPG hyperparameters (defaults follow the paper where stated, and
/// Lillicrap et al. 2015 otherwise).
#[derive(Debug, Clone, PartialEq)]
pub struct DdpgConfig {
    /// Hidden-layer widths (paper: 400 and 300).
    pub hidden: (usize, usize),
    /// Discount factor γ.
    pub gamma: f64,
    /// Target-network soft-update rate τ.
    pub tau: f64,
    /// Actor Adam learning rate (paper: 1e-4).
    pub actor_lr: f64,
    /// Critic Adam learning rate (paper: 1e-4).
    pub critic_lr: f64,
    /// Adam epsilon (shared across backends; see `fixar_nn::AdamConfig`).
    pub adam_eps: f64,
    /// Training batch size `B` (paper sweeps 64–512).
    pub batch_size: usize,
    /// Replay buffer capacity.
    pub replay_capacity: usize,
    /// Replay sampling strategy (uniform — the paper's protocol and the
    /// bit-exact legacy behaviour — or proportional prioritized replay;
    /// see [`ReplayStrategy`]).
    pub replay: ReplayStrategy,
    /// Uniform-random action steps before training starts.
    pub warmup_steps: u64,
    /// Exploration noise standard deviation.
    pub exploration_sigma: f64,
    /// Quantization-aware-training schedule; `None` disables QAT (the
    /// float32/fixed32/fixed16 study arms).
    pub qat: Option<QatSchedule>,
    /// Seed for weight init and all agent-side randomness.
    pub seed: u64,
    /// Worker threads for kernel-level parallel training (the software
    /// twin of the AAP core count): the batched kernels of
    /// [`Ddpg::train_minibatch`] shard across a persistent pool,
    /// bit-identical to the sequential path at every count. `1` keeps
    /// the strictly sequential reference path. The `FIXAR_WORKERS`
    /// environment variable overrides this at agent construction.
    pub parallel_workers: usize,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        Self {
            hidden: (400, 300),
            gamma: 0.99,
            tau: 0.005,
            actor_lr: 1e-4,
            critic_lr: 1e-4,
            adam_eps: 1e-4,
            batch_size: 64,
            replay_capacity: 100_000,
            replay: ReplayStrategy::Uniform,
            warmup_steps: 1_000,
            exploration_sigma: 0.1,
            qat: None,
            seed: 0,
            parallel_workers: 1,
        }
    }
}

impl DdpgConfig {
    /// A deliberately tiny configuration so debug-mode tests finish in
    /// seconds: 16×12 hidden units, batch 16, short warmup.
    pub fn small_test() -> Self {
        Self {
            hidden: (16, 12),
            batch_size: 16,
            replay_capacity: 10_000,
            warmup_steps: 64,
            ..Self::default()
        }
    }

    /// Builder-style QAT schedule (with the default 1.5× calibration
    /// headroom): uniform `bits`-bit quantization, the legacy path.
    pub fn with_qat(mut self, delay: u64, bits: u32) -> Self {
        self.qat = Some(QatSchedule::uniform(delay, bits));
        self
    }

    /// Builder-style QAT schedule with explicit per-network precision
    /// policies — the redesigned entry point. `bits` on the stored
    /// schedule records each policy's nominal width for diagnostics.
    pub fn with_qat_policies(
        mut self,
        delay: u64,
        actor: PrecisionPolicy,
        critic: PrecisionPolicy,
    ) -> Self {
        let bits = actor.nominal_bits().max(critic.nominal_bits());
        self.qat = Some(
            QatSchedule::uniform(delay, bits)
                .with_actor_policy(actor)
                .with_critic_policy(critic),
        );
        self
    }

    /// Builder-style mixed-precision QAT: `actor_bits`-bit actor (and
    /// actor target) with `critic_bits`-bit critics — e.g. `(d, 8, 16)`
    /// for 8-bit request-path serving and 16-bit training.
    pub fn with_mixed_precision_qat(self, delay: u64, actor_bits: u32, critic_bits: u32) -> Self {
        self.with_qat_policies(
            delay,
            PrecisionPolicy::Uniform { bits: actor_bits },
            PrecisionPolicy::Uniform { bits: critic_bits },
        )
    }

    /// Builder-style batch size.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch;
        self
    }

    /// Builder-style seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style replay strategy (see [`ReplayStrategy`] for the
    /// determinism contract of each arm).
    pub fn with_replay(mut self, replay: ReplayStrategy) -> Self {
        self.replay = replay;
        self
    }

    fn validate(&self) -> Result<(), RlError> {
        if self.batch_size == 0 {
            return Err(RlError::InvalidConfig("batch_size must be positive".into()));
        }
        if self.parallel_workers == 0 {
            return Err(RlError::InvalidConfig(
                "parallel_workers must be at least 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.gamma) {
            return Err(RlError::InvalidConfig("gamma must be in [0, 1]".into()));
        }
        if !(0.0..=1.0).contains(&self.tau) {
            return Err(RlError::InvalidConfig("tau must be in [0, 1]".into()));
        }
        if let Some(q) = &self.qat {
            if q.bits == 0 || q.bits > 31 {
                return Err(RlError::InvalidConfig(format!(
                    "qat bits must be 1..=31, got {}",
                    q.bits
                )));
            }
        }
        if let ReplayStrategy::Prioritized(p) = self.replay {
            p.validate().map_err(RlError::InvalidConfig)?;
        }
        Ok(())
    }
}

/// Diagnostics from one training batch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrainMetrics {
    /// Critic half-MSE against the TD targets.
    pub critic_loss: f64,
    /// Mean predicted Q over the batch.
    pub mean_q: f64,
}

/// The DDPG agent: actor/critic with target networks, fixed-point-capable
/// optimizers, and the QAT runtimes of Algorithm 1.
///
/// The generic parameter selects the arithmetic — `f32` for the CPU-GPU
/// baseline, `Fx32`/`Fx16` for the FIXAR fixed-point modes.
#[derive(Debug, Clone)]
pub struct Ddpg<S: Scalar> {
    actor: Mlp<S>,
    critic: Mlp<S>,
    actor_target: Mlp<S>,
    critic_target: Mlp<S>,
    actor_opt: Adam<S>,
    critic_opt: Adam<S>,
    actor_qat: QatRuntime,
    critic_qat: QatRuntime,
    actor_target_qat: QatRuntime,
    critic_target_qat: QatRuntime,
    actor_grads: MlpGrads<S>,
    critic_grads: MlpGrads<S>,
    critic_scratch: MlpGrads<S>,
    cfg: DdpgConfig,
    par: Parallelism,
    state_dim: usize,
    action_dim: usize,
    train_steps: u64,
    qat_frozen: bool,
}

impl<S: Scalar> Ddpg<S> {
    /// Builds the agent for the given observation/action dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] for malformed configurations or
    /// zero dimensions.
    pub fn new(state_dim: usize, action_dim: usize, cfg: DdpgConfig) -> Result<Self, RlError> {
        cfg.validate()?;
        if state_dim == 0 || action_dim == 0 {
            return Err(RlError::InvalidConfig(
                "state and action dimensions must be positive".into(),
            ));
        }
        let (h1, h2) = cfg.hidden;
        let actor_cfg = MlpConfig::new(vec![state_dim, h1, h2, action_dim])
            .with_output_activation(Activation::Tanh);
        let critic_cfg = MlpConfig::new(vec![state_dim + action_dim, h1, h2, 1]);
        let actor = Mlp::new_random(&actor_cfg, cfg.seed)?;
        let critic = Mlp::new_random(&critic_cfg, cfg.seed.wrapping_add(1))?;
        let actor_target = actor.clone();
        let critic_target = critic.clone();
        let actor_opt = Adam::new(
            &actor,
            AdamConfig {
                lr: cfg.actor_lr,
                eps: cfg.adam_eps,
                ..AdamConfig::default()
            },
        );
        let critic_opt = Adam::new(
            &critic,
            AdamConfig {
                lr: cfg.critic_lr,
                eps: cfg.adam_eps,
                ..AdamConfig::default()
            },
        );
        let points = actor.num_layers() + 1;
        let cpoints = critic.num_layers() + 1;
        let (actor_qat, critic_qat, actor_target_qat, critic_target_qat) = match &cfg.qat {
            Some(q) => {
                let make = |n: usize, policy: PrecisionPolicy| -> Result<QatRuntime, RlError> {
                    // The final output is a regression result (Q-value)
                    // or the action handed to the host — not a hidden
                    // activation; clamping it to a frozen range would
                    // strangle TD learning as Q magnitudes drift.
                    QatRuntime::builder(n)
                        .policy(policy)
                        .headroom(q.headroom)
                        .exclude_point(n - 1)
                        .build()
                        .map_err(fixar_nn::NnError::Precision)
                        .map_err(RlError::from)
                };
                (
                    make(points, q.actor_policy())?,
                    make(cpoints, q.critic_policy())?,
                    make(points, q.actor_policy())?,
                    make(cpoints, q.critic_policy())?,
                )
            }
            None => (
                QatRuntime::disabled(points),
                QatRuntime::disabled(cpoints),
                QatRuntime::disabled(points),
                QatRuntime::disabled(cpoints),
            ),
        };
        let actor_grads = MlpGrads::zeros_like(&actor);
        let critic_grads = MlpGrads::zeros_like(&critic);
        let critic_scratch = critic_grads.clone();
        let par = Parallelism::from_env_or(cfg.parallel_workers);
        Ok(Self {
            actor,
            critic,
            actor_target,
            critic_target,
            actor_opt,
            critic_opt,
            actor_qat,
            critic_qat,
            actor_target_qat,
            critic_target_qat,
            actor_grads,
            critic_grads,
            critic_scratch,
            cfg,
            par,
            state_dim,
            action_dim,
            train_steps: 0,
            qat_frozen: false,
        })
    }

    /// The parallelism handle driving the batched kernels (worker count
    /// resolved from the config and the `FIXAR_WORKERS` override).
    pub fn parallelism(&self) -> &Parallelism {
        &self.par
    }

    /// Replaces the parallelism handle — used by benches and the
    /// worker-sweep property tests to pin an explicit worker count
    /// regardless of the environment. Any count yields bit-identical
    /// training results; only throughput changes.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    /// Observation dimension.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Action dimension.
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// Configuration the agent was built with.
    pub fn config(&self) -> &DdpgConfig {
        &self.cfg
    }

    /// The online actor network (read access for the accelerator loader).
    pub fn actor(&self) -> &Mlp<S> {
        &self.actor
    }

    /// The online critic network.
    pub fn critic(&self) -> &Mlp<S> {
        &self.critic
    }

    /// Completed training batches.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// `true` once the QAT schedule has switched to quantized activations.
    pub fn qat_frozen(&self) -> bool {
        self.qat_frozen
    }

    /// Current QAT phase of the actor runtime (diagnostics).
    pub fn qat_mode(&self) -> QatMode {
        self.actor_qat.mode()
    }

    /// The actor's QAT runtime, for snapshot freezing.
    pub(crate) fn actor_qat_runtime(&self) -> &QatRuntime {
        &self.actor_qat
    }

    /// Advances the QAT schedule: once `global_step` reaches the delay,
    /// every runtime whose range monitors have calibration data freezes
    /// into 16-bit quantizers. Runtimes that have not executed yet (e.g.
    /// the critic while the delay falls inside the exploration warmup)
    /// freeze on the first later step at which they have data. Returns
    /// `true` on the step the switch completes for all four runtimes.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::Nn`]-wrapped calibration errors if a runtime
    /// with observations fails to build any quantizer (degenerate
    /// all-zero ranges) — a protocol bug, not a timing artifact.
    pub fn on_timestep(&mut self, global_step: u64) -> Result<bool, RlError> {
        let Some(q) = &self.cfg.qat else {
            return Ok(false);
        };
        if self.qat_frozen || global_step < q.delay {
            return Ok(false);
        }
        let mut all_frozen = true;
        for rt in [
            &mut self.actor_qat,
            &mut self.critic_qat,
            &mut self.actor_target_qat,
            &mut self.critic_target_qat,
        ] {
            if rt.mode() == QatMode::Quantize {
                continue;
            }
            if rt.has_observations() {
                rt.freeze_at_step(global_step)
                    .map_err(fixar_nn::NnError::Quant)?;
            } else {
                all_frozen = false;
            }
        }
        self.qat_frozen = all_frozen;
        Ok(all_frozen)
    }

    /// Actor inference: `state → action` in the backend arithmetic,
    /// returned as `f64` for the environment. During QAT calibration this
    /// also feeds the activation range monitors.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::Nn`] on dimension mismatch.
    pub fn act(&mut self, state: &[f64]) -> Result<Vec<f64>, RlError> {
        let s: Vec<S> = state.iter().map(|&v| S::from_f64(v)).collect();
        let trace = self.actor.forward_qat(&s, &mut self.actor_qat)?;
        Ok(trace.output.iter().map(|v| v.to_f64()).collect())
    }

    /// Batched actor inference for a fleet of environments: one
    /// observation per row of `states`, one batched QAT-aware forward
    /// pass over the worker pool instead of `states.rows()` per-sample
    /// `gemv` passes — the rollout hot path of
    /// [`VecTrainer`](crate::VecTrainer) and the software twin of
    /// `FixarAccelerator::actor_inference_batch`.
    ///
    /// Row `i` of the result is **bit-identical** to
    /// [`Ddpg::act`]`(states.row(i))` (the batched kernels preserve
    /// per-element reduction order, and QAT range monitors are
    /// order-independent), so serving a fleet never perturbs any single
    /// env's action stream. During QAT calibration the pass feeds the
    /// activation range monitors, exactly like [`Ddpg::act`].
    ///
    /// # Errors
    ///
    /// Returns [`RlError::Nn`] if `states.cols()` differs from the
    /// observation dimension.
    pub fn select_actions_batch(&mut self, states: &Matrix<f64>) -> Result<Matrix<f64>, RlError> {
        let s: Matrix<S> = states.cast();
        let out = self
            .actor
            .forward_batch_qat_par(&s, &mut self.actor_qat, &self.par)?
            .output;
        Ok(Matrix::from_fn(out.rows(), out.cols(), |r, c| {
            out[(r, c)].to_f64()
        }))
    }

    /// One training update with the whole minibatch flowing through the
    /// stack as **one matrix per layer** — the software image of the
    /// accelerator's intra-batch parallelism, and the hot path the
    /// [`Trainer`](crate::Trainer) drives.
    ///
    /// The update follows the paper's Fig. 3 sequence exactly like
    /// [`Ddpg::train_batch`]: critic BP/WU from TD targets, then actor
    /// BP/WU led by the critic's action gradient, then target soft
    /// updates. Per-element kernel reduction order and the
    /// ascending-sample gradient accumulation order are preserved (see
    /// the `fixar-tensor` crate docs), so the resulting weights are
    /// **bit-identical** to the per-sample path on the same batch in
    /// every backend, including `Fx32` — property-tested in
    /// `tests/props.rs` and `tests/workspace_props.rs`.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::ReplayUnderflow`] for an empty batch and
    /// [`RlError::Nn`] on shape mismatches.
    pub fn train_minibatch(&mut self, batch: &TransitionBatch) -> Result<TrainMetrics, RlError> {
        self.train_minibatch_weighted(batch, None).map(|(m, _)| m)
    }

    /// [`Ddpg::train_minibatch`] with optional per-sample importance
    /// weights — the prioritized-replay entry point. `weights[i]`
    /// scales sample `i`'s contribution to the critic regression (both
    /// the loss and the TD-error gradient); the actor ascent and the
    /// target updates are unweighted, per the usual prioritized-DDPG
    /// formulation. Returns the metrics **and the per-sample TD errors
    /// `q_i − y_i`** the caller feeds back into the priority structure.
    ///
    /// With `weights == None` this is *exactly* [`Ddpg::train_minibatch`]
    /// (the unweighted expressions are untouched, not multiplied by a
    /// `1.0` that could re-round), so uniform-strategy training stays on
    /// the bit-exact legacy path.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::ReplayUnderflow`] for an empty batch,
    /// [`RlError::InvalidConfig`] if `weights` disagrees with the batch
    /// length, and [`RlError::Nn`] on shape mismatches.
    pub fn train_minibatch_weighted(
        &mut self,
        batch: &TransitionBatch,
        weights: Option<&[f64]>,
    ) -> Result<(TrainMetrics, Vec<f64>), RlError> {
        if batch.is_empty() {
            return Err(RlError::ReplayUnderflow {
                have: 0,
                need: self.cfg.batch_size,
            });
        }
        if let Some(w) = weights {
            if w.len() != batch.len() {
                return Err(RlError::InvalidConfig(format!(
                    "importance weights ({}) disagree with batch ({})",
                    w.len(),
                    batch.len()
                )));
            }
        }
        let b = batch.len();
        let scale = 1.0 / b as f64;
        let gamma = S::from_f64(self.cfg.gamma);

        // Phase 1 — one fused scope for the two *independent* forward
        // passes of the update: the target actor on s' (start of the TD
        // target chain) and the online critic on (s, a) (the regression
        // forward). The critic-target pass cannot join them — it
        // consumes the target actor's output — so it forms phase 2.
        // Fusing halves the joins of the pre-update forwards while
        // keeping every result bit-identical (disjoint outputs,
        // unchanged per-element chains, separate QAT runtimes).
        self.critic_grads.reset();
        let s_next: Matrix<S> = batch.next_states().cast();
        let states: Matrix<S> = batch.states().cast();
        let actions: Matrix<S> = batch.actions().cast();
        let critic_in = states.hcat(&actions).map_err(fixar_nn::NnError::Shape)?;
        let par = self.par.clone();
        let mut fused = fixar_nn::forward_batch_qat_fused(
            &mut [
                fixar_nn::FusedForward {
                    mlp: &self.actor_target,
                    input: &s_next,
                    qat: &mut self.actor_target_qat,
                },
                fixar_nn::FusedForward {
                    mlp: &self.critic,
                    input: &critic_in,
                    qat: &mut self.critic_qat,
                },
            ],
            &par,
        )?;
        let trace = fused.pop().expect("critic pass");
        let a_next = fused.pop().expect("target actor pass").output;

        // Phase 2 — the dependent tail of the TD-target chain.
        let target_in = s_next.hcat(&a_next).map_err(fixar_nn::NnError::Shape)?;
        let q_next = self
            .critic_target
            .forward_batch_qat_par(&target_in, &mut self.critic_target_qat, &self.par)?
            .output;
        let targets: Vec<S> = (0..b)
            .map(|i| {
                let bootstrap = if batch.terminals()[i] {
                    S::zero()
                } else {
                    gamma * q_next[(i, 0)]
                };
                S::from_f64(batch.rewards()[i]) + bootstrap
            })
            .collect();

        // Critic regression toward the targets: the fused forward from
        // phase 1, one batched backward (whose per-layer gradient outer
        // product and error MVM share a fused scope), gradients reduced
        // in ascending sample order.
        let mut critic_loss = 0.0;
        let mut q_sum = 0.0;
        let mut td_errors = Vec::with_capacity(b);
        let mut dl = Matrix::zeros(b, 1);
        for (i, &y) in targets.iter().enumerate() {
            let q = trace.output[(i, 0)];
            q_sum += q.to_f64();
            let td = q.to_f64() - y.to_f64();
            td_errors.push(td);
            match weights {
                None => {
                    critic_loss += 0.5 * td * td * scale;
                    dl[(i, 0)] = (q - y) * S::from_f64(scale);
                }
                Some(w) => {
                    critic_loss += 0.5 * w[i] * td * td * scale;
                    dl[(i, 0)] = (q - y) * S::from_f64(w[i] * scale);
                }
            }
        }
        self.critic
            .backward_batch_par(&trace, &dl, &mut self.critic_grads, &self.par)?;
        self.critic_opt.step(&mut self.critic, &self.critic_grads)?;

        // Actor ascent on Q through the batched critic input gradient.
        self.actor_grads.reset();
        self.critic_scratch.reset();
        let atrace = self
            .actor
            .forward_batch_qat_par(&states, &mut self.actor_qat, &self.par)?;
        let policy_in = states
            .hcat(&atrace.output)
            .map_err(fixar_nn::NnError::Shape)?;
        let ctrace =
            self.critic
                .forward_batch_qat_par(&policy_in, &mut self.critic_qat, &self.par)?;
        let minus_scale = Matrix::from_fn(b, 1, |_, _| S::from_f64(-scale));
        let dq_dinput = self.critic.backward_batch_par(
            &ctrace,
            &minus_scale,
            &mut self.critic_scratch,
            &self.par,
        )?;
        let dq_da = dq_dinput.columns(self.state_dim, self.state_dim + self.action_dim);
        self.actor
            .backward_batch_par(&atrace, &dq_da, &mut self.actor_grads, &self.par)?;
        self.actor_opt.step(&mut self.actor, &self.actor_grads)?;

        // Target soft updates.
        self.actor_target
            .soft_update_from(&self.actor, self.cfg.tau)?;
        self.critic_target
            .soft_update_from(&self.critic, self.cfg.tau)?;

        self.train_steps += 1;
        Ok((
            TrainMetrics {
                critic_loss,
                mean_q: q_sum * scale,
            },
            td_errors,
        ))
    }

    /// One training update from a sampled batch, processed **one sample
    /// at a time** through the vector kernels — the bit-exactness
    /// reference for [`Ddpg::train_minibatch`] and the building block of
    /// the sharded [`Ddpg::train_batch_parallel`] path.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::ReplayUnderflow`] for an empty batch and
    /// [`RlError::Nn`] on shape mismatches.
    pub fn train_batch(&mut self, batch: &[&Transition]) -> Result<TrainMetrics, RlError> {
        if batch.is_empty() {
            return Err(RlError::ReplayUnderflow {
                have: 0,
                need: self.cfg.batch_size,
            });
        }
        let b = batch.len();
        let scale = 1.0 / b as f64;
        let gamma = S::from_f64(self.cfg.gamma);

        // TD targets from the target networks (no gradients).
        let mut targets = Vec::with_capacity(b);
        for t in batch {
            let s_next: Vec<S> = t.next_state.iter().map(|&v| S::from_f64(v)).collect();
            let a_next = self
                .actor_target
                .forward_qat(&s_next, &mut self.actor_target_qat)?
                .output;
            let mut critic_in = s_next;
            critic_in.extend_from_slice(&a_next);
            let q_next = self
                .critic_target
                .forward_qat(&critic_in, &mut self.critic_target_qat)?
                .output[0];
            let bootstrap = if t.terminal {
                S::zero()
            } else {
                gamma * q_next
            };
            targets.push(S::from_f64(t.reward) + bootstrap);
        }

        // Critic regression toward the targets.
        self.critic_grads.reset();
        let mut critic_loss = 0.0;
        let mut q_sum = 0.0;
        for (t, &y) in batch.iter().zip(&targets) {
            let mut critic_in: Vec<S> = t.state.iter().map(|&v| S::from_f64(v)).collect();
            critic_in.extend(t.action.iter().map(|&v| S::from_f64(v)));
            let trace = self.critic.forward_qat(&critic_in, &mut self.critic_qat)?;
            let q = trace.output[0];
            q_sum += q.to_f64();
            let td = q.to_f64() - y.to_f64();
            critic_loss += 0.5 * td * td * scale;
            let dl = [(q - y) * S::from_f64(scale)];
            self.critic.backward(&trace, &dl, &mut self.critic_grads)?;
        }
        self.critic_opt.step(&mut self.critic, &self.critic_grads)?;

        // Actor ascent on Q: the critic's input gradient w.r.t. the action
        // "leads the BP and WU of the actor network".
        self.actor_grads.reset();
        self.critic_scratch.reset();
        let minus_scale = [S::from_f64(-scale)];
        for t in batch {
            let s: Vec<S> = t.state.iter().map(|&v| S::from_f64(v)).collect();
            let atrace = self.actor.forward_qat(&s, &mut self.actor_qat)?;
            let mut critic_in = s;
            critic_in.extend_from_slice(&atrace.output);
            let ctrace = self.critic.forward_qat(&critic_in, &mut self.critic_qat)?;
            let dq_dinput =
                self.critic
                    .backward(&ctrace, &minus_scale, &mut self.critic_scratch)?;
            let dq_da = &dq_dinput[self.state_dim..];
            self.actor.backward(&atrace, dq_da, &mut self.actor_grads)?;
        }
        self.actor_opt.step(&mut self.actor, &self.actor_grads)?;

        // Target soft updates.
        self.actor_target
            .soft_update_from(&self.actor, self.cfg.tau)?;
        self.critic_target
            .soft_update_from(&self.critic, self.cfg.tau)?;

        self.train_steps += 1;
        Ok(TrainMetrics {
            critic_loss,
            mean_q: q_sum * scale,
        })
    }

    /// Intra-batch-parallel training update over the **persistent
    /// worker pool** — the software twin of the accelerator's per-core
    /// gradient memory: the batch splits into `workers` contiguous
    /// shards (one per AAP core), each shard accumulates its own
    /// gradients through the per-sample kernels, and the partial
    /// gradients merge in **ascending shard order** into the shared
    /// buffer. With `workers == 1` this is bit-identical to
    /// [`Ddpg::train_batch`]; with more workers the result is
    /// deterministic and independent of thread scheduling, differing
    /// from the sequential result only in the (saturating) gradient
    /// accumulation order — exactly as the hardware differs.
    ///
    /// Contrast [`Ddpg::train_minibatch`], whose kernel-level sharding
    /// is bit-identical to sequential at *every* worker count — that is
    /// the hot path; this method remains as the shard-merge model of
    /// the hardware's gradient-memory reduction.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ddpg::train_batch`], plus
    /// [`RlError::Worker`] if a pool task panics (contained by the
    /// pool: the process no longer aborts and the pool stays usable).
    pub fn train_batch_parallel(
        &mut self,
        batch: &[&Transition],
        workers: usize,
    ) -> Result<TrainMetrics, RlError> {
        if workers <= 1 || batch.len() < 2 {
            return self.train_batch(batch);
        }
        let b = batch.len();
        let scale = 1.0 / b as f64;
        let gamma = S::from_f64(self.cfg.gamma);
        let shard_len = b.div_ceil(workers.min(b));
        let shards: Vec<&[&Transition]> = batch.chunks(shard_len).collect();
        let par = Parallelism::with_workers(workers);

        // Phase A — TD targets and critic gradients, one task per shard.
        struct CriticShard<S: Scalar> {
            grads: MlpGrads<S>,
            actor_t_qat: QatRuntime,
            critic_t_qat: QatRuntime,
            critic_qat: QatRuntime,
            loss: f64,
            q_sum: f64,
        }
        let actor_target = &self.actor_target;
        let critic_target = &self.critic_target;
        let critic = &self.critic;
        let state_dim = self.state_dim;
        let base_actor_t_qat = &self.actor_target_qat;
        let base_critic_t_qat = &self.critic_target_qat;
        let base_critic_qat = &self.critic_qat;

        let shard_results: Vec<CriticShard<S>> = pool_shard_map(
            &par,
            &shards,
            |_, shard| -> Result<CriticShard<S>, RlError> {
                let mut actor_t_qat = base_actor_t_qat.clone();
                let mut critic_t_qat = base_critic_t_qat.clone();
                let mut critic_qat = base_critic_qat.clone();
                let mut grads = MlpGrads::zeros_like(critic);
                let mut loss = 0.0;
                let mut q_sum = 0.0;
                for t in *shard {
                    let s_next: Vec<S> = t.next_state.iter().map(|&v| S::from_f64(v)).collect();
                    let a_next = actor_target.forward_qat(&s_next, &mut actor_t_qat)?.output;
                    let mut critic_in = s_next;
                    critic_in.extend_from_slice(&a_next);
                    let q_next = critic_target
                        .forward_qat(&critic_in, &mut critic_t_qat)?
                        .output[0];
                    let bootstrap = if t.terminal {
                        S::zero()
                    } else {
                        gamma * q_next
                    };
                    let y = S::from_f64(t.reward) + bootstrap;

                    let mut input: Vec<S> = t.state.iter().map(|&v| S::from_f64(v)).collect();
                    input.extend(t.action.iter().map(|&v| S::from_f64(v)));
                    let trace = critic.forward_qat(&input, &mut critic_qat)?;
                    let q = trace.output[0];
                    q_sum += q.to_f64();
                    let td = q.to_f64() - y.to_f64();
                    loss += 0.5 * td * td * scale;
                    let dl = [(q - y) * S::from_f64(scale)];
                    critic.backward(&trace, &dl, &mut grads)?;
                }
                Ok(CriticShard {
                    grads,
                    actor_t_qat,
                    critic_t_qat,
                    critic_qat,
                    loss,
                    q_sum,
                })
            },
        )?;

        self.critic_grads.reset();
        let mut critic_loss = 0.0;
        let mut q_sum = 0.0;
        // Ascending-shard merge into the shared gradient buffer.
        for shard in shard_results {
            self.critic_grads.accumulate(&shard.grads);
            self.actor_target_qat
                .merge_from(&shard.actor_t_qat)
                .map_err(fixar_nn::NnError::Precision)?;
            self.critic_target_qat
                .merge_from(&shard.critic_t_qat)
                .map_err(fixar_nn::NnError::Precision)?;
            self.critic_qat
                .merge_from(&shard.critic_qat)
                .map_err(fixar_nn::NnError::Precision)?;
            critic_loss += shard.loss;
            q_sum += shard.q_sum;
        }
        self.critic_opt.step(&mut self.critic, &self.critic_grads)?;

        // Phase B — actor gradients against the freshly updated critic.
        struct ActorShard<S: Scalar> {
            grads: MlpGrads<S>,
            actor_qat: QatRuntime,
            critic_qat: QatRuntime,
        }
        let actor = &self.actor;
        let critic = &self.critic;
        let base_actor_qat = &self.actor_qat;
        let base_critic_qat = &self.critic_qat;
        let minus_scale = [S::from_f64(-scale)];

        let shard_results: Vec<ActorShard<S>> = pool_shard_map(
            &par,
            &shards,
            |_, shard| -> Result<ActorShard<S>, RlError> {
                let mut actor_qat = base_actor_qat.clone();
                let mut critic_qat = base_critic_qat.clone();
                let mut grads = MlpGrads::zeros_like(actor);
                let mut scratch = MlpGrads::zeros_like(critic);
                for t in *shard {
                    let s: Vec<S> = t.state.iter().map(|&v| S::from_f64(v)).collect();
                    let atrace = actor.forward_qat(&s, &mut actor_qat)?;
                    let mut critic_in = s;
                    critic_in.extend_from_slice(&atrace.output);
                    let ctrace = critic.forward_qat(&critic_in, &mut critic_qat)?;
                    let dq_dinput = critic.backward(&ctrace, &minus_scale, &mut scratch)?;
                    let dq_da = &dq_dinput[state_dim..];
                    actor.backward(&atrace, dq_da, &mut grads)?;
                }
                Ok(ActorShard {
                    grads,
                    actor_qat,
                    critic_qat,
                })
            },
        )?;

        self.actor_grads.reset();
        for shard in shard_results {
            self.actor_grads.accumulate(&shard.grads);
            self.actor_qat
                .merge_from(&shard.actor_qat)
                .map_err(fixar_nn::NnError::Precision)?;
            self.critic_qat
                .merge_from(&shard.critic_qat)
                .map_err(fixar_nn::NnError::Precision)?;
        }
        self.actor_opt.step(&mut self.actor, &self.actor_grads)?;

        self.actor_target
            .soft_update_from(&self.actor, self.cfg.tau)?;
        self.critic_target
            .soft_update_from(&self.critic, self.cfg.tau)?;

        self.train_steps += 1;
        Ok(TrainMetrics {
            critic_loss,
            mean_q: q_sum * scale,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_fixed::Fx32;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_batch(rng: &mut StdRng, n: usize) -> Vec<Transition> {
        (0..n)
            .map(|_| Transition {
                state: vec![rng.gen_range(-1.0..1.0); 3],
                action: vec![rng.gen_range(-1.0..1.0)],
                reward: rng.gen_range(-1.0..1.0),
                next_state: vec![rng.gen_range(-1.0..1.0); 3],
                terminal: rng.gen_bool(0.1),
            })
            .collect()
    }

    #[test]
    fn construction_validates() {
        let mut bad = DdpgConfig::small_test();
        bad.batch_size = 0;
        assert!(Ddpg::<f64>::new(3, 1, bad).is_err());
        assert!(Ddpg::<f64>::new(0, 1, DdpgConfig::small_test()).is_err());
        let mut bad_qat = DdpgConfig::small_test();
        bad_qat.qat = Some(QatSchedule::uniform(10, 0));
        assert!(Ddpg::<f64>::new(3, 1, bad_qat).is_err());
    }

    #[test]
    fn uniform_policy_schedule_is_bit_identical_to_legacy() {
        // A Uniform precision policy is the redesigned spelling of the
        // legacy global-bits schedule: same runtimes, same weights.
        let mut rng = StdRng::seed_from_u64(33);
        let data = toy_batch(&mut rng, 16);
        let refs: Vec<&Transition> = data.iter().collect();
        let legacy_cfg = DdpgConfig::small_test().with_qat(1, 16);
        let policy_cfg = DdpgConfig::small_test().with_qat_policies(
            1,
            PrecisionPolicy::Uniform { bits: 16 },
            PrecisionPolicy::Uniform { bits: 16 },
        );
        let mut legacy = Ddpg::<Fx32>::new(3, 1, legacy_cfg).unwrap();
        let mut policy = Ddpg::<Fx32>::new(3, 1, policy_cfg).unwrap();
        for agent in [&mut legacy, &mut policy] {
            agent.act(&[0.1, 0.2, 0.3]).unwrap();
            agent.train_batch(&refs).unwrap();
            assert!(agent.on_timestep(2).unwrap());
            agent.train_batch(&refs).unwrap();
        }
        assert_eq!(legacy.actor(), policy.actor());
        assert_eq!(legacy.critic(), policy.critic());
    }

    #[test]
    fn mixed_precision_gives_actor_and_critic_different_widths() {
        let cfg = DdpgConfig::small_test().with_mixed_precision_qat(1, 8, 16);
        let mut agent = Ddpg::<Fx32>::new(3, 1, cfg).unwrap();
        agent.act(&[0.1, 0.2, 0.3]).unwrap();
        let mut rng = StdRng::seed_from_u64(34);
        let data = toy_batch(&mut rng, 8);
        let refs: Vec<&Transition> = data.iter().collect();
        agent.train_batch(&refs).unwrap();
        assert!(agent.on_timestep(2).unwrap());
        let actor_fmt = agent.actor_qat_runtime().point_format(0).unwrap();
        assert_eq!(actor_fmt.total_bits(), 8);
        let critic_fmt = agent.critic_qat.point_format(0).unwrap();
        assert_eq!(critic_fmt.total_bits(), 16);
    }

    #[test]
    fn act_produces_bounded_actions() {
        let mut agent = Ddpg::<f64>::new(3, 2, DdpgConfig::small_test()).unwrap();
        let a = agent.act(&[0.5, -0.5, 1.0]).unwrap();
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn train_batch_reduces_critic_loss_on_fixed_data() {
        let mut rng = StdRng::seed_from_u64(0);
        let data = toy_batch(&mut rng, 16);
        let refs: Vec<&Transition> = data.iter().collect();
        let mut agent = Ddpg::<f64>::new(3, 1, DdpgConfig::small_test()).unwrap();
        let first = agent.train_batch(&refs).unwrap();
        let mut last = first;
        for _ in 0..200 {
            last = agent.train_batch(&refs).unwrap();
        }
        assert!(
            last.critic_loss < first.critic_loss,
            "critic loss should fall: {} -> {}",
            first.critic_loss,
            last.critic_loss
        );
        assert_eq!(agent.train_steps(), 201);
    }

    #[test]
    fn fixed32_training_also_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = toy_batch(&mut rng, 16);
        let refs: Vec<&Transition> = data.iter().collect();
        let mut cfg = DdpgConfig::small_test();
        cfg.critic_lr = 1e-3;
        let mut agent = Ddpg::<Fx32>::new(3, 1, cfg).unwrap();
        let first = agent.train_batch(&refs).unwrap();
        let mut last = first;
        for _ in 0..200 {
            last = agent.train_batch(&refs).unwrap();
        }
        assert!(
            last.critic_loss < first.critic_loss,
            "fixed-point critic loss should fall: {} -> {}",
            first.critic_loss,
            last.critic_loss
        );
    }

    #[test]
    fn qat_schedule_freezes_at_delay() {
        let cfg = DdpgConfig::small_test().with_qat(100, 16);
        let mut agent = Ddpg::<Fx32>::new(3, 1, cfg).unwrap();
        assert_eq!(agent.qat_mode(), QatMode::Calibrate);
        // Generate observations so calibration has data.
        agent.act(&[0.1, 0.2, 0.3]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let data = toy_batch(&mut rng, 8);
        let refs: Vec<&Transition> = data.iter().collect();
        agent.train_batch(&refs).unwrap();

        assert!(!agent.on_timestep(99).unwrap());
        assert!(!agent.qat_frozen());
        assert!(agent.on_timestep(100).unwrap());
        assert!(agent.qat_frozen());
        assert_eq!(agent.qat_mode(), QatMode::Quantize);
        // Idempotent afterwards.
        assert!(!agent.on_timestep(101).unwrap());
        // Training continues in quantized mode.
        agent.train_batch(&refs).unwrap();
    }

    #[test]
    fn freeze_defers_until_calibration_data_exists() {
        let cfg = DdpgConfig::small_test().with_qat(0, 16);
        let mut agent = Ddpg::<Fx32>::new(3, 1, cfg).unwrap();
        // No forward pass has run: the switch waits instead of erroring.
        assert!(!agent.on_timestep(0).unwrap());
        assert!(!agent.qat_frozen());
        // Give every runtime (online + target) data, then it completes.
        agent.act(&[0.1, 0.2, 0.3]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let data = toy_batch(&mut rng, 8);
        let refs: Vec<&Transition> = data.iter().collect();
        agent.train_batch(&refs).unwrap();
        assert!(agent.on_timestep(1).unwrap());
        assert!(agent.qat_frozen());
    }

    #[test]
    fn no_qat_modes_never_freeze() {
        let mut agent = Ddpg::<f64>::new(3, 1, DdpgConfig::small_test()).unwrap();
        assert_eq!(agent.qat_mode(), QatMode::Off);
        assert!(!agent.on_timestep(1_000_000).unwrap());
        assert!(!agent.qat_frozen());
    }

    #[test]
    fn empty_batch_is_an_error() {
        let mut agent = Ddpg::<f64>::new(3, 1, DdpgConfig::small_test()).unwrap();
        assert!(matches!(
            agent.train_batch(&[]),
            Err(RlError::ReplayUnderflow { .. })
        ));
    }

    #[test]
    fn parallel_one_worker_is_bit_identical_to_sequential() {
        let mut rng = StdRng::seed_from_u64(7);
        let data = toy_batch(&mut rng, 16);
        let refs: Vec<&Transition> = data.iter().collect();
        let mut seq = Ddpg::<Fx32>::new(3, 1, DdpgConfig::small_test()).unwrap();
        let mut par = seq.clone();
        for _ in 0..5 {
            let a = seq.train_batch(&refs).unwrap();
            let b = par.train_batch_parallel(&refs, 1).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(seq.actor(), par.actor());
        assert_eq!(seq.critic(), par.critic());
    }

    #[test]
    fn parallel_workers_deterministic_and_close_to_sequential() {
        let mut rng = StdRng::seed_from_u64(8);
        let data = toy_batch(&mut rng, 32);
        let refs: Vec<&Transition> = data.iter().collect();

        // Determinism: two 4-worker runs agree exactly despite thread
        // scheduling (shard-order merges).
        let mut a = Ddpg::<Fx32>::new(3, 1, DdpgConfig::small_test()).unwrap();
        let mut b = a.clone();
        for _ in 0..3 {
            a.train_batch_parallel(&refs, 4).unwrap();
            b.train_batch_parallel(&refs, 4).unwrap();
        }
        assert_eq!(a.actor(), b.actor());
        assert_eq!(a.critic(), b.critic());

        // Fidelity: the shard-merged gradients stay numerically close to
        // the sequential reference (differences only from saturating
        // accumulation order).
        let mut seq = Ddpg::<Fx32>::new(3, 1, DdpgConfig::small_test()).unwrap();
        for _ in 0..3 {
            seq.train_batch(&refs).unwrap();
        }
        for l in 0..seq.actor().num_layers() {
            for (x, y) in seq
                .actor()
                .weight(l)
                .as_slice()
                .iter()
                .zip(a.actor().weight(l).as_slice())
            {
                assert!(
                    (x.to_f64() - y.to_f64()).abs() < 1e-4,
                    "layer {l}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn minibatch_update_is_bit_identical_to_per_sample_fx32() {
        let mut rng = StdRng::seed_from_u64(13);
        let data = toy_batch(&mut rng, 24);
        let refs: Vec<&Transition> = data.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs).unwrap();

        let mut per_sample = Ddpg::<Fx32>::new(3, 1, DdpgConfig::small_test()).unwrap();
        let mut batched = per_sample.clone();
        for step in 0..5 {
            let a = per_sample.train_batch(&refs).unwrap();
            let b = batched.train_minibatch(&batch).unwrap();
            assert_eq!(a, b, "metrics diverged at step {step}");
        }
        assert_eq!(per_sample.actor(), batched.actor(), "actor weights");
        assert_eq!(per_sample.critic(), batched.critic(), "critic weights");
        assert_eq!(per_sample.train_steps(), batched.train_steps());
    }

    #[test]
    fn minibatch_update_is_bit_identical_in_f64_and_under_qat() {
        let mut rng = StdRng::seed_from_u64(14);
        let data = toy_batch(&mut rng, 16);
        let refs: Vec<&Transition> = data.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs).unwrap();

        // Plain f64.
        let mut a = Ddpg::<f64>::new(3, 1, DdpgConfig::small_test()).unwrap();
        let mut b = a.clone();
        for _ in 0..3 {
            a.train_batch(&refs).unwrap();
            b.train_minibatch(&batch).unwrap();
        }
        assert_eq!(a.actor(), b.actor());

        // QAT: calibrate, freeze, then train quantized — both paths.
        let cfg = DdpgConfig::small_test().with_qat(1, 16);
        let mut qa = Ddpg::<Fx32>::new(3, 1, cfg).unwrap();
        let mut qb = qa.clone();
        qa.act(&[0.1, 0.2, 0.3]).unwrap();
        qb.act(&[0.1, 0.2, 0.3]).unwrap();
        qa.train_batch(&refs).unwrap();
        qb.train_minibatch(&batch).unwrap();
        assert!(qa.on_timestep(2).unwrap());
        assert!(qb.on_timestep(2).unwrap());
        qa.train_batch(&refs).unwrap();
        qb.train_minibatch(&batch).unwrap();
        assert_eq!(qa.actor(), qb.actor(), "QAT actor weights");
        assert_eq!(qa.critic(), qb.critic(), "QAT critic weights");
    }

    #[test]
    fn minibatch_empty_batch_is_an_error() {
        let mut agent = Ddpg::<f64>::new(3, 1, DdpgConfig::small_test()).unwrap();
        let empty = TransitionBatch::from_transitions(&[]).unwrap();
        assert!(matches!(
            agent.train_minibatch(&empty),
            Err(RlError::ReplayUnderflow { .. })
        ));
    }

    #[test]
    fn zero_workers_rejected_by_config() {
        let mut cfg = DdpgConfig::small_test();
        cfg.parallel_workers = 0;
        assert!(Ddpg::<f64>::new(3, 1, cfg).is_err());
    }

    #[test]
    fn parallel_training_works_under_qat() {
        let cfg = DdpgConfig::small_test().with_qat(1, 16);
        let mut agent = Ddpg::<Fx32>::new(3, 1, cfg).unwrap();
        agent.act(&[0.1, 0.2, 0.3]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let data = toy_batch(&mut rng, 16);
        let refs: Vec<&Transition> = data.iter().collect();
        agent.train_batch_parallel(&refs, 2).unwrap();
        assert!(agent.on_timestep(2).unwrap());
        // Quantized phase also trains in parallel.
        agent.train_batch_parallel(&refs, 2).unwrap();
        assert_eq!(agent.train_steps(), 2);
    }

    #[test]
    fn shard_map_panics_become_typed_errors_not_aborts() {
        // The satellite contract: a panicking pool task must surface as
        // RlError::Worker (process intact, pool reusable), not abort
        // through an expect().
        let par = Parallelism::with_workers(2);
        let items = [0usize, 1, 2, 3];
        let err = pool_shard_map(&par, &items, |idx, &item| {
            if idx == 1 {
                panic!("injected shard failure {item}");
            }
            Ok(item * 10)
        })
        .unwrap_err();
        match &err {
            RlError::Worker(msg) => {
                assert!(msg.contains("injected shard failure"), "got: {msg}")
            }
            other => panic!("expected RlError::Worker, got {other:?}"),
        }
        // The pool survives: the same handle runs clean work afterwards,
        // merged in ascending item order.
        let ok = pool_shard_map(&par, &items, |_, &item| Ok(item * 10)).unwrap();
        assert_eq!(ok, vec![0, 10, 20, 30]);
        // Shard-level Err values (not panics) propagate too.
        let err = pool_shard_map(&par, &items, |idx, &item| {
            if idx == 2 {
                Err(RlError::InvalidConfig("bad shard".into()))
            } else {
                Ok(item)
            }
        })
        .unwrap_err();
        assert!(matches!(err, RlError::InvalidConfig(_)));
    }

    #[test]
    fn pooled_minibatch_bit_exact_across_worker_counts() {
        // The tentpole contract end to end: kernel-sharded
        // train_minibatch produces bit-identical Fx32 weights at every
        // worker count — equal to the sequential batched path and to
        // the per-sample reference.
        let mut rng = StdRng::seed_from_u64(21);
        let data = toy_batch(&mut rng, 24);
        let refs: Vec<&Transition> = data.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs).unwrap();

        let mut reference = Ddpg::<Fx32>::new(3, 1, DdpgConfig::small_test()).unwrap();
        let mut sequential = reference.clone();
        sequential.set_parallelism(Parallelism::sequential());
        let mut pooled: Vec<Ddpg<Fx32>> = [2, 3, 8]
            .iter()
            .map(|&w| {
                let mut agent = reference.clone();
                agent.set_parallelism(Parallelism::with_workers(w));
                agent
            })
            .collect();
        for step in 0..4 {
            let m_ref = reference.train_batch(&refs).unwrap();
            let m_seq = sequential.train_minibatch(&batch).unwrap();
            assert_eq!(m_ref, m_seq, "sequential metrics at step {step}");
            for agent in pooled.iter_mut() {
                let m = agent.train_minibatch(&batch).unwrap();
                assert_eq!(m_ref, m, "pooled metrics at step {step}");
            }
        }
        for agent in &pooled {
            assert_eq!(sequential.actor(), agent.actor(), "actor weights");
            assert_eq!(sequential.critic(), agent.critic(), "critic weights");
        }
        assert_eq!(reference.actor(), sequential.actor());
    }

    #[test]
    fn parallelism_handle_resolves_from_config() {
        let mut cfg = DdpgConfig::small_test();
        cfg.parallel_workers = 3;
        let agent = Ddpg::<f64>::new(3, 1, cfg).unwrap();
        // Unless FIXAR_WORKERS overrides it, the config count sticks.
        if std::env::var(fixar_pool::WORKERS_ENV).is_err() {
            assert_eq!(agent.parallelism().workers(), 3);
            assert!(agent.parallelism().pool().is_some());
        } else {
            assert!(agent.parallelism().workers() >= 1);
        }
    }

    #[test]
    fn paper_network_shapes() {
        // HalfCheetah: actor 17-400-300-6, critic 23-400-300-1.
        let agent = Ddpg::<f32>::new(17, 6, DdpgConfig::default()).unwrap();
        assert_eq!(agent.actor().layer_sizes(), &[17, 400, 300, 6]);
        assert_eq!(agent.critic().layer_sizes(), &[23, 400, 300, 1]);
        // Combined model ≈ 1.05 MB of 32-bit parameters (paper's weight
        // memory sizing).
        let bytes = agent.actor().model_bytes() + agent.critic().model_bytes();
        assert!((bytes as f64 / 1e6 - 1.038).abs() < 0.02, "bytes={bytes}");
    }
}
