//! The four arms of the paper's Fig. 7 precision study.

use core::fmt;

/// Numeric regime a training run executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrecisionMode {
    /// 32-bit floating-point end to end (the CPU-GPU baseline).
    Float32,
    /// 32-bit fixed-point end to end (no quantization step).
    Fixed32,
    /// 16-bit fixed-point from scratch — the arm the paper shows
    /// *failing* to train.
    Fixed16,
    /// FIXAR's dynamic dual precision: 32-bit fixed-point with activation
    /// ranges calibrated for the quantization delay, then 16-bit
    /// quantized activations for the rest of training (weights and
    /// gradients stay 32-bit).
    DynamicFixed,
}

impl PrecisionMode {
    /// All four study arms in the order Fig. 7 plots them.
    pub const ALL: [PrecisionMode; 4] = [
        PrecisionMode::Float32,
        PrecisionMode::Fixed32,
        PrecisionMode::Fixed16,
        PrecisionMode::DynamicFixed,
    ];

    /// `true` for the modes whose arithmetic is fixed-point.
    pub fn is_fixed_point(self) -> bool {
        !matches!(self, PrecisionMode::Float32)
    }

    /// `true` for the FIXAR mode with the quantization-delay schedule.
    pub fn uses_qat(self) -> bool {
        matches!(self, PrecisionMode::DynamicFixed)
    }

    /// Label used by reports and the Fig. 7 harness.
    pub fn label(self) -> &'static str {
        match self {
            PrecisionMode::Float32 => "float32",
            PrecisionMode::Fixed32 => "fixed32",
            PrecisionMode::Fixed16 => "fixed16",
            PrecisionMode::DynamicFixed => "fixar-dynamic(32->16)",
        }
    }
}

impl fmt::Display for PrecisionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_the_paper_study_arms() {
        assert_eq!(PrecisionMode::ALL.len(), 4);
        assert!(PrecisionMode::DynamicFixed.uses_qat());
        assert!(!PrecisionMode::Fixed32.uses_qat());
        assert!(PrecisionMode::Fixed16.is_fixed_point());
        assert!(!PrecisionMode::Float32.is_fixed_point());
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            PrecisionMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
