//! Vectorized multi-env serving: one agent, a fleet of environments,
//! batched action selection.
//!
//! [`VecTrainer`] drives an [`EnvPool`] in lockstep: every fleet step
//! packs the `N` current observations into one matrix, routes them
//! through [`Ddpg::select_actions_batch`] (one batched kernel pass over
//! the worker pool instead of `N` per-sample `gemv`s), applies
//! exploration noise per row from per-env noise streams, steps the
//! fleet, and feeds all `N` transitions into the shared replay buffer
//! in ascending env order.
//!
//! # Determinism contract
//!
//! * Env slot `i` draws its warmup actions and exploration noise from
//!   its own `StdRng` seeded with [`action_stream_seed`]`(seed, i)`;
//!   replay sampling draws from a separate stream seeded with
//!   [`replay_stream_seed`]`(seed)`. Slot 0's action stream is exactly
//!   the scalar [`Trainer`](crate::Trainer)'s, so a fleet of one
//!   reproduces the scalar trainer **bit-for-bit** (weights, replay
//!   contents, reward curve) — property-tested in
//!   `tests/fleet_props.rs`.
//! * Because each slot owns its stream, any single env's action
//!   sequence is independent of the fleet size around it: with frozen
//!   agent weights, slot `i`'s trajectory in an `N`-env fleet is
//!   bit-identical to a solo rollout of the same env seed and stream.
//! * Transitions are pushed in ascending env index every fleet step,
//!   and the batched kernels are bit-exact at every worker count, so
//!   fleet runs are bit-identical across `FIXAR_WORKERS` settings.

use fixar_env::{EnvPool, Environment, FleetStep};
use fixar_fixed::Scalar;
use fixar_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ddpg::{Ddpg, DdpgConfig, TrainMetrics};
use crate::error::RlError;
use crate::noise::{ExplorationNoise, GaussianNoise};
use crate::replay::{ReplayBuffer, ReplaySampler, SampledBatch, Transition};
use crate::trainer::{check_env_compat, evaluate_policy, EvalPoint, TrainingReport};

/// Per-env action-stream stride: an odd constant deliberately different
/// from the SplitMix64 gamma of the vendored `rand` shim (and from
/// `fixar_env::FLEET_SEED_STRIDE`), so no two slots' streams are
/// shifted copies of each other.
const ACTION_STREAM_STRIDE: u64 = 0xD6E8_FEB8_6659_FD93;

/// Seed of fleet slot `env_idx`'s action stream (warmup exploration and
/// noise draws) for an agent seeded with `seed`. Slot 0 matches the
/// scalar [`Trainer`](crate::Trainer)'s action stream — the anchor of
/// the fleet-of-one equivalence contract.
pub fn action_stream_seed(seed: u64, env_idx: usize) -> u64 {
    seed.wrapping_add(0x5eed)
        .wrapping_add((env_idx as u64).wrapping_mul(ACTION_STREAM_STRIDE))
}

/// Seed of the replay-sampling stream for an agent seeded with `seed` —
/// shared by the scalar [`Trainer`](crate::Trainer) and [`VecTrainer`],
/// and deliberately separate from every action stream so batch draws
/// never perturb exploration.
pub fn replay_stream_seed(seed: u64) -> u64 {
    seed.wrapping_add(0xba7c4)
}

/// Seed of the prioritized-replay sampling stream for an agent seeded
/// with `seed` — shared by the scalar [`Trainer`](crate::Trainer) and
/// [`VecTrainer`], derived like [`replay_stream_seed`] but deliberately
/// distinct from it (and from every action stream), so the sum-tree
/// draws of [`ReplayStrategy::Prioritized`](crate::ReplayStrategy)
/// never perturb exploration or the uniform replay stream.
pub fn priority_stream_seed(seed: u64) -> u64 {
    seed.wrapping_add(0x9107_5eed)
}

/// Drives one agent against a fleet of environments: batched action
/// selection through the worker pool, lockstep stepping with auto-reset,
/// deterministic env-order replay insertion, and training every
/// `train_every` fleet steps.
///
/// Step accounting: `run(total_fleet_steps, ..)` advances every env by
/// `total_fleet_steps` control steps, i.e. `N × total_fleet_steps`
/// environment steps total. Warmup, evaluation, training cadence, and
/// the QAT delay are all counted in **fleet steps** (per-env local
/// steps), so a config reaches the same training phase at any fleet
/// size; [`EvalPoint::step`], [`TrainingReport::total_steps`], and
/// [`TrainingReport::qat_switch_step`] report global env steps.
///
/// # Example
///
/// ```
/// use fixar_env::{EnvKind, EnvPool};
/// use fixar_rl::{DdpgConfig, VecTrainer};
///
/// let pool = EnvPool::from_kind(EnvKind::Pendulum, 4, 1);
/// let mut trainer = VecTrainer::<f32>::new(
///     pool,
///     EnvKind::Pendulum.make(99),
///     DdpgConfig::small_test(),
/// )?;
/// let report = trainer.run(50, 50, 1)?;
/// assert_eq!(report.total_steps, 200); // 50 fleet steps x 4 envs
/// assert_eq!(report.curve.len(), 1);
/// # Ok::<(), fixar_rl::RlError>(())
/// ```
pub struct VecTrainer<S: Scalar> {
    pool: EnvPool,
    eval_env: Box<dyn Environment>,
    agent: Ddpg<S>,
    replay: ReplayBuffer,
    sampler: ReplaySampler,
    /// Reusable sampling scratch: after the first draw, the whole
    /// sample-gather-train step allocates nothing.
    scratch: SampledBatch,
    noises: Vec<Box<dyn ExplorationNoise>>,
    action_rngs: Vec<StdRng>,
    replay_rng: StdRng,
    priority_rng: StdRng,
    cfg: DdpgConfig,
    train_every: u64,
    fleet_steps: u64,
    overlap: bool,
}

impl<S: Scalar> VecTrainer<S> {
    /// Builds a fleet trainer from an environment pool, a separate
    /// evaluation environment, and a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] if the evaluation environment
    /// disagrees with the pool on dimensions or the config is
    /// malformed.
    pub fn new(
        pool: EnvPool,
        eval_env: Box<dyn Environment>,
        cfg: DdpgConfig,
    ) -> Result<Self, RlError> {
        let spec = pool.spec().clone();
        check_env_compat(&spec, &eval_env.spec())?;
        let agent = Ddpg::new(spec.obs_dim, spec.action_dim, cfg.clone())?;
        let replay = ReplayBuffer::with_dims(cfg.replay_capacity, spec.obs_dim, spec.action_dim);
        let sampler = ReplaySampler::new(cfg.replay, cfg.replay_capacity);
        let n = pool.len();
        let noises: Vec<Box<dyn ExplorationNoise>> = (0..n)
            .map(|_| {
                Box::new(GaussianNoise::new(spec.action_dim, cfg.exploration_sigma))
                    as Box<dyn ExplorationNoise>
            })
            .collect();
        let action_rngs = (0..n)
            .map(|i| StdRng::seed_from_u64(action_stream_seed(cfg.seed, i)))
            .collect();
        Ok(Self {
            pool,
            eval_env,
            agent,
            replay,
            sampler,
            scratch: SampledBatch::scratch(),
            noises,
            action_rngs,
            replay_rng: StdRng::seed_from_u64(replay_stream_seed(cfg.seed)),
            priority_rng: StdRng::seed_from_u64(priority_stream_seed(cfg.seed)),
            cfg,
            train_every: 1,
            fleet_steps: 0,
            overlap: false,
        })
    }

    /// Fleet size `N`.
    pub fn fleet_size(&self) -> usize {
        self.pool.len()
    }

    /// The environment pool (per-env episode accounting lives here).
    pub fn pool(&self) -> &EnvPool {
        &self.pool
    }

    /// The agent (e.g. for loading its networks onto the accelerator).
    pub fn agent(&self) -> &Ddpg<S> {
        &self.agent
    }

    /// Mutable agent access (worker-count pinning in tests/benches).
    pub fn agent_mut(&mut self) -> &mut Ddpg<S> {
        &mut self.agent
    }

    /// Transitions currently stored in replay.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Read access to the replay buffer (fleet-equivalence tests
    /// compare full contents).
    pub fn replay(&self) -> &ReplayBuffer {
        &self.replay
    }

    /// The replay sampler (priority diagnostics under the prioritized
    /// strategy).
    pub fn sampler(&self) -> &ReplaySampler {
        &self.sampler
    }

    /// Replaces every slot's exploration-noise process with a fresh one
    /// built by `make` (called with the slot index).
    pub fn set_noise_with(&mut self, make: impl Fn(usize) -> Box<dyn ExplorationNoise>) {
        for (i, slot) in self.noises.iter_mut().enumerate() {
            *slot = make(i);
        }
    }

    /// Opts into (or out of) **double-buffered serving**: the fleet
    /// splits into two observation buffers and, each fleet step, the
    /// pool computes one buffer's actions *while the host steps the
    /// other buffer's environments* — the Fig. 9 host/accelerator
    /// overlap, expressed with the fused-scope primitive
    /// (`Parallelism::fused` runs host work in the scope body
    /// concurrently with the queued selection task).
    ///
    /// Per-phase barriers keep the contract intact: transitions still
    /// commit to replay in ascending env order once *both* halves have
    /// stepped, every slot keeps its own action stream, and batched
    /// selection is row-exact regardless of how the fleet is split — so
    /// an overlapped run is **bit-identical** to the lockstep run
    /// (weights, replay contents, reports) at every worker count,
    /// including a fleet of one (where overlap degrades to lockstep).
    /// Enforced by `tests/sched_props.rs` and the `vec_trainer` unit
    /// tests.
    pub fn set_overlap(&mut self, enabled: bool) {
        self.overlap = enabled;
    }

    /// `true` when double-buffered serving is enabled.
    pub fn overlap(&self) -> bool {
        self.overlap
    }

    /// Sets the training cadence: one minibatch update every `every`
    /// fleet steps (default 1, the scalar trainer's cadence).
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] for `every == 0`.
    pub fn set_train_every(&mut self, every: u64) -> Result<(), RlError> {
        if every == 0 {
            return Err(RlError::InvalidConfig(
                "train_every must be positive".into(),
            ));
        }
        self.train_every = every;
        Ok(())
    }

    /// Turns policy rows into executed actions for the slot range
    /// `base..base + policy.rows()`: uniform warmup draws, or policy
    /// plus exploration noise, each slot consuming **its own** action
    /// stream — so the per-slot draw sequences are identical whether
    /// the fleet is served lockstep (one call over all slots) or
    /// double-buffered (one call per buffer).
    fn fill_actions(
        &mut self,
        local: u64,
        base: usize,
        policy: &Matrix<f64>,
        out: &mut Matrix<f64>,
    ) {
        let action_dim = policy.cols();
        for r in 0..policy.rows() {
            let i = base + r;
            if local <= self.cfg.warmup_steps {
                for d in 0..action_dim {
                    out[(r, d)] = self.action_rngs[i].gen_range(-1.0..1.0);
                }
            } else {
                let ni = self.noises[i].sample(&mut self.action_rngs[i]);
                for d in 0..action_dim {
                    out[(r, d)] = (policy[(r, d)] + ni[d]).clamp(-1.0, 1.0);
                }
            }
        }
    }

    /// Runs `total_fleet_steps` fleet steps (lockstep, or
    /// double-buffered when [`VecTrainer::set_overlap`] is on — the
    /// results are bit-identical): batched action selection → fleet
    /// step → `N` replay pushes in ascending env order → one minibatch
    /// update every `train_every` fleet steps after warmup → evaluation
    /// every `eval_every` fleet steps.
    ///
    /// # Errors
    ///
    /// Propagates agent errors; see [`Ddpg::train_minibatch`].
    pub fn run(
        &mut self,
        total_fleet_steps: u64,
        eval_every: u64,
        eval_episodes: usize,
    ) -> Result<TrainingReport, RlError> {
        if eval_every == 0 {
            return Err(RlError::InvalidConfig("eval_every must be positive".into()));
        }
        let n = self.pool.len();
        let action_dim = self.agent.action_dim();
        self.pool.reset_all();
        for noise in &mut self.noises {
            noise.reset();
        }
        let mut episodes = 0;
        let mut curve = Vec::new();
        let mut qat_switch_step = None;
        let mut final_metrics = TrainMetrics::default();
        let mut actions = Matrix::<f64>::zeros(n, action_dim);

        for k in 1..=total_fleet_steps {
            // Per-env local step count (== global env steps / N).
            let local = self.fleet_steps + k;
            let global = local * n as u64;
            // Every cadence — warmup, training, evaluation, and the QAT
            // delay — counts fleet steps (per-env local steps), so the
            // same config reaches the same training phase at any fleet
            // size; only the reported step numbers scale by N.
            if self.agent.on_timestep(local)? {
                qat_switch_step = Some(global);
            }

            // Selection and stepping. Lockstep: one batched actor pass
            // for the whole fleet, then one fleet step. Overlapped
            // (double-buffered): the fleet splits into buffers A
            // (slots 0..n/2) and B (the rest); A's actions are selected
            // pool-parallel, then ONE fused scope runs B's selection on
            // a worker while the host steps A's environments — the
            // host/accelerator overlap of the paper's Fig. 9 — and the
            // host finishes with B's step. Batched selection is
            // row-exact however the fleet is split, every slot draws
            // from its own streams, and QAT range monitors are
            // order-independent, so both modes are bit-identical. In
            // warmup the policy rows are discarded in favour of uniform
            // exploration, exactly like the scalar trainer (the passes
            // still run so QAT monitors observe from t = 1).
            let states = self.pool.observations().clone();
            let h = n / 2;
            let mut segments: Vec<(FleetStep, usize)> = Vec::with_capacity(2);
            if self.overlap && n >= 2 {
                // Phase A: pool-parallel selection for buffer A.
                let obs_a = states.row_range(0, h);
                let obs_b = states.row_range(h, n);
                let policy_a = self.agent.select_actions_batch(&obs_a)?;
                let mut actions_a = Matrix::<f64>::zeros(h, action_dim);
                self.fill_actions(local, 0, &policy_a, &mut actions_a);
                // Phase B: buffer B's selection runs on a pool worker
                // (sequentially there — nested kernels degrade) while
                // this thread steps buffer A's environments; the fused
                // scope's join is the phase barrier.
                let par = self.agent.parallelism().clone();
                let mut policy_b_slot: Option<Result<Matrix<f64>, RlError>> = None;
                let mut fs_a_slot: Option<FleetStep> = None;
                {
                    let agent = &mut self.agent;
                    let env_pool = &mut self.pool;
                    let slot = &mut policy_b_slot;
                    let obs_b = &obs_b;
                    let actions_a = &actions_a;
                    par.fused(|ks| {
                        ks.submit(move || {
                            *slot = Some(agent.select_actions_batch(obs_b));
                        });
                        // Host side of the overlap: env physics for A.
                        fs_a_slot = Some(env_pool.step_range(0..h, actions_a));
                    })
                    .map_err(RlError::from)?;
                }
                let policy_b = policy_b_slot.expect("selection task joined")?;
                // Phase C: exploration + stepping for buffer B.
                let mut actions_b = Matrix::<f64>::zeros(n - h, action_dim);
                self.fill_actions(local, h, &policy_b, &mut actions_b);
                let fs_b = self.pool.step_range(h..n, &actions_b);
                for r in 0..h {
                    actions.row_mut(r).copy_from_slice(actions_a.row(r));
                }
                for r in 0..(n - h) {
                    actions.row_mut(h + r).copy_from_slice(actions_b.row(r));
                }
                segments.push((fs_a_slot.expect("host stepped buffer A"), 0));
                segments.push((fs_b, h));
            } else {
                let policy = self.agent.select_actions_batch(&states)?;
                self.fill_actions(local, 0, &policy, &mut actions);
                let fs = self.pool.step(&actions);
                segments.push((fs, 0));
            }

            // Commit barrier: replay insertion in ascending env index —
            // by now every slot has stepped, so the insertion order is
            // the lockstep order in both modes, independent of pool
            // scheduling. Part of the determinism contract.
            for (fs, base) in &segments {
                for r in 0..fs.rewards.len() {
                    let i = base + r;
                    let slot = self.replay.push(Transition {
                        state: states.row(i).to_vec(),
                        action: actions.row(i).to_vec(),
                        reward: fs.rewards[r],
                        next_state: fs.next_observations.row(r).to_vec(),
                        terminal: fs.terminated[r],
                    });
                    self.sampler.on_insert(slot);
                    if fs.terminated[r] || fs.truncated[r] {
                        self.noises[i].reset();
                    }
                }
                episodes += fs.finished.len();
            }

            if local > self.cfg.warmup_steps && local.is_multiple_of(self.train_every) {
                // The SoA gather into the held scratch + strategy
                // dispatch — exactly the scalar trainer's training
                // step, so fleet-of-one equivalence holds under either
                // replay strategy, with no allocation after the first
                // draw.
                let par = self.agent.parallelism().clone();
                let rng = if self.sampler.is_prioritized() {
                    &mut self.priority_rng
                } else {
                    &mut self.replay_rng
                };
                if self.sampler.sample_into(
                    &self.replay,
                    self.cfg.batch_size,
                    rng,
                    &par,
                    &mut self.scratch,
                ) {
                    let (metrics, tds) = self.agent.train_minibatch_weighted(
                        &self.scratch.batch,
                        self.scratch.weights.as_deref(),
                    )?;
                    final_metrics = metrics;
                    self.sampler.update_priorities(&self.scratch.indices, &tds);
                }
            }

            if local.is_multiple_of(eval_every) {
                let avg = self.evaluate(eval_episodes)?;
                curve.push(EvalPoint {
                    step: global,
                    avg_reward: avg,
                });
            }
        }
        self.fleet_steps += total_fleet_steps;
        Ok(TrainingReport {
            curve,
            train_episodes: episodes,
            total_steps: self.fleet_steps * n as u64,
            qat_switch_step,
            final_metrics,
        })
    }

    /// The paper's evaluation protocol — the very same implementation
    /// [`Trainer::evaluate`](crate::Trainer::evaluate) runs: average
    /// cumulative reward over `episodes` fresh noise-free episodes.
    ///
    /// # Errors
    ///
    /// Propagates actor inference errors.
    pub fn evaluate(&mut self, episodes: usize) -> Result<f64, RlError> {
        evaluate_policy(&mut self.agent, self.eval_env.as_mut(), episodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_env::EnvKind;
    use fixar_pool::Parallelism;

    fn pendulum_fleet(n: usize, cfg: DdpgConfig) -> VecTrainer<f64> {
        VecTrainer::new(
            EnvPool::from_kind(EnvKind::Pendulum, n, cfg.seed),
            EnvKind::Pendulum.make(99),
            cfg,
        )
        .unwrap()
    }

    #[test]
    fn run_produces_expected_curve_and_counts() {
        let mut t = pendulum_fleet(4, DdpgConfig::small_test());
        let report = t.run(100, 50, 1).unwrap();
        assert_eq!(report.curve.len(), 2);
        assert_eq!(report.curve[0].step, 200); // 50 fleet steps x 4 envs
        assert_eq!(report.curve[1].step, 400);
        assert_eq!(report.total_steps, 400);
        assert!(report.curve.iter().all(|p| p.avg_reward.is_finite()));
    }

    #[test]
    fn replay_receives_n_transitions_per_fleet_step() {
        let mut t = pendulum_fleet(3, DdpgConfig::small_test());
        t.run(40, 40, 1).unwrap();
        assert_eq!(t.replay_len(), 120);
    }

    #[test]
    fn consecutive_runs_continue_step_count() {
        let mut t = pendulum_fleet(2, DdpgConfig::small_test());
        t.run(50, 50, 1).unwrap();
        let report = t.run(50, 50, 1).unwrap();
        assert_eq!(report.total_steps, 200);
        assert_eq!(report.curve[0].step, 200);
    }

    #[test]
    fn mismatched_eval_env_rejected() {
        let r = VecTrainer::<f64>::new(
            EnvPool::from_kind(EnvKind::Pendulum, 2, 0),
            EnvKind::Swimmer.make(0),
            DdpgConfig::small_test(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn zero_cadences_rejected() {
        let mut t = pendulum_fleet(2, DdpgConfig::small_test());
        assert!(t.set_train_every(0).is_err());
        assert!(t.run(10, 0, 1).is_err());
        t.set_train_every(4).unwrap();
    }

    #[test]
    fn replay_insertion_order_is_env_major_ascending() {
        // Transitions land as [step0 env0, step0 env1, ..., step1 env0,
        // ...]: the k-th fleet step's slot-i transition sits at k*n + i,
        // and its state row is slot i's observation before that step.
        let n = 3;
        let mut t = pendulum_fleet(n, DdpgConfig::small_test());
        t.run(10, 10, 1).unwrap();
        // Rebuild the expected trajectory from a fresh identical fleet.
        let mut t2 = pendulum_fleet(n, DdpgConfig::small_test());
        t2.run(10, 10, 1).unwrap();
        let a = t.replay().transitions();
        let b = t2.replay().transitions();
        assert_eq!(a, b);
        // Env identity per slot: replay rows 0..n are the distinct
        // initial observations of slots 0..n in ascending order.
        let mut pool = EnvPool::from_kind(EnvKind::Pendulum, n, 0);
        let obs = pool.reset_all();
        for (i, tr) in a.iter().take(n).enumerate() {
            assert_eq!(tr.state.as_slice(), obs.row(i), "slot {i}");
        }
    }

    #[test]
    fn replay_order_is_independent_of_worker_count() {
        // The regression the satellite asks for: if replay insertion
        // order ever depended on pool scheduling, worker counts would
        // disagree on the buffer contents.
        let run = |workers: usize| {
            let mut t = pendulum_fleet(4, DdpgConfig::small_test());
            t.agent_mut()
                .set_parallelism(Parallelism::with_workers(workers));
            t.run(80, 80, 1).unwrap();
            t
        };
        let t1 = run(1);
        let t4 = run(4);
        assert_eq!(t1.replay().transitions(), t4.replay().transitions());
        assert_eq!(t1.agent().actor(), t4.agent().actor());
    }

    #[test]
    fn prioritized_fleet_is_deterministic_and_worker_invariant() {
        use crate::replay::{PrioritizedConfig, ReplayStrategy};
        let cfg = DdpgConfig::small_test()
            .with_replay(ReplayStrategy::Prioritized(PrioritizedConfig::default()));
        let run = |workers: usize| {
            let mut t = pendulum_fleet(3, cfg.clone());
            t.agent_mut()
                .set_parallelism(Parallelism::with_workers(workers));
            let report = t.run(80, 80, 1).unwrap();
            (report, t)
        };
        let (r1, t1) = run(1);
        assert!(t1.sampler().is_prioritized());
        assert!(r1.final_metrics.critic_loss.is_finite());
        for workers in [2usize, 4] {
            let (r, t) = run(workers);
            assert_eq!(r1, r, "workers {workers}: prioritized fleet reports");
            assert_eq!(t1.agent().actor(), t.agent().actor());
            assert_eq!(t1.replay().transitions(), t.replay().transitions());
        }
    }

    #[test]
    fn overlapped_runs_are_bit_identical_to_lockstep() {
        // The double-buffering acceptance criterion at the unit level:
        // same seed, same fleet — overlapped and lockstep runs agree on
        // reports, weights, and full replay contents, at even and odd
        // fleet sizes and at several worker counts (including a fleet
        // of one, where overlap degrades to lockstep).
        for n in [1usize, 2, 3, 4] {
            let cfg = DdpgConfig::small_test().with_seed(17);
            let run = |overlap: bool, workers: usize| {
                let mut t = pendulum_fleet(n, cfg.clone());
                t.set_overlap(overlap);
                t.agent_mut()
                    .set_parallelism(Parallelism::with_workers(workers));
                let report = t.run(90, 90, 1).unwrap();
                (report, t)
            };
            let (r_lock, t_lock) = run(false, 1);
            for workers in [1usize, 2, 4] {
                let (r_over, t_over) = run(true, workers);
                assert!(t_over.overlap());
                assert_eq!(r_lock, r_over, "fleet {n}, workers {workers}: reports");
                assert_eq!(
                    t_lock.agent().actor(),
                    t_over.agent().actor(),
                    "fleet {n}, workers {workers}: actor weights"
                );
                assert_eq!(
                    t_lock.replay().transitions(),
                    t_over.replay().transitions(),
                    "fleet {n}, workers {workers}: replay contents"
                );
            }
        }
    }

    #[test]
    fn overlapped_episode_accounting_matches_lockstep() {
        // Auto-reset bookkeeping survives the half-fleet stepping:
        // Pendulum truncates at 200, so 410 fleet steps complete 2
        // episodes per slot in either mode.
        let mut t = pendulum_fleet(3, DdpgConfig::small_test());
        t.set_overlap(true);
        let report = t.run(410, 410, 1).unwrap();
        assert_eq!(report.train_episodes, 6);
        assert_eq!(t.pool().episodes_completed(), &[2, 2, 2]);
    }

    #[test]
    fn per_slot_episode_accounting_survives_training() {
        let mut t = pendulum_fleet(2, DdpgConfig::small_test());
        // Pendulum truncates at 200: 410 fleet steps = 2 episodes/slot.
        let report = t.run(410, 410, 1).unwrap();
        assert_eq!(report.train_episodes, 4);
        assert_eq!(t.pool().episodes_completed(), &[2, 2]);
    }
}
