//! Error type of the RL layer.

use core::fmt;
use std::error::Error;

use fixar_nn::NnError;
use fixar_pool::PoolError;

/// Error produced by agent construction or training.
#[derive(Debug, Clone, PartialEq)]
pub enum RlError {
    /// An underlying network operation failed.
    Nn(NnError),
    /// The training configuration is inconsistent (e.g. zero batch size,
    /// quantization delay beyond total steps).
    InvalidConfig(String),
    /// Training was asked to sample a batch from an underfilled replay
    /// buffer.
    ReplayUnderflow {
        /// Transitions currently stored.
        have: usize,
        /// Batch size requested.
        need: usize,
    },
    /// A pool worker panicked during a sharded training update. The
    /// panic was contained on the worker thread (the process does not
    /// abort) and the pool remains usable; the message carries the
    /// panic payload.
    Worker(String),
}

impl fmt::Display for RlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlError::Nn(e) => write!(f, "network error: {e}"),
            RlError::InvalidConfig(msg) => write!(f, "invalid rl config: {msg}"),
            RlError::ReplayUnderflow { have, need } => {
                write!(
                    f,
                    "replay buffer has {have} transitions, batch needs {need}"
                )
            }
            RlError::Worker(msg) => write!(f, "training worker failed: {msg}"),
        }
    }
}

impl Error for RlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RlError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for RlError {
    fn from(e: NnError) -> Self {
        RlError::Nn(e)
    }
}

impl From<PoolError> for RlError {
    fn from(e: PoolError) -> Self {
        RlError::Worker(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = RlError::ReplayUnderflow { have: 3, need: 64 };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("64"));
    }
}
