//! TD3 — Twin Delayed DDPG (Fujimoto et al. 2018), the strongest of the
//! "DDPG variants" the paper cites as FIXAR's algorithm family.
//!
//! Three changes over DDPG, all of which map onto the same accelerator
//! primitives (the critic is simply instantiated twice):
//!
//! 1. **Clipped double-Q**: two critics; TD targets bootstrap from the
//!    *minimum* of the two target critics, fighting overestimation.
//! 2. **Target policy smoothing**: clipped Gaussian noise on the target
//!    action when forming targets.
//! 3. **Delayed policy updates**: the actor and the target networks
//!    update once every `policy_delay` critic updates.
//!
//! Like [`Ddpg`](crate::Ddpg), the agent is generic over the numeric
//! backend, so TD3 can be trained in 32-bit fixed-point, and the QAT
//! schedule of Algorithm 1 is wired through all six networks (actor,
//! twin critics, and their targets) — set [`Td3Config::qat`] and drive
//! [`Td3::on_timestep`] exactly as with DDPG. Per-network
//! [`PrecisionPolicy`] support (mixed-precision actors/critics) carries
//! over unchanged.

use fixar_fixed::Scalar;
use fixar_nn::{
    Activation, Adam, AdamConfig, Mlp, MlpConfig, MlpGrads, PrecisionPolicy, QatMode, QatRuntime,
};
use fixar_pool::Parallelism;
use fixar_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ddpg::{QatSchedule, TrainMetrics};
use crate::error::RlError;
use crate::replay::{Transition, TransitionBatch};

/// TD3 hyperparameters (defaults follow Fujimoto et al.).
#[derive(Debug, Clone, PartialEq)]
pub struct Td3Config {
    /// Hidden-layer widths (FIXAR's 400 and 300 by default).
    pub hidden: (usize, usize),
    /// Discount factor γ.
    pub gamma: f64,
    /// Target soft-update rate τ.
    pub tau: f64,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate (both critics).
    pub critic_lr: f64,
    /// Adam epsilon (see [`AdamConfig`]).
    pub adam_eps: f64,
    /// Target-policy smoothing noise standard deviation.
    pub target_noise_sigma: f64,
    /// Clip bound for the smoothing noise.
    pub target_noise_clip: f64,
    /// Critic updates per actor/target update.
    pub policy_delay: u64,
    /// Seed for weight init and smoothing noise.
    pub seed: u64,
    /// Worker threads for kernel-level parallel training (see
    /// `DdpgConfig::parallel_workers`); the `FIXAR_WORKERS` environment
    /// variable overrides it at agent construction.
    pub parallel_workers: usize,
    /// Quantization-aware-training schedule, as
    /// [`DdpgConfig::qat`](crate::DdpgConfig::qat): `None` trains full
    /// precision; `Some` calibrates all six networks during the delay
    /// window and freezes them per the schedule's precision policies.
    pub qat: Option<QatSchedule>,
}

impl Default for Td3Config {
    fn default() -> Self {
        Self {
            hidden: (400, 300),
            gamma: 0.99,
            tau: 0.005,
            actor_lr: 1e-4,
            critic_lr: 1e-4,
            adam_eps: 1e-4,
            target_noise_sigma: 0.2,
            target_noise_clip: 0.5,
            policy_delay: 2,
            seed: 0,
            parallel_workers: 1,
            qat: None,
        }
    }
}

impl Td3Config {
    /// Tiny configuration for debug-mode tests.
    pub fn small_test() -> Self {
        Self {
            hidden: (16, 12),
            ..Self::default()
        }
    }

    /// Builder-style uniform QAT schedule (default 1.5× headroom) — the
    /// TD3 twin of [`DdpgConfig::with_qat`](crate::DdpgConfig::with_qat).
    pub fn with_qat(mut self, delay: u64, bits: u32) -> Self {
        self.qat = Some(QatSchedule::uniform(delay, bits));
        self
    }

    /// Builder-style QAT schedule with explicit per-network precision
    /// policies (actor side covers the actor and its target; critic
    /// side covers both twins and their targets).
    pub fn with_qat_policies(
        mut self,
        delay: u64,
        actor: PrecisionPolicy,
        critic: PrecisionPolicy,
    ) -> Self {
        let bits = actor.nominal_bits().max(critic.nominal_bits());
        self.qat = Some(
            QatSchedule::uniform(delay, bits)
                .with_actor_policy(actor)
                .with_critic_policy(critic),
        );
        self
    }

    /// Builder-style mixed-precision QAT (`actor_bits`-bit actor,
    /// `critic_bits`-bit twin critics).
    pub fn with_mixed_precision_qat(self, delay: u64, actor_bits: u32, critic_bits: u32) -> Self {
        self.with_qat_policies(
            delay,
            PrecisionPolicy::Uniform { bits: actor_bits },
            PrecisionPolicy::Uniform { bits: critic_bits },
        )
    }

    fn validate(&self) -> Result<(), RlError> {
        if self.policy_delay == 0 {
            return Err(RlError::InvalidConfig("policy_delay must be >= 1".into()));
        }
        if self.parallel_workers == 0 {
            return Err(RlError::InvalidConfig(
                "parallel_workers must be at least 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.gamma) || !(0.0..=1.0).contains(&self.tau) {
            return Err(RlError::InvalidConfig(
                "gamma and tau must be in [0, 1]".into(),
            ));
        }
        if self.target_noise_sigma < 0.0 || self.target_noise_clip < 0.0 {
            return Err(RlError::InvalidConfig(
                "noise parameters must be non-negative".into(),
            ));
        }
        if let Some(q) = &self.qat {
            if q.bits == 0 || q.bits > 31 {
                return Err(RlError::InvalidConfig(format!(
                    "qat bits must be 1..=31, got {}",
                    q.bits
                )));
            }
        }
        Ok(())
    }
}

/// The TD3 agent: one actor, twin critics, and their targets.
///
/// # Example
///
/// ```
/// use fixar_rl::{Td3, Td3Config};
///
/// let mut agent = Td3::<f32>::new(3, 1, Td3Config::small_test())?;
/// let action = agent.act(&[0.1, -0.2, 0.3])?;
/// assert_eq!(action.len(), 1);
/// # Ok::<(), fixar_rl::RlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Td3<S: Scalar> {
    actor: Mlp<S>,
    critic1: Mlp<S>,
    critic2: Mlp<S>,
    actor_target: Mlp<S>,
    critic1_target: Mlp<S>,
    critic2_target: Mlp<S>,
    actor_opt: Adam<S>,
    critic1_opt: Adam<S>,
    critic2_opt: Adam<S>,
    actor_grads: MlpGrads<S>,
    critic_grads: MlpGrads<S>,
    /// Second gradient buffer so both twin critics can accumulate
    /// inside one fused backward scope (disjoint outputs).
    critic2_grads: MlpGrads<S>,
    critic_scratch: MlpGrads<S>,
    actor_qat: QatRuntime,
    critic1_qat: QatRuntime,
    critic2_qat: QatRuntime,
    actor_target_qat: QatRuntime,
    critic1_target_qat: QatRuntime,
    critic2_target_qat: QatRuntime,
    cfg: Td3Config,
    par: Parallelism,
    state_dim: usize,
    action_dim: usize,
    rng: StdRng,
    critic_updates: u64,
    qat_frozen: bool,
}

impl<S: Scalar> Td3<S> {
    /// Builds the agent.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] for malformed configurations or
    /// zero dimensions.
    pub fn new(state_dim: usize, action_dim: usize, cfg: Td3Config) -> Result<Self, RlError> {
        cfg.validate()?;
        if state_dim == 0 || action_dim == 0 {
            return Err(RlError::InvalidConfig(
                "state and action dimensions must be positive".into(),
            ));
        }
        let (h1, h2) = cfg.hidden;
        let actor = Mlp::new_random(
            &MlpConfig::new(vec![state_dim, h1, h2, action_dim])
                .with_output_activation(Activation::Tanh),
            cfg.seed,
        )?;
        let critic_cfg = MlpConfig::new(vec![state_dim + action_dim, h1, h2, 1]);
        let critic1 = Mlp::new_random(&critic_cfg, cfg.seed.wrapping_add(1))?;
        let critic2 = Mlp::new_random(&critic_cfg, cfg.seed.wrapping_add(2))?;
        let adam = |lr: f64, net: &Mlp<S>| {
            Adam::new(
                net,
                AdamConfig {
                    lr,
                    eps: cfg.adam_eps,
                    ..AdamConfig::default()
                },
            )
        };
        let apoints = actor.num_layers() + 1;
        let cpoints = critic1.num_layers() + 1;
        let make_qat = |n: usize, policy: PrecisionPolicy, q: &QatSchedule| {
            QatRuntime::builder(n)
                .policy(policy)
                .headroom(q.headroom)
                // As in DDPG, the final point (Q-value / host-bound
                // action) is a regression output, not a hidden
                // activation — it stays full precision.
                .exclude_point(n - 1)
                .build()
                .map_err(fixar_nn::NnError::Precision)
                .map_err(RlError::from)
        };
        let (aq, c1q, c2q, atq, c1tq, c2tq) = match &cfg.qat {
            Some(q) => (
                make_qat(apoints, q.actor_policy(), q)?,
                make_qat(cpoints, q.critic_policy(), q)?,
                make_qat(cpoints, q.critic_policy(), q)?,
                make_qat(apoints, q.actor_policy(), q)?,
                make_qat(cpoints, q.critic_policy(), q)?,
                make_qat(cpoints, q.critic_policy(), q)?,
            ),
            None => (
                QatRuntime::disabled(apoints),
                QatRuntime::disabled(cpoints),
                QatRuntime::disabled(cpoints),
                QatRuntime::disabled(apoints),
                QatRuntime::disabled(cpoints),
                QatRuntime::disabled(cpoints),
            ),
        };
        Ok(Self {
            actor_target: actor.clone(),
            critic1_target: critic1.clone(),
            critic2_target: critic2.clone(),
            actor_opt: adam(cfg.actor_lr, &actor),
            critic1_opt: adam(cfg.critic_lr, &critic1),
            critic2_opt: adam(cfg.critic_lr, &critic2),
            actor_grads: MlpGrads::zeros_like(&actor),
            critic_grads: MlpGrads::zeros_like(&critic1),
            critic2_grads: MlpGrads::zeros_like(&critic2),
            critic_scratch: MlpGrads::zeros_like(&critic1),
            actor_qat: aq,
            critic1_qat: c1q,
            critic2_qat: c2q,
            actor_target_qat: atq,
            critic1_target_qat: c1tq,
            critic2_target_qat: c2tq,
            actor,
            critic1,
            critic2,
            par: Parallelism::from_env_or(cfg.parallel_workers),
            rng: StdRng::seed_from_u64(cfg.seed.wrapping_add(0x7d3)),
            cfg,
            state_dim,
            action_dim,
            critic_updates: 0,
            qat_frozen: false,
        })
    }

    /// Action dimension.
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// The online actor.
    pub fn actor(&self) -> &Mlp<S> {
        &self.actor
    }

    /// Both online critics.
    pub fn critics(&self) -> (&Mlp<S>, &Mlp<S>) {
        (&self.critic1, &self.critic2)
    }

    /// Critic updates performed so far.
    pub fn critic_updates(&self) -> u64 {
        self.critic_updates
    }

    /// The parallelism handle driving the batched kernels.
    pub fn parallelism(&self) -> &Parallelism {
        &self.par
    }

    /// Replaces the parallelism handle (any worker count yields
    /// bit-identical training results; only throughput changes).
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    /// `true` once the QAT schedule has switched to quantized activations.
    pub fn qat_frozen(&self) -> bool {
        self.qat_frozen
    }

    /// Current QAT phase of the actor runtime (diagnostics).
    pub fn qat_mode(&self) -> QatMode {
        self.actor_qat.mode()
    }

    /// The actor's QAT runtime, for snapshot freezing.
    pub(crate) fn actor_qat_runtime(&self) -> &QatRuntime {
        &self.actor_qat
    }

    /// Advances the QAT schedule across all **six** runtimes (actor,
    /// twin critics, and their targets) — the TD3 twin of
    /// [`Ddpg::on_timestep`](crate::Ddpg::on_timestep): once
    /// `global_step` reaches the delay, every runtime with calibration
    /// data freezes per its precision policy; stragglers freeze on the
    /// first later step at which they have data. Returns `true` on the
    /// step the switch completes for all six.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::Nn`]-wrapped calibration errors if a runtime
    /// with observations fails to build any quantizer (degenerate
    /// all-zero ranges) — a protocol bug, not a timing artifact.
    pub fn on_timestep(&mut self, global_step: u64) -> Result<bool, RlError> {
        let Some(q) = &self.cfg.qat else {
            return Ok(false);
        };
        if self.qat_frozen || global_step < q.delay {
            return Ok(false);
        }
        let mut all_frozen = true;
        for rt in [
            &mut self.actor_qat,
            &mut self.critic1_qat,
            &mut self.critic2_qat,
            &mut self.actor_target_qat,
            &mut self.critic1_target_qat,
            &mut self.critic2_target_qat,
        ] {
            if rt.mode() == QatMode::Quantize {
                continue;
            }
            if rt.has_observations() {
                rt.freeze_at_step(global_step)
                    .map_err(fixar_nn::NnError::Quant)?;
            } else {
                all_frozen = false;
            }
        }
        self.qat_frozen = all_frozen;
        Ok(all_frozen)
    }

    /// Actor inference. During QAT calibration this also feeds the
    /// activation range monitors, exactly like [`Ddpg::act`](crate::Ddpg::act).
    ///
    /// # Errors
    ///
    /// Returns [`RlError::Nn`] on dimension mismatch.
    pub fn act(&mut self, state: &[f64]) -> Result<Vec<f64>, RlError> {
        let s: Vec<S> = state.iter().map(|&v| S::from_f64(v)).collect();
        let trace = self.actor.forward_qat(&s, &mut self.actor_qat)?;
        Ok(trace.output.iter().map(|v| v.to_f64()).collect())
    }

    /// Batched actor inference for a fleet of environments — the TD3
    /// twin of [`Ddpg::select_actions_batch`](crate::Ddpg::select_actions_batch):
    /// one observation per row, one pool-parallel batched forward pass,
    /// row `i` bit-identical to [`Td3::act`]`(states.row(i))`.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::Nn`] if `states.cols()` differs from the
    /// observation dimension.
    pub fn select_actions_batch(&mut self, states: &Matrix<f64>) -> Result<Matrix<f64>, RlError> {
        let s: Matrix<S> = states.cast();
        let out = self
            .actor
            .forward_batch_qat_par(&s, &mut self.actor_qat, &self.par)?
            .output;
        Ok(Matrix::from_fn(out.rows(), out.cols(), |r, c| {
            out[(r, c)].to_f64()
        }))
    }

    /// One clipped Gaussian smoothing-noise draw (two uniforms through
    /// Box–Muller). Both the per-sample and the batched update draw
    /// through this single helper, so their RNG consumption — part of
    /// the bit-exactness contract — cannot drift apart.
    fn smoothing_noise(&mut self) -> f64 {
        let n: f64 = {
            let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = self.rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        (n * self.cfg.target_noise_sigma)
            .clamp(-self.cfg.target_noise_clip, self.cfg.target_noise_clip)
    }

    /// Clipped double-Q TD target for one transition.
    fn td_target(&mut self, t: &Transition, gamma: S) -> Result<S, RlError> {
        let s_next: Vec<S> = t.next_state.iter().map(|&v| S::from_f64(v)).collect();
        let mut a_next = self
            .actor_target
            .forward_qat(&s_next, &mut self.actor_target_qat)?
            .output;
        // Target policy smoothing: clipped Gaussian noise, then clamp the
        // action back into the tanh range (noise drawn per element in
        // ascending order — the RNG contract shared with the batched
        // path).
        let noises: Vec<f64> = (0..a_next.len()).map(|_| self.smoothing_noise()).collect();
        for (a, noise) in a_next.iter_mut().zip(noises) {
            let v = (a.to_f64() + noise).clamp(-1.0, 1.0);
            *a = S::from_f64(v);
        }
        let mut critic_in = s_next;
        critic_in.extend_from_slice(&a_next);
        let q1 = self
            .critic1_target
            .forward_qat(&critic_in, &mut self.critic1_target_qat)?
            .output[0];
        let q2 = self
            .critic2_target
            .forward_qat(&critic_in, &mut self.critic2_target_qat)?
            .output[0];
        let q_min = q1.min(q2);
        let bootstrap = if t.terminal { S::zero() } else { gamma * q_min };
        Ok(S::from_f64(t.reward) + bootstrap)
    }

    /// One TD3 training update with the minibatch flowing through the
    /// stack as batch matrices (the TD3 analogue of
    /// [`Ddpg::train_minibatch`](crate::Ddpg::train_minibatch)).
    ///
    /// The smoothing-noise RNG is consumed in exactly the per-sample
    /// order (ascending sample, then ascending action dimension), and
    /// gradients accumulate in ascending sample order, so the update is
    /// **bit-identical** to [`Td3::train_batch`] on the same batch from
    /// the same agent state, in every backend.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::ReplayUnderflow`] for an empty batch and
    /// [`RlError::Nn`] on shape mismatches.
    pub fn train_minibatch(&mut self, batch: &TransitionBatch) -> Result<TrainMetrics, RlError> {
        self.train_minibatch_weighted(batch, None).map(|(m, _)| m)
    }

    /// [`Td3::train_minibatch`] with optional per-sample importance
    /// weights — the TD3 twin of
    /// [`Ddpg::train_minibatch_weighted`](crate::Ddpg::train_minibatch_weighted):
    /// `weights[i]` scales sample `i`'s contribution to **both** twin
    /// critics' regression; the delayed actor/target updates stay
    /// unweighted. Returns the metrics and the per-sample TD errors of
    /// critic 1 (the critic that leads the actor), for priority
    /// feedback.
    ///
    /// With `weights == None` this is *exactly* [`Td3::train_minibatch`]
    /// — the unweighted loss expressions are untouched, so the
    /// uniform-strategy bit-exactness contract with
    /// [`Td3::train_batch`] carries over unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::ReplayUnderflow`] for an empty batch,
    /// [`RlError::InvalidConfig`] if `weights` disagrees with the batch
    /// length, and [`RlError::Nn`] on shape mismatches.
    pub fn train_minibatch_weighted(
        &mut self,
        batch: &TransitionBatch,
        weights: Option<&[f64]>,
    ) -> Result<(TrainMetrics, Vec<f64>), RlError> {
        if batch.is_empty() {
            return Err(RlError::ReplayUnderflow { have: 0, need: 1 });
        }
        if let Some(w) = weights {
            if w.len() != batch.len() {
                return Err(RlError::InvalidConfig(format!(
                    "importance weights ({}) disagree with batch ({})",
                    w.len(),
                    batch.len()
                )));
            }
        }
        let b = batch.len();
        let scale = 1.0 / b as f64;
        let gamma = S::from_f64(self.cfg.gamma);
        let par = self.par.clone();

        // Clipped double-Q targets: batched target-actor pass,
        // per-sample noise draws in the per-sample RNG order, then the
        // twin *target* critics — two independent networks on the same
        // smoothed batch — as ONE fused scope per layer instead of two
        // back-to-back batched passes (the heterogeneous-scheduling
        // tentpole at work; outputs are disjoint, per-element chains
        // untouched, so the min-bootstrap is bit-identical).
        let s_next: Matrix<S> = batch.next_states().cast();
        let mut a_next = self
            .actor_target
            .forward_batch_qat_par(&s_next, &mut self.actor_target_qat, &self.par)?
            .output;
        for i in 0..b {
            for k in 0..self.action_dim {
                let noise = self.smoothing_noise();
                let v = (a_next[(i, k)].to_f64() + noise).clamp(-1.0, 1.0);
                a_next[(i, k)] = S::from_f64(v);
            }
        }
        let target_in = s_next.hcat(&a_next).map_err(fixar_nn::NnError::Shape)?;
        let q_next = fixar_nn::forward_batch_qat_fused(
            &mut [
                fixar_nn::FusedForward {
                    mlp: &self.critic1_target,
                    input: &target_in,
                    qat: &mut self.critic1_target_qat,
                },
                fixar_nn::FusedForward {
                    mlp: &self.critic2_target,
                    input: &target_in,
                    qat: &mut self.critic2_target_qat,
                },
            ],
            &par,
        )?;
        let targets: Vec<S> = (0..b)
            .map(|i| {
                let q_min = q_next[0].output[(i, 0)].min(q_next[1].output[(i, 0)]);
                let bootstrap = if batch.terminals()[i] {
                    S::zero()
                } else {
                    gamma * q_min
                };
                S::from_f64(batch.rewards()[i]) + bootstrap
            })
            .collect();

        // Both critics regress toward the shared clipped targets: the
        // twin forwards fuse (one scope per layer), the losses and TD
        // errors accumulate in the sequential order (critic 1's samples
        // then critic 2's), and the twin backwards fuse — each critic
        // owning its gradient buffer, so all four per-layer kernels
        // (2× outer product, 2× error MVM) share a single join.
        let states: Matrix<S> = batch.states().cast();
        let actions: Matrix<S> = batch.actions().cast();
        let critic_in = states.hcat(&actions).map_err(fixar_nn::NnError::Shape)?;
        let mut critic_loss = 0.0;
        let mut q_sum = 0.0;
        let mut td_errors = Vec::with_capacity(b);
        self.critic_grads.reset();
        self.critic2_grads.reset();
        let traces = fixar_nn::forward_batch_qat_fused(
            &mut [
                fixar_nn::FusedForward {
                    mlp: &self.critic1,
                    input: &critic_in,
                    qat: &mut self.critic1_qat,
                },
                fixar_nn::FusedForward {
                    mlp: &self.critic2,
                    input: &critic_in,
                    qat: &mut self.critic2_qat,
                },
            ],
            &par,
        )?;
        let mut dls = [Matrix::<S>::zeros(b, 1), Matrix::<S>::zeros(b, 1)];
        for critic_idx in 0..2 {
            let trace = &traces[critic_idx];
            let dl = &mut dls[critic_idx];
            for (i, &y) in targets.iter().enumerate() {
                let q = trace.output[(i, 0)];
                if critic_idx == 0 {
                    q_sum += q.to_f64();
                }
                let td = q.to_f64() - y.to_f64();
                if critic_idx == 0 {
                    td_errors.push(td);
                }
                match weights {
                    None => {
                        critic_loss += 0.5 * td * td * scale * 0.5;
                        dl[(i, 0)] = (q - y) * S::from_f64(scale);
                    }
                    Some(w) => {
                        critic_loss += 0.5 * w[i] * td * td * scale * 0.5;
                        dl[(i, 0)] = (q - y) * S::from_f64(w[i] * scale);
                    }
                }
            }
        }
        let [dl1, dl2] = &dls;
        fixar_nn::backward_batch_fused(
            &mut [
                fixar_nn::FusedBackward {
                    mlp: &self.critic1,
                    trace: &traces[0],
                    dl_dout: dl1,
                    grads: &mut self.critic_grads,
                },
                fixar_nn::FusedBackward {
                    mlp: &self.critic2,
                    trace: &traces[1],
                    dl_dout: dl2,
                    grads: &mut self.critic2_grads,
                },
            ],
            &par,
        )?;
        self.critic1_opt
            .step(&mut self.critic1, &self.critic_grads)?;
        self.critic2_opt
            .step(&mut self.critic2, &self.critic2_grads)?;
        self.critic_updates += 1;

        // Delayed policy and target updates (through critic 1 only).
        if self.critic_updates.is_multiple_of(self.cfg.policy_delay) {
            self.actor_grads.reset();
            self.critic_scratch.reset();
            let atrace =
                self.actor
                    .forward_batch_qat_par(&states, &mut self.actor_qat, &self.par)?;
            let policy_in = states
                .hcat(&atrace.output)
                .map_err(fixar_nn::NnError::Shape)?;
            let ctrace =
                self.critic1
                    .forward_batch_qat_par(&policy_in, &mut self.critic1_qat, &self.par)?;
            let minus_scale = Matrix::from_fn(b, 1, |_, _| S::from_f64(-scale));
            let dq_dinput = self.critic1.backward_batch_par(
                &ctrace,
                &minus_scale,
                &mut self.critic_scratch,
                &self.par,
            )?;
            let dq_da = dq_dinput.columns(self.state_dim, self.state_dim + self.action_dim);
            self.actor
                .backward_batch_par(&atrace, &dq_da, &mut self.actor_grads, &self.par)?;
            self.actor_opt.step(&mut self.actor, &self.actor_grads)?;
            self.actor_target
                .soft_update_from(&self.actor, self.cfg.tau)?;
            self.critic1_target
                .soft_update_from(&self.critic1, self.cfg.tau)?;
            self.critic2_target
                .soft_update_from(&self.critic2, self.cfg.tau)?;
        }

        Ok((
            TrainMetrics {
                critic_loss,
                mean_q: q_sum * scale,
            },
            td_errors,
        ))
    }

    /// One TD3 training update from a batch, one sample at a time — the
    /// bit-exactness reference for [`Td3::train_minibatch`]. Critics
    /// update every call; the actor and targets update every
    /// `policy_delay` calls.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::ReplayUnderflow`] for an empty batch and
    /// [`RlError::Nn`] on shape mismatches.
    pub fn train_batch(&mut self, batch: &[&Transition]) -> Result<TrainMetrics, RlError> {
        if batch.is_empty() {
            return Err(RlError::ReplayUnderflow { have: 0, need: 1 });
        }
        let b = batch.len();
        let scale = 1.0 / b as f64;
        let gamma = S::from_f64(self.cfg.gamma);

        let mut targets = Vec::with_capacity(b);
        for t in batch {
            targets.push(self.td_target(t, gamma)?);
        }

        // Both critics regress toward the shared clipped targets.
        let mut critic_loss = 0.0;
        let mut q_sum = 0.0;
        for critic_idx in 0..2 {
            self.critic_grads.reset();
            for (t, &y) in batch.iter().zip(&targets) {
                let mut input: Vec<S> = t.state.iter().map(|&v| S::from_f64(v)).collect();
                input.extend(t.action.iter().map(|&v| S::from_f64(v)));
                let (critic, qat) = if critic_idx == 0 {
                    (&self.critic1, &mut self.critic1_qat)
                } else {
                    (&self.critic2, &mut self.critic2_qat)
                };
                let trace = critic.forward_qat(&input, qat)?;
                let q = trace.output[0];
                if critic_idx == 0 {
                    q_sum += q.to_f64();
                }
                let td = q.to_f64() - y.to_f64();
                critic_loss += 0.5 * td * td * scale * 0.5;
                let dl = [(q - y) * S::from_f64(scale)];
                if critic_idx == 0 {
                    self.critic1.backward(&trace, &dl, &mut self.critic_grads)?;
                } else {
                    self.critic2.backward(&trace, &dl, &mut self.critic_grads)?;
                }
            }
            if critic_idx == 0 {
                self.critic1_opt
                    .step(&mut self.critic1, &self.critic_grads)?;
            } else {
                self.critic2_opt
                    .step(&mut self.critic2, &self.critic_grads)?;
            }
        }
        self.critic_updates += 1;

        // Delayed policy and target updates (through critic 1 only, per
        // the TD3 paper).
        if self.critic_updates.is_multiple_of(self.cfg.policy_delay) {
            self.actor_grads.reset();
            self.critic_scratch.reset();
            let minus_scale = [S::from_f64(-scale)];
            for t in batch {
                let s: Vec<S> = t.state.iter().map(|&v| S::from_f64(v)).collect();
                let atrace = self.actor.forward_qat(&s, &mut self.actor_qat)?;
                let mut critic_in = s;
                critic_in.extend_from_slice(&atrace.output);
                let ctrace = self
                    .critic1
                    .forward_qat(&critic_in, &mut self.critic1_qat)?;
                let dq_dinput =
                    self.critic1
                        .backward(&ctrace, &minus_scale, &mut self.critic_scratch)?;
                let dq_da = &dq_dinput[self.state_dim..];
                self.actor.backward(&atrace, dq_da, &mut self.actor_grads)?;
            }
            self.actor_opt.step(&mut self.actor, &self.actor_grads)?;
            self.actor_target
                .soft_update_from(&self.actor, self.cfg.tau)?;
            self.critic1_target
                .soft_update_from(&self.critic1, self.cfg.tau)?;
            self.critic2_target
                .soft_update_from(&self.critic2, self.cfg.tau)?;
        }

        Ok(TrainMetrics {
            critic_loss,
            mean_q: q_sum * scale,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_fixed::Fx32;

    fn toy_batch(n: usize) -> Vec<Transition> {
        let mut rng = StdRng::seed_from_u64(0);
        (0..n)
            .map(|_| Transition {
                state: vec![rng.gen_range(-1.0..1.0); 3],
                action: vec![rng.gen_range(-1.0..1.0)],
                reward: rng.gen_range(-1.0..1.0),
                next_state: vec![rng.gen_range(-1.0..1.0); 3],
                terminal: rng.gen_bool(0.1),
            })
            .collect()
    }

    #[test]
    fn construction_validates() {
        let mut bad = Td3Config::small_test();
        bad.policy_delay = 0;
        assert!(Td3::<f64>::new(3, 1, bad).is_err());
        assert!(Td3::<f64>::new(0, 1, Td3Config::small_test()).is_err());
        assert!(Td3::<f64>::new(3, 1, Td3Config::small_test()).is_ok());
    }

    #[test]
    fn actor_updates_are_delayed() {
        let data = toy_batch(8);
        let refs: Vec<&Transition> = data.iter().collect();
        let mut agent = Td3::<f64>::new(3, 1, Td3Config::small_test()).unwrap();
        let actor_before = agent.actor().clone();
        // First critic update: policy_delay = 2, so the actor must not move.
        agent.train_batch(&refs).unwrap();
        assert_eq!(agent.actor(), &actor_before, "actor updated too early");
        // Second: now it moves.
        agent.train_batch(&refs).unwrap();
        assert_ne!(agent.actor(), &actor_before, "actor never updated");
        assert_eq!(agent.critic_updates(), 2);
    }

    #[test]
    fn twin_critics_diverge_from_different_seeds_then_both_learn() {
        let data = toy_batch(16);
        let refs: Vec<&Transition> = data.iter().collect();
        let mut agent = Td3::<f64>::new(3, 1, Td3Config::small_test()).unwrap();
        let (c1, c2) = agent.critics();
        assert_ne!(c1, c2, "twin critics must start differently");
        let first = agent.train_batch(&refs).unwrap();
        let mut last = first;
        for _ in 0..150 {
            last = agent.train_batch(&refs).unwrap();
        }
        assert!(
            last.critic_loss < first.critic_loss,
            "TD3 critics should fit: {} -> {}",
            first.critic_loss,
            last.critic_loss
        );
    }

    #[test]
    fn td3_trains_in_fixed_point() {
        let data = toy_batch(16);
        let refs: Vec<&Transition> = data.iter().collect();
        let mut cfg = Td3Config::small_test();
        cfg.critic_lr = 1e-3;
        let mut agent = Td3::<Fx32>::new(3, 1, cfg).unwrap();
        let first = agent.train_batch(&refs).unwrap();
        let mut last = first;
        for _ in 0..150 {
            last = agent.train_batch(&refs).unwrap();
        }
        assert!(last.critic_loss < first.critic_loss);
    }

    #[test]
    fn clipped_double_q_never_exceeds_single_q() {
        // The TD3 target uses min(Q1', Q2'): for any transition it is at
        // most what either single critic would bootstrap.
        let mut agent = Td3::<f64>::new(3, 1, Td3Config::small_test()).unwrap();
        let data = toy_batch(8);
        let gamma = agent.cfg.gamma;
        for t in &data {
            if t.terminal {
                continue;
            }
            let y = agent.td_target(t, gamma).unwrap();
            // Recompute both single-critic bootstraps with smoothing off
            // for an upper bound (noise is clipped, actions clamped, so
            // the min-property still holds per draw; we check against a
            // fresh draw being bounded by max of the two critics).
            let s_next: Vec<f64> = t.next_state.clone();
            let a_next = agent.act(&s_next).unwrap(); // online actor ≈ target at init
            let mut ci = s_next;
            ci.extend(a_next);
            let q1 = agent.critic1_target.forward(&ci).unwrap()[0];
            let q2 = agent.critic2_target.forward(&ci).unwrap()[0];
            let upper = t.reward + gamma * q1.max(q2) + 0.2; // smoothing slack
            assert!(y <= upper, "target {y} above loose bound {upper}");
        }
    }

    #[test]
    fn minibatch_update_is_bit_identical_to_per_sample() {
        let data = toy_batch(20);
        let refs: Vec<&Transition> = data.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs).unwrap();

        // Fx32 and f64: same agent state, same RNG stream, same batch —
        // both paths must agree bit-for-bit across several updates
        // (including the delayed actor update at step 2).
        let mut a32 = Td3::<Fx32>::new(3, 1, Td3Config::small_test()).unwrap();
        let mut b32 = a32.clone();
        for step in 0..4 {
            let ma = a32.train_batch(&refs).unwrap();
            let mb = b32.train_minibatch(&batch).unwrap();
            assert_eq!(ma, mb, "Fx32 metrics diverged at step {step}");
        }
        assert_eq!(a32.actor(), b32.actor());
        assert_eq!(a32.critics(), b32.critics());

        let mut a64 = Td3::<f64>::new(3, 1, Td3Config::small_test()).unwrap();
        let mut b64 = a64.clone();
        for _ in 0..4 {
            a64.train_batch(&refs).unwrap();
            b64.train_minibatch(&batch).unwrap();
        }
        assert_eq!(a64.actor(), b64.actor());
        assert_eq!(a64.critic_updates(), b64.critic_updates());
    }

    #[test]
    fn pooled_td3_minibatch_bit_exact_across_worker_counts() {
        let data = toy_batch(20);
        let refs: Vec<&Transition> = data.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs).unwrap();

        let mut reference = Td3::<Fx32>::new(3, 1, Td3Config::small_test()).unwrap();
        let mut pooled: Vec<Td3<Fx32>> = [1, 2, 4, 8]
            .iter()
            .map(|&w| {
                let mut agent = reference.clone();
                agent.set_parallelism(Parallelism::with_workers(w));
                agent
            })
            .collect();
        // Four updates so the delayed actor update fires twice.
        for step in 0..4 {
            let m_ref = reference.train_batch(&refs).unwrap();
            for agent in pooled.iter_mut() {
                let m = agent.train_minibatch(&batch).unwrap();
                assert_eq!(m_ref, m, "metrics diverged at step {step}");
            }
        }
        for agent in &pooled {
            assert_eq!(reference.actor(), agent.actor());
            assert_eq!(reference.critics(), agent.critics());
        }
    }

    #[test]
    fn minibatch_empty_batch_is_an_error() {
        let mut agent = Td3::<f64>::new(3, 1, Td3Config::small_test()).unwrap();
        let empty = TransitionBatch::from_transitions(&[]).unwrap();
        assert!(agent.train_minibatch(&empty).is_err());
    }

    #[test]
    fn qat_schedule_freezes_all_six_runtimes() {
        let data = toy_batch(16);
        let refs: Vec<&Transition> = data.iter().collect();
        let mut agent = Td3::<f64>::new(3, 1, Td3Config::small_test().with_qat(1, 16)).unwrap();
        assert_eq!(agent.qat_mode(), QatMode::Calibrate);
        // Feed every runtime: the online actor only runs in the delayed
        // policy update, so two critic updates (policy_delay = 2) are
        // needed before all six runtimes have calibration data.
        agent.train_batch(&refs).unwrap();
        agent.train_batch(&refs).unwrap();
        let frozen = agent.on_timestep(2).unwrap();
        assert!(frozen, "all six runtimes had data; freeze must complete");
        assert!(agent.qat_frozen());
        assert_eq!(agent.qat_mode(), QatMode::Quantize);
        // Still trains after the switch.
        agent.train_batch(&refs).unwrap();
    }

    #[test]
    fn qat_minibatch_is_bit_identical_to_per_sample() {
        let data = toy_batch(20);
        let refs: Vec<&Transition> = data.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs).unwrap();
        let mut a = Td3::<Fx32>::new(3, 1, Td3Config::small_test().with_qat(1, 16)).unwrap();
        let mut b = a.clone();
        for step in 0..4 {
            let ma = a.train_batch(&refs).unwrap();
            let mb = b.train_minibatch(&batch).unwrap();
            assert_eq!(ma, mb, "QAT metrics diverged at step {step}");
            a.on_timestep(step + 1).unwrap();
            b.on_timestep(step + 1).unwrap();
            assert_eq!(a.qat_frozen(), b.qat_frozen());
        }
        assert!(a.qat_frozen(), "schedule should have frozen by now");
        assert_eq!(a.actor(), b.actor());
        assert_eq!(a.critics(), b.critics());
    }

    #[test]
    fn mixed_precision_qat_gives_actor_and_critics_different_widths() {
        let data = toy_batch(8);
        let refs: Vec<&Transition> = data.iter().collect();
        let mut agent = Td3::<f64>::new(
            3,
            1,
            Td3Config::small_test().with_mixed_precision_qat(1, 8, 16),
        )
        .unwrap();
        agent.train_batch(&refs).unwrap();
        agent.train_batch(&refs).unwrap();
        assert!(agent.on_timestep(2).unwrap());
        let actor_fmt = agent.actor_qat_runtime().point_format(0).unwrap();
        assert_eq!(actor_fmt.total_bits(), 8);
        for critic_qat in [&agent.critic1_qat, &agent.critic2_qat] {
            let fmt = critic_qat.point_format(0).unwrap();
            assert_eq!(fmt.total_bits(), 16);
        }
    }

    #[test]
    fn bounded_actions() {
        let mut agent = Td3::<f64>::new(4, 2, Td3Config::small_test()).unwrap();
        let a = agent.act(&[5.0, -5.0, 5.0, -5.0]).unwrap();
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn empty_batch_is_an_error() {
        let mut agent = Td3::<f64>::new(3, 1, Td3Config::small_test()).unwrap();
        assert!(agent.train_batch(&[]).is_err());
    }
}
