//! Experience replay.

use fixar_tensor::{Matrix, ShapeError};
use rand::rngs::StdRng;
use rand::Rng;

/// One environment transition `(s, a, r, s', done)`.
///
/// Stored in `f64` on the host side; batches are converted to the
/// accelerator's numeric format when they are shipped over "PCIe".
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State the action was taken in.
    pub state: Vec<f64>,
    /// Action taken (normalized to `[-1, 1]`).
    pub action: Vec<f64>,
    /// Immediate reward.
    pub reward: f64,
    /// Resulting state.
    pub next_state: Vec<f64>,
    /// `true` if `next_state` is terminal (no bootstrapping).
    pub terminal: bool,
}

/// Fixed-capacity uniform-replay ring buffer.
///
/// # Example
///
/// ```
/// use fixar_rl::{ReplayBuffer, Transition};
///
/// let mut buf = ReplayBuffer::new(100);
/// buf.push(Transition {
///     state: vec![0.0],
///     action: vec![0.1],
///     reward: 1.0,
///     next_state: vec![0.2],
///     terminal: false,
/// });
/// assert_eq!(buf.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    storage: Vec<Transition>,
    capacity: usize,
    write_head: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer needs positive capacity");
        Self {
            storage: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            write_head: 0,
        }
    }

    /// Stored transition count.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// Maximum capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a transition, overwriting the oldest once full.
    pub fn push(&mut self, t: Transition) {
        if self.storage.len() < self.capacity {
            self.storage.push(t);
        } else {
            self.storage[self.write_head] = t;
        }
        self.write_head = (self.write_head + 1) % self.capacity;
    }

    /// Samples `batch` transitions uniformly (with replacement — the
    /// hardware batch builder does the same single-ported read pattern).
    ///
    /// Returns an empty vector when the buffer holds fewer than `batch`
    /// transitions; callers treat that as "keep exploring".
    pub fn sample<'a>(&'a self, batch: usize, rng: &mut StdRng) -> Vec<&'a Transition> {
        if self.storage.len() < batch {
            return Vec::new();
        }
        (0..batch)
            .map(|_| &self.storage[rng.gen_range(0..self.storage.len())])
            .collect()
    }

    /// Samples `batch` transitions **directly into batch matrices** —
    /// the entry point of the batched training path. The gather is
    /// [`ReplayBuffer::sample`] itself (one shared draw path, so the two
    /// cannot drift): identical RNG states produce identical index
    /// sequences and leave the RNG in identical states.
    ///
    /// Returns `None` when the buffer holds fewer than `batch`
    /// transitions.
    ///
    /// # Panics
    ///
    /// Panics if stored transitions have inconsistent dimensions (the
    /// push path does not validate, matching [`ReplayBuffer::sample`]'s
    /// contract that callers store homogeneous transitions).
    pub fn sample_batch(&self, batch: usize, rng: &mut StdRng) -> Option<TransitionBatch> {
        if batch == 0 {
            return None;
        }
        let picks = self.sample(batch, rng);
        if picks.is_empty() {
            return None;
        }
        Some(TransitionBatch::from_transitions(&picks).expect("homogeneous replay storage"))
    }

    /// Read access to the stored transitions in ring order (the order
    /// they were pushed, modulo wraparound) — the fleet-equivalence
    /// tests compare two trainers' replay contents through this.
    pub fn as_slice(&self) -> &[Transition] {
        &self.storage
    }
}

/// A minibatch of transitions in structure-of-arrays form: one sample
/// per matrix row, ready for the batched kernels without per-sample
/// staging. Row `b` holds exactly the fields of the `b`-th sampled
/// [`Transition`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionBatch {
    states: Matrix<f64>,
    actions: Matrix<f64>,
    rewards: Vec<f64>,
    next_states: Matrix<f64>,
    terminals: Vec<bool>,
}

impl TransitionBatch {
    /// Packs borrowed transitions into batch matrices, in slice order.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the transitions disagree on state or
    /// action dimensions.
    pub fn from_transitions(batch: &[&Transition]) -> Result<Self, ShapeError> {
        let state_dim = batch.first().map_or(0, |t| t.state.len());
        let action_dim = batch.first().map_or(0, |t| t.action.len());
        Ok(Self {
            states: Matrix::from_row_fn(batch, state_dim, |t| t.state.as_slice())?,
            actions: Matrix::from_row_fn(batch, action_dim, |t| t.action.as_slice())?,
            rewards: batch.iter().map(|t| t.reward).collect(),
            next_states: Matrix::from_row_fn(batch, state_dim, |t| t.next_state.as_slice())?,
            terminals: batch.iter().map(|t| t.terminal).collect(),
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.rewards.len()
    }

    /// `true` for a 0-sample batch.
    pub fn is_empty(&self) -> bool {
        self.rewards.is_empty()
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        self.states.cols()
    }

    /// Action dimension.
    pub fn action_dim(&self) -> usize {
        self.actions.cols()
    }

    /// `(batch, state_dim)` state matrix.
    pub fn states(&self) -> &Matrix<f64> {
        &self.states
    }

    /// `(batch, action_dim)` action matrix.
    pub fn actions(&self) -> &Matrix<f64> {
        &self.actions
    }

    /// Per-sample rewards.
    pub fn rewards(&self) -> &[f64] {
        &self.rewards
    }

    /// `(batch, state_dim)` successor-state matrix.
    pub fn next_states(&self) -> &Matrix<f64> {
        &self.next_states
    }

    /// Per-sample terminal flags.
    pub fn terminals(&self) -> &[bool] {
        &self.terminals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(v: f64) -> Transition {
        Transition {
            state: vec![v],
            action: vec![v],
            reward: v,
            next_state: vec![v + 1.0],
            terminal: false,
        }
    }

    #[test]
    fn fills_then_wraps() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f64));
        }
        assert_eq!(buf.len(), 3);
        // Oldest (0, 1) were overwritten by (3, 4); 2 survives.
        let rewards: Vec<f64> = buf.storage.iter().map(|t| t.reward).collect();
        assert!(rewards.contains(&2.0));
        assert!(rewards.contains(&3.0));
        assert!(rewards.contains(&4.0));
    }

    #[test]
    fn sample_respects_underflow() {
        let mut buf = ReplayBuffer::new(10);
        let mut rng = StdRng::seed_from_u64(0);
        buf.push(t(1.0));
        assert!(buf.sample(2, &mut rng).is_empty());
        buf.push(t(2.0));
        assert_eq!(buf.sample(2, &mut rng).len(), 2);
    }

    #[test]
    fn sample_is_deterministic_per_seed() {
        let mut buf = ReplayBuffer::new(100);
        for i in 0..100 {
            buf.push(t(i as f64));
        }
        let a: Vec<f64> = buf
            .sample(10, &mut StdRng::seed_from_u64(7))
            .iter()
            .map(|t| t.reward)
            .collect();
        let b: Vec<f64> = buf
            .sample(10, &mut StdRng::seed_from_u64(7))
            .iter()
            .map(|t| t.reward)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sample_covers_the_buffer() {
        let mut buf = ReplayBuffer::new(16);
        for i in 0..16 {
            buf.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            for tr in buf.sample(16, &mut rng) {
                seen.insert(tr.reward as i64);
            }
        }
        assert_eq!(seen.len(), 16, "uniform sampling should reach every slot");
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        let _ = ReplayBuffer::new(0);
    }

    #[test]
    fn sample_batch_matches_sample_draw_sequence() {
        let mut buf = ReplayBuffer::new(64);
        for i in 0..64 {
            buf.push(t(i as f64));
        }
        let refs = buf.sample(16, &mut StdRng::seed_from_u64(11));
        let batch = buf
            .sample_batch(16, &mut StdRng::seed_from_u64(11))
            .expect("filled buffer");
        assert_eq!(batch.len(), 16);
        let from_refs = TransitionBatch::from_transitions(&refs).unwrap();
        assert_eq!(batch, from_refs, "same RNG stream must pick same rows");
    }

    #[test]
    fn sample_paths_share_one_gather_from_any_rng_state() {
        // The anti-drift contract: from the *same mid-stream* RNG state,
        // `sample` and `sample_batch` draw identical indices and leave
        // the RNG in identical states (sample_batch delegates to sample,
        // so a divergence here means the shared gather was forked).
        let mut buf = ReplayBuffer::new(32);
        for i in 0..32 {
            buf.push(t(i as f64));
        }
        let mut rng_a = StdRng::seed_from_u64(17);
        // Advance past the seed point so the test pins mid-stream state.
        for _ in 0..5 {
            let _: f64 = rng_a.gen_range(0.0..1.0);
        }
        let mut rng_b = rng_a.clone();
        let refs = buf.sample(8, &mut rng_a);
        let batch = buf.sample_batch(8, &mut rng_b).expect("filled buffer");
        assert_eq!(batch, TransitionBatch::from_transitions(&refs).unwrap());
        // Both paths consumed exactly the same draws.
        assert_eq!(rng_a, rng_b);
        assert_eq!(
            rng_a.gen_range(0..1_000_000usize),
            rng_b.gen_range(0..1_000_000usize)
        );
    }

    #[test]
    fn as_slice_exposes_ring_order() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..4 {
            buf.push(t(i as f64));
        }
        // Slot 0 was overwritten by the 4th push (ring order).
        let rewards: Vec<f64> = buf.as_slice().iter().map(|t| t.reward).collect();
        assert_eq!(rewards, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn sample_batch_respects_underflow() {
        let mut buf = ReplayBuffer::new(8);
        buf.push(t(1.0));
        let mut rng = StdRng::seed_from_u64(0);
        assert!(buf.sample_batch(2, &mut rng).is_none());
        assert!(buf.sample_batch(0, &mut rng).is_none());
    }

    #[test]
    fn transition_batch_rows_mirror_transitions() {
        let data: Vec<Transition> = (0..4).map(|i| t(i as f64)).collect();
        let refs: Vec<&Transition> = data.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs).unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.state_dim(), 1);
        assert_eq!(batch.action_dim(), 1);
        for (b, tr) in data.iter().enumerate() {
            assert_eq!(batch.states().row(b), tr.state.as_slice());
            assert_eq!(batch.actions().row(b), tr.action.as_slice());
            assert_eq!(batch.next_states().row(b), tr.next_state.as_slice());
            assert_eq!(batch.rewards()[b], tr.reward);
            assert_eq!(batch.terminals()[b], tr.terminal);
        }
    }

    #[test]
    fn transition_batch_rejects_ragged_dimensions() {
        let a = t(1.0);
        let mut b = t(2.0);
        b.state = vec![1.0, 2.0];
        assert!(TransitionBatch::from_transitions(&[&a, &b]).is_err());
    }
}
