//! Experience replay at scale: a structure-of-arrays ring buffer with
//! gather-based sampling and prioritized replay.
//!
//! # Layout
//!
//! [`ReplayBuffer`] stores transitions **pre-transposed**: states,
//! actions, and next-states live in column-major `Matrix<f64>` panels
//! (one stored sample per logical column, held as the row-major
//! transpose `(capacity, dim)` — see [`Matrix::gather_columns`]),
//! rewards and terminal flags in one flat interleaved lane (a pick
//! touches a single cache line for both). All lanes are
//! allocated **once**, to full capacity, so steady-state insertion is a
//! wrap-around write with no allocation and no per-transition `Vec`s.
//! Sampling a minibatch is then a column gather straight into the batch
//! matrices the batched kernels consume — no per-sample row staging,
//! no pointer chasing through `Vec<f64>` fields.
//!
//! # Determinism contract
//!
//! * Uniform sampling draws exactly the index sequence of the legacy
//!   array-of-structs buffer (`batch` × `gen_range(0..len)` on the
//!   caller's RNG), and the gathered [`TransitionBatch`] is
//!   bit-identical to packing the same picks through
//!   [`TransitionBatch::from_transitions`] — so trainers built on this
//!   buffer reproduce their pre-SoA runs bit-for-bit.
//! * The pool-parallel gather ([`Matrix::gather_columns_par`]) is
//!   bit-identical to the sequential one at every worker count.
//! * Prioritized sampling ([`PrioritizedReplay`]) draws from its own
//!   RNG stream (`priority_stream_seed`) and walks a deterministic
//!   sum-tree, so prioritized runs are reproducible per seed and
//!   invariant to `FIXAR_WORKERS`.

use fixar_pool::Parallelism;
use fixar_tensor::{Matrix, ShapeError};
use rand::rngs::StdRng;
use rand::Rng;

/// One environment transition `(s, a, r, s', done)`.
///
/// Stored in `f64` on the host side; batches are converted to the
/// accelerator's numeric format when they are shipped over "PCIe".
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State the action was taken in.
    pub state: Vec<f64>,
    /// Action taken (normalized to `[-1, 1]`).
    pub action: Vec<f64>,
    /// Immediate reward.
    pub reward: f64,
    /// Resulting state.
    pub next_state: Vec<f64>,
    /// `true` if `next_state` is terminal (no bootstrapping).
    pub terminal: bool,
}

/// Fixed-capacity replay ring buffer in structure-of-arrays form.
///
/// # Example
///
/// ```
/// use fixar_rl::{ReplayBuffer, Transition};
///
/// let mut buf = ReplayBuffer::new(100);
/// buf.push(Transition {
///     state: vec![0.0],
///     action: vec![0.1],
///     reward: 1.0,
///     next_state: vec![0.2],
///     terminal: false,
/// });
/// assert_eq!(buf.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    /// Stored transpose of the column-major `(state_dim, capacity)`
    /// state panel: stored row `i` = slot `i`'s state, contiguous.
    states: Matrix<f64>,
    actions: Matrix<f64>,
    next_states: Matrix<f64>,
    /// `(reward, terminal)` per slot, interleaved so one pick reads one
    /// cache line for both scalars.
    meta: Vec<(f64, bool)>,
    capacity: usize,
    len: usize,
    write_head: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions. The
    /// state/action dimensions are learned from the first push, at
    /// which point every lane is allocated to full capacity in one
    /// shot; prefer [`ReplayBuffer::with_dims`] when the dimensions are
    /// known up front (the trainers always know them) so construction
    /// does the single allocation instead.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer needs positive capacity");
        Self {
            states: Matrix::zeros(0, 0),
            actions: Matrix::zeros(0, 0),
            next_states: Matrix::zeros(0, 0),
            meta: Vec::new(),
            capacity,
            len: 0,
            write_head: 0,
        }
    }

    /// Creates a buffer with every lane preallocated to full capacity —
    /// no allocation ever happens on the push path.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_dims(capacity: usize, state_dim: usize, action_dim: usize) -> Self {
        let mut buf = Self::new(capacity);
        buf.allocate(state_dim, action_dim);
        buf
    }

    fn allocate(&mut self, state_dim: usize, action_dim: usize) {
        self.states = Matrix::zeros(self.capacity, state_dim);
        self.actions = Matrix::zeros(self.capacity, action_dim);
        self.next_states = Matrix::zeros(self.capacity, state_dim);
        self.meta = vec![(0.0, false); self.capacity];
    }

    fn allocated(&self) -> bool {
        self.states.rows() == self.capacity
    }

    /// Stored transition count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(state_dim, action_dim)` once known (after construction via
    /// [`ReplayBuffer::with_dims`] or the first push).
    pub fn dims(&self) -> Option<(usize, usize)> {
        self.allocated()
            .then(|| (self.states.cols(), self.actions.cols()))
    }

    /// The state panel's stored transpose (`(capacity, state_dim)`;
    /// rows beyond [`ReplayBuffer::len`] are unwritten zeros). Exposed
    /// for the capacity-stability tests and the replay benches.
    pub fn state_panel(&self) -> &Matrix<f64> {
        &self.states
    }

    /// The action panel's stored transpose (`(capacity, action_dim)`).
    pub fn action_panel(&self) -> &Matrix<f64> {
        &self.actions
    }

    /// The next-state panel's stored transpose.
    pub fn next_state_panel(&self) -> &Matrix<f64> {
        &self.next_states
    }

    /// Inserts a transition, overwriting the oldest once full. Returns
    /// the slot index written (the hook prioritized replay uses to
    /// assign the new transition its initial priority).
    ///
    /// # Panics
    ///
    /// Panics if the transition's dimensions disagree with the buffer's
    /// (fixed at construction or by the first push) — the push path is
    /// where the homogeneous-storage contract is now enforced.
    pub fn push(&mut self, t: Transition) -> usize {
        if !self.allocated() {
            self.allocate(t.state.len(), t.action.len());
        }
        let (state_dim, action_dim) = (self.states.cols(), self.actions.cols());
        assert_eq!(t.state.len(), state_dim, "replay push: state dim changed");
        assert_eq!(
            t.action.len(),
            action_dim,
            "replay push: action dim changed"
        );
        assert_eq!(
            t.next_state.len(),
            state_dim,
            "replay push: next-state dim changed"
        );
        let slot = self.write_head;
        self.states.row_mut(slot).copy_from_slice(&t.state);
        self.actions.row_mut(slot).copy_from_slice(&t.action);
        self.next_states
            .row_mut(slot)
            .copy_from_slice(&t.next_state);
        self.meta[slot] = (t.reward, t.terminal);
        if self.len < self.capacity {
            self.len += 1;
        }
        self.write_head = (self.write_head + 1) % self.capacity;
        slot
    }

    /// Draws `batch` slot indices uniformly with replacement — the
    /// **single shared draw path** of uniform sampling: exactly `batch`
    /// `gen_range(0..len)` calls in order (the legacy buffer's draw
    /// sequence, so pre-SoA runs reproduce bit-for-bit), or no draws at
    /// all when the buffer holds fewer than `batch` transitions
    /// (returns an empty vector; callers treat that as "keep
    /// exploring").
    pub fn sample_indices(&self, batch: usize, rng: &mut StdRng) -> Vec<usize> {
        let mut out = Vec::with_capacity(batch);
        self.sample_indices_into(batch, rng, &mut out);
        out
    }

    /// [`ReplayBuffer::sample_indices`] into a caller-owned scratch
    /// vector (cleared first, capacity reused) — the draw half of the
    /// allocation-free sampling path. Identical RNG consumption.
    pub fn sample_indices_into(&self, batch: usize, rng: &mut StdRng, out: &mut Vec<usize>) {
        out.clear();
        if self.len < batch {
            return;
        }
        out.extend((0..batch).map(|_| rng.gen_range(0..self.len)));
    }

    /// Samples `batch` transitions uniformly (with replacement — the
    /// hardware batch builder does the same single-ported read pattern),
    /// materialized from the panels. Returns an empty vector when the
    /// buffer holds fewer than `batch` transitions.
    pub fn sample(&self, batch: usize, rng: &mut StdRng) -> Vec<Transition> {
        self.sample_indices(batch, rng)
            .into_iter()
            .map(|i| self.transition(i))
            .collect()
    }

    /// Samples `batch` transitions **directly into batch matrices** —
    /// the entry point of the batched training path. The draw is
    /// [`ReplayBuffer::sample_indices`] (one shared path with
    /// [`ReplayBuffer::sample`], so the two cannot drift) and the pack
    /// is a column gather over the panels, bit-identical to routing the
    /// same picks through [`TransitionBatch::from_transitions`].
    ///
    /// Returns `None` when `batch == 0` or the buffer holds fewer than
    /// `batch` transitions.
    pub fn sample_batch(&self, batch: usize, rng: &mut StdRng) -> Option<TransitionBatch> {
        self.sample_batch_par(batch, rng, &Parallelism::sequential())
    }

    /// Pool-parallel [`ReplayBuffer::sample_batch`]: the gather shards
    /// disjoint output columns across the pool, bit-identical to the
    /// sequential form at every worker count (see
    /// [`Matrix::gather_columns_par`]). The RNG draw sequence is on the
    /// calling thread and identical to the sequential path.
    pub fn sample_batch_par(
        &self,
        batch: usize,
        rng: &mut StdRng,
        par: &Parallelism,
    ) -> Option<TransitionBatch> {
        let mut out = TransitionBatch::empty();
        if self.sample_batch_par_into(batch, rng, par, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// [`ReplayBuffer::sample_batch`] into a caller-owned scratch batch
    /// — the **allocation-free** sampling path the trainers drive: the
    /// scratch's lanes are reshaped in place (storage reused once
    /// grown), so after the first draw no allocation happens on the
    /// train step. Returns `false` (scratch untouched, no RNG draws)
    /// when `batch == 0` or the buffer holds fewer than `batch`
    /// transitions; otherwise the scratch holds exactly the batch
    /// [`ReplayBuffer::sample_batch`] would have returned — same draw
    /// sequence, same bytes.
    pub fn sample_batch_into(
        &self,
        batch: usize,
        rng: &mut StdRng,
        out: &mut TransitionBatch,
    ) -> bool {
        self.sample_batch_par_into(batch, rng, &Parallelism::sequential(), out)
    }

    /// Pool-parallel [`ReplayBuffer::sample_batch_into`] (see
    /// [`ReplayBuffer::sample_batch_par`] for the worker-invariance
    /// contract). The parallel arm stages its indices in a transient
    /// vector; callers that need the fully allocation-free parallel
    /// path hold the index scratch themselves and go through
    /// [`ReplaySampler::sample_into`].
    pub fn sample_batch_par_into(
        &self,
        batch: usize,
        rng: &mut StdRng,
        par: &Parallelism,
        out: &mut TransitionBatch,
    ) -> bool {
        if batch == 0 || self.len < batch {
            return false;
        }
        if par.shards(batch) <= 1 {
            // Fused draw + gather: each index is drawn and its column
            // copied in the same pass — no index vector, no second
            // validation sweep. The draw sequence (`batch` ascending
            // `gen_range(0..len)` calls) and the gathered bytes are
            // identical to the two-phase path below.
            self.gather_fused_into(batch, || rng.gen_range(0..self.len), out);
            return true;
        }
        let indices = self.sample_indices(batch, rng);
        self.gather_par_into(&indices, par, out);
        true
    }

    /// The one sequential gather loop every hot path shares: `pick()`
    /// yields the next (in-range) slot, and all five lanes fill in a
    /// single fused pass straight into the scratch batch — plain row
    /// copies into reshaped (reused) storage, so every caller produces
    /// identical bytes by construction.
    fn gather_fused_into(
        &self,
        n: usize,
        mut pick: impl FnMut() -> usize,
        out: &mut TransitionBatch,
    ) {
        let (state_dim, action_dim) = (self.states.cols(), self.actions.cols());
        out.reset_for(n, state_dim, action_dim);
        for k in 0..n {
            let i = pick();
            out.states.row_mut(k).copy_from_slice(self.states.row(i));
            out.actions.row_mut(k).copy_from_slice(self.actions.row(i));
            out.next_states
                .row_mut(k)
                .copy_from_slice(self.next_states.row(i));
            let (reward, terminal) = self.meta[i];
            out.rewards.push(reward);
            out.terminals.push(terminal);
        }
    }

    /// Gathers the transitions at `indices` into batch matrices (one
    /// contiguous column copy per pick, per panel).
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len()` — evicted or unwritten slots
    /// can never be gathered.
    pub fn gather(&self, indices: &[usize]) -> TransitionBatch {
        self.gather_par(indices, &Parallelism::sequential())
    }

    /// Pool-parallel [`ReplayBuffer::gather`].
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len()`.
    pub fn gather_par(&self, indices: &[usize], par: &Parallelism) -> TransitionBatch {
        let mut out = TransitionBatch::empty();
        self.gather_par_into(indices, par, &mut out);
        out
    }

    /// [`ReplayBuffer::gather`] into a caller-owned scratch batch
    /// (reshaped in place, storage reused — no allocation once grown).
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len()`.
    pub fn gather_into(&self, indices: &[usize], out: &mut TransitionBatch) {
        self.gather_par_into(indices, &Parallelism::sequential(), out)
    }

    /// Pool-parallel [`ReplayBuffer::gather_into`] — the single gather
    /// implementation all gather entry points funnel through.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len()`.
    pub fn gather_par_into(&self, indices: &[usize], par: &Parallelism, out: &mut TransitionBatch) {
        assert!(
            indices.iter().all(|&i| i < self.len),
            "replay gather index out of live range"
        );
        if par.shards(indices.len()) <= 1 {
            // Sequential hot path: the shared fused pass, walking the
            // given indices. Bit-identical to the per-panel kernel
            // gathers below (both are plain copies).
            let mut it = indices.iter();
            self.gather_fused_into(
                indices.len(),
                || *it.next().expect("n == indices.len()"),
                out,
            );
            return;
        }
        out.rewards.clear();
        out.terminals.clear();
        let gather = |panel: &Matrix<f64>, dst: &mut Matrix<f64>| {
            panel
                .gather_columns_par_into(indices, par, dst)
                .expect("indices checked against len <= capacity");
        };
        gather(&self.states, &mut out.states);
        gather(&self.actions, &mut out.actions);
        gather(&self.next_states, &mut out.next_states);
        out.rewards.extend(indices.iter().map(|&i| self.meta[i].0));
        out.terminals
            .extend(indices.iter().map(|&i| self.meta[i].1));
    }

    /// Materializes the transition at `slot` (ring order).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= len()`.
    pub fn transition(&self, slot: usize) -> Transition {
        assert!(slot < self.len, "replay slot out of live range");
        Transition {
            state: self.states.row(slot).to_vec(),
            action: self.actions.row(slot).to_vec(),
            reward: self.meta[slot].0,
            next_state: self.next_states.row(slot).to_vec(),
            terminal: self.meta[slot].1,
        }
    }

    /// Materializes the stored transitions in ring order (the order
    /// they were pushed, modulo wraparound) — the fleet-equivalence
    /// tests compare two trainers' replay contents through this.
    pub fn transitions(&self) -> Vec<Transition> {
        (0..self.len).map(|i| self.transition(i)).collect()
    }
}

/// A minibatch of transitions in structure-of-arrays form: one sample
/// per matrix row, ready for the batched kernels without per-sample
/// staging. Row `b` holds exactly the fields of the `b`-th sampled
/// [`Transition`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionBatch {
    states: Matrix<f64>,
    actions: Matrix<f64>,
    rewards: Vec<f64>,
    next_states: Matrix<f64>,
    terminals: Vec<bool>,
}

impl TransitionBatch {
    /// Packs borrowed transitions into batch matrices, in slice order —
    /// the legacy row-copy path, kept as the bit-exactness reference
    /// for the panel gather (and for callers that build batches from
    /// loose transitions).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the transitions disagree on state or
    /// action dimensions.
    pub fn from_transitions(batch: &[&Transition]) -> Result<Self, ShapeError> {
        let state_dim = batch.first().map_or(0, |t| t.state.len());
        let action_dim = batch.first().map_or(0, |t| t.action.len());
        Ok(Self {
            states: Matrix::from_row_fn(batch, state_dim, |t| t.state.as_slice())?,
            actions: Matrix::from_row_fn(batch, action_dim, |t| t.action.as_slice())?,
            rewards: batch.iter().map(|t| t.reward).collect(),
            next_states: Matrix::from_row_fn(batch, state_dim, |t| t.next_state.as_slice())?,
            terminals: batch.iter().map(|t| t.terminal).collect(),
        })
    }

    /// An empty batch — the natural starting value for a reusable
    /// sampling scratch (see [`ReplayBuffer::sample_batch_into`]): the
    /// first fill sizes every lane, later fills reuse the storage.
    pub fn empty() -> Self {
        Self {
            states: Matrix::zeros(0, 0),
            actions: Matrix::zeros(0, 0),
            rewards: Vec::new(),
            next_states: Matrix::zeros(0, 0),
            terminals: Vec::new(),
        }
    }

    /// Reshapes every lane for `n` samples of the given dimensions,
    /// reusing grown storage (matrices through
    /// [`Matrix::reset_shape`], vectors through `clear`).
    fn reset_for(&mut self, n: usize, state_dim: usize, action_dim: usize) {
        self.states.reset_shape(n, state_dim);
        self.actions.reset_shape(n, action_dim);
        self.next_states.reset_shape(n, state_dim);
        self.rewards.clear();
        self.terminals.clear();
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.rewards.len()
    }

    /// `true` for a 0-sample batch.
    pub fn is_empty(&self) -> bool {
        self.rewards.is_empty()
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        self.states.cols()
    }

    /// Action dimension.
    pub fn action_dim(&self) -> usize {
        self.actions.cols()
    }

    /// `(batch, state_dim)` state matrix.
    pub fn states(&self) -> &Matrix<f64> {
        &self.states
    }

    /// `(batch, action_dim)` action matrix.
    pub fn actions(&self) -> &Matrix<f64> {
        &self.actions
    }

    /// Per-sample rewards.
    pub fn rewards(&self) -> &[f64] {
        &self.rewards
    }

    /// `(batch, state_dim)` successor-state matrix.
    pub fn next_states(&self) -> &Matrix<f64> {
        &self.next_states
    }

    /// Per-sample terminal flags.
    pub fn terminals(&self) -> &[bool] {
        &self.terminals
    }
}

/// Configuration of proportional prioritized replay (Schaul et al.):
/// priorities `p_i = (|δ_i| + eps)^alpha`, importance weights
/// `w_i = (N · P(i))^-beta` normalized by the batch maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrioritizedConfig {
    /// Priority exponent `α` (0 = uniform, 1 = fully proportional).
    pub alpha: f64,
    /// Importance-sampling exponent `β` (bias correction strength).
    pub beta: f64,
    /// Floor added to `|δ|` so no transition starves.
    pub eps: f64,
}

impl Default for PrioritizedConfig {
    fn default() -> Self {
        Self {
            alpha: 0.6,
            beta: 0.4,
            eps: 1e-6,
        }
    }
}

impl PrioritizedConfig {
    pub(crate) fn validate(&self) -> Result<(), String> {
        if !(self.alpha.is_finite() && self.alpha >= 0.0) {
            return Err(format!(
                "prioritized alpha must be >= 0, got {}",
                self.alpha
            ));
        }
        if !(self.beta.is_finite() && self.beta >= 0.0) {
            return Err(format!("prioritized beta must be >= 0, got {}", self.beta));
        }
        if !(self.eps.is_finite() && self.eps > 0.0) {
            return Err(format!("prioritized eps must be > 0, got {}", self.eps));
        }
        Ok(())
    }
}

/// How a trainer samples its replay buffer.
///
/// `Uniform` is the paper's protocol and the bit-exactness anchor: a
/// uniform-strategy run reproduces the pre-SoA trainer bit-for-bit.
/// `Prioritized` is the new workload the SoA ring unlocks: proportional
/// prioritized experience replay over a sum-tree, with importance
/// weights applied in the batched critic loss.
///
/// # Example
///
/// ```
/// use fixar_rl::{DdpgConfig, PrioritizedConfig, ReplayStrategy};
///
/// // The default is the paper's uniform replay.
/// assert_eq!(DdpgConfig::default().replay, ReplayStrategy::Uniform);
///
/// // Opt a trainer into prioritized replay:
/// let cfg = DdpgConfig::small_test()
///     .with_replay(ReplayStrategy::Prioritized(PrioritizedConfig::default()));
/// let trainer = fixar_rl::Trainer::<f32>::new(
///     fixar_env::EnvKind::Pendulum.make(1),
///     fixar_env::EnvKind::Pendulum.make(2),
///     cfg,
/// )?;
/// # let _ = trainer;
/// # Ok::<(), fixar_rl::RlError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ReplayStrategy {
    /// Uniform sampling with replacement (the legacy behaviour,
    /// bit-for-bit).
    #[default]
    Uniform,
    /// Proportional prioritized replay (sum-tree, importance weights).
    Prioritized(PrioritizedConfig),
}

/// Flat binary sum-tree over `capacity` leaves (padded to a power of
/// two). Leaf `i` holds slot `i`'s priority mass; every internal node
/// holds the sum of its children, so a proportional draw is a
/// deterministic root-to-leaf descent.
#[derive(Debug, Clone)]
struct SumTree {
    base: usize,
    tree: Vec<f64>,
}

impl SumTree {
    fn new(capacity: usize) -> Self {
        let base = capacity.next_power_of_two().max(1);
        Self {
            base,
            tree: vec![0.0; 2 * base],
        }
    }

    fn total(&self) -> f64 {
        self.tree[1]
    }

    fn get(&self, leaf: usize) -> f64 {
        self.tree[self.base + leaf]
    }

    fn set(&mut self, leaf: usize, mass: f64) {
        let mut node = self.base + leaf;
        self.tree[node] = mass;
        node /= 2;
        while node >= 1 {
            // Recompute from the children (not += delta): parents are
            // always the exact sum of their current children, so the
            // tree state depends only on the leaf values, never on the
            // update history.
            self.tree[node] = self.tree[2 * node] + self.tree[2 * node + 1];
            node /= 2;
        }
    }

    /// Leaf whose cumulative-mass interval contains `mass ∈ [0, total)`.
    fn find(&self, mut mass: f64) -> usize {
        let mut node = 1;
        while node < self.base {
            let left = 2 * node;
            if mass < self.tree[left] {
                node = left;
            } else {
                mass -= self.tree[left];
                node = left + 1;
            }
        }
        node - self.base
    }
}

/// Proportional prioritized experience replay (Schaul et al. 2016) over
/// the SoA ring: a sum-tree maps TD-error-derived priorities to slots,
/// sampling is a stratified proportional draw, and per-sample
/// importance weights correct the induced bias inside the batched loss
/// (`Ddpg::train_minibatch_weighted`).
///
/// All tree updates and draws happen on the calling thread, so
/// prioritized runs are deterministic per seed and invariant to the
/// worker count (only the gather is pool-parallel, and that is
/// bit-exact).
#[derive(Debug, Clone)]
pub struct PrioritizedReplay {
    tree: SumTree,
    cfg: PrioritizedConfig,
    max_priority: f64,
    capacity: usize,
    /// Cached importance-weight buffer, refilled per draw instead of
    /// reallocated (see [`PrioritizedReplay::weights_cached`]).
    weight_buf: Vec<f64>,
}

impl PrioritizedReplay {
    /// Creates the priority structure for a buffer of `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if the config is malformed or `capacity == 0`.
    pub fn new(capacity: usize, cfg: PrioritizedConfig) -> Self {
        assert!(capacity > 0, "prioritized replay needs positive capacity");
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        Self {
            tree: SumTree::new(capacity),
            cfg,
            max_priority: 1.0,
            capacity,
            weight_buf: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PrioritizedConfig {
        &self.cfg
    }

    /// Current priority mass of `slot` (diagnostics/tests).
    pub fn priority(&self, slot: usize) -> f64 {
        self.tree.get(slot)
    }

    /// Hook for [`ReplayBuffer::push`]: the freshly written slot gets
    /// the maximum priority seen so far (new experience is sampled at
    /// least once before its TD error is known), and an overwritten
    /// slot's old priority is replaced — evicted transitions lose all
    /// sampling mass atomically with their eviction.
    pub fn on_insert(&mut self, slot: usize) {
        assert!(slot < self.capacity, "slot out of range");
        self.tree.set(slot, self.max_priority);
    }

    /// Draws `batch` slot indices proportionally to priority mass,
    /// stratified: draw `k` is uniform in the `k`-th of `batch` equal
    /// segments of the total mass (lower variance than independent
    /// draws, same deterministic RNG consumption: exactly `batch`
    /// `gen_range` calls). Indices are clamped into the live range
    /// `0..len`, so evicted/unwritten slots are never yielded.
    pub fn sample_indices(&self, len: usize, batch: usize, rng: &mut StdRng) -> Vec<usize> {
        let mut out = Vec::with_capacity(batch);
        self.sample_indices_into(len, batch, rng, &mut out);
        out
    }

    /// [`PrioritizedReplay::sample_indices`] into a caller-owned
    /// scratch vector (cleared first, capacity reused). Identical
    /// stratified draw sequence — exactly `batch` `gen_range` calls.
    ///
    /// # Panics
    ///
    /// Panics if the total priority mass is zero or `len == 0`.
    pub fn sample_indices_into(
        &self,
        len: usize,
        batch: usize,
        rng: &mut StdRng,
        out: &mut Vec<usize>,
    ) {
        let total = self.tree.total();
        assert!(
            total > 0.0 && len > 0,
            "prioritized sampling from an empty mass"
        );
        out.clear();
        out.extend((0..batch).map(|k| {
            let lo = total * k as f64 / batch as f64;
            let hi = total * (k + 1) as f64 / batch as f64;
            let mass = rng.gen_range(lo..hi);
            self.tree
                .find(mass.min(total * (1.0 - f64::EPSILON)))
                .min(len - 1)
        }));
    }

    /// The one weight computation all entry points share:
    /// `w_i = (len · P(i))^-beta`, normalized by the batch maximum so
    /// weights only scale updates **down**, filled into `out` (cleared
    /// first, capacity reused).
    fn fill_weights(tree: &SumTree, beta: f64, len: usize, indices: &[usize], out: &mut Vec<f64>) {
        let total = tree.total();
        out.clear();
        out.extend(indices.iter().map(|&i| {
            let p = tree.get(i) / total;
            (len as f64 * p).powf(-beta)
        }));
        let max = out.iter().copied().fold(0.0_f64, f64::max);
        if max > 0.0 {
            for v in out.iter_mut() {
                *v /= max;
            }
        }
    }

    /// Importance weights `w_i = (len · P(i))^-beta`, normalized by the
    /// batch maximum so weights only scale updates **down**.
    pub fn weights(&self, len: usize, indices: &[usize]) -> Vec<f64> {
        let mut w = Vec::with_capacity(indices.len());
        Self::fill_weights(&self.tree, self.cfg.beta, len, indices, &mut w);
        w
    }

    /// [`PrioritizedReplay::weights`] computed into the structure's
    /// **cached** weight buffer — the per-draw hot path: after the
    /// first draw at a given batch size, no allocation happens. The
    /// returned slice is valid until the next call.
    pub fn weights_cached(&mut self, len: usize, indices: &[usize]) -> &[f64] {
        let Self {
            tree, weight_buf, ..
        } = self;
        Self::fill_weights(tree, self.cfg.beta, len, indices, weight_buf);
        &self.weight_buf
    }

    /// Re-prioritizes `indices` from their fresh TD errors:
    /// `p_i = (|δ_i| + eps)^alpha`, applied in ascending position order
    /// (later duplicates win, deterministically).
    ///
    /// # Panics
    ///
    /// Panics if `indices` and `td_errors` disagree in length — a
    /// silent `zip` truncation would leave the tail's insert-time max
    /// priorities in place and permanently oversample those slots.
    pub fn update_priorities(&mut self, indices: &[usize], td_errors: &[f64]) {
        assert_eq!(
            indices.len(),
            td_errors.len(),
            "one TD error per re-prioritized index"
        );
        for (&i, &td) in indices.iter().zip(td_errors) {
            let p = (td.abs() + self.cfg.eps).powf(self.cfg.alpha);
            self.tree.set(i, p);
            self.max_priority = self.max_priority.max(p);
        }
    }
}

/// A sampled minibatch plus the bookkeeping prioritized replay needs:
/// which slots were drawn, and the importance weight per sample
/// (`None` under the uniform strategy — the unweighted loss stays on
/// its bit-exact legacy path).
#[derive(Debug, Clone)]
pub struct SampledBatch {
    /// The gathered minibatch.
    pub batch: TransitionBatch,
    /// Slot index each row was gathered from.
    pub indices: Vec<usize>,
    /// Per-sample importance weights (prioritized only).
    pub weights: Option<Vec<f64>>,
}

impl SampledBatch {
    /// An empty scratch for [`ReplaySampler::sample_into`]: the first
    /// draw sizes every lane (batch matrices, index vector, weight
    /// vector), every later draw reuses the storage — the train step
    /// becomes allocation-free.
    pub fn scratch() -> Self {
        Self {
            batch: TransitionBatch::empty(),
            indices: Vec::new(),
            weights: None,
        }
    }
}

impl Default for SampledBatch {
    fn default() -> Self {
        Self::scratch()
    }
}

/// Runtime sampler unifying the two [`ReplayStrategy`] arms — the
/// object the trainers drive: `on_insert` after every push, `sample`
/// before every update, `update_priorities` after it.
#[derive(Debug, Clone)]
pub enum ReplaySampler {
    /// Uniform draws on the caller's replay stream (legacy behaviour).
    Uniform,
    /// Sum-tree proportional draws on the priority stream.
    Prioritized(PrioritizedReplay),
}

impl ReplaySampler {
    /// Builds the sampler for a strategy over `capacity` slots.
    pub fn new(strategy: ReplayStrategy, capacity: usize) -> Self {
        match strategy {
            ReplayStrategy::Uniform => Self::Uniform,
            ReplayStrategy::Prioritized(cfg) => {
                Self::Prioritized(PrioritizedReplay::new(capacity, cfg))
            }
        }
    }

    /// `true` for the prioritized arm (trainers use this to pick the
    /// RNG stream the draw consumes).
    pub fn is_prioritized(&self) -> bool {
        matches!(self, Self::Prioritized(_))
    }

    /// Records that `slot` was just (over)written.
    pub fn on_insert(&mut self, slot: usize) {
        if let Self::Prioritized(p) = self {
            p.on_insert(slot);
        }
    }

    /// Samples a minibatch from `buf`, or `None` when `batch == 0` or
    /// fewer than `batch` transitions are stored (no RNG draws happen
    /// in that case, on either arm). Uniform consumes exactly the
    /// legacy draw sequence and returns no weights; prioritized draws
    /// through the sum-tree and attaches importance weights. Both arms
    /// gather through the pool behind `par`, bit-identical at every
    /// worker count.
    ///
    /// Allocating convenience over [`ReplaySampler::sample_into`] —
    /// the trainers hold a [`SampledBatch::scratch`] and use the
    /// into-form so their train step is allocation-free.
    pub fn sample(
        &mut self,
        buf: &ReplayBuffer,
        batch: usize,
        rng: &mut StdRng,
        par: &Parallelism,
    ) -> Option<SampledBatch> {
        let mut out = SampledBatch::scratch();
        self.sample_into(buf, batch, rng, par, &mut out)
            .then_some(out)
    }

    /// [`ReplaySampler::sample`] into a caller-owned scratch: indices,
    /// batch lanes, and (on the prioritized arm) the weight vector are
    /// all refilled in place — together with the importance-weight
    /// buffer cached inside [`PrioritizedReplay`], no allocation
    /// happens after the first draw. Returns `false` (scratch
    /// untouched, no RNG draws) on underflow or `batch == 0`; draw
    /// sequences and gathered bytes are identical to the allocating
    /// form.
    pub fn sample_into(
        &mut self,
        buf: &ReplayBuffer,
        batch: usize,
        rng: &mut StdRng,
        par: &Parallelism,
        out: &mut SampledBatch,
    ) -> bool {
        if batch == 0 || buf.len() < batch {
            return false;
        }
        match self {
            Self::Uniform => {
                buf.sample_indices_into(batch, rng, &mut out.indices);
                buf.gather_par_into(&out.indices, par, &mut out.batch);
                out.weights = None;
                true
            }
            Self::Prioritized(p) => {
                p.sample_indices_into(buf.len(), batch, rng, &mut out.indices);
                let w = p.weights_cached(buf.len(), &out.indices);
                let mut wv = out.weights.take().unwrap_or_default();
                wv.clear();
                wv.extend_from_slice(w);
                out.weights = Some(wv);
                buf.gather_par_into(&out.indices, par, &mut out.batch);
                true
            }
        }
    }

    /// Feeds fresh TD errors back into the priority structure (no-op
    /// for uniform).
    pub fn update_priorities(&mut self, indices: &[usize], td_errors: &[f64]) {
        if let Self::Prioritized(p) = self {
            p.update_priorities(indices, td_errors);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(v: f64) -> Transition {
        Transition {
            state: vec![v],
            action: vec![v],
            reward: v,
            next_state: vec![v + 1.0],
            terminal: false,
        }
    }

    #[test]
    fn fills_then_wraps() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f64));
        }
        assert_eq!(buf.len(), 3);
        // Oldest (0, 1) were overwritten by (3, 4); 2 survives.
        let rewards: Vec<f64> = buf.transitions().iter().map(|t| t.reward).collect();
        assert!(rewards.contains(&2.0));
        assert!(rewards.contains(&3.0));
        assert!(rewards.contains(&4.0));
    }

    #[test]
    fn wraparound_never_yields_evicted_transitions() {
        // The satellite contract at both a dividing (12 = 3×4) and a
        // non-dividing (13) insertion count for capacity 4.
        for pushes in [12usize, 13] {
            let cap = 4;
            let mut buf = ReplayBuffer::new(cap);
            for i in 0..pushes {
                buf.push(t(i as f64));
            }
            assert_eq!(buf.len(), cap);
            let floor = (pushes - cap) as f64;
            let live: Vec<f64> = buf.transitions().iter().map(|t| t.reward).collect();
            assert!(live.iter().all(|&r| r >= floor && r < pushes as f64));
            let mut rng = StdRng::seed_from_u64(1);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..40 {
                let batch = buf.sample_batch(cap, &mut rng).unwrap();
                for b in 0..batch.len() {
                    let r = batch.rewards()[b];
                    assert!(
                        r >= floor && r < pushes as f64,
                        "pushes {pushes}: evicted reward {r} sampled"
                    );
                    seen.insert(r as i64);
                }
            }
            assert_eq!(seen.len(), cap, "pushes {pushes}: all live slots reachable");
        }
    }

    #[test]
    fn lanes_are_allocated_once_and_stay_put() {
        // Capacity-stability: with_dims allocates every lane up front;
        // no push (filling or wrapping) ever reallocates or grows them.
        let cap = 8;
        let mut buf = ReplayBuffer::with_dims(cap, 2, 1);
        let state_ptr = buf.state_panel().as_slice().as_ptr();
        let action_ptr = buf.action_panel().as_slice().as_ptr();
        let next_ptr = buf.next_state_panel().as_slice().as_ptr();
        assert_eq!(buf.state_panel().shape(), (cap, 2));
        assert_eq!(buf.dims(), Some((2, 1)));
        for i in 0..3 * cap {
            buf.push(Transition {
                state: vec![i as f64; 2],
                action: vec![i as f64],
                reward: i as f64,
                next_state: vec![i as f64 + 1.0; 2],
                terminal: false,
            });
            assert_eq!(buf.state_panel().as_slice().as_ptr(), state_ptr);
            assert_eq!(buf.action_panel().as_slice().as_ptr(), action_ptr);
            assert_eq!(buf.next_state_panel().as_slice().as_ptr(), next_ptr);
            assert_eq!(buf.state_panel().len(), cap * 2, "panel never grows");
        }
        // Lazy-dims construction allocates exactly once, on first push.
        let mut lazy = ReplayBuffer::new(cap);
        assert_eq!(lazy.dims(), None);
        lazy.push(t(0.0));
        let lazy_ptr = lazy.state_panel().as_slice().as_ptr();
        for i in 1..3 * cap {
            lazy.push(t(i as f64));
            assert_eq!(lazy.state_panel().as_slice().as_ptr(), lazy_ptr);
        }
    }

    #[test]
    #[should_panic(expected = "state dim changed")]
    fn push_rejects_ragged_dimensions() {
        let mut buf = ReplayBuffer::new(4);
        buf.push(t(1.0));
        let mut bad = t(2.0);
        bad.state = vec![1.0, 2.0];
        buf.push(bad);
    }

    #[test]
    fn sample_respects_underflow() {
        let mut buf = ReplayBuffer::new(10);
        let mut rng = StdRng::seed_from_u64(0);
        buf.push(t(1.0));
        assert!(buf.sample(2, &mut rng).is_empty());
        buf.push(t(2.0));
        assert_eq!(buf.sample(2, &mut rng).len(), 2);
    }

    #[test]
    fn sample_is_deterministic_per_seed() {
        let mut buf = ReplayBuffer::new(100);
        for i in 0..100 {
            buf.push(t(i as f64));
        }
        let a: Vec<f64> = buf
            .sample(10, &mut StdRng::seed_from_u64(7))
            .iter()
            .map(|t| t.reward)
            .collect();
        let b: Vec<f64> = buf
            .sample(10, &mut StdRng::seed_from_u64(7))
            .iter()
            .map(|t| t.reward)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sample_covers_the_buffer() {
        let mut buf = ReplayBuffer::new(16);
        for i in 0..16 {
            buf.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            for tr in buf.sample(16, &mut rng) {
                seen.insert(tr.reward as i64);
            }
        }
        assert_eq!(seen.len(), 16, "uniform sampling should reach every slot");
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        let _ = ReplayBuffer::new(0);
    }

    #[test]
    fn sample_batch_matches_sample_draw_sequence() {
        let mut buf = ReplayBuffer::new(64);
        for i in 0..64 {
            buf.push(t(i as f64));
        }
        let picks = buf.sample(16, &mut StdRng::seed_from_u64(11));
        let batch = buf
            .sample_batch(16, &mut StdRng::seed_from_u64(11))
            .expect("filled buffer");
        assert_eq!(batch.len(), 16);
        let refs: Vec<&Transition> = picks.iter().collect();
        let from_refs = TransitionBatch::from_transitions(&refs).unwrap();
        assert_eq!(batch, from_refs, "same RNG stream must pick same rows");
    }

    #[test]
    fn sample_paths_share_one_gather_from_any_rng_state() {
        // The anti-drift contract: from the *same mid-stream* RNG state,
        // `sample` and `sample_batch` draw identical indices and leave
        // the RNG in identical states (both delegate to
        // `sample_indices`, so a divergence means the shared draw path
        // was forked).
        let mut buf = ReplayBuffer::new(32);
        for i in 0..32 {
            buf.push(t(i as f64));
        }
        let mut rng_a = StdRng::seed_from_u64(17);
        // Advance past the seed point so the test pins mid-stream state.
        for _ in 0..5 {
            let _: f64 = rng_a.gen_range(0.0..1.0);
        }
        let mut rng_b = rng_a.clone();
        let picks = buf.sample(8, &mut rng_a);
        let batch = buf.sample_batch(8, &mut rng_b).expect("filled buffer");
        let refs: Vec<&Transition> = picks.iter().collect();
        assert_eq!(batch, TransitionBatch::from_transitions(&refs).unwrap());
        // Both paths consumed exactly the same draws.
        assert_eq!(rng_a, rng_b);
        assert_eq!(
            rng_a.gen_range(0..1_000_000usize),
            rng_b.gen_range(0..1_000_000usize)
        );
    }

    #[test]
    fn sample_batch_into_matches_allocating_form_and_reuses_storage() {
        // The scratch-reuse satellite: same RNG stream → identical
        // bytes as the allocating form, and once the scratch has been
        // sized, repeated draws never reallocate any lane.
        let mut buf = ReplayBuffer::new(64);
        for i in 0..64 {
            buf.push(t(i as f64));
        }
        let mut scratch = TransitionBatch::empty();
        let direct = buf
            .sample_batch(16, &mut StdRng::seed_from_u64(23))
            .unwrap();
        assert!(buf.sample_batch_into(16, &mut StdRng::seed_from_u64(23), &mut scratch));
        assert_eq!(scratch, direct, "same draws, same bytes");
        let ptr = scratch.states().as_slice().as_ptr();
        // RNG parity: both paths consume exactly the same draws.
        let mut rng_a = StdRng::seed_from_u64(31);
        let mut rng_b = rng_a.clone();
        for _ in 0..10 {
            let alloc = buf.sample_batch(16, &mut rng_a).unwrap();
            assert!(buf.sample_batch_into(16, &mut rng_b, &mut scratch));
            assert_eq!(scratch, alloc);
            assert_eq!(
                scratch.states().as_slice().as_ptr(),
                ptr,
                "steady-state draws must not reallocate"
            );
        }
        assert_eq!(rng_a, rng_b);
        // Underflow leaves the scratch untouched and draws nothing.
        let small = ReplayBuffer::with_dims(8, 1, 1);
        let before = scratch.clone();
        let mut rng_c = StdRng::seed_from_u64(1);
        let state = rng_c.clone();
        assert!(!small.sample_batch_into(4, &mut rng_c, &mut scratch));
        assert_eq!(scratch, before);
        assert_eq!(rng_c, state);
        // Pool-parallel into-form agrees at every worker count.
        let seq = buf.sample_batch(16, &mut StdRng::seed_from_u64(5)).unwrap();
        for workers in [1usize, 2, 8] {
            let par = Parallelism::with_workers(workers);
            let mut out = TransitionBatch::empty();
            assert!(buf.sample_batch_par_into(16, &mut StdRng::seed_from_u64(5), &par, &mut out));
            assert_eq!(out, seq, "workers {workers}");
        }
    }

    #[test]
    fn sampler_sample_into_is_allocation_free_and_bit_identical() {
        // Both strategy arms: sample_into refills the same scratch the
        // allocating sample() would produce, and the prioritized arm's
        // importance weights come from the cached buffer without
        // per-draw allocation.
        let cap = 32;
        let mut buf = ReplayBuffer::new(cap);
        let par = Parallelism::sequential();
        for strategy in [
            ReplayStrategy::Uniform,
            ReplayStrategy::Prioritized(PrioritizedConfig::default()),
        ] {
            let mut sampler = ReplaySampler::new(strategy, cap);
            for i in 0..cap {
                let slot = buf.push(t(i as f64));
                sampler.on_insert(slot);
            }
            let mut scratch = SampledBatch::scratch();
            let mut rng_a = StdRng::seed_from_u64(40);
            let mut rng_b = rng_a.clone();
            // First draw sizes the scratch lanes.
            assert!(sampler.sample_into(&buf, 8, &mut rng_a, &par, &mut scratch));
            let alloc = sampler.sample(&buf, 8, &mut rng_b, &par).unwrap();
            assert_eq!(scratch.batch, alloc.batch, "{strategy:?}: batch");
            assert_eq!(scratch.indices, alloc.indices, "{strategy:?}: indices");
            assert_eq!(scratch.weights, alloc.weights, "{strategy:?}: weights");
            let batch_ptr = scratch.batch.states().as_slice().as_ptr();
            let idx_ptr = scratch.indices.as_ptr();
            for round in 0..6 {
                // Priorities shift between draws on the prioritized arm.
                sampler.update_priorities(&scratch.indices, &[0.3 * (round + 1) as f64; 8]);
                assert!(sampler.sample_into(&buf, 8, &mut rng_a, &par, &mut scratch));
                assert_eq!(
                    scratch.batch.states().as_slice().as_ptr(),
                    batch_ptr,
                    "{strategy:?}: batch lanes must be reused"
                );
                assert_eq!(
                    scratch.indices.as_ptr(),
                    idx_ptr,
                    "{strategy:?}: index scratch must be reused"
                );
                if sampler.is_prioritized() {
                    let w = scratch.weights.as_ref().expect("prioritized weights");
                    assert_eq!(w.len(), 8);
                    assert!(w.iter().all(|&v| v > 0.0 && v <= 1.0));
                } else {
                    assert!(scratch.weights.is_none());
                }
            }
        }
    }

    #[test]
    fn cached_priority_weights_match_the_pure_form() {
        let cap = 16;
        let mut pr = PrioritizedReplay::new(cap, PrioritizedConfig::default());
        for slot in 0..cap {
            pr.on_insert(slot);
        }
        let indices: Vec<usize> = (0..cap).collect();
        let tds: Vec<f64> = (0..cap).map(|i| 0.2 + i as f64 * 0.5).collect();
        pr.update_priorities(&indices, &tds);
        let pure = pr.weights(cap, &indices);
        let cached = pr.weights_cached(cap, &indices).to_vec();
        assert_eq!(pure, cached);
        // The cache is refilled, not appended, and reuses its storage.
        let ptr = pr.weights_cached(cap, &indices).as_ptr();
        let again = pr.weights_cached(cap, &indices[..8]);
        assert_eq!(again.len(), 8);
        assert_eq!(again.as_ptr(), ptr);
    }

    #[test]
    fn transitions_expose_ring_order() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..4 {
            buf.push(t(i as f64));
        }
        // Slot 0 was overwritten by the 4th push (ring order).
        let rewards: Vec<f64> = buf.transitions().iter().map(|t| t.reward).collect();
        assert_eq!(rewards, vec![3.0, 1.0, 2.0]);
        assert_eq!(buf.transition(1), t(1.0));
    }

    #[test]
    fn sample_batch_respects_underflow() {
        let mut buf = ReplayBuffer::new(8);
        buf.push(t(1.0));
        let mut rng = StdRng::seed_from_u64(0);
        assert!(buf.sample_batch(2, &mut rng).is_none());
        assert!(buf.sample_batch(0, &mut rng).is_none());
    }

    #[test]
    fn gather_par_is_bit_identical_across_worker_counts() {
        let mut buf = ReplayBuffer::new(24);
        for i in 0..24 {
            buf.push(t(i as f64));
        }
        let indices: Vec<usize> = (0..17).map(|k| (k * 5 + 2) % 24).collect();
        let seq = buf.gather(&indices);
        for workers in [1usize, 2, 8] {
            let par = Parallelism::with_workers(workers);
            assert_eq!(buf.gather_par(&indices, &par), seq, "workers {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "out of live range")]
    fn gather_rejects_dead_slots() {
        let mut buf = ReplayBuffer::new(8);
        buf.push(t(0.0));
        buf.push(t(1.0));
        let _ = buf.gather(&[0, 2]); // slot 2 is unwritten
    }

    #[test]
    fn transition_batch_rows_mirror_transitions() {
        let data: Vec<Transition> = (0..4).map(|i| t(i as f64)).collect();
        let refs: Vec<&Transition> = data.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs).unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.state_dim(), 1);
        assert_eq!(batch.action_dim(), 1);
        for (b, tr) in data.iter().enumerate() {
            assert_eq!(batch.states().row(b), tr.state.as_slice());
            assert_eq!(batch.actions().row(b), tr.action.as_slice());
            assert_eq!(batch.next_states().row(b), tr.next_state.as_slice());
            assert_eq!(batch.rewards()[b], tr.reward);
            assert_eq!(batch.terminals()[b], tr.terminal);
        }
    }

    #[test]
    fn transition_batch_rejects_ragged_dimensions() {
        let a = t(1.0);
        let mut b = t(2.0);
        b.state = vec![1.0, 2.0];
        assert!(TransitionBatch::from_transitions(&[&a, &b]).is_err());
    }

    // --- prioritized replay -------------------------------------------

    #[test]
    fn sum_tree_masses_partition_the_total() {
        let mut tree = SumTree::new(5);
        for (i, p) in [1.0, 2.0, 0.5, 4.0, 0.25].iter().enumerate() {
            tree.set(i, *p);
        }
        assert!((tree.total() - 7.75).abs() < 1e-12);
        // Walking the cumulative intervals lands on each leaf.
        assert_eq!(tree.find(0.5), 0);
        assert_eq!(tree.find(1.0), 1);
        assert_eq!(tree.find(2.9), 1);
        assert_eq!(tree.find(3.2), 2);
        assert_eq!(tree.find(3.6), 3);
        assert_eq!(tree.find(7.6), 4);
        // Updates recompute exactly: with leaf 3 zeroed the cumulative
        // intervals become [0,1) [1,3) [3,3.5) — [3.5,3.75).
        tree.set(3, 0.0);
        assert!((tree.total() - 3.75).abs() < 1e-12);
        assert_eq!(tree.find(3.3), 2);
        assert_eq!(tree.find(3.6), 4);
    }

    #[test]
    fn prioritized_sampling_prefers_high_priority_slots() {
        let cap = 16;
        let mut pr = PrioritizedReplay::new(cap, PrioritizedConfig::default());
        for slot in 0..cap {
            pr.on_insert(slot);
        }
        // Slot 3 gets a huge TD error, the rest tiny ones.
        let indices: Vec<usize> = (0..cap).collect();
        let tds: Vec<f64> = (0..cap).map(|i| if i == 3 { 50.0 } else { 0.01 }).collect();
        pr.update_priorities(&indices, &tds);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hits = 0usize;
        let mut draws = 0usize;
        for _ in 0..200 {
            for i in pr.sample_indices(cap, 8, &mut rng) {
                assert!(i < cap);
                hits += usize::from(i == 3);
                draws += 1;
            }
        }
        assert!(
            hits as f64 > 0.5 * draws as f64,
            "slot 3 holds ~87% of the mass but got {hits}/{draws}"
        );
    }

    #[test]
    fn prioritized_weights_are_normalized_and_downweight_frequent_picks() {
        let cap = 8;
        let mut pr = PrioritizedReplay::new(cap, PrioritizedConfig::default());
        for slot in 0..cap {
            pr.on_insert(slot);
        }
        let indices: Vec<usize> = (0..cap).collect();
        let tds: Vec<f64> = (0..cap).map(|i| 0.1 + i as f64).collect();
        pr.update_priorities(&indices, &tds);
        let w = pr.weights(cap, &indices);
        // Normalized by the max: everything in (0, 1], rarest pick = 1.
        assert!(w.iter().all(|&v| v > 0.0 && v <= 1.0));
        assert_eq!(w[0], 1.0, "lowest-priority slot carries the max weight");
        // Higher priority => sampled more often => smaller weight.
        for k in 1..cap {
            assert!(w[k] <= w[k - 1], "weights must fall with priority");
        }
    }

    #[test]
    fn prioritized_sampling_is_deterministic_per_seed() {
        let mut pr = PrioritizedReplay::new(32, PrioritizedConfig::default());
        for slot in 0..32 {
            pr.on_insert(slot);
        }
        pr.update_priorities(&[4, 9], &[3.0, 7.0]);
        let a = pr.sample_indices(32, 16, &mut StdRng::seed_from_u64(42));
        let b = pr.sample_indices(32, 16, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn sampler_uniform_matches_raw_buffer_draws_and_carries_no_weights() {
        let mut buf = ReplayBuffer::new(32);
        for i in 0..32 {
            buf.push(t(i as f64));
        }
        let par = Parallelism::sequential();
        let mut sampler = ReplaySampler::new(ReplayStrategy::Uniform, 32);
        let direct = buf.sample_batch(8, &mut StdRng::seed_from_u64(9)).unwrap();
        let sampled = sampler
            .sample(&buf, 8, &mut StdRng::seed_from_u64(9), &par)
            .unwrap();
        assert_eq!(sampled.batch, direct, "one shared uniform draw path");
        assert!(sampled.weights.is_none());
        assert!(sampler
            .sample(&buf, 0, &mut StdRng::seed_from_u64(9), &par)
            .is_none());
        assert!(sampler
            .sample(&buf, 64, &mut StdRng::seed_from_u64(9), &par)
            .is_none());
    }

    #[test]
    fn sampler_prioritized_rows_match_their_drawn_slots() {
        let cap = 16;
        let mut buf = ReplayBuffer::new(cap);
        let mut sampler = ReplaySampler::new(
            ReplayStrategy::Prioritized(PrioritizedConfig::default()),
            cap,
        );
        assert!(sampler.is_prioritized());
        for i in 0..cap {
            let slot = buf.push(t(i as f64));
            sampler.on_insert(slot);
        }
        let par = Parallelism::with_workers(2);
        let mut rng = StdRng::seed_from_u64(3);
        let s = sampler.sample(&buf, 6, &mut rng, &par).unwrap();
        let w = s.weights.as_ref().expect("prioritized carries weights");
        assert_eq!(w.len(), 6);
        for (k, &slot) in s.indices.iter().enumerate() {
            assert_eq!(
                s.batch.rewards()[k],
                slot as f64,
                "row {k} gathers slot {slot}"
            );
        }
        // TD feedback shifts mass deterministically.
        sampler.update_priorities(&s.indices, &[10.0; 6]);
        if let ReplaySampler::Prioritized(p) = &sampler {
            assert!(p.priority(s.indices[0]) > 1.0);
        }
    }
}
