//! Immutable policy snapshots — the unit of publication for request
//! serving.
//!
//! A [`PolicySnapshot`] freezes the online actor at one instant: the
//! weights, the QAT runtime (whose frozen quantizers are applied
//! *immutably* — serving never feeds the range monitors), and a caller
//! chosen **snapshot id**. The serving layer (`fixar-serve`) keeps the
//! current snapshot behind an atomic swap and stamps every response with
//! the id of the snapshot that produced it, which is what makes served
//! trajectories replayable: feed the same observation to
//! [`PolicySnapshot::select_action`] on the snapshot with the recorded
//! id and the action is bit-identical.

use fixar_deploy::{ActKind, DeployError, PolicyArtifact};
use fixar_fixed::Scalar;
use fixar_nn::{Mlp, QatMode, QatRuntime};
use fixar_pool::Parallelism;
use fixar_tensor::Matrix;

use crate::{Ddpg, RlError, Td3};

/// An immutable actor replica: frozen weights + frozen QAT runtime +
/// monotonically increasing snapshot id.
///
/// Snapshots are cheap value types (`Clone`) and `Send + Sync`, so the
/// trainer can keep training its own copy while any number of serving
/// shards read a published one — the PR 5 double-buffer pattern with an
/// id attached.
///
/// # Determinism
///
/// [`PolicySnapshot::select_actions_batch`] composes the bit-exact
/// batched kernels with the immutable QAT application, so row `i` of a
/// batched call equals the per-sample [`PolicySnapshot::select_action`]
/// on row `i` — for every batch composition, worker count, and backend
/// (including saturating `Fx32`). That is the whole serving determinism
/// contract: responses do not depend on which requests happened to share
/// a micro-batch.
///
/// # Example
///
/// ```
/// use fixar_pool::Parallelism;
/// use fixar_rl::{Ddpg, DdpgConfig};
/// use fixar_tensor::Matrix;
///
/// let agent = Ddpg::<f32>::new(3, 1, DdpgConfig::small_test())?;
/// let snap = agent.policy_snapshot(1);
/// let obs = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64 * 0.1);
/// let batched = snap.select_actions_batch(&obs, &Parallelism::sequential())?;
/// let single = snap.select_action(obs.row(2))?;
/// assert_eq!(batched.row(2), single.as_slice());
/// # Ok::<(), fixar_rl::RlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PolicySnapshot<S: Scalar> {
    actor: Mlp<S>,
    qat: QatRuntime,
    id: u64,
}

impl<S: Scalar> PolicySnapshot<S> {
    /// Builds a snapshot from an actor network and the QAT runtime that
    /// trained it. The runtime is used read-only from here on.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] if the runtime's activation
    /// point count does not match the network (`num_layers + 1`).
    pub fn new(actor: Mlp<S>, qat: QatRuntime, id: u64) -> Result<Self, RlError> {
        let want = actor.num_layers() + 1;
        if qat.num_points() != want {
            return Err(RlError::InvalidConfig(format!(
                "QAT runtime has {} activation points, actor needs {want}",
                qat.num_points()
            )));
        }
        Ok(Self { actor, qat, id })
    }

    /// The publication id stamped on every response served from this
    /// snapshot.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Observation dimension the snapshot accepts.
    pub fn state_dim(&self) -> usize {
        self.actor.input_dim()
    }

    /// Action dimension the snapshot produces.
    pub fn action_dim(&self) -> usize {
        self.actor.output_dim()
    }

    /// The frozen actor network.
    pub fn actor(&self) -> &Mlp<S> {
        &self.actor
    }

    /// `true` when the snapshot serves through frozen quantizers (the
    /// agent's QAT schedule had already switched to quantized
    /// activations when the snapshot was taken).
    pub fn qat_frozen(&self) -> bool {
        self.qat.mode() == QatMode::Quantize
    }

    /// The frozen per-layer activation formats the snapshot serves at —
    /// one entry per activation point, `None` for points that serve full
    /// precision (excluded outputs, or a snapshot taken before the
    /// freeze). This is the precision contract a mixed-precision
    /// deployment ships with the weights: a snapshot taken from an
    /// 8-bit-actor/16-bit-critic agent reports the 8-bit actor grid
    /// here, and replays recorded trajectories bit-identically at
    /// exactly those widths.
    pub fn point_formats(&self) -> Vec<Option<fixar_fixed::QFormat>> {
        self.qat.point_formats()
    }

    /// Selects actions for a whole micro-batch of observations (one row
    /// per request), sharding rows over `par`'s pool.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::Nn`] if `states.cols()` differs from the
    /// observation dimension, [`RlError::Worker`] if a pool worker
    /// panicked.
    pub fn select_actions_batch(
        &self,
        states: &Matrix<f64>,
        par: &Parallelism,
    ) -> Result<Matrix<f64>, RlError> {
        let s: Matrix<S> = states.cast();
        let out = self
            .actor
            .forward_batch_qat_frozen_par(&s, &self.qat, par)?
            .output;
        Ok(Matrix::from_fn(out.rows(), out.cols(), |r, c| {
            out[(r, c)].to_f64()
        }))
    }

    /// Selects the action for one observation — the per-sample offline
    /// replay reference. Bit-equal to the corresponding row of any
    /// [`PolicySnapshot::select_actions_batch`] call containing it.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::Nn`] if `state.len()` differs from the
    /// observation dimension.
    pub fn select_action(&self, state: &[f64]) -> Result<Vec<f64>, RlError> {
        let s: Vec<S> = state.iter().map(|&v| S::from_f64(v)).collect();
        let trace = self.actor.forward_qat_frozen(&s, &self.qat)?;
        Ok(trace.output.iter().map(|v| v.to_f64()).collect())
    }
}

impl PolicySnapshot<fixar_fixed::Fx32> {
    /// Freezes this snapshot into a self-contained integer-only
    /// [`PolicyArtifact`]: raw `Fx32` weight words, activation kinds, and
    /// one integer quantizer spec per activation point (pass-through for
    /// points without a frozen quantizer, or when the QAT schedule never
    /// reached quantize mode). The artifact's interpreter reproduces
    /// [`PolicySnapshot::select_action`] bit-for-bit with zero
    /// floating-point operations and no dependency on `fixar-nn`.
    ///
    /// Export is deterministic: equal snapshots produce byte-identical
    /// blobs, so [`PolicyArtifact::content_hash`] is a stable identity
    /// for the deployed policy.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::UnsupportedQuantizer`] when a frozen
    /// quantizer has no integer-only form (a step that is not a power of
    /// two with a code space wider than a threshold table supports).
    pub fn export_artifact(&self) -> Result<PolicyArtifact, DeployError> {
        use fixar_fixed::Fx32;
        let n = self.actor.num_layers();
        let to_kind = |a: fixar_nn::Activation| match a {
            fixar_nn::Activation::Identity => ActKind::Identity,
            fixar_nn::Activation::Relu => ActKind::Relu,
            fixar_nn::Activation::Tanh => ActKind::Tanh,
        };
        let weights: Vec<Vec<i32>> = (0..n)
            .map(|l| Fx32::raw_words(self.actor.weight(l).as_slice()))
            .collect();
        let biases: Vec<Vec<i32>> = (0..n)
            .map(|l| Fx32::raw_words(self.actor.bias(l)))
            .collect();
        let frozen = self.qat.mode() == QatMode::Quantize;
        let quantizers: Vec<Option<&fixar_fixed::AffineQuantizer>> = (0..=n)
            .map(|p| if frozen { self.qat.quantizer(p) } else { None })
            .collect();
        PolicyArtifact::from_parts(
            self.actor.layer_sizes(),
            to_kind(self.actor.hidden_activation()),
            to_kind(self.actor.output_activation()),
            weights,
            biases,
            &quantizers,
        )
    }
}

impl<S: Scalar> Ddpg<S> {
    /// Freezes the current online actor (weights + QAT runtime) into an
    /// immutable [`PolicySnapshot`] tagged `id`.
    ///
    /// During QAT calibration the snapshot serves full-precision values
    /// (identical to what [`Ddpg::act`] computes, without feeding the
    /// range monitors); after the freeze it serves through the frozen
    /// quantizers. Either way the snapshot never mutates, so one
    /// snapshot answers every replay of its responses bit-identically.
    pub fn policy_snapshot(&self, id: u64) -> PolicySnapshot<S> {
        PolicySnapshot {
            actor: self.actor().clone(),
            qat: self.actor_qat_runtime().clone(),
            id,
        }
    }
}

impl<S: Scalar> Td3<S> {
    /// Freezes the current online actor (weights + QAT runtime) into an
    /// immutable [`PolicySnapshot`] tagged `id` — exactly as
    /// [`Ddpg::policy_snapshot`]. Without a QAT schedule the runtime is
    /// disabled and the snapshot serves plain full precision; with one,
    /// the snapshot carries the actor's frozen per-layer formats.
    pub fn policy_snapshot(&self, id: u64) -> PolicySnapshot<S> {
        PolicySnapshot {
            actor: self.actor().clone(),
            qat: self.actor_qat_runtime().clone(),
            id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DdpgConfig, Td3Config};
    use fixar_fixed::Fx32;

    fn obs_batch(rows: usize, dim: usize) -> Matrix<f64> {
        Matrix::from_fn(rows, dim, |r, c| ((r * dim + c) as f64).sin() * 0.7)
    }

    fn synthetic_batch(len: usize, state_dim: usize, action_dim: usize) -> crate::TransitionBatch {
        let transitions: Vec<crate::Transition> = (0..len)
            .map(|i| crate::Transition {
                state: (0..state_dim).map(|c| ((i + c) as f64).cos()).collect(),
                action: (0..action_dim)
                    .map(|c| ((i * 3 + c) as f64).sin())
                    .collect(),
                reward: (i as f64).sin(),
                next_state: (0..state_dim).map(|c| ((i + c + 1) as f64).cos()).collect(),
                terminal: i % 7 == 0,
            })
            .collect();
        let refs: Vec<&crate::Transition> = transitions.iter().collect();
        crate::TransitionBatch::from_transitions(&refs).unwrap()
    }

    #[test]
    fn batched_rows_equal_per_sample_replay() {
        let agent = Ddpg::<Fx32>::new(3, 1, DdpgConfig::small_test()).unwrap();
        let snap = agent.policy_snapshot(7);
        assert_eq!(snap.id(), 7);
        let obs = obs_batch(9, 3);
        let batched = snap
            .select_actions_batch(&obs, &Parallelism::sequential())
            .unwrap();
        for r in 0..obs.rows() {
            assert_eq!(batched.row(r), snap.select_action(obs.row(r)).unwrap());
        }
    }

    #[test]
    fn snapshot_is_insensitive_to_batch_composition_and_workers() {
        let agent = Ddpg::<Fx32>::new(3, 1, DdpgConfig::small_test()).unwrap();
        let snap = agent.policy_snapshot(1);
        let obs = obs_batch(8, 3);
        let whole = snap
            .select_actions_batch(&obs, &Parallelism::with_workers(4))
            .unwrap();
        // Same rows served in two smaller, shuffled batches.
        let idx = [5usize, 1, 7, 0, 3, 6, 2, 4];
        for (k, &i) in idx.iter().enumerate() {
            let sub = Matrix::from_fn(1, 3, |_, c| obs[(i, c)]);
            let got = snap
                .select_actions_batch(&sub, &Parallelism::with_workers(1 + k % 3))
                .unwrap();
            assert_eq!(got.row(0), whole.row(i), "row {i} depends on composition");
        }
    }

    #[test]
    fn snapshot_matches_training_actor_then_diverges_after_updates() {
        let mut agent = Ddpg::<f32>::new(3, 1, DdpgConfig::small_test()).unwrap();
        let snap = agent.policy_snapshot(0);
        let obs = obs_batch(1, 3);
        let live = agent.select_actions_batch(&obs).unwrap();
        let frozen = snap
            .select_actions_batch(&obs, &Parallelism::sequential())
            .unwrap();
        assert_eq!(live.row(0), frozen.row(0));
        // The snapshot is a value copy: training the agent afterwards
        // must not change what the snapshot serves.
        let before: Vec<f64> = frozen.row(0).to_vec();
        let batch = synthetic_batch(agent.config().batch_size, 3, 1);
        for _ in 0..10 {
            agent.train_minibatch(&batch).unwrap();
        }
        let after = snap
            .select_actions_batch(&obs, &Parallelism::sequential())
            .unwrap();
        assert_eq!(after.row(0), before.as_slice());
    }

    #[test]
    fn qat_frozen_snapshot_serves_quantized_actions() {
        let mut agent = Ddpg::<Fx32>::new(3, 1, DdpgConfig::small_test().with_qat(4, 16)).unwrap();
        // Feed every runtime's range monitors (actor via act, critics
        // via training), then drive the schedule past the delay so the
        // quantizers freeze.
        let batch = synthetic_batch(agent.config().batch_size, 3, 1);
        for t in 0..8u64 {
            let s = obs_batch(1, 3);
            agent.act(s.row(0)).unwrap();
            agent.train_minibatch(&batch).unwrap();
            agent.on_timestep(t).unwrap();
        }
        assert!(agent.qat_frozen());
        let snap = agent.policy_snapshot(3);
        assert!(snap.qat_frozen());
        let obs = obs_batch(5, 3);
        let batched = snap
            .select_actions_batch(&obs, &Parallelism::with_workers(2))
            .unwrap();
        for r in 0..obs.rows() {
            assert_eq!(batched.row(r), snap.select_action(obs.row(r)).unwrap());
        }
    }

    #[test]
    fn td3_snapshot_replays_bit_identically() {
        let mut agent = Td3::<f32>::new(3, 1, Td3Config::small_test()).unwrap();
        let snap = agent.policy_snapshot(2);
        assert!(!snap.qat_frozen());
        let obs = obs_batch(6, 3);
        let batched = snap
            .select_actions_batch(&obs, &Parallelism::with_workers(2))
            .unwrap();
        let live = agent.select_actions_batch(&obs).unwrap();
        for r in 0..obs.rows() {
            assert_eq!(batched.row(r), live.row(r));
            assert_eq!(batched.row(r), snap.select_action(obs.row(r)).unwrap());
        }
    }

    #[test]
    fn mixed_precision_snapshot_reports_its_formats_and_replays() {
        // 8-bit actor / 16-bit critics: the snapshot must carry the
        // actor's 8-bit grids and serve bit-reproducibly through them.
        let mut agent = Td3::<Fx32>::new(
            3,
            1,
            Td3Config::small_test().with_mixed_precision_qat(2, 8, 16),
        )
        .unwrap();
        let batch = synthetic_batch(16, 3, 1);
        for t in 0..6u64 {
            agent.train_minibatch(&batch).unwrap();
            agent.on_timestep(t).unwrap();
        }
        assert!(agent.qat_frozen());
        let snap = agent.policy_snapshot(11);
        assert!(snap.qat_frozen());
        let formats = snap.point_formats();
        // Hidden activation points carry 8-bit grids; the action output
        // point is excluded (full-precision regression output).
        assert_eq!(formats.len(), agent.actor().num_layers() + 1);
        assert!(formats[..formats.len() - 1]
            .iter()
            .all(|f| f.map(|q| q.total_bits()) == Some(8)));
        assert!(formats[formats.len() - 1].is_none());
        let obs = obs_batch(6, 3);
        let batched = snap
            .select_actions_batch(&obs, &Parallelism::with_workers(2))
            .unwrap();
        for r in 0..obs.rows() {
            assert_eq!(batched.row(r), snap.select_action(obs.row(r)).unwrap());
        }
    }

    #[test]
    fn exported_artifact_replays_snapshot_bit_for_bit() {
        let mut agent = Ddpg::<Fx32>::new(3, 1, DdpgConfig::small_test().with_qat(4, 16)).unwrap();
        let batch = synthetic_batch(agent.config().batch_size, 3, 1);
        for t in 0..8u64 {
            let s = obs_batch(1, 3);
            agent.act(s.row(0)).unwrap();
            agent.train_minibatch(&batch).unwrap();
            agent.on_timestep(t).unwrap();
        }
        assert!(agent.qat_frozen());
        let snap = agent.policy_snapshot(1);
        let art = snap.export_artifact().unwrap();
        assert_eq!(art.input_dim(), snap.state_dim());
        assert_eq!(art.output_dim(), snap.action_dim());
        let obs = obs_batch(7, 3);
        for r in 0..obs.rows() {
            let want = snap.select_action(obs.row(r)).unwrap();
            let got = art.infer(obs.row(r)).unwrap();
            assert_eq!(got, want, "row {r}");
        }
    }

    #[test]
    fn unfrozen_snapshot_exports_pass_through_artifact() {
        let agent = Td3::<Fx32>::new(3, 1, Td3Config::small_test()).unwrap();
        let snap = agent.policy_snapshot(5);
        assert!(!snap.qat_frozen());
        let art = snap.export_artifact().unwrap();
        let obs = obs_batch(4, 3);
        for r in 0..obs.rows() {
            assert_eq!(
                art.infer(obs.row(r)).unwrap(),
                snap.select_action(obs.row(r)).unwrap()
            );
        }
        // Export is deterministic: same snapshot, same bytes, same hash.
        let again = snap.export_artifact().unwrap();
        assert_eq!(again.encode(), art.encode());
        assert_eq!(again.content_hash(), art.content_hash());
    }

    #[test]
    fn mismatched_runtime_is_rejected() {
        let agent = Ddpg::<f32>::new(3, 1, DdpgConfig::small_test()).unwrap();
        let err = PolicySnapshot::new(agent.actor().clone(), QatRuntime::disabled(1), 0);
        assert!(matches!(err, Err(RlError::InvalidConfig(_))));
    }
}
