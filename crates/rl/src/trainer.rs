//! The training loop and the paper's evaluation protocol.

use fixar_env::Environment;
use fixar_fixed::Scalar;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ddpg::{Ddpg, DdpgConfig, TrainMetrics};
use crate::error::RlError;
use crate::noise::{ExplorationNoise, GaussianNoise};
use crate::replay::{ReplayBuffer, ReplaySampler, SampledBatch, Transition};
use crate::vec_trainer::{action_stream_seed, priority_stream_seed, replay_stream_seed};

/// One point of a Fig. 7 reward curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalPoint {
    /// Global timestep of the evaluation.
    pub step: u64,
    /// Average cumulative reward over the evaluation episodes.
    pub avg_reward: f64,
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingReport {
    /// Evaluation curve (the Fig. 7 series).
    pub curve: Vec<EvalPoint>,
    /// Training episodes completed.
    pub train_episodes: usize,
    /// Total environment steps taken.
    pub total_steps: u64,
    /// Timestep at which QAT froze, if the schedule fired.
    pub qat_switch_step: Option<u64>,
    /// Metrics from the final training batch.
    pub final_metrics: TrainMetrics,
}

impl TrainingReport {
    /// Mean reward over the last `n` evaluation points (saturation level).
    pub fn tail_mean(&self, n: usize) -> f64 {
        if self.curve.is_empty() {
            return 0.0;
        }
        let tail = &self.curve[self.curve.len().saturating_sub(n)..];
        tail.iter().map(|p| p.avg_reward).sum::<f64>() / tail.len() as f64
    }
}

/// Rejects train/eval environment pairs that disagree on dimensions —
/// shared by the scalar and fleet trainers so the check cannot drift.
pub(crate) fn check_env_compat(
    spec: &fixar_env::EnvSpec,
    espec: &fixar_env::EnvSpec,
) -> Result<(), RlError> {
    if spec.obs_dim != espec.obs_dim || spec.action_dim != espec.action_dim {
        return Err(RlError::InvalidConfig(format!(
            "train env {}({}, {}) and eval env {}({}, {}) disagree",
            spec.name, spec.obs_dim, spec.action_dim, espec.name, espec.obs_dim, espec.action_dim
        )));
    }
    Ok(())
}

/// The paper's evaluation protocol — average cumulative reward over
/// `episodes` fresh noise-free episodes, each run "until the agent
/// falls down" (or the step cap). One implementation shared by
/// [`Trainer::evaluate`] and `VecTrainer::evaluate`, which is part of
/// what keeps their [`TrainingReport`]s bit-identical at fleet size 1.
pub(crate) fn evaluate_policy<S: Scalar>(
    agent: &mut Ddpg<S>,
    env: &mut dyn Environment,
    episodes: usize,
) -> Result<f64, RlError> {
    let mut total = 0.0;
    for _ in 0..episodes.max(1) {
        let mut obs = env.reset();
        loop {
            let action = agent.act(&obs)?;
            let res = env.step(&action);
            total += res.reward;
            if res.done() {
                break;
            }
            obs = res.observation;
        }
    }
    Ok(total / episodes.max(1) as f64)
}

/// Drives one agent/environment pair through the paper's timestep loop
/// (Fig. 3): act with exploration noise → environment step → store the
/// transition → sample a batch → train → periodically evaluate.
///
/// Randomness is split into streams shared with the fleet path: warmup
/// exploration and noise draw from the **action stream**
/// ([`action_stream_seed`]`(seed, 0)` — slot 0 of a fleet), uniform
/// replay sampling from the **replay stream** ([`replay_stream_seed`]),
/// and prioritized sampling (when the config opts in) from the separate
/// **priority stream** ([`priority_stream_seed`]). This is what lets a
/// [`VecTrainer`](crate::VecTrainer) with fleet size 1 reproduce this
/// trainer bit-for-bit.
///
/// See the [crate docs](crate) for an example.
pub struct Trainer<S: Scalar> {
    env: Box<dyn Environment>,
    eval_env: Box<dyn Environment>,
    agent: Ddpg<S>,
    replay: ReplayBuffer,
    sampler: ReplaySampler,
    /// Reusable sampling scratch: after the first draw, the whole
    /// sample-gather-train step allocates nothing.
    scratch: SampledBatch,
    noise: Box<dyn ExplorationNoise>,
    action_rng: StdRng,
    replay_rng: StdRng,
    priority_rng: StdRng,
    cfg: DdpgConfig,
    steps_taken: u64,
}

impl<S: Scalar> Trainer<S> {
    /// Builds a trainer from a training environment, a separate
    /// evaluation environment (the paper evaluates on fresh random
    /// starts), and a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] if the two environments
    /// disagree on dimensions or the config is malformed.
    pub fn new(
        env: Box<dyn Environment>,
        eval_env: Box<dyn Environment>,
        cfg: DdpgConfig,
    ) -> Result<Self, RlError> {
        let spec = env.spec();
        check_env_compat(&spec, &eval_env.spec())?;
        let agent = Ddpg::new(spec.obs_dim, spec.action_dim, cfg.clone())?;
        // Dimensions are known here, so every replay lane preallocates
        // to full capacity — the push path never allocates.
        let replay = ReplayBuffer::with_dims(cfg.replay_capacity, spec.obs_dim, spec.action_dim);
        let sampler = ReplaySampler::new(cfg.replay, cfg.replay_capacity);
        let noise = Box::new(GaussianNoise::new(spec.action_dim, cfg.exploration_sigma));
        Ok(Self {
            env,
            eval_env,
            agent,
            replay,
            sampler,
            scratch: SampledBatch::scratch(),
            noise,
            action_rng: StdRng::seed_from_u64(action_stream_seed(cfg.seed, 0)),
            replay_rng: StdRng::seed_from_u64(replay_stream_seed(cfg.seed)),
            priority_rng: StdRng::seed_from_u64(priority_stream_seed(cfg.seed)),
            cfg,
            steps_taken: 0,
        })
    }

    /// Replaces the exploration noise process (e.g. Ornstein–Uhlenbeck).
    pub fn set_noise(&mut self, noise: Box<dyn ExplorationNoise>) {
        self.noise = noise;
    }

    /// The agent (e.g. for loading its networks onto the accelerator).
    pub fn agent(&self) -> &Ddpg<S> {
        &self.agent
    }

    /// Mutable agent access.
    pub fn agent_mut(&mut self) -> &mut Ddpg<S> {
        &mut self.agent
    }

    /// Transitions currently stored in replay.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Read access to the replay buffer (the fleet-equivalence tests
    /// compare full contents against a [`VecTrainer`](crate::VecTrainer)).
    pub fn replay(&self) -> &ReplayBuffer {
        &self.replay
    }

    /// The replay sampler (priority diagnostics under the prioritized
    /// strategy).
    pub fn sampler(&self) -> &ReplaySampler {
        &self.sampler
    }

    /// Runs `total_steps` environment steps, training once per step after
    /// warmup and evaluating every `eval_every` steps over
    /// `eval_episodes` episodes (paper: 5000 and 10).
    ///
    /// # Errors
    ///
    /// Propagates agent errors; see [`Ddpg::train_batch`].
    pub fn run(
        &mut self,
        total_steps: u64,
        eval_every: u64,
        eval_episodes: usize,
    ) -> Result<TrainingReport, RlError> {
        if eval_every == 0 {
            return Err(RlError::InvalidConfig("eval_every must be positive".into()));
        }
        let mut obs = self.env.reset();
        self.noise.reset();
        let mut episodes = 0;
        let mut curve = Vec::new();
        let mut qat_switch_step = None;
        let mut final_metrics = TrainMetrics::default();

        for step in 1..=total_steps {
            if self.agent.on_timestep(self.steps_taken + step)? {
                qat_switch_step = Some(self.steps_taken + step);
            }

            // The actor runs a forward pass every timestep — Algorithm 1
            // monitors activations from t = 1, and the hardware computes
            // an action each step regardless. During warmup the policy
            // output is discarded in favour of uniform exploration.
            let mut policy_action = self.agent.act(&obs)?;
            let action: Vec<f64> = if self.steps_taken + step <= self.cfg.warmup_steps {
                (0..self.agent.action_dim())
                    .map(|_| self.action_rng.gen_range(-1.0..1.0))
                    .collect()
            } else {
                for (ai, ni) in policy_action
                    .iter_mut()
                    .zip(self.noise.sample(&mut self.action_rng))
                {
                    *ai = (*ai + ni).clamp(-1.0, 1.0);
                }
                policy_action
            };

            let res = self.env.step(&action);
            let slot = self.replay.push(Transition {
                state: obs.clone(),
                action,
                reward: res.reward,
                next_state: res.observation.clone(),
                terminal: res.terminated,
            });
            self.sampler.on_insert(slot);
            if res.done() {
                obs = self.env.reset();
                self.noise.reset();
                episodes += 1;
            } else {
                obs = res.observation;
            }

            if self.steps_taken + step > self.cfg.warmup_steps {
                // Batched hot path: the gather packs the minibatch
                // straight from the SoA panels **into the held scratch**
                // (uniform draws consume exactly the legacy RNG sequence
                // from the replay stream; prioritized draws consume the
                // separate priority stream), and the minibatch flows
                // through the stack as one matrix per layer on the
                // agent's worker pool — bit-identical to the sequential
                // and per-sample paths at every worker count, with no
                // allocation after the first draw.
                let par = self.agent.parallelism().clone();
                let rng = if self.sampler.is_prioritized() {
                    &mut self.priority_rng
                } else {
                    &mut self.replay_rng
                };
                if self.sampler.sample_into(
                    &self.replay,
                    self.cfg.batch_size,
                    rng,
                    &par,
                    &mut self.scratch,
                ) {
                    let (metrics, tds) = self.agent.train_minibatch_weighted(
                        &self.scratch.batch,
                        self.scratch.weights.as_deref(),
                    )?;
                    final_metrics = metrics;
                    self.sampler.update_priorities(&self.scratch.indices, &tds);
                }
            }

            if (self.steps_taken + step).is_multiple_of(eval_every) {
                let avg = self.evaluate(eval_episodes)?;
                curve.push(EvalPoint {
                    step: self.steps_taken + step,
                    avg_reward: avg,
                });
            }
        }
        self.steps_taken += total_steps;
        Ok(TrainingReport {
            curve,
            train_episodes: episodes,
            total_steps: self.steps_taken,
            qat_switch_step,
            final_metrics,
        })
    }

    /// The paper's evaluation: average cumulative reward over `episodes`
    /// fresh episodes, each run without exploration noise "until the
    /// agent falls down" (or the step cap).
    ///
    /// # Errors
    ///
    /// Propagates actor inference errors.
    pub fn evaluate(&mut self, episodes: usize) -> Result<f64, RlError> {
        evaluate_policy(&mut self.agent, self.eval_env.as_mut(), episodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_env::Pendulum;

    fn pendulum_trainer(cfg: DdpgConfig) -> Trainer<f64> {
        Trainer::new(Box::new(Pendulum::new(1)), Box::new(Pendulum::new(99)), cfg).unwrap()
    }

    #[test]
    fn run_produces_expected_curve_points() {
        let mut t = pendulum_trainer(DdpgConfig::small_test());
        let report = t.run(300, 100, 1).unwrap();
        assert_eq!(report.curve.len(), 3);
        assert_eq!(report.curve[0].step, 100);
        assert_eq!(report.curve[2].step, 300);
        assert_eq!(report.total_steps, 300);
        assert!(report.curve.iter().all(|p| p.avg_reward.is_finite()));
    }

    #[test]
    fn replay_fills_during_run() {
        let mut t = pendulum_trainer(DdpgConfig::small_test());
        t.run(150, 150, 1).unwrap();
        assert_eq!(t.replay_len(), 150);
    }

    #[test]
    fn consecutive_runs_continue_step_count() {
        let mut t = pendulum_trainer(DdpgConfig::small_test());
        t.run(100, 100, 1).unwrap();
        let report = t.run(100, 100, 1).unwrap();
        assert_eq!(report.total_steps, 200);
        assert_eq!(report.curve[0].step, 200);
    }

    #[test]
    fn prioritized_trainer_runs_and_is_deterministic_per_seed() {
        use crate::replay::{PrioritizedConfig, ReplayStrategy};
        let cfg = DdpgConfig::small_test()
            .with_replay(ReplayStrategy::Prioritized(PrioritizedConfig::default()));
        let run = || {
            let mut t = pendulum_trainer(cfg.clone());
            let report = t.run(150, 150, 1).unwrap();
            (report, t)
        };
        let (ra, ta) = run();
        let (rb, tb) = run();
        assert!(ta.sampler().is_prioritized());
        assert!(ra.final_metrics.critic_loss.is_finite());
        assert_eq!(ra, rb, "prioritized runs must be deterministic");
        assert_eq!(ta.agent().actor(), tb.agent().actor());
        assert_eq!(ta.replay().transitions(), tb.replay().transitions());
    }

    #[test]
    fn trainer_preallocates_replay_lanes() {
        let t = pendulum_trainer(DdpgConfig::small_test());
        // Pendulum: 3 obs dims, 1 action dim, known at construction.
        assert_eq!(t.replay().dims(), Some((3, 1)));
        assert_eq!(
            t.replay().state_panel().shape(),
            (DdpgConfig::small_test().replay_capacity, 3)
        );
    }

    #[test]
    fn mismatched_envs_rejected() {
        use fixar_env::Swimmer;
        let r = Trainer::<f64>::new(
            Box::new(Pendulum::new(0)),
            Box::new(Swimmer::new(0)),
            DdpgConfig::small_test(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn evaluation_is_noise_free_and_finite() {
        let mut t = pendulum_trainer(DdpgConfig::small_test());
        let a = t.evaluate(2).unwrap();
        assert!(a.is_finite());
        // Pendulum rewards are strictly non-positive.
        assert!(a <= 0.0);
    }

    #[test]
    fn tail_mean_summarizes_curve() {
        let report = TrainingReport {
            curve: vec![
                EvalPoint {
                    step: 1,
                    avg_reward: 0.0,
                },
                EvalPoint {
                    step: 2,
                    avg_reward: 10.0,
                },
                EvalPoint {
                    step: 3,
                    avg_reward: 20.0,
                },
            ],
            train_episodes: 0,
            total_steps: 3,
            qat_switch_step: None,
            final_metrics: TrainMetrics::default(),
        };
        assert_eq!(report.tail_mean(2), 15.0);
        assert_eq!(report.tail_mean(100), 10.0);
    }
}
