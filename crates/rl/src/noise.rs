//! Exploration noise processes.
//!
//! The FPGA injects exploration noise into the actor's inference output
//! with its PRNG module; this is the software twin used by the algorithm
//! layer (the accelerator model has the bit-level LFSR variant).

use rand::rngs::StdRng;
use rand::Rng;

/// A stateful noise process added to actions during training.
pub trait ExplorationNoise: Send {
    /// Draws one noise vector.
    fn sample(&mut self, rng: &mut StdRng) -> Vec<f64>;
    /// Resets process state at episode boundaries.
    fn reset(&mut self);
    /// Dimension of the produced vectors.
    fn dim(&self) -> usize;
}

/// IID Gaussian noise `N(0, σ²)` per action dimension (DDPG's simplest
/// effective exploration; the paper's PRNG module does exactly this).
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    dim: usize,
    sigma: f64,
}

impl GaussianNoise {
    /// Creates noise of the given dimension and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `sigma < 0`.
    pub fn new(dim: usize, sigma: f64) -> Self {
        assert!(dim > 0, "noise dimension must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { dim, sigma }
    }

    /// Standard normal via Box–Muller (keeps `rand` usage to uniforms so
    /// the accelerator's Irwin–Hall generator is a fair comparison).
    fn standard_normal(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl ExplorationNoise for GaussianNoise {
    fn sample(&mut self, rng: &mut StdRng) -> Vec<f64> {
        (0..self.dim)
            .map(|_| Self::standard_normal(rng) * self.sigma)
            .collect()
    }

    fn reset(&mut self) {}

    fn dim(&self) -> usize {
        self.dim
    }
}

/// Ornstein–Uhlenbeck process (the original DDPG paper's temporally
/// correlated exploration): `x ← x + θ(μ − x)dt + σ√dt·N(0,1)`.
#[derive(Debug, Clone)]
pub struct OrnsteinUhlenbeck {
    state: Vec<f64>,
    mu: f64,
    theta: f64,
    sigma: f64,
    dt: f64,
}

impl OrnsteinUhlenbeck {
    /// Creates a process with DDPG's customary parameters
    /// (`θ = 0.15`, `dt = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `sigma < 0`.
    pub fn new(dim: usize, sigma: f64) -> Self {
        assert!(dim > 0, "noise dimension must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self {
            state: vec![0.0; dim],
            mu: 0.0,
            theta: 0.15,
            sigma,
            dt: 1.0,
        }
    }
}

impl ExplorationNoise for OrnsteinUhlenbeck {
    fn sample(&mut self, rng: &mut StdRng) -> Vec<f64> {
        for x in &mut self.state {
            let n = GaussianNoise::standard_normal(rng);
            *x += self.theta * (self.mu - *x) * self.dt + self.sigma * self.dt.sqrt() * n;
        }
        self.state.clone()
    }

    fn reset(&mut self) {
        for x in &mut self.state {
            *x = 0.0;
        }
    }

    fn dim(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut noise = GaussianNoise::new(1, 0.5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| noise.sample(&mut rng)[0]).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 0.25).abs() < 0.02, "var={var}");
    }

    #[test]
    fn zero_sigma_is_silent() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut noise = GaussianNoise::new(3, 0.0);
        assert_eq!(noise.sample(&mut rng), vec![0.0; 3]);
    }

    #[test]
    fn ou_is_temporally_correlated() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ou = OrnsteinUhlenbeck::new(1, 0.2);
        let mut gaussian = GaussianNoise::new(1, 0.2);
        let auto = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            let num: f64 = xs.windows(2).map(|w| (w[0] - m) * (w[1] - m)).sum();
            let den: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
            num / den
        };
        let ou_xs: Vec<f64> = (0..5000).map(|_| ou.sample(&mut rng)[0]).collect();
        let g_xs: Vec<f64> = (0..5000).map(|_| gaussian.sample(&mut rng)[0]).collect();
        assert!(auto(&ou_xs) > 0.5, "OU autocorrelation {}", auto(&ou_xs));
        assert!(
            auto(&g_xs).abs() < 0.1,
            "IID autocorrelation {}",
            auto(&g_xs)
        );
    }

    #[test]
    fn ou_reset_returns_to_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ou = OrnsteinUhlenbeck::new(2, 0.3);
        for _ in 0..10 {
            ou.sample(&mut rng);
        }
        ou.reset();
        assert_eq!(ou.state, vec![0.0; 2]);
        assert_eq!(ou.dim(), 2);
    }
}
