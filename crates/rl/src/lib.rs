//! DDPG with fixed-point quantization-aware training — FIXAR's algorithm
//! layer.
//!
//! Implements the paper's training pipeline end to end:
//!
//! * [`ReplayBuffer`] — the transition store the host CPU samples batches
//!   from: a structure-of-arrays ring buffer whose `sample_batch` is a
//!   column gather straight into the batch matrices, with
//!   [`ReplayStrategy`] selecting uniform (bit-exact legacy) or
//!   proportional prioritized sampling ([`PrioritizedReplay`]),
//! * [`GaussianNoise`] / [`OrnsteinUhlenbeck`] — action exploration (the
//!   hardware injects this with its PRNG module; here it is the software
//!   twin),
//! * [`Ddpg`] — actor/critic networks with target networks, Adam, and
//!   the Fig. 3 update sequence (critic BP/WU → actor BP/WU led by the
//!   critic → actor FP). The hot path is [`Ddpg::train_minibatch`],
//!   which moves the whole sampled batch ([`TransitionBatch`]) through
//!   the stack as one matrix per layer, bit-identical to the per-sample
//!   reference [`Ddpg::train_batch`],
//! * [`QatSchedule`] — Algorithm 1: calibrate activation ranges for
//!   `delay` steps at 32-bit fixed-point, then re-train with 16-bit
//!   quantized activations,
//! * [`Trainer`] — the timestep loop with the paper's evaluation protocol
//!   (evaluate every 5000 steps, averaging cumulative reward over 10
//!   episodes "until the agent falls down"),
//! * [`VecTrainer`] — the multi-env serving loop: a fleet of
//!   environments (`fixar_env::EnvPool`) stepped in lockstep — or
//!   **double-buffered** ([`VecTrainer::set_overlap`]: the pool infers
//!   one half-fleet's actions while the host steps the other, with
//!   bit-identical results) — with all action selection batched through
//!   [`Ddpg::select_actions_batch`], bit-identical to [`Trainer`] at
//!   fleet size 1,
//! * [`PrecisionMode`] — the four arms of the Fig. 7 precision study,
//! * [`PolicySnapshot`] — an immutable actor replica (weights + frozen
//!   QAT runtime + snapshot id), the unit the serving front door
//!   (`fixar-serve`) publishes and replays against.
//!
//! Everything is generic over the numeric backend, so the *same* code
//! runs the float baseline and the fixed-point FIXAR runs.
//!
//! # Example
//!
//! ```
//! use fixar_env::Pendulum;
//! use fixar_rl::{DdpgConfig, Trainer};
//!
//! let cfg = DdpgConfig::small_test(); // tiny nets for fast tests
//! let mut trainer = Trainer::<f32>::new(
//!     Box::new(Pendulum::new(1)),
//!     Box::new(Pendulum::new(2)),
//!     cfg,
//! )?;
//! let report = trainer.run(200, 100, 2)?;
//! assert_eq!(report.curve.len(), 2);
//! # Ok::<(), fixar_rl::RlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ddpg;
mod error;
mod noise;
mod precision;
mod replay;
mod snapshot;
mod td3;
mod trainer;
mod vec_trainer;

pub use ddpg::{Ddpg, DdpgConfig, QatSchedule, TrainMetrics};
pub use error::RlError;
pub use noise::{ExplorationNoise, GaussianNoise, OrnsteinUhlenbeck};
pub use precision::PrecisionMode;
pub use replay::{
    PrioritizedConfig, PrioritizedReplay, ReplayBuffer, ReplaySampler, ReplayStrategy,
    SampledBatch, Transition, TransitionBatch,
};
pub use snapshot::PolicySnapshot;
pub use td3::{Td3, Td3Config};
pub use trainer::{EvalPoint, Trainer, TrainingReport};
pub use vec_trainer::{action_stream_seed, priority_stream_seed, replay_stream_seed, VecTrainer};
