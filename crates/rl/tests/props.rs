//! Property-based tests for the RL layer.

use fixar_fixed::Fx32;
use fixar_rl::{Ddpg, DdpgConfig, ReplayBuffer, Transition};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn transition(dim_s: usize, dim_a: usize, v: f64) -> Transition {
    Transition {
        state: vec![v; dim_s],
        action: vec![v * 0.5; dim_a],
        reward: v,
        next_state: vec![v + 0.1; dim_s],
        terminal: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The replay buffer never loses the most recent `capacity` items
    /// and never yields anything it was not given.
    #[test]
    fn replay_retains_exactly_the_newest_items(
        capacity in 1usize..64,
        pushes in 1usize..200,
    ) {
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            buf.push(transition(2, 1, i as f64));
        }
        prop_assert_eq!(buf.len(), pushes.min(capacity));
        let newest_floor = pushes.saturating_sub(capacity) as f64;
        let mut rng = StdRng::seed_from_u64(0);
        for t in buf.sample(buf.len().min(16), &mut rng) {
            prop_assert!(t.reward >= newest_floor, "stale item {} survived", t.reward);
            prop_assert!(t.reward < pushes as f64);
        }
    }

    /// Actions from any state are tanh-bounded in every backend.
    #[test]
    fn actions_always_bounded(
        seed in 0u64..100,
        state in prop::collection::vec(-100.0..100.0f64, 3),
    ) {
        let cfg = DdpgConfig::small_test().with_seed(seed);
        let mut f = Ddpg::<f64>::new(3, 2, cfg).unwrap();
        let mut q = Ddpg::<Fx32>::new(3, 2, cfg).unwrap();
        for agent_actions in [f.act(&state).unwrap(), q.act(&state).unwrap()] {
            prop_assert!(agent_actions.iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }

    /// One training batch leaves every weight finite in float backends
    /// (no NaN/inf escapes the loss path), for arbitrary reward scales.
    #[test]
    fn training_keeps_weights_finite(
        seed in 0u64..50,
        reward_scale in 0.01..100.0f64,
    ) {
        let cfg = DdpgConfig::small_test().with_seed(seed);
        let mut agent = Ddpg::<f64>::new(3, 1, cfg).unwrap();
        let data: Vec<Transition> = (0..16)
            .map(|i| transition(3, 1, (i as f64 * 0.3).sin() * reward_scale))
            .collect();
        let refs: Vec<&Transition> = data.iter().collect();
        agent.train_batch(&refs).unwrap();
        for l in 0..agent.actor().num_layers() {
            for w in agent.actor().weight(l).as_slice() {
                prop_assert!(w.is_finite());
            }
        }
    }

    /// Parallel training is invariant to the worker count's relation to
    /// the batch (more workers than samples, odd shard sizes, …) — it
    /// must always produce finite results and count exactly one step.
    #[test]
    fn parallel_training_robust_to_worker_counts(
        workers in 1usize..9,
        batch_size in 2usize..24,
    ) {
        let cfg = DdpgConfig::small_test();
        let mut agent = Ddpg::<Fx32>::new(3, 1, cfg).unwrap();
        let data: Vec<Transition> = (0..batch_size)
            .map(|i| transition(3, 1, (i as f64 * 0.7).cos()))
            .collect();
        let refs: Vec<&Transition> = data.iter().collect();
        let metrics = agent.train_batch_parallel(&refs, workers).unwrap();
        prop_assert!(metrics.critic_loss.is_finite());
        prop_assert_eq!(agent.train_steps(), 1);
    }
}
