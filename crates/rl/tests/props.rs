//! Property-based tests for the RL layer.

use fixar_fixed::Fx32;
use fixar_rl::{Ddpg, DdpgConfig, ReplayBuffer, Td3, Td3Config, Transition, TransitionBatch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn transition(dim_s: usize, dim_a: usize, v: f64) -> Transition {
    Transition {
        state: vec![v; dim_s],
        action: vec![v * 0.5; dim_a],
        reward: v,
        next_state: vec![v + 0.1; dim_s],
        terminal: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The replay buffer never loses the most recent `capacity` items
    /// and never yields anything it was not given.
    #[test]
    fn replay_retains_exactly_the_newest_items(
        capacity in 1usize..64,
        pushes in 1usize..200,
    ) {
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            buf.push(transition(2, 1, i as f64));
        }
        prop_assert_eq!(buf.len(), pushes.min(capacity));
        let newest_floor = pushes.saturating_sub(capacity) as f64;
        let mut rng = StdRng::seed_from_u64(0);
        for t in buf.sample(buf.len().min(16), &mut rng) {
            prop_assert!(t.reward >= newest_floor, "stale item {} survived", t.reward);
            prop_assert!(t.reward < pushes as f64);
        }
    }

    /// Actions from any state are tanh-bounded in every backend.
    #[test]
    fn actions_always_bounded(
        seed in 0u64..100,
        state in prop::collection::vec(-100.0..100.0f64, 3),
    ) {
        let cfg = DdpgConfig::small_test().with_seed(seed);
        let mut f = Ddpg::<f64>::new(3, 2, cfg.clone()).unwrap();
        let mut q = Ddpg::<Fx32>::new(3, 2, cfg).unwrap();
        for agent_actions in [f.act(&state).unwrap(), q.act(&state).unwrap()] {
            prop_assert!(agent_actions.iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }

    /// One training batch leaves every weight finite in float backends
    /// (no NaN/inf escapes the loss path), for arbitrary reward scales.
    #[test]
    fn training_keeps_weights_finite(
        seed in 0u64..50,
        reward_scale in 0.01..100.0f64,
    ) {
        let cfg = DdpgConfig::small_test().with_seed(seed);
        let mut agent = Ddpg::<f64>::new(3, 1, cfg).unwrap();
        let data: Vec<Transition> = (0..16)
            .map(|i| transition(3, 1, (i as f64 * 0.3).sin() * reward_scale))
            .collect();
        let refs: Vec<&Transition> = data.iter().collect();
        agent.train_batch(&refs).unwrap();
        for l in 0..agent.actor().num_layers() {
            for w in agent.actor().weight(l).as_slice() {
                prop_assert!(w.is_finite());
            }
        }
    }

    /// The tentpole contract: the batched DDPG update produces
    /// bit-identical `Fx32` weights to the per-sample update on the same
    /// sampled batch, for arbitrary seeds, batch sizes, and data scales.
    #[test]
    fn batched_ddpg_update_bit_exact_with_per_sample(
        seed in 0u64..40,
        batch_size in 1usize..24,
        value_scale in 0.1..5.0f64,
    ) {
        let cfg = DdpgConfig::small_test().with_seed(seed);
        let data: Vec<Transition> = (0..batch_size)
            .map(|i| transition(3, 1, (i as f64 * 0.7 + seed as f64).sin() * value_scale))
            .collect();
        let refs: Vec<&Transition> = data.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs).unwrap();

        let mut per_sample = Ddpg::<Fx32>::new(3, 1, cfg).unwrap();
        let mut batched = per_sample.clone();
        let ma = per_sample.train_batch(&refs).unwrap();
        let mb = batched.train_minibatch(&batch).unwrap();
        prop_assert_eq!(ma, mb);
        for l in 0..per_sample.actor().num_layers() {
            prop_assert_eq!(per_sample.actor().weight(l), batched.actor().weight(l));
            prop_assert_eq!(per_sample.critic().weight(l), batched.critic().weight(l));
            prop_assert_eq!(per_sample.actor().bias(l), batched.actor().bias(l));
            prop_assert_eq!(per_sample.critic().bias(l), batched.critic().bias(l));
        }
    }

    /// Same contract for TD3 (twin critics, delayed policy, smoothing
    /// noise drawn in the per-sample RNG order).
    #[test]
    fn batched_td3_update_bit_exact_with_per_sample(
        seed in 0u64..20,
        batch_size in 1usize..16,
    ) {
        let cfg = Td3Config { seed, ..Td3Config::small_test() };
        let data: Vec<Transition> = (0..batch_size)
            .map(|i| transition(3, 1, (i as f64 * 0.9 + seed as f64 * 0.3).cos()))
            .collect();
        let refs: Vec<&Transition> = data.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs).unwrap();

        let mut per_sample = Td3::<Fx32>::new(3, 1, cfg).unwrap();
        let mut batched = per_sample.clone();
        // Two updates: the second triggers the delayed actor update.
        for _ in 0..2 {
            let ma = per_sample.train_batch(&refs).unwrap();
            let mb = batched.train_minibatch(&batch).unwrap();
            prop_assert_eq!(ma, mb);
        }
        prop_assert_eq!(per_sample.actor(), batched.actor());
        prop_assert_eq!(per_sample.critics(), batched.critics());
    }

    /// Parallel training is invariant to the worker count's relation to
    /// the batch (more workers than samples, odd shard sizes, …) — it
    /// must always produce finite results and count exactly one step.
    #[test]
    fn parallel_training_robust_to_worker_counts(
        workers in 1usize..9,
        batch_size in 2usize..24,
    ) {
        let cfg = DdpgConfig::small_test();
        let mut agent = Ddpg::<Fx32>::new(3, 1, cfg).unwrap();
        let data: Vec<Transition> = (0..batch_size)
            .map(|i| transition(3, 1, (i as f64 * 0.7).cos()))
            .collect();
        let refs: Vec<&Transition> = data.iter().collect();
        let metrics = agent.train_batch_parallel(&refs, workers).unwrap();
        prop_assert!(metrics.critic_loss.is_finite());
        prop_assert_eq!(agent.train_steps(), 1);
    }
}
