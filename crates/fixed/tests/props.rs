//! Property-based tests for the fixed-point substrate.

use fixar_fixed::{AffineQuantizer, Fx16, Fx32, RangeMonitor, Scalar, Q16, Q32};
use proptest::prelude::*;

/// Range of f64 inputs that stay well inside Fx32's Q12.20 span.
fn fx32_val() -> impl Strategy<Value = f64> {
    -1000.0..1000.0f64
}

/// Range of f64 inputs that stay inside Fx16's Q6.10 span.
fn fx16_val() -> impl Strategy<Value = f64> {
    -30.0..30.0f64
}

proptest! {
    #[test]
    fn q32_roundtrip_within_half_ulp(x in fx32_val()) {
        let ulp = 1.0 / (1u64 << 20) as f64;
        let y = Fx32::from_f64(x).to_f64();
        prop_assert!((x - y).abs() <= ulp / 2.0 + 1e-12);
    }

    #[test]
    fn q16_roundtrip_within_half_ulp(x in fx16_val()) {
        let ulp = 1.0 / (1u64 << 10) as f64;
        let y = Fx16::from_f64(x).to_f64();
        prop_assert!((x - y).abs() <= ulp / 2.0 + 1e-12);
    }

    #[test]
    fn q32_add_is_commutative(a in any::<i32>(), b in any::<i32>()) {
        let (x, y) = (Fx32::from_raw(a), Fx32::from_raw(b));
        prop_assert_eq!(x + y, y + x);
    }

    #[test]
    fn q32_mul_is_commutative(a in any::<i32>(), b in any::<i32>()) {
        let (x, y) = (Fx32::from_raw(a), Fx32::from_raw(b));
        prop_assert_eq!(x * y, y * x);
    }

    #[test]
    fn q32_add_never_wraps(a in any::<i32>(), b in any::<i32>()) {
        // The saturating sum is always between the two operand extremes
        // extended by the other operand — i.e. sign-consistent, unlike a
        // wrapping add.
        let (x, y) = (Fx32::from_raw(a), Fx32::from_raw(b));
        let s = x + y;
        if a >= 0 && b >= 0 {
            prop_assert!(s >= x.min(y));
        }
        if a <= 0 && b <= 0 {
            prop_assert!(s <= x.max(y));
        }
    }

    #[test]
    fn q32_mul_matches_f64_within_tolerance(x in fx32_val(), y in -1.0..1.0f64) {
        let got = (Fx32::from_f64(x) * Fx32::from_f64(y)).to_f64();
        let want = x * y;
        // Operand rounding can contribute up to |y|·ulp + |x|·ulp; product
        // rounding one more ulp.
        let ulp = 1.0 / (1u64 << 20) as f64;
        let bound = ulp * (x.abs() + y.abs() + 2.0);
        prop_assert!((got - want).abs() <= bound, "got={got} want={want}");
    }

    #[test]
    fn q32_neg_is_involutive_away_from_min(a in (i32::MIN + 1)..i32::MAX) {
        let x = Fx32::from_raw(a);
        prop_assert_eq!(-(-x), x);
    }

    #[test]
    fn q32_ordering_matches_f64(a in any::<i32>(), b in any::<i32>()) {
        let (x, y) = (Fx32::from_raw(a), Fx32::from_raw(b));
        prop_assert_eq!(x < y, x.to_f64() < y.to_f64());
    }

    #[test]
    fn q32_tanh_bounded(a in any::<i32>()) {
        let t = Fx32::from_raw(a).tanh().to_f64();
        prop_assert!((-1.0..=1.0).contains(&t));
    }

    #[test]
    fn q32_sqrt_is_nonnegative_and_inverts_square(x in 0.0..1000.0f64) {
        let s = Fx32::from_f64(x).sqrt();
        prop_assert!(s >= Fx32::ZERO);
        let sq = (s * s).to_f64();
        // Newton isqrt floors; error scales with sqrt(x) times ulp.
        prop_assert!((sq - x).abs() < 0.05 + x * 1e-4, "x={x} sq={sq}");
    }

    #[test]
    fn q16_mul_saturation_is_ordered(a in any::<i16>(), b in any::<i16>()) {
        // Saturating mul of Q16 always equals the f64 product clamped to
        // the representable range, up to rounding.
        let (x, y) = (Q16::<10>::from_raw(a), Q16::<10>::from_raw(b));
        let got = (x * y).to_f64();
        let want = (x.to_f64() * y.to_f64())
            .clamp(Q16::<10>::MIN.to_f64(), Q16::<10>::MAX.to_f64());
        prop_assert!((got - want).abs() <= 1.5 / 1024.0, "got={got} want={want}");
    }

    #[test]
    fn quantizer_roundtrip_error_is_bounded(
        lo in -100.0..-0.01f64,
        hi in 0.01..100.0f64,
        t in 0.0..1.0f64,
        bits in 4u32..20,
    ) {
        let q = AffineQuantizer::from_range(lo, hi, bits).unwrap();
        let x = lo + t * (hi - lo);
        let err = (q.fake_quantize(x) - x).abs();
        prop_assert!(err <= q.delta() + 1e-9, "x={x} err={err} delta={}", q.delta());
    }

    #[test]
    fn quantizer_codes_fit_in_bits(
        lo in -100.0..-0.01f64,
        hi in 0.01..100.0f64,
        x in -1e6..1e6f64,
        bits in 1u32..24,
    ) {
        let q = AffineQuantizer::from_range(lo, hi, bits).unwrap();
        let code = q.quantize(x);
        prop_assert!(code >= 0);
        prop_assert!(code < (1i64 << bits));
    }

    #[test]
    fn quantizer_is_monotone(
        a in -50.0..50.0f64,
        b in -50.0..50.0f64,
    ) {
        let q = AffineQuantizer::from_range(-50.0, 50.0, 16).unwrap();
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize(x) <= q.quantize(y));
    }

    #[test]
    fn monitor_bounds_every_observation(xs in prop::collection::vec(-1e3..1e3f64, 1..50)) {
        let mut m = RangeMonitor::new();
        for &x in &xs {
            m.observe(x);
        }
        let (lo, hi) = m.range().unwrap();
        for &x in &xs {
            prop_assert!(x >= lo && x <= hi);
        }
        prop_assert_eq!(m.count(), xs.len() as u64);
    }

    #[test]
    fn monitor_merge_equals_joint_observation(
        xs in prop::collection::vec(-1e3..1e3f64, 1..20),
        ys in prop::collection::vec(-1e3..1e3f64, 1..20),
    ) {
        let mut a = RangeMonitor::new();
        let mut b = RangeMonitor::new();
        let mut joint = RangeMonitor::new();
        for &x in &xs { a.observe(x); joint.observe(x); }
        for &y in &ys { b.observe(y); joint.observe(y); }
        a.merge(&b);
        prop_assert_eq!(a.range(), joint.range());
        prop_assert_eq!(a.count(), joint.count());
    }

    #[test]
    fn scalar_generic_mac_consistent_with_f64(
        x in -10.0..10.0f64,
        w in -1.0..1.0f64,
        acc in -100.0..100.0f64,
    ) {
        fn mac<S: Scalar>(x: f64, w: f64, acc: f64) -> f64 {
            S::from_f64(x).mul_add(S::from_f64(w), S::from_f64(acc)).to_f64()
        }
        let want = mac::<f64>(x, w, acc);
        prop_assert!((mac::<Fx32>(x, w, acc) - want).abs() < 1e-3);
        prop_assert!((mac::<Q32<16>>(x, w, acc) - want).abs() < 1e-2);
    }
}
