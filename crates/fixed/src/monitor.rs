//! Running activation-range capture for QAT calibration.

use core::fmt;

use crate::Scalar;

/// Tracks the running minimum and maximum of an activation stream.
///
/// During the quantization-delay phase of Algorithm 1, FIXAR "actively
/// monitors and captures" the minimum and maximum activation values; once
/// the delay elapses those bounds parameterize the 16-bit quantizer. One
/// monitor is kept per layer output.
///
/// # Example
///
/// ```
/// use fixar_fixed::RangeMonitor;
///
/// let mut m = RangeMonitor::new();
/// for x in [0.5, -1.25, 3.0] {
///     m.observe(x);
/// }
/// assert_eq!(m.range(), Some((-1.25, 3.0)));
/// assert_eq!(m.count(), 3);
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct RangeMonitor {
    min: f64,
    max: f64,
    count: u64,
}

impl RangeMonitor {
    /// Creates an empty monitor (no observations yet).
    #[inline]
    pub fn new() -> Self {
        Self {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        }
    }

    /// Records one value. Non-finite values are ignored (a saturated
    /// fixed-point lane can never produce one, but the float baselines can
    /// transiently overflow).
    #[inline]
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.count += 1;
    }

    /// Records every element of a slice of any scalar backend.
    #[inline]
    pub fn observe_slice<S: Scalar>(&mut self, xs: &[S]) {
        for &x in xs {
            self.observe(x.to_f64());
        }
    }

    /// Captured `(min, max)`, or `None` before any observation.
    #[inline]
    pub fn range(&self) -> Option<(f64, f64)> {
        if self.count == 0 {
            None
        } else {
            Some((self.min, self.max))
        }
    }

    /// Number of observations folded in.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merges another monitor's captured range into this one (used when
    /// per-core monitors are reduced, mirroring the accumulator tree).
    #[inline]
    pub fn merge(&mut self, other: &RangeMonitor) {
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
            self.count += other.count;
        }
    }

    /// Clears all observations.
    #[inline]
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

impl Default for RangeMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for RangeMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.range() {
            Some((lo, hi)) => write!(f, "RangeMonitor[{lo}, {hi}] (n={})", self.count),
            None => write!(f, "RangeMonitor[empty]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fx32;

    #[test]
    fn empty_monitor_has_no_range() {
        let m = RangeMonitor::new();
        assert_eq!(m.range(), None);
        assert_eq!(m.count(), 0);
        assert_eq!(format!("{m:?}"), "RangeMonitor[empty]");
    }

    #[test]
    fn observes_extremes() {
        let mut m = RangeMonitor::new();
        for x in [1.0, 5.0, -3.0, 2.0] {
            m.observe(x);
        }
        assert_eq!(m.range(), Some((-3.0, 5.0)));
    }

    #[test]
    fn ignores_non_finite() {
        let mut m = RangeMonitor::new();
        m.observe(f64::NAN);
        m.observe(f64::INFINITY);
        assert_eq!(m.range(), None);
        m.observe(1.0);
        assert_eq!(m.range(), Some((1.0, 1.0)));
    }

    #[test]
    fn merge_combines_ranges() {
        let mut a = RangeMonitor::new();
        a.observe(-1.0);
        let mut b = RangeMonitor::new();
        b.observe(7.0);
        a.merge(&b);
        assert_eq!(a.range(), Some((-1.0, 7.0)));
        assert_eq!(a.count(), 2);

        let empty = RangeMonitor::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn observe_slice_over_fixed_point() {
        let mut m = RangeMonitor::new();
        m.observe_slice(&[Fx32::from_f64(0.25), Fx32::from_f64(-2.5)]);
        assert_eq!(m.range(), Some((-2.5, 0.25)));
    }

    #[test]
    fn reset_clears_state() {
        let mut m = RangeMonitor::new();
        m.observe(3.0);
        m.reset();
        assert_eq!(m.range(), None);
    }
}
