//! Integer-only math kernels shared by the fixed-point scalar types.
//!
//! These mirror how an FPGA activation unit evaluates nonlinear functions:
//! the lookup tables below are the ROM contents (computed offline in full
//! precision, stored here as Q2.30 integer constants) and everything at
//! runtime — indexing, interpolation, Newton iterations — is integer
//! arithmetic.
//!
//! The module is public so that integer-only consumers (most notably the
//! `fixar-deploy` artifact interpreter, which must evaluate a frozen
//! policy without touching `f32`/`f64`) can call the raw kernels directly
//! on two's-complement words instead of going through a scalar type.

/// `tanh(i * 4/64)` for `i = 0..=64`, in Q2.30.
///
/// 64 piecewise-linear segments over `[0, 4]`; beyond 4 the function is
/// saturated to ±1, where `tanh` is within 7e-4 of its asymptote.
///
/// Public so `fixar-deploy`'s codegen can embed the exact ROM contents
/// in emitted firmware source instead of duplicating the constants.
pub const TANH_Q30: [i64; 65] = [
    0, 67021619, 133523019, 199000008, 262979411, 325032097, 384783327, 441919982, 496194519,
    547425766, 595496917, 640351229, 681985995, 720445410, 755812887, 788203292, 817755498,
    844625518, 868980407, 890993016, 910837623, 928686409, 944706725, 959059047, 971895537,
    983359117, 993582944, 1002690226, 1010794288, 1017998824, 1024398298, 1030078428, 1035116732,
    1039583108, 1043540415, 1047045057, 1050147544, 1052893030, 1055321814, 1057469822, 1059369036,
    1061047900, 1062531689, 1063842843, 1065001270, 1066024621, 1066928539, 1067726879, 1068431906,
    1069054476, 1069604193, 1070089550, 1070518060, 1070896360, 1071230320, 1071525125, 1071785356,
    1072015063, 1072217818, 1072396782, 1072554741, 1072694159, 1072817210, 1072925813, 1073021665,
];

/// `2^(i/32)` for `i = 0..=32`, in Q2.30.
const POW2_Q30: [i64; 33] = [
    1073741824, 1097253708, 1121280436, 1145833280, 1170923762, 1196563654, 1222764986, 1249540052,
    1276901417, 1304861917, 1333434672, 1362633090, 1392470869, 1422962010, 1454120821, 1485961921,
    1518500250, 1551751076, 1585730000, 1620452965, 1655936265, 1692196547, 1729250827, 1767116489,
    1805811301, 1845353420, 1885761398, 1927054196, 1969251188, 2012372174, 2056437387, 2101467502,
    2147483648,
];

/// `log2(e)` in Q2.30.
const LOG2E_Q30: i64 = 1549082005;

const Q30: u32 = 30;

/// Rescale a Q2.30 value to a Q`frac` value with round-to-nearest.
#[inline]
fn q30_to_frac(v: i64, frac: u32) -> i64 {
    debug_assert!(frac <= Q30);
    let shift = Q30 - frac;
    if shift == 0 {
        v
    } else {
        (v + (1i64 << (shift - 1))) >> shift
    }
}

/// Hyperbolic tangent of a fixed-point value with `frac` fractional bits,
/// evaluated over a 64-segment piecewise-linear ROM (integer datapath).
///
/// Input and output are raw fixed-point integers sharing the same format.
/// The result always lies in `[-2^frac, 2^frac]` (i.e. `[-1.0, 1.0]`).
///
/// # Panics
///
/// Debug-asserts `frac` in `4..=30` (the segment width must be a whole
/// number of raw units).
pub fn tanh_raw(raw: i64, frac: u32) -> i64 {
    debug_assert!(
        (4..=Q30).contains(&frac),
        "tanh_raw requires 4..=30 fractional bits"
    );
    let one = 1i64 << frac;
    let xmax = 4 * one;
    let ax = raw.abs();
    let y = if ax >= xmax {
        one
    } else {
        // Segment width is xmax/64 = 2^(frac-4) raw units, so index and
        // remainder extraction are pure shifts/masks, as in hardware.
        let seg_shift = frac - 4;
        let idx = (ax >> seg_shift) as usize;
        let rem = ax & ((1i64 << seg_shift) - 1);
        let y0 = q30_to_frac(TANH_Q30[idx], frac);
        let y1 = q30_to_frac(TANH_Q30[idx + 1], frac);
        y0 + (((y1 - y0) * rem) >> seg_shift)
    };
    if raw < 0 {
        -y
    } else {
        y
    }
}

/// `e^x` for a fixed-point value with `frac` fractional bits.
///
/// Uses the classic range reduction `e^x = 2^(x·log2 e)`, splitting the
/// product into integer and fractional parts; the fractional power of two
/// comes from a 32-segment piecewise-linear ROM. Returns `i64::MAX` on
/// overflow (callers saturate).
pub(crate) fn exp_raw(raw: i64, frac: u32) -> i64 {
    debug_assert!((5..=Q30).contains(&frac));
    // t = x * log2(e), still with `frac` fractional bits.
    let t = (raw.saturating_mul(LOG2E_Q30)) >> Q30;
    let k = t >> frac; // floor of t: integer exponent
    let r = t - (k << frac); // fractional part in [0, 2^frac)
                             // 2^r via the POW2 ROM: 32 segments over [0, 1).
    let seg_shift = frac - 5;
    let idx = (r >> seg_shift) as usize;
    let rem = r & ((1i64 << seg_shift) - 1);
    let y0 = POW2_Q30[idx];
    let y1 = POW2_Q30[idx + 1];
    let frac_pow = y0 + (((y1 - y0) * rem) >> seg_shift); // Q2.30 in [1, 2]
                                                          // result = frac_pow * 2^k, rescaled from Q30 to `frac`.
    let shift = Q30 as i64 - frac as i64 - k;
    if shift <= 0 {
        let up = (-shift) as u32;
        if up >= 33 || frac_pow > (i64::MAX >> up) {
            return i64::MAX;
        }
        frac_pow << up
    } else if shift >= 63 {
        0
    } else {
        (frac_pow + (1i64 << (shift - 1))) >> shift
    }
}

/// Integer square root of a `u64`, by Newton's method seeded from the bit
/// length (integer-only; converges in a handful of iterations).
pub(crate) fn isqrt_u64(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    let bits = 64 - v.leading_zeros();
    let mut x = 1u64 << bits.div_ceil(2);
    loop {
        let next = (x + v / x) >> 1;
        if next >= x {
            return x;
        }
        x = next;
    }
}

/// Fixed-point square root: `sqrt(raw / 2^frac) * 2^frac` for `raw >= 0`.
///
/// `sqrt(v)` in format Qf is `isqrt(raw << frac)` because
/// `sqrt(raw/2^f)·2^f = sqrt(raw·2^f)`.
pub(crate) fn sqrt_raw(raw: i64, frac: u32) -> i64 {
    if raw <= 0 {
        return 0;
    }
    isqrt_u64((raw as u64) << frac) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err_tanh(frac: u32, x: f64) -> f64 {
        let raw = (x * (1i64 << frac) as f64).round() as i64;
        let got = tanh_raw(raw, frac) as f64 / (1i64 << frac) as f64;
        (got - x.tanh()).abs()
    }

    #[test]
    fn tanh_matches_reference_within_pwl_error() {
        for i in -100..=100 {
            let x = i as f64 * 0.06;
            assert!(err_tanh(20, x) < 2e-3, "x={x} err={}", err_tanh(20, x));
        }
    }

    #[test]
    fn tanh_saturates_to_one() {
        assert_eq!(tanh_raw(100 << 20, 20), 1 << 20);
        assert_eq!(tanh_raw(-(100i64 << 20), 20), -(1i64 << 20));
    }

    #[test]
    fn tanh_is_odd() {
        for i in 0..200 {
            let raw = i * 12345;
            assert_eq!(tanh_raw(raw, 20), -tanh_raw(-raw, 20));
        }
    }

    #[test]
    fn exp_matches_reference() {
        for i in -40..=40 {
            let x = i as f64 * 0.25;
            let raw = (x * (1i64 << 20) as f64).round() as i64;
            let got = exp_raw(raw, 20) as f64 / (1i64 << 20) as f64;
            let want = x.exp();
            // PWL interpolation error is relative; output-grid rounding adds
            // up to one ulp of absolute error for tiny results.
            let ulp = 1.0 / (1i64 << 20) as f64;
            let err = (got - want).abs();
            assert!(err < 5e-3 * want + ulp, "x={x} got={got} want={want}");
        }
    }

    #[test]
    fn exp_overflow_saturates() {
        assert_eq!(exp_raw(1000 << 20, 20), i64::MAX);
    }

    #[test]
    fn isqrt_exact_squares() {
        for v in 0u64..2000 {
            assert_eq!(isqrt_u64(v * v), v);
        }
        assert_eq!(isqrt_u64(u64::MAX), (1u64 << 32) - 1);
    }

    #[test]
    fn isqrt_floor_property() {
        for v in [2u64, 3, 5, 8, 15, 24, 99, 10_000_000_019] {
            let r = isqrt_u64(v);
            assert!(r * r <= v);
            assert!((r + 1).checked_mul(r + 1).map(|s| s > v).unwrap_or(true));
        }
    }

    #[test]
    fn sqrt_raw_matches_reference() {
        for i in 0..500 {
            let x = i as f64 * 0.37;
            let raw = (x * (1i64 << 20) as f64).round() as i64;
            let got = sqrt_raw(raw, 20) as f64 / (1i64 << 20) as f64;
            assert!((got - x.sqrt()).abs() < 2e-5, "x={x}");
        }
    }

    #[test]
    fn sqrt_of_negative_clamps_to_zero() {
        assert_eq!(sqrt_raw(-5, 20), 0);
    }
}
