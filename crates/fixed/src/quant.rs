//! The activation quantizer of FIXAR's Algorithm 1.

use core::fmt;
use std::error::Error;

use crate::monitor::RangeMonitor;
use crate::Scalar;

/// Error constructing an [`AffineQuantizer`].
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// The requested bit width was 0 or above 31.
    InvalidBits(u32),
    /// The calibration range was empty or degenerate (`min == max == 0`,
    /// or `min > max`).
    DegenerateRange {
        /// Calibrated minimum.
        min: f64,
        /// Calibrated maximum.
        max: f64,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::InvalidBits(b) => {
                write!(f, "quantizer bit width must be 1..=31, got {b}")
            }
            QuantError::DegenerateRange { min, max } => {
                write!(f, "degenerate calibration range [{min}, {max}]")
            }
        }
    }
}

impl Error for QuantError {}

/// Affine (asymmetric) quantizer implementing the paper's Algorithm 1:
///
/// ```text
/// Qn(A, Amin, Amax) = floor(A / δ) + z
///     δ = (|Amin| + |Amax|) / 2^n
///     z = floor(-Amin / δ)
/// ```
///
/// Codes are clamped to `[0, 2^n - 1]`; dequantization is
/// `(q - z) · δ`. The quantizer is calibrated once, from the min/max
/// captured by a [`RangeMonitor`] during the quantization-delay window,
/// and then stays frozen for the rest of training — exactly the paper's
/// protocol.
///
/// # Example
///
/// ```
/// use fixar_fixed::AffineQuantizer;
///
/// let q = AffineQuantizer::from_range(-2.0, 6.0, 16)?;
/// let x = 1.2345_f64;
/// let err = (q.dequantize(q.quantize(x)) - x).abs();
/// assert!(err <= q.delta());
/// # Ok::<(), fixar_fixed::QuantError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineQuantizer {
    delta: f64,
    zero_point: i64,
    bits: u32,
    max_code: i64,
}

impl AffineQuantizer {
    /// Builds a quantizer from a calibrated `[min, max]` range and a bit
    /// width `n` (the paper uses `n = 16`).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidBits`] for `bits == 0 || bits > 31` and
    /// [`QuantError::DegenerateRange`] when `min > max` or both are zero.
    pub fn from_range(min: f64, max: f64, bits: u32) -> Result<Self, QuantError> {
        if bits == 0 || bits > 31 {
            return Err(QuantError::InvalidBits(bits));
        }
        if min > max || (min == 0.0 && max == 0.0) || !min.is_finite() || !max.is_finite() {
            return Err(QuantError::DegenerateRange { min, max });
        }
        let levels = (1u64 << bits) as f64;
        let delta = (min.abs() + max.abs()) / levels;
        let zero_point = (-min / delta).floor() as i64;
        Ok(Self {
            delta,
            zero_point,
            bits,
            max_code: (1i64 << bits) - 1,
        })
    }

    /// Builds a quantizer from the range captured by a [`RangeMonitor`].
    ///
    /// # Errors
    ///
    /// Propagates [`QuantError::DegenerateRange`] when the monitor never
    /// observed a value, and [`QuantError::InvalidBits`] as in
    /// [`AffineQuantizer::from_range`].
    pub fn from_monitor(monitor: &RangeMonitor, bits: u32) -> Result<Self, QuantError> {
        match monitor.range() {
            Some((min, max)) => Self::from_range(min, max, bits),
            None => Err(QuantError::DegenerateRange {
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            }),
        }
    }

    /// Quantization step size δ.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Zero point z.
    #[inline]
    pub fn zero_point(&self) -> i64 {
        self.zero_point
    }

    /// Bit width n.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Quantizes a value to an n-bit code: `clamp(floor(x/δ) + z)`.
    #[inline]
    pub fn quantize(&self, x: f64) -> i64 {
        let q = (x / self.delta).floor() as i64 + self.zero_point;
        q.clamp(0, self.max_code)
    }

    /// Reconstructs the real value of a code: `(q − z) · δ`.
    #[inline]
    pub fn dequantize(&self, code: i64) -> f64 {
        (code - self.zero_point) as f64 * self.delta
    }

    /// Quantize-then-dequantize ("fake quantization"): projects `x` onto
    /// the n-bit grid. This is what the QAT training path applies to
    /// activations after the quantization delay.
    #[inline]
    pub fn fake_quantize(&self, x: f64) -> f64 {
        self.dequantize(self.quantize(x))
    }

    /// Fake-quantizes a scalar of any backend in place of its real value.
    #[inline]
    pub fn fake_quantize_scalar<S: Scalar>(&self, x: S) -> S {
        S::from_f64(self.fake_quantize(x.to_f64()))
    }

    /// Fake-quantizes a slice in place.
    pub fn fake_quantize_slice<S: Scalar>(&self, xs: &mut [S]) {
        for x in xs {
            *x = self.fake_quantize_scalar(*x);
        }
    }

    /// Worst-case absolute reconstruction error for in-range inputs (one
    /// quantization step, since Algorithm 1 floors).
    #[inline]
    pub fn max_error(&self) -> f64 {
        self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fx32;

    #[test]
    fn algorithm1_formulas() {
        // δ = (|min|+|max|)/2^n, z = floor(−min/δ)
        let q = AffineQuantizer::from_range(-2.0, 6.0, 4).unwrap();
        assert!((q.delta() - 8.0 / 16.0).abs() < 1e-12);
        assert_eq!(q.zero_point(), 4);
    }

    #[test]
    fn roundtrip_error_bounded_by_delta() {
        let q = AffineQuantizer::from_range(-3.0, 5.0, 16).unwrap();
        for i in 0..1000 {
            let x = -3.0 + i as f64 * 8.0 / 1000.0;
            let err = (q.fake_quantize(x) - x).abs();
            assert!(err <= q.delta() + 1e-12, "x={x} err={err}");
        }
    }

    #[test]
    fn codes_clamp_to_n_bits() {
        let q = AffineQuantizer::from_range(-1.0, 1.0, 8).unwrap();
        assert_eq!(q.quantize(100.0), 255);
        assert_eq!(q.quantize(-100.0), 0);
    }

    #[test]
    fn asymmetric_ranges_are_supported() {
        // A post-ReLU tensor has min = 0.
        let q = AffineQuantizer::from_range(0.0, 10.0, 16).unwrap();
        assert_eq!(q.zero_point(), 0);
        assert!((q.fake_quantize(5.0) - 5.0).abs() <= q.delta());
        assert_eq!(q.quantize(-1.0), 0);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(matches!(
            AffineQuantizer::from_range(-1.0, 1.0, 0),
            Err(QuantError::InvalidBits(0))
        ));
        assert!(matches!(
            AffineQuantizer::from_range(-1.0, 1.0, 32),
            Err(QuantError::InvalidBits(32))
        ));
        assert!(matches!(
            AffineQuantizer::from_range(1.0, -1.0, 8),
            Err(QuantError::DegenerateRange { .. })
        ));
        assert!(matches!(
            AffineQuantizer::from_range(0.0, 0.0, 8),
            Err(QuantError::DegenerateRange { .. })
        ));
    }

    #[test]
    fn from_monitor_requires_observations() {
        let empty = RangeMonitor::new();
        assert!(AffineQuantizer::from_monitor(&empty, 16).is_err());

        let mut m = RangeMonitor::new();
        m.observe(-1.5);
        m.observe(2.5);
        let q = AffineQuantizer::from_monitor(&m, 16).unwrap();
        assert!((q.delta() - 4.0 / 65536.0).abs() < 1e-12);
    }

    #[test]
    fn fake_quantize_slice_in_fixed_point() {
        let q = AffineQuantizer::from_range(-4.0, 4.0, 8).unwrap();
        let mut xs = vec![
            Fx32::from_f64(0.123),
            Fx32::from_f64(-1.9),
            Fx32::from_f64(3.99),
        ];
        let orig: Vec<f64> = xs.iter().map(|x| x.to_f64()).collect();
        q.fake_quantize_slice(&mut xs);
        for (x, o) in xs.iter().zip(orig) {
            assert!((x.to_f64() - o).abs() <= q.delta() + 1e-5);
        }
    }

    #[test]
    fn error_messages_are_lowercase_and_useful() {
        let e = AffineQuantizer::from_range(-1.0, 1.0, 0).unwrap_err();
        let msg = e.to_string();
        assert!(msg.starts_with("quantizer bit width"));
    }
}
