//! The activation quantizer of FIXAR's Algorithm 1.

use core::fmt;
use std::error::Error;

use crate::monitor::RangeMonitor;
use crate::Scalar;

/// Error constructing an [`AffineQuantizer`].
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// The requested bit width was 0 or above 31.
    InvalidBits(u32),
    /// The calibration range was empty or degenerate (`min == max == 0`,
    /// or `min > max`).
    DegenerateRange {
        /// Calibrated minimum.
        min: f64,
        /// Calibrated maximum.
        max: f64,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::InvalidBits(b) => {
                write!(f, "quantizer bit width must be 1..=31, got {b}")
            }
            QuantError::DegenerateRange { min, max } => {
                write!(f, "degenerate calibration range [{min}, {max}]")
            }
        }
    }
}

impl Error for QuantError {}

/// A fixed-point number format `Qm.n`: `total_bits` of storage, of which
/// `frac_bits` sit right of the binary point (so `m = total_bits -
/// frac_bits` integer bits, sign included).
///
/// `QFormat` is the value type of the per-layer precision axis: FIXAR's
/// ADFP picks one Qm.n per tensor by range observation, and the
/// precision-policy machinery in `fixar-nn` lets every activation point
/// carry its own format. A format describes a *grid* — step size
/// [`QFormat::delta`] and representable range [`QFormat::min_value`] ..
/// [`QFormat::max_value`] — independent of any calibration data.
///
/// # Example
///
/// ```
/// use fixar_fixed::QFormat;
///
/// // Q4.12: 16 bits, 12 fractional — range ±8, step 2^-12.
/// let fmt = QFormat::q(4, 12)?;
/// assert_eq!(fmt.total_bits(), 16);
/// assert_eq!(fmt.frac_bits(), 12);
/// assert_eq!(fmt.delta(), 1.0 / 4096.0);
/// assert_eq!(fmt.to_string(), "Q4.12");
/// # Ok::<(), fixar_fixed::QuantError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    total_bits: u32,
    frac_bits: u32,
}

impl QFormat {
    /// Builds a format from integer bits `m` (sign included) and
    /// fractional bits `n` — the paper's `Qm.n` notation.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidBits`] when `m + n` is 0 or above 32.
    pub fn q(m: u32, n: u32) -> Result<Self, QuantError> {
        Self::new(m + n, n)
    }

    /// Builds a format from a total width and a fractional-bit count.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidBits`] when `total_bits` is 0 or
    /// above 32, or `frac_bits > total_bits`.
    pub fn new(total_bits: u32, frac_bits: u32) -> Result<Self, QuantError> {
        if total_bits == 0 || total_bits > 32 || frac_bits > total_bits {
            return Err(QuantError::InvalidBits(total_bits));
        }
        Ok(Self {
            total_bits,
            frac_bits,
        })
    }

    /// Picks the widest-resolution `total_bits`-wide format whose range
    /// still covers `[min, max]` — the ADFP format-selection rule:
    /// integer bits from the observed magnitude, every remaining bit
    /// spent on resolution.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidBits`] as [`QFormat::new`] and
    /// [`QuantError::DegenerateRange`] when the range is empty or
    /// non-finite.
    pub fn for_range(total_bits: u32, min: f64, max: f64) -> Result<Self, QuantError> {
        if total_bits == 0 || total_bits > 32 {
            return Err(QuantError::InvalidBits(total_bits));
        }
        if min > max || (min == 0.0 && max == 0.0) || !min.is_finite() || !max.is_finite() {
            return Err(QuantError::DegenerateRange { min, max });
        }
        let max_abs = min.abs().max(max.abs());
        // Magnitude bits needed so that ±2^(m-1) covers max_abs (one of
        // the m integer bits is the sign).
        let mag = if max_abs <= 1.0 {
            0
        } else {
            max_abs.log2().ceil() as u32
        };
        let int_bits = (mag + 1).min(total_bits);
        Self::new(total_bits, total_bits - int_bits)
    }

    /// Total storage width in bits.
    #[inline]
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Fractional bits (right of the binary point).
    #[inline]
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Integer bits `m = total_bits - frac_bits`, sign included.
    #[inline]
    pub fn int_bits(&self) -> u32 {
        self.total_bits - self.frac_bits
    }

    /// Grid step size `2^-frac_bits`.
    #[inline]
    pub fn delta(&self) -> f64 {
        (0.5f64).powi(self.frac_bits as i32)
    }

    /// Smallest representable value, `-2^(m-1)` (two's complement).
    #[inline]
    pub fn min_value(&self) -> f64 {
        -((1u64 << (self.total_bits - 1)) as f64) * self.delta()
    }

    /// Largest representable value, `2^(m-1) - delta`.
    #[inline]
    pub fn max_value(&self) -> f64 {
        ((1u64 << (self.total_bits - 1)) - 1) as f64 * self.delta()
    }

    /// Smallest raw two's-complement word on this grid, `-2^(bits-1)`.
    #[inline]
    pub fn min_raw(&self) -> i64 {
        -(1i64 << (self.total_bits - 1))
    }

    /// Largest raw two's-complement word on this grid, `2^(bits-1) - 1`.
    #[inline]
    pub fn max_raw(&self) -> i64 {
        (1i64 << (self.total_bits - 1)) - 1
    }

    /// Requantizes a raw word from this grid onto `to`'s grid using only
    /// integer shifts — the datapath a fixed-point accelerator uses to
    /// move a value between two `Qm.n` formats.
    ///
    /// Widening the fraction (`to.frac_bits() >= self.frac_bits()`) is a
    /// left shift and exact whenever the result fits; narrowing is an
    /// arithmetic right shift, i.e. **floor** onto the coarser grid —
    /// the same rounding direction as Algorithm 1's quantizer. Either
    /// way the result saturates at `to`'s two's-complement rails
    /// ([`QFormat::min_raw`] / [`QFormat::max_raw`]).
    ///
    /// # Example
    ///
    /// ```
    /// use fixar_fixed::QFormat;
    ///
    /// let fine = QFormat::q(4, 12)?; // Q4.12
    /// let coarse = QFormat::q(4, 4)?; // Q4.4
    /// // 1.5 on the Q4.12 grid is raw 0x1800; on Q4.4 it is raw 0x18.
    /// assert_eq!(fine.requantize(0x1800, coarse), 0x18);
    /// // Widening back is exact for values on the coarse grid.
    /// assert_eq!(coarse.requantize(0x18, fine), 0x1800);
    /// # Ok::<(), fixar_fixed::QuantError>(())
    /// ```
    pub fn requantize(&self, raw: i64, to: QFormat) -> i64 {
        let v = raw as i128;
        let shifted = if to.frac_bits >= self.frac_bits {
            v << (to.frac_bits - self.frac_bits)
        } else {
            v >> (self.frac_bits - to.frac_bits)
        };
        shifted.clamp(to.min_raw() as i128, to.max_raw() as i128) as i64
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits(), self.frac_bits)
    }
}

/// Affine (asymmetric) quantizer implementing the paper's Algorithm 1:
///
/// ```text
/// Qn(A, Amin, Amax) = floor(A / δ) + z
///     δ = (|Amin| + |Amax|) / 2^n
///     z = floor(-Amin / δ)
/// ```
///
/// Codes are clamped to `[0, 2^n - 1]`; dequantization is
/// `(q - z) · δ`. The quantizer is calibrated once, from the min/max
/// captured by a [`RangeMonitor`] during the quantization-delay window,
/// and then stays frozen for the rest of training — exactly the paper's
/// protocol.
///
/// # Example
///
/// ```
/// use fixar_fixed::AffineQuantizer;
///
/// let q = AffineQuantizer::from_range(-2.0, 6.0, 16)?;
/// let x = 1.2345_f64;
/// let err = (q.dequantize(q.quantize(x)) - x).abs();
/// assert!(err <= q.delta());
/// # Ok::<(), fixar_fixed::QuantError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineQuantizer {
    delta: f64,
    zero_point: i64,
    bits: u32,
    max_code: i64,
}

impl AffineQuantizer {
    /// Builds a quantizer from a calibrated `[min, max]` range and a bit
    /// width `n` (the paper uses `n = 16`).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidBits`] for `bits == 0 || bits > 31` and
    /// [`QuantError::DegenerateRange`] when `min > max` or both are zero.
    pub fn from_range(min: f64, max: f64, bits: u32) -> Result<Self, QuantError> {
        if bits == 0 || bits > 31 {
            return Err(QuantError::InvalidBits(bits));
        }
        if min > max || (min == 0.0 && max == 0.0) || !min.is_finite() || !max.is_finite() {
            return Err(QuantError::DegenerateRange { min, max });
        }
        let levels = (1u64 << bits) as f64;
        let delta = (min.abs() + max.abs()) / levels;
        let zero_point = (-min / delta).floor() as i64;
        Ok(Self {
            delta,
            zero_point,
            bits,
            max_code: (1i64 << bits) - 1,
        })
    }

    /// Builds a quantizer from the range captured by a [`RangeMonitor`].
    ///
    /// # Errors
    ///
    /// Propagates [`QuantError::DegenerateRange`] when the monitor never
    /// observed a value, and [`QuantError::InvalidBits`] as in
    /// [`AffineQuantizer::from_range`].
    pub fn from_monitor(monitor: &RangeMonitor, bits: u32) -> Result<Self, QuantError> {
        match monitor.range() {
            Some((min, max)) => Self::from_range(min, max, bits),
            None => Err(QuantError::DegenerateRange {
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            }),
        }
    }

    /// Builds a quantizer on an explicit [`QFormat`] grid, independent of
    /// any calibration range: `δ = 2^-frac_bits`, `z = 2^(total_bits-1)`
    /// (the two's-complement midpoint), codes clamped to
    /// `[0, 2^total_bits - 1]`.
    ///
    /// Unlike [`AffineQuantizer::from_range`], zero is always exactly
    /// representable, and two quantizers built from the same format are
    /// identical regardless of what data flowed past — the property that
    /// makes explicit per-layer formats reproducible across workers.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidBits`] when the format is wider than
    /// 31 bits (the code arithmetic is `i64`; the 32-bit weight format is
    /// representable as a [`QFormat`] but not servable as an activation
    /// quantizer).
    ///
    /// # Example
    ///
    /// ```
    /// use fixar_fixed::{AffineQuantizer, QFormat};
    ///
    /// let q = AffineQuantizer::from_format(QFormat::q(4, 4)?)?;
    /// assert_eq!(q.fake_quantize(0.0), 0.0);
    /// assert_eq!(q.fake_quantize(1.30), 1.25); // floor onto the 2^-4 grid
    /// # Ok::<(), fixar_fixed::QuantError>(())
    /// ```
    pub fn from_format(format: QFormat) -> Result<Self, QuantError> {
        let bits = format.total_bits();
        if bits > 31 {
            return Err(QuantError::InvalidBits(bits));
        }
        Ok(Self {
            delta: format.delta(),
            zero_point: 1i64 << (bits - 1),
            bits,
            max_code: (1i64 << bits) - 1,
        })
    }

    /// The effective `Qm.n` format of this quantizer's grid: total width
    /// is the code width, fractional bits from `round(-log2(δ))` (clamped
    /// into the format's validity window). Exact for
    /// [`AffineQuantizer::from_format`] quantizers; for range-calibrated
    /// ones this is the nearest power-of-two description of the learned
    /// step, which is what resource pricing wants.
    pub fn format(&self) -> QFormat {
        let frac = (-self.delta.log2()).round().clamp(0.0, self.bits as f64) as u32;
        QFormat {
            total_bits: self.bits,
            frac_bits: frac,
        }
    }

    /// Quantization step size δ.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Zero point z.
    #[inline]
    pub fn zero_point(&self) -> i64 {
        self.zero_point
    }

    /// Bit width n.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Quantizes a value to an n-bit code: `clamp(floor(x/δ) + z)`.
    #[inline]
    pub fn quantize(&self, x: f64) -> i64 {
        let q = (x / self.delta).floor() as i64 + self.zero_point;
        q.clamp(0, self.max_code)
    }

    /// Reconstructs the real value of a code: `(q − z) · δ`.
    #[inline]
    pub fn dequantize(&self, code: i64) -> f64 {
        (code - self.zero_point) as f64 * self.delta
    }

    /// Quantize-then-dequantize ("fake quantization"): projects `x` onto
    /// the n-bit grid. This is what the QAT training path applies to
    /// activations after the quantization delay.
    #[inline]
    pub fn fake_quantize(&self, x: f64) -> f64 {
        self.dequantize(self.quantize(x))
    }

    /// Fake-quantizes a scalar of any backend in place of its real value.
    #[inline]
    pub fn fake_quantize_scalar<S: Scalar>(&self, x: S) -> S {
        S::from_f64(self.fake_quantize(x.to_f64()))
    }

    /// Fake-quantizes a slice in place.
    pub fn fake_quantize_slice<S: Scalar>(&self, xs: &mut [S]) {
        for x in xs {
            *x = self.fake_quantize_scalar(*x);
        }
    }

    /// Worst-case absolute reconstruction error for in-range inputs (one
    /// quantization step, since Algorithm 1 floors).
    #[inline]
    pub fn max_error(&self) -> f64 {
        self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fx32;

    #[test]
    fn algorithm1_formulas() {
        // δ = (|min|+|max|)/2^n, z = floor(−min/δ)
        let q = AffineQuantizer::from_range(-2.0, 6.0, 4).unwrap();
        assert!((q.delta() - 8.0 / 16.0).abs() < 1e-12);
        assert_eq!(q.zero_point(), 4);
    }

    #[test]
    fn roundtrip_error_bounded_by_delta() {
        let q = AffineQuantizer::from_range(-3.0, 5.0, 16).unwrap();
        for i in 0..1000 {
            let x = -3.0 + i as f64 * 8.0 / 1000.0;
            let err = (q.fake_quantize(x) - x).abs();
            assert!(err <= q.delta() + 1e-12, "x={x} err={err}");
        }
    }

    #[test]
    fn codes_clamp_to_n_bits() {
        let q = AffineQuantizer::from_range(-1.0, 1.0, 8).unwrap();
        assert_eq!(q.quantize(100.0), 255);
        assert_eq!(q.quantize(-100.0), 0);
    }

    #[test]
    fn asymmetric_ranges_are_supported() {
        // A post-ReLU tensor has min = 0.
        let q = AffineQuantizer::from_range(0.0, 10.0, 16).unwrap();
        assert_eq!(q.zero_point(), 0);
        assert!((q.fake_quantize(5.0) - 5.0).abs() <= q.delta());
        assert_eq!(q.quantize(-1.0), 0);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(matches!(
            AffineQuantizer::from_range(-1.0, 1.0, 0),
            Err(QuantError::InvalidBits(0))
        ));
        assert!(matches!(
            AffineQuantizer::from_range(-1.0, 1.0, 32),
            Err(QuantError::InvalidBits(32))
        ));
        assert!(matches!(
            AffineQuantizer::from_range(1.0, -1.0, 8),
            Err(QuantError::DegenerateRange { .. })
        ));
        assert!(matches!(
            AffineQuantizer::from_range(0.0, 0.0, 8),
            Err(QuantError::DegenerateRange { .. })
        ));
    }

    #[test]
    fn from_monitor_requires_observations() {
        let empty = RangeMonitor::new();
        assert!(AffineQuantizer::from_monitor(&empty, 16).is_err());

        let mut m = RangeMonitor::new();
        m.observe(-1.5);
        m.observe(2.5);
        let q = AffineQuantizer::from_monitor(&m, 16).unwrap();
        assert!((q.delta() - 4.0 / 65536.0).abs() < 1e-12);
    }

    #[test]
    fn fake_quantize_slice_in_fixed_point() {
        let q = AffineQuantizer::from_range(-4.0, 4.0, 8).unwrap();
        let mut xs = vec![
            Fx32::from_f64(0.123),
            Fx32::from_f64(-1.9),
            Fx32::from_f64(3.99),
        ];
        let orig: Vec<f64> = xs.iter().map(|x| x.to_f64()).collect();
        q.fake_quantize_slice(&mut xs);
        for (x, o) in xs.iter().zip(orig) {
            assert!((x.to_f64() - o).abs() <= q.delta() + 1e-5);
        }
    }

    #[test]
    fn qformat_grid_properties() {
        let fmt = QFormat::q(4, 12).unwrap();
        assert_eq!(fmt.total_bits(), 16);
        assert_eq!(fmt.int_bits(), 4);
        assert_eq!(fmt.delta(), 1.0 / 4096.0);
        assert_eq!(fmt.min_value(), -8.0);
        assert_eq!(fmt.max_value(), 8.0 - fmt.delta());
        assert_eq!(fmt.to_string(), "Q4.12");
        assert!(QFormat::new(0, 0).is_err());
        assert!(QFormat::new(33, 0).is_err());
        assert!(QFormat::new(8, 9).is_err());
        // The 32-bit weight format is describable...
        assert!(QFormat::new(32, 20).is_ok());
        // ...but not servable as an activation quantizer.
        assert!(AffineQuantizer::from_format(QFormat::new(32, 20).unwrap()).is_err());
    }

    #[test]
    fn qformat_for_range_spends_spare_bits_on_resolution() {
        // |max| = 6 needs 3 magnitude bits + sign → Q4.12 at 16 bits.
        let fmt = QFormat::for_range(16, -2.0, 6.0).unwrap();
        assert_eq!(fmt.to_string(), "Q4.12");
        assert!(fmt.max_value() >= 6.0);
        // Sub-unit ranges keep one integer (sign) bit.
        let small = QFormat::for_range(8, -0.5, 0.5).unwrap();
        assert_eq!(small.to_string(), "Q1.7");
        assert!(QFormat::for_range(8, 1.0, -1.0).is_err());
        assert!(QFormat::for_range(8, 0.0, 0.0).is_err());
    }

    #[test]
    fn format_quantizer_is_data_independent_and_zero_exact() {
        let fmt = QFormat::q(4, 4).unwrap();
        let q = AffineQuantizer::from_format(fmt).unwrap();
        assert_eq!(q.bits(), 8);
        assert_eq!(q.delta(), fmt.delta());
        assert_eq!(q.fake_quantize(0.0), 0.0);
        assert_eq!(q.fake_quantize(1.30), 1.25);
        // Saturation at the format's rails.
        assert_eq!(q.fake_quantize(100.0), fmt.max_value());
        assert_eq!(q.fake_quantize(-100.0), fmt.min_value());
        // The effective format round-trips exactly.
        assert_eq!(q.format(), fmt);
    }

    #[test]
    fn for_range_zero_width_ranges() {
        // A zero-width range away from zero is a legal (degenerate but
        // calibratable) observation: one constant activation.
        let fmt = QFormat::for_range(16, 2.5, 2.5).unwrap();
        assert_eq!(fmt.to_string(), "Q3.13");
        assert!(fmt.max_value() >= 2.5);
        // Zero-width at exactly zero carries no scale information.
        assert!(matches!(
            QFormat::for_range(16, 0.0, 0.0),
            Err(QuantError::DegenerateRange { .. })
        ));
        // Non-finite endpoints are rejected, not folded into a format.
        assert!(QFormat::for_range(16, f64::NEG_INFINITY, 1.0).is_err());
        assert!(QFormat::for_range(16, -1.0, f64::NAN).is_err());
    }

    #[test]
    fn for_range_negative_only_ranges_use_magnitude() {
        // Magnitude comes from |min|; the grid still covers the range.
        let fmt = QFormat::for_range(16, -8.0, -2.0).unwrap();
        assert_eq!(fmt.to_string(), "Q4.12");
        assert!(fmt.min_value() <= -8.0);
        // Exactly ±2^k needs k magnitude bits (ceil(log2) is exact).
        let pow = QFormat::for_range(8, -4.0, -4.0).unwrap();
        assert_eq!(pow.to_string(), "Q3.5");
        assert!(pow.min_value() <= -4.0);
    }

    #[test]
    fn for_range_frac_bit_extremes() {
        // A range so wide every bit goes to magnitude: zero frac bits.
        let wide = QFormat::for_range(8, -200.0, 200.0).unwrap();
        assert_eq!(wide.frac_bits(), 0);
        assert_eq!(wide.delta(), 1.0);
        // Magnitude beyond the width clamps instead of underflowing.
        let clamped = QFormat::for_range(4, -1e6, 1e6).unwrap();
        assert_eq!(clamped.int_bits(), 4);
        assert_eq!(clamped.frac_bits(), 0);
        // A sub-unit range spends every remaining bit on resolution.
        let narrow = QFormat::for_range(32, -0.25, 0.25).unwrap();
        assert_eq!(narrow.frac_bits(), 31);
        assert_eq!(narrow.delta(), (0.5f64).powi(31));
        // One total bit: the sign alone.
        let sign_only = QFormat::for_range(1, -0.5, 0.5).unwrap();
        assert_eq!(sign_only.frac_bits(), 0);
        assert_eq!(sign_only.delta(), 1.0);
    }

    #[test]
    fn delta_is_exact_power_of_two_across_frac_range() {
        for frac in 0..=32u32 {
            let fmt = QFormat::new(32, frac).unwrap();
            let delta = fmt.delta();
            assert_eq!(delta, 2.0f64.powi(-(frac as i32)), "frac={frac}");
            // Power-of-two deltas are exactly representable, so the
            // mantissa field is zero.
            assert_eq!(delta.to_bits() & ((1u64 << 52) - 1), 0, "frac={frac}");
        }
    }

    #[test]
    fn requantize_between_adjacent_grids() {
        let fine = QFormat::q(4, 12).unwrap();
        let coarse = QFormat::q(4, 11).unwrap();
        // On-grid values survive a narrow→widen round trip exactly.
        for raw in [-4096i64, -2048, 0, 2, 2048, 4094] {
            let down = fine.requantize(raw, coarse);
            assert_eq!(coarse.requantize(down, fine), raw & !1);
        }
        // Narrowing floors (arithmetic shift), matching Algorithm 1.
        assert_eq!(fine.requantize(3, coarse), 1);
        assert_eq!(fine.requantize(-3, coarse), -2);
        // Identity requantization is the identity.
        assert_eq!(fine.requantize(1234, fine), 1234);
    }

    #[test]
    fn requantize_saturates_at_target_rails() {
        let narrow = QFormat::q(2, 6).unwrap(); // 8 bits total
        let wide = QFormat::q(8, 8).unwrap(); // 16 bits total
        assert_eq!(narrow.max_raw(), 127);
        assert_eq!(narrow.min_raw(), -128);
        // Widening the fraction of a rail value overflows 8 bits.
        assert_eq!(wide.requantize(wide.max_raw(), narrow), narrow.max_raw());
        assert_eq!(wide.requantize(wide.min_raw(), narrow), narrow.min_raw());
        // Fraction widening into fewer integer bits also saturates.
        let unit = QFormat::q(1, 7).unwrap();
        assert_eq!(narrow.requantize(narrow.max_raw(), unit), unit.max_raw());
    }

    #[test]
    fn range_calibrated_format_reports_nearest_grid() {
        let q = AffineQuantizer::from_range(-2.0, 2.0, 8).unwrap();
        // δ = 4/256 = 2^-6 exactly → Q2.6.
        assert_eq!(q.format(), QFormat::q(2, 6).unwrap());
    }

    #[test]
    fn error_messages_are_lowercase_and_useful() {
        let e = AffineQuantizer::from_range(-1.0, 1.0, 0).unwrap_err();
        let msg = e.to_string();
        assert!(msg.starts_with("quantizer bit width"));
    }
}
