//! 16-bit saturating fixed-point scalar.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::math;

/// Signed fixed-point number with `F` fractional bits in an `i16`.
///
/// The 16-bit sibling of [`crate::Q32`], with identical semantics:
/// saturating arithmetic, round-to-nearest multiplication through an `i32`
/// intermediate, truncating division. `F` must be in `1..=14`. The integer
/// range is `±2^(15-F)` and the resolution is `2^-F`.
///
/// This is the type that demonstrates the paper's negative result: DDPG
/// trained *from scratch* in pure 16-bit fixed-point fails, because
/// learning-rate-sized updates vanish below the resolution and activations
/// saturate the narrow range.
///
/// # Example
///
/// ```
/// use fixar_fixed::Q16;
///
/// type Q6_10 = Q16<10>;
/// let x = Q6_10::from_f64(1.25);
/// assert_eq!((x + x).to_f64(), 2.5);
/// assert_eq!(Q6_10::from_f64(1.0e6), Q6_10::MAX); // saturates
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Q16<const F: u32>(i16);

impl<const F: u32> Q16<F> {
    const VALID: () = assert!(F >= 1 && F <= 14, "Q16 requires 1..=14 fractional bits");

    /// Number of fractional bits of this format.
    pub const FRAC_BITS: u32 = F;

    /// Total width in bits.
    pub const BITS: u32 = 16;

    /// Largest representable value.
    pub const MAX: Self = Self(i16::MAX);

    /// Smallest (most negative) representable value.
    pub const MIN: Self = Self(i16::MIN);

    /// Zero.
    pub const ZERO: Self = Self(0);

    /// One (`2^F` in raw units).
    pub const ONE: Self = Self(1 << F);

    /// Smallest positive increment (one raw unit, `2^-F`).
    pub const EPSILON: Self = Self(1);

    /// Creates a value from its raw two's-complement representation.
    #[inline]
    pub const fn from_raw(raw: i16) -> Self {
        #[allow(clippy::let_unit_value)]
        let _ = Self::VALID;
        Self(raw)
    }

    /// Returns the raw two's-complement representation.
    #[inline]
    pub const fn raw(self) -> i16 {
        self.0
    }

    /// Converts from `f64`, rounding to nearest and saturating out-of-range
    /// inputs (NaN maps to zero).
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        #[allow(clippy::let_unit_value)]
        let _ = Self::VALID;
        if x.is_nan() {
            return Self::ZERO;
        }
        let scaled = x * (1i32 << F) as f64;
        if scaled >= i16::MAX as f64 {
            Self::MAX
        } else if scaled <= i16::MIN as f64 {
            Self::MIN
        } else {
            Self(scaled.round() as i16)
        }
    }

    /// Converts from `f32` (see [`Q16::from_f64`] for saturation rules).
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        Self::from_f64(x as f64)
    }

    /// Converts to `f64` exactly.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1i32 << F) as f64
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication: widen to `i32`, round to nearest, clamp.
    #[inline]
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let prod = self.0 as i32 * rhs.0 as i32;
        let rounded = (prod + (1i32 << (F - 1))) >> F;
        Self(clamp_i32(rounded))
    }

    /// Saturating division, truncating toward zero; division by zero
    /// saturates by dividend sign (`0/0` yields `MAX`).
    #[inline]
    pub fn saturating_div(self, rhs: Self) -> Self {
        if rhs.0 == 0 {
            return if self.0 < 0 { Self::MIN } else { Self::MAX };
        }
        let num = (self.0 as i32) << F;
        Self(clamp_i32(num / rhs.0 as i32))
    }

    /// Absolute value (saturating: `|MIN|` is `MAX`).
    #[inline]
    pub fn abs(self) -> Self {
        Self(self.0.saturating_abs())
    }

    /// Square root over the non-negative range; negative inputs clamp to 0.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self(clamp_i32(math::sqrt_raw(self.0 as i64, F) as i32))
    }

    /// Hyperbolic tangent via the shared piecewise-linear ROM.
    #[inline]
    pub fn tanh(self) -> Self {
        Self(clamp_i32(math::tanh_raw(self.0 as i64, F) as i32))
    }

    /// `e^x`, saturating on overflow.
    #[inline]
    pub fn exp(self) -> Self {
        let raw = math::exp_raw(self.0 as i64, F);
        if raw > i16::MAX as i64 {
            Self::MAX
        } else {
            Self(raw as i16)
        }
    }

    /// Returns the larger of two values.
    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Returns the smaller of two values.
    #[inline]
    pub fn min(self, rhs: Self) -> Self {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// `true` when the value equals either saturation bound.
    #[inline]
    pub fn is_saturated(self) -> bool {
        self.0 == i16::MAX || self.0 == i16::MIN
    }
}

#[inline]
fn clamp_i32(v: i32) -> i16 {
    if v > i16::MAX as i32 {
        i16::MAX
    } else if v < i16::MIN as i32 {
        i16::MIN
    } else {
        v as i16
    }
}

impl<const F: u32> Add for Q16<F> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl<const F: u32> Sub for Q16<F> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl<const F: u32> Mul for Q16<F> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
}

impl<const F: u32> Div for Q16<F> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self.saturating_div(rhs)
    }
}

impl<const F: u32> Neg for Q16<F> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self(self.0.saturating_neg())
    }
}

impl<const F: u32> AddAssign for Q16<F> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const F: u32> SubAssign for Q16<F> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<const F: u32> MulAssign for Q16<F> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<const F: u32> DivAssign for Q16<F> {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<const F: u32> Sum for Q16<F> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

impl<const F: u32> fmt::Debug for Q16<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q16<{F}>({})", self.to_f64())
    }
}

impl<const F: u32> fmt::Display for Q16<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

impl<const F: u32> fmt::Binary for Q16<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl<const F: u32> fmt::LowerHex for Q16<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl<const F: u32> fmt::UpperHex for Q16<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Q = Q16<10>;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(Q::ONE.to_f64(), 1.0);
        assert_eq!(Q::EPSILON.to_f64(), 1.0 / 1024.0);
        assert_eq!(Q::ZERO, Q::default());
    }

    #[test]
    fn narrow_range_saturates_quickly() {
        assert_eq!(Q::from_f64(40.0), Q::MAX);
        assert_eq!(Q::from_f64(-40.0), Q::MIN);
        let sixteen = Q::from_f64(16.0);
        assert_eq!(sixteen + sixteen, Q::MAX);
    }

    #[test]
    fn tiny_updates_round_to_zero() {
        // The numeric mechanism behind the paper's "16-bit from scratch
        // fails to train": a typical Adam step of 1e-4 is below one ulp.
        assert_eq!(Q::from_f64(1e-4), Q::ZERO);
        assert_eq!(Q::from_f64(4e-4).raw(), 0);
    }

    #[test]
    fn mul_widens_through_i32() {
        let x = Q::from_f64(5.5);
        let y = Q::from_f64(4.0);
        assert_eq!((x * y).to_f64(), 22.0);
        assert_eq!(x * Q::from_f64(8.0), Q::MAX); // 44 > 32 saturates
    }

    #[test]
    fn div_by_zero_saturates() {
        assert_eq!(Q::ONE / Q::ZERO, Q::MAX);
        assert_eq!(-Q::ONE / Q::ZERO, Q::MIN);
    }

    #[test]
    fn tanh_and_sqrt_behave() {
        assert_eq!(Q::from_f64(10.0).tanh().to_f64(), 1.0);
        let got = Q::from_f64(4.0).sqrt().to_f64();
        assert!((got - 2.0).abs() < 2e-3);
    }

    #[test]
    fn neg_of_min_saturates() {
        assert_eq!(-Q::MIN, Q::MAX);
        assert_eq!(Q::MIN.abs(), Q::MAX);
    }
}
