//! 32-bit saturating fixed-point scalar.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::math;

/// Signed fixed-point number with `F` fractional bits in an `i32`.
///
/// All arithmetic **saturates** on overflow, mirroring the behaviour of the
/// FIXAR processing elements (a DSP MAC clamps rather than wraps when the
/// accumulator is sized for the worst case). Multiplication widens through
/// `i64` and rounds to nearest; division truncates toward zero.
///
/// `F` must be in `1..=30`. The integer range is `±2^(31-F)` and the
/// resolution is `2^-F`.
///
/// # Example
///
/// ```
/// use fixar_fixed::Q32;
///
/// type Q12_20 = Q32<20>;
/// let x = Q12_20::from_f64(3.5);
/// assert_eq!((x * Q12_20::from_f64(2.0)).to_f64(), 7.0);
/// // Saturation instead of wrap-around:
/// let big = Q12_20::MAX;
/// assert_eq!(big + big, Q12_20::MAX);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Q32<const F: u32>(i32);

impl<const F: u32> Q32<F> {
    /// Compile-time validation of the format; referenced by constructors so
    /// an out-of-range `F` fails to compile rather than misbehave.
    const VALID: () = assert!(F >= 1 && F <= 30, "Q32 requires 1..=30 fractional bits");

    /// Number of fractional bits of this format.
    pub const FRAC_BITS: u32 = F;

    /// Total width in bits.
    pub const BITS: u32 = 32;

    /// Largest representable value.
    pub const MAX: Self = Self(i32::MAX);

    /// Smallest (most negative) representable value.
    pub const MIN: Self = Self(i32::MIN);

    /// Zero.
    pub const ZERO: Self = Self(0);

    /// One (`2^F` in raw units).
    pub const ONE: Self = Self(1 << F);

    /// Smallest positive increment (one raw unit, `2^-F`).
    pub const EPSILON: Self = Self(1);

    /// Creates a value from its raw two's-complement representation.
    #[inline]
    pub const fn from_raw(raw: i32) -> Self {
        #[allow(clippy::let_unit_value)]
        let _ = Self::VALID;
        Self(raw)
    }

    /// Returns the raw two's-complement representation.
    #[inline]
    pub const fn raw(self) -> i32 {
        self.0
    }

    /// Extracts the raw two's-complement words of a slice — the
    /// serialization primitive integer-only deployment artifacts are
    /// built from. `raw_words(&xs)[i] == xs[i].raw()` for every `i`.
    pub fn raw_words(xs: &[Self]) -> Vec<i32> {
        xs.iter().map(|x| x.0).collect()
    }

    /// Rebuilds values from raw two's-complement words (the inverse of
    /// [`Q32::raw_words`]; both directions are lossless).
    pub fn from_raw_words(raws: &[i32]) -> Vec<Self> {
        raws.iter().map(|&r| Self::from_raw(r)).collect()
    }

    /// Converts from `f64`, rounding to nearest and saturating out-of-range
    /// inputs (including NaN, which maps to zero).
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        #[allow(clippy::let_unit_value)]
        let _ = Self::VALID;
        if x.is_nan() {
            return Self::ZERO;
        }
        let scaled = x * (1i64 << F) as f64;
        if scaled >= i32::MAX as f64 {
            Self::MAX
        } else if scaled <= i32::MIN as f64 {
            Self::MIN
        } else {
            Self(scaled.round() as i32)
        }
    }

    /// Converts from `f32` (see [`Q32::from_f64`] for saturation rules).
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        Self::from_f64(x as f64)
    }

    /// Converts to `f64` exactly (every `Q32` value is representable).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1i64 << F) as f64
    }

    /// Converts from `f64` only if the value is exactly in range.
    ///
    /// Returns `None` when the input is NaN or would saturate.
    #[inline]
    pub fn checked_from_f64(x: f64) -> Option<Self> {
        if x.is_nan() {
            return None;
        }
        let scaled = (x * (1i64 << F) as f64).round();
        if scaled > i32::MAX as f64 || scaled < i32::MIN as f64 {
            None
        } else {
            Some(Self(scaled as i32))
        }
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication: widen to `i64`, round to nearest, clamp.
    #[inline]
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let prod = self.0 as i64 * rhs.0 as i64;
        let rounded = (prod + (1i64 << (F - 1))) >> F;
        Self(clamp_i64(rounded))
    }

    /// Saturating division, truncating toward zero.
    ///
    /// Division by zero saturates to [`Q32::MAX`] or [`Q32::MIN`] according
    /// to the sign of the dividend (`0/0` yields `MAX`), matching a
    /// hardware divider's overflow flag rather than panicking.
    #[inline]
    pub fn saturating_div(self, rhs: Self) -> Self {
        if rhs.0 == 0 {
            return if self.0 < 0 { Self::MIN } else { Self::MAX };
        }
        let num = (self.0 as i64) << F;
        Self(clamp_i64(num / rhs.0 as i64))
    }

    /// Absolute value (saturating: `|MIN|` is `MAX`).
    #[inline]
    pub fn abs(self) -> Self {
        Self(self.0.saturating_abs())
    }

    /// Square root over the non-negative range; negative inputs clamp to 0.
    ///
    /// Computed by integer-only Newton iteration.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self(clamp_i64(math::sqrt_raw(self.0 as i64, F)))
    }

    /// Hyperbolic tangent via the 64-segment piecewise-linear ROM of the
    /// FIXAR activation unit. The result is always in `[-1, 1]`.
    #[inline]
    pub fn tanh(self) -> Self {
        Self(clamp_i64(math::tanh_raw(self.0 as i64, F)))
    }

    /// `e^x` via range reduction and the 32-segment power-of-two ROM,
    /// saturating on overflow.
    #[inline]
    pub fn exp(self) -> Self {
        Self(clamp_i64(math::exp_raw(self.0 as i64, F)))
    }

    /// Returns the larger of two values.
    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Returns the smaller of two values.
    #[inline]
    pub fn min(self, rhs: Self) -> Self {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Clamps `self` into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "clamp requires lo <= hi");
        self.max(lo).min(hi)
    }

    /// `true` when the value equals either saturation bound — useful for
    /// instrumentation of overflow behaviour.
    #[inline]
    pub fn is_saturated(self) -> bool {
        self.0 == i32::MAX || self.0 == i32::MIN
    }
}

#[inline]
fn clamp_i64(v: i64) -> i32 {
    if v > i32::MAX as i64 {
        i32::MAX
    } else if v < i32::MIN as i64 {
        i32::MIN
    } else {
        v as i32
    }
}

impl<const F: u32> Add for Q32<F> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl<const F: u32> Sub for Q32<F> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl<const F: u32> Mul for Q32<F> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
}

impl<const F: u32> Div for Q32<F> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self.saturating_div(rhs)
    }
}

impl<const F: u32> Neg for Q32<F> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self(self.0.saturating_neg())
    }
}

impl<const F: u32> AddAssign for Q32<F> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const F: u32> SubAssign for Q32<F> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<const F: u32> MulAssign for Q32<F> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<const F: u32> DivAssign for Q32<F> {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<const F: u32> Sum for Q32<F> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

impl<const F: u32> fmt::Debug for Q32<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q32<{F}>({})", self.to_f64())
    }
}

impl<const F: u32> fmt::Display for Q32<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

impl<const F: u32> fmt::Binary for Q32<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl<const F: u32> fmt::LowerHex for Q32<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl<const F: u32> fmt::UpperHex for Q32<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl<const F: u32> From<i16> for Q32<F> {
    /// Widens an integer, exactly representable while `F <= 16`; saturates
    /// otherwise.
    fn from(v: i16) -> Self {
        let raw = (v as i64) << F;
        Self(clamp_i64(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Q = Q32<20>;

    #[test]
    fn one_has_expected_raw() {
        assert_eq!(Q::ONE.raw(), 1 << 20);
        assert_eq!(Q::ONE.to_f64(), 1.0);
    }

    #[test]
    fn add_saturates_at_bounds() {
        assert_eq!(Q::MAX + Q::ONE, Q::MAX);
        assert_eq!(Q::MIN - Q::ONE, Q::MIN);
        assert_eq!(-Q::MIN, Q::MAX);
    }

    #[test]
    fn mul_rounds_to_nearest() {
        // 1.5 * 1.5 = 2.25 exactly representable.
        let x = Q::from_f64(1.5);
        assert_eq!((x * x).to_f64(), 2.25);
        // EPSILON * 0.5 rounds to EPSILON (round-half-up at the bit level).
        let half = Q::from_f64(0.5);
        assert_eq!(Q::EPSILON * half, Q::EPSILON);
    }

    #[test]
    fn mul_saturates() {
        let big = Q::from_f64(1800.0);
        assert_eq!(big * big, Q::MAX);
        assert_eq!(big * -big, Q::MIN);
    }

    #[test]
    fn div_basic_and_by_zero() {
        let x = Q::from_f64(3.0);
        let y = Q::from_f64(2.0);
        assert_eq!((x / y).to_f64(), 1.5);
        assert_eq!(x / Q::ZERO, Q::MAX);
        assert_eq!(-x / Q::ZERO, Q::MIN);
        assert_eq!(Q::ZERO / Q::ZERO, Q::MAX);
    }

    #[test]
    fn from_f64_saturates_and_handles_nan() {
        assert_eq!(Q::from_f64(1e12), Q::MAX);
        assert_eq!(Q::from_f64(-1e12), Q::MIN);
        assert_eq!(Q::from_f64(f64::NAN), Q::ZERO);
        assert_eq!(Q::from_f64(f64::INFINITY), Q::MAX);
    }

    #[test]
    fn checked_from_f64_rejects_out_of_range() {
        assert!(Q::checked_from_f64(1e12).is_none());
        assert!(Q::checked_from_f64(f64::NAN).is_none());
        assert_eq!(Q::checked_from_f64(1.0), Some(Q::ONE));
    }

    #[test]
    fn tanh_bounded_and_monotone_on_grid() {
        let mut prev = Q::from_f64(-10.0).tanh();
        for i in -50..=50 {
            let t = Q::from_f64(i as f64 * 0.2).tanh();
            assert!(t.to_f64() >= -1.0 && t.to_f64() <= 1.0);
            assert!(t >= prev, "tanh must be monotone");
            prev = t;
        }
    }

    #[test]
    fn sqrt_matches_float_reference() {
        for i in 0..100 {
            let x = i as f64 * 1.7;
            let got = Q::from_f64(x).sqrt().to_f64();
            assert!((got - x.sqrt()).abs() < 1e-4, "x={x}");
        }
    }

    #[test]
    fn ordering_matches_float_ordering() {
        let a = Q::from_f64(-3.5);
        let b = Q::from_f64(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Q::from_f64(5.0).clamp(Q::ZERO, Q::ONE), Q::ONE);
    }

    #[test]
    #[should_panic(expected = "clamp requires")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = Q::ZERO.clamp(Q::ONE, Q::ZERO);
    }

    #[test]
    fn debug_format_is_nonempty_and_descriptive() {
        let s = format!("{:?}", Q::from_f64(1.5));
        assert!(s.contains("Q32<20>"));
        assert!(s.contains("1.5"));
    }

    #[test]
    fn raw_words_roundtrip_losslessly() {
        let xs = vec![Q::MAX, Q::MIN, Q::ZERO, Q::from_f64(-1.25), Q::EPSILON];
        let words = Q::raw_words(&xs);
        assert_eq!(words, vec![i32::MAX, i32::MIN, 0, -(5 << 18), 1]);
        assert_eq!(Q::from_raw_words(&words), xs);
    }

    #[test]
    fn widening_from_i16_is_exact_for_small_frac() {
        let v: Q32<10> = Q32::from(12i16);
        assert_eq!(v.to_f64(), 12.0);
        let v: Q32<10> = Q32::from(-7i16);
        assert_eq!(v.to_f64(), -7.0);
    }
}
