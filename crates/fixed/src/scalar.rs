//! The numeric abstraction shared by every FIXAR compute layer.

use core::fmt::{Debug, Display};
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::{Q16, Q32};

/// Scalar number type the FIXAR tensor/NN stack is generic over.
///
/// Implemented for `f32`/`f64` (the CPU-GPU baseline arithmetic) and for
/// [`Q32`]/[`Q16`] (the FIXAR fixed-point arithmetic). The Fig. 7 precision
/// study instantiates the *same* DDPG training code at each of these types;
/// nothing in the algorithm layer branches on the concrete scalar.
///
/// Fixed-point implementations saturate on overflow and use the integer
/// ROM-based `tanh`/`sqrt` kernels, so a training run over `Q32`/`Q16`
/// exercises exactly the arithmetic the FIXAR accelerator datapath
/// implements.
///
/// This trait is sealed-by-convention: downstream crates may implement it,
/// but every method must uphold `from_f64(to_f64(x)) == x` up to one unit
/// of least precision, or the QAT calibration logic will drift.
///
/// # Example
///
/// ```
/// use fixar_fixed::{Fx32, Scalar};
///
/// fn dot<S: Scalar>(a: &[S], b: &[S]) -> S {
///     a.iter().zip(b).fold(S::zero(), |acc, (&x, &y)| acc + x * y)
/// }
///
/// let a = [Fx32::from_f64(1.0), Fx32::from_f64(2.0)];
/// let b = [Fx32::from_f64(3.0), Fx32::from_f64(0.5)];
/// assert_eq!(dot(&a, &b).to_f64(), 4.0);
/// ```
pub trait Scalar:
    Copy
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
{
    /// Short human-readable name of the numeric format (used in reports,
    /// e.g. `"float32"`, `"fixed32(Q12.20)"`).
    const NAME: &'static str;

    /// Total bit width of the format.
    const BITS: u32;

    /// `true` when the format is fixed-point (saturating integer math).
    const IS_FIXED_POINT: bool;

    /// Additive identity.
    fn zero() -> Self;

    /// Multiplicative identity.
    fn one() -> Self;

    /// Lossy conversion from `f64` (saturating for fixed-point formats).
    fn from_f64(x: f64) -> Self;

    /// Conversion to `f64` (exact for every format in this crate).
    fn to_f64(self) -> f64;

    /// Absolute value.
    fn abs(self) -> Self;

    /// Square root; negative inputs clamp to zero for fixed-point formats
    /// and produce NaN-free zero for floats (callers only use it on
    /// non-negative Adam second moments).
    fn sqrt(self) -> Self;

    /// Hyperbolic tangent.
    fn tanh(self) -> Self;

    /// Elementwise maximum.
    fn max(self, rhs: Self) -> Self;

    /// Elementwise minimum.
    fn min(self, rhs: Self) -> Self;

    /// Lossy conversion from `f32`.
    #[inline]
    fn from_f32(x: f32) -> Self {
        Self::from_f64(x as f64)
    }

    /// Conversion to `f32`.
    #[inline]
    fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    /// Rectified linear unit: `max(x, 0)`.
    #[inline]
    fn relu(self) -> Self {
        self.max(Self::zero())
    }

    /// Fused multiply-add `self * a + b` (a single PE MAC step).
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }
}

impl Scalar for f32 {
    const NAME: &'static str = "float32";
    const BITS: u32 = 32;
    const IS_FIXED_POINT: bool = false;

    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        if self <= 0.0 {
            0.0
        } else {
            f32::sqrt(self)
        }
    }
    #[inline]
    fn tanh(self) -> Self {
        f32::tanh(self)
    }
    #[inline]
    fn max(self, rhs: Self) -> Self {
        f32::max(self, rhs)
    }
    #[inline]
    fn min(self, rhs: Self) -> Self {
        f32::min(self, rhs)
    }
}

impl Scalar for f64 {
    const NAME: &'static str = "float64";
    const BITS: u32 = 64;
    const IS_FIXED_POINT: bool = false;

    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        if self <= 0.0 {
            0.0
        } else {
            f64::sqrt(self)
        }
    }
    #[inline]
    fn tanh(self) -> Self {
        f64::tanh(self)
    }
    #[inline]
    fn max(self, rhs: Self) -> Self {
        f64::max(self, rhs)
    }
    #[inline]
    fn min(self, rhs: Self) -> Self {
        f64::min(self, rhs)
    }
}

impl<const F: u32> Scalar for Q32<F> {
    const NAME: &'static str = "fixed32";
    const BITS: u32 = 32;
    const IS_FIXED_POINT: bool = true;

    #[inline]
    fn zero() -> Self {
        Self::ZERO
    }
    #[inline]
    fn one() -> Self {
        Self::ONE
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        Self::from_f64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        Self::to_f64(self)
    }
    #[inline]
    fn abs(self) -> Self {
        Self::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        Self::sqrt(self)
    }
    #[inline]
    fn tanh(self) -> Self {
        Self::tanh(self)
    }
    #[inline]
    fn max(self, rhs: Self) -> Self {
        Self::max(self, rhs)
    }
    #[inline]
    fn min(self, rhs: Self) -> Self {
        Self::min(self, rhs)
    }
}

impl<const F: u32> Scalar for Q16<F> {
    const NAME: &'static str = "fixed16";
    const BITS: u32 = 16;
    const IS_FIXED_POINT: bool = true;

    #[inline]
    fn zero() -> Self {
        Self::ZERO
    }
    #[inline]
    fn one() -> Self {
        Self::ONE
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        Self::from_f64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        Self::to_f64(self)
    }
    #[inline]
    fn abs(self) -> Self {
        Self::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        Self::sqrt(self)
    }
    #[inline]
    fn tanh(self) -> Self {
        Self::tanh(self)
    }
    #[inline]
    fn max(self, rhs: Self) -> Self {
        Self::max(self, rhs)
    }
    #[inline]
    fn min(self, rhs: Self) -> Self {
        Self::min(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fx16, Fx32};

    fn generic_axpy<S: Scalar>(alpha: f64, x: &[f64], y: &[f64]) -> Vec<f64> {
        let a = S::from_f64(alpha);
        x.iter()
            .zip(y)
            .map(|(&xi, &yi)| (a * S::from_f64(xi) + S::from_f64(yi)).to_f64())
            .collect()
    }

    #[test]
    fn axpy_agrees_across_backends_within_resolution() {
        let x = [1.0, -2.0, 0.5, 3.25];
        let y = [0.1, 0.2, -0.3, 0.4];
        let f = generic_axpy::<f64>(0.5, &x, &y);
        let q32 = generic_axpy::<Fx32>(0.5, &x, &y);
        let q16 = generic_axpy::<Fx16>(0.5, &x, &y);
        for i in 0..x.len() {
            assert!((f[i] - q32[i]).abs() < 1e-5);
            assert!((f[i] - q16[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn relu_default_impl() {
        assert_eq!(Fx32::from_f64(-2.0).relu(), Fx32::ZERO);
        assert_eq!(Fx32::from_f64(2.0).relu().to_f64(), 2.0);
        assert_eq!((-1.5f32).relu(), 0.0);
    }

    #[test]
    fn names_identify_formats() {
        assert_eq!(<f32 as Scalar>::NAME, "float32");
        assert_eq!(<Fx32 as Scalar>::NAME, "fixed32");
        assert_eq!(<Fx16 as Scalar>::NAME, "fixed16");
        let (fixed, float) = (Fx32::IS_FIXED_POINT, f32::IS_FIXED_POINT);
        assert!(fixed && !float);
    }

    #[test]
    fn float_sqrt_of_negative_is_zero_not_nan() {
        assert_eq!(<f32 as Scalar>::sqrt(-4.0), 0.0);
        assert_eq!(<f64 as Scalar>::sqrt(-4.0), 0.0);
    }

    #[test]
    fn sum_folds_with_saturation() {
        let big: Fx16 = (0..100).map(|_| Fx16::from_f64(10.0)).sum();
        assert_eq!(big, Fx16::MAX);
    }
}
