//! Saturating fixed-point arithmetic for the FIXAR platform.
//!
//! FIXAR (DAC 2021) trains deep reinforcement learning agents entirely in
//! fixed-point: weights and gradients stay in 32-bit fixed-point for the
//! whole run, while activations start at 32 bits and are quantized to
//! 16 bits after a *quantization delay* (Algorithm 1 of the paper). This
//! crate provides the numeric substrate for that scheme:
//!
//! * [`Q32`] and [`Q16`] — saturating signed fixed-point scalars with a
//!   const-generic number of fractional bits, backed by `i32`/`i16` and
//!   widening through `i64`/`i32` exactly as a hardware MAC would.
//! * [`Scalar`] — the numeric abstraction the whole FIXAR neural-network
//!   stack is generic over, implemented for `f32`, `f64`, [`Q32`], and
//!   [`Q16`]. Swapping the scalar swaps the arithmetic of the entire
//!   training pipeline, which is how the Fig. 7 precision study is run.
//! * [`AffineQuantizer`] — the paper's activation quantizer
//!   `Qn(A) = floor(A/δ) + z` with `δ = (|Amin|+|Amax|)/2^n` and
//!   `z = floor(−Amin/δ)`.
//! * [`RangeMonitor`] — running min/max capture used during the
//!   quantization-delay window to calibrate the quantizer.
//!
//! # Default formats
//!
//! The paper does not publish its binary-point positions, so FIXAR-rs picks
//! formats that make its Fig. 7 behaviour numerically honest (see
//! `DESIGN.md` §4):
//!
//! * [`Fx32`] = `Q32<20>` (Q12.20): range ±2048, resolution ≈ 9.5e-7 —
//!   viable for Adam moments and 1e-4 learning-rate updates.
//! * [`Fx16`] = `Q16<10>` (Q6.10): range ±32, resolution ≈ 9.8e-4 —
//!   too coarse to train DDPG from scratch, which is exactly the failure
//!   the paper reports for pure 16-bit training.
//!
//! # Example
//!
//! ```
//! use fixar_fixed::{Fx32, Scalar};
//!
//! let a = Fx32::from_f64(1.5);
//! let b = Fx32::from_f64(-0.25);
//! let mac = a * b + Fx32::one();
//! assert!((mac.to_f64() - 0.625).abs() < 1e-5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod math;
mod monitor;
mod q16;
mod q32;
mod quant;
mod scalar;

pub use monitor::RangeMonitor;
pub use q16::Q16;
pub use q32::Q32;
pub use quant::{AffineQuantizer, QFormat, QuantError};
pub use scalar::Scalar;

/// Default 32-bit fixed-point format (Q12.20) used by FIXAR for weights,
/// gradients, Adam state, and full-precision activations.
pub type Fx32 = Q32<20>;

/// Default 16-bit fixed-point format (Q6.10) used for the pure 16-bit
/// training mode of the Fig. 7 precision study.
pub type Fx16 = Q16<10>;

/// Number of bits used by the half-precision activation quantizer after the
/// quantization delay (Algorithm 1 runs with `n = 16`).
pub const HALF_PRECISION_BITS: u32 = 16;

/// Number of bits of the full-precision fixed-point format.
pub const FULL_PRECISION_BITS: u32 = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_formats_roundtrip_small_values() {
        for &x in &[0.0, 1.0, -1.0, 0.5, 1e-3, -1e-3, 100.25] {
            assert!((Fx32::from_f64(x).to_f64() - x).abs() < 2.0 / (1 << 20) as f64);
        }
        for &x in &[0.0, 1.0, -1.0, 0.5, 3.125] {
            assert!((Fx16::from_f64(x).to_f64() - x).abs() < 2.0 / (1 << 10) as f64);
        }
    }

    #[test]
    fn fx16_is_much_coarser_than_fx32() {
        let ulp32 = Fx32::from_raw(1).to_f64();
        let ulp16 = Fx16::from_raw(1).to_f64();
        assert!(ulp16 / ulp32 > 500.0);
        // A learning-rate-sized update disappears in Fx16 but not in Fx32.
        let lr_update = 1e-4;
        assert_eq!(Fx16::from_f64(lr_update).raw(), 0);
        assert!(Fx32::from_f64(lr_update).raw() > 0);
    }
}
