//! Property-based tests for the tensor kernels.

use fixar_fixed::{Fx32, Scalar};
use fixar_tensor::{vector, Matrix};
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = Matrix<f64>> {
    (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0..10.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized"))
    })
}

proptest! {
    #[test]
    fn gemv_is_linear_in_x(w in small_matrix(), s in -3.0..3.0f64) {
        let x: Vec<f64> = (0..w.cols()).map(|i| (i as f64 * 0.7).sin()).collect();
        let y1 = w.gemv_alloc(&x).unwrap();
        let xs: Vec<f64> = x.iter().map(|v| v * s).collect();
        let y2 = w.gemv_alloc(&xs).unwrap();
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a * s - b).abs() < 1e-9);
        }
    }

    #[test]
    fn gemv_t_is_adjoint_of_gemv(w in small_matrix()) {
        // <W x, e> == <x, Wᵀ e> for float arithmetic.
        let x: Vec<f64> = (0..w.cols()).map(|i| (i as f64 + 0.5) * 0.3).collect();
        let e: Vec<f64> = (0..w.rows()).map(|i| (i as f64 - 1.0) * 0.4).collect();
        let wx = w.gemv_alloc(&x).unwrap();
        let wte = w.gemv_t_alloc(&e).unwrap();
        let lhs = vector::dot(&wx, &e);
        let rhs = vector::dot(&x, &wte);
        prop_assert!((lhs - rhs).abs() < 1e-9, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn transpose_is_involutive(w in small_matrix()) {
        prop_assert_eq!(w.transposed().transposed(), w);
    }

    #[test]
    fn add_outer_matches_explicit_loop(
        e in prop::collection::vec(-5.0..5.0f64, 1..6),
        a in prop::collection::vec(-5.0..5.0f64, 1..6),
    ) {
        let mut g = Matrix::<f64>::zeros(e.len(), a.len());
        g.add_outer(&e, &a).unwrap();
        for i in 0..e.len() {
            for j in 0..a.len() {
                prop_assert!((g[(i, j)] - e[i] * a[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn fixed_gemv_tracks_float_within_error_budget(w in small_matrix()) {
        // Error per output: cols * (operand rounding + product rounding).
        let x: Vec<f64> = (0..w.cols()).map(|i| ((i * 31) % 7) as f64 - 3.0).collect();
        let yf = w.gemv_alloc(&x).unwrap();
        let wq: Matrix<Fx32> = w.cast();
        let xq = vector::from_f64_slice::<Fx32>(&x);
        let yq = wq.gemv_alloc(&xq).unwrap();
        let ulp = 1.0 / (1u64 << 20) as f64;
        let bound = ulp * w.cols() as f64 * 40.0;
        for (a, b) in yf.iter().zip(&yq) {
            prop_assert!((a - b.to_f64()).abs() <= bound);
        }
    }

    #[test]
    fn gemv_batch_rows_equal_per_sample_gemv_fx32(
        w in small_matrix(),
        batch in 1usize..9,
    ) {
        // Bit-exactness of the batched forward kernel, in fixed point.
        let wq: Matrix<Fx32> = w.cast();
        let a = Matrix::<f64>::from_fn(batch, w.cols(), |b, c| {
            ((b * 13 + c * 7) as f64 * 0.37).sin() * 4.0
        }).cast::<Fx32>();
        let y = wq.gemv_batch_alloc(&a).unwrap();
        for b in 0..batch {
            let reference = wq.gemv_alloc(a.row(b)).unwrap();
            prop_assert_eq!(y.row(b), reference.as_slice());
        }
    }

    #[test]
    fn gemv_t_batch_rows_equal_per_sample_gemv_t_fx32(
        w in small_matrix(),
        batch in 1usize..9,
    ) {
        let wq: Matrix<Fx32> = w.cast();
        let e = Matrix::<f64>::from_fn(batch, w.rows(), |b, r| {
            ((b * 5 + r * 11) as f64 * 0.29).cos() * 3.0
        }).cast::<Fx32>();
        let y = wq.gemv_t_batch_alloc(&e).unwrap();
        for b in 0..batch {
            let reference = wq.gemv_t_alloc(e.row(b)).unwrap();
            prop_assert_eq!(y.row(b), reference.as_slice());
        }
    }

    #[test]
    fn add_outer_batch_equals_sample_order_accumulation_fx32(
        w in small_matrix(),
        batch in 1usize..9,
    ) {
        // The documented batch-reduction order: ascending sample index.
        let e = Matrix::<f64>::from_fn(batch, w.rows(), |b, r| {
            ((b * 3 + r) as f64 * 0.41).sin() * 2.0
        }).cast::<Fx32>();
        let a = Matrix::<f64>::from_fn(batch, w.cols(), |b, c| {
            ((b * 7 + c) as f64 * 0.53).cos() * 2.0
        }).cast::<Fx32>();
        let mut batched: Matrix<Fx32> = w.cast();
        let mut looped = batched.clone();
        batched.add_outer_batch(&e, &a).unwrap();
        for b in 0..batch {
            looped.add_outer(e.row(b), a.row(b)).unwrap();
        }
        prop_assert_eq!(batched, looped);
    }

    #[test]
    fn gemv_batch_is_matmul_against_transpose(w in small_matrix(), batch in 1usize..7) {
        // W.gemv_batch(A) == A · Wᵀ — the matrix-matrix identity, exact
        // in fixed point because the per-element reduction orders match.
        let wq: Matrix<Fx32> = w.cast();
        let a = Matrix::<f64>::from_fn(batch, w.cols(), |b, c| {
            ((b + c * 3) as f64 * 0.61).sin()
        }).cast::<Fx32>();
        let lhs = wq.gemv_batch_alloc(&a).unwrap();
        let rhs = a.matmul(&wq.transposed()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn gather_columns_rows_equal_indexed_panel_columns_fx32(
        w in small_matrix(),
        picks in prop::collection::vec(0usize..64, 0..24),
        workers in 1usize..9,
    ) {
        // The replay gather contract: row k of the gathered batch is
        // stored row picks[k] of the panel (logical column picks[k] of
        // the column-major panel), bit-for-bit, and the pool-parallel
        // form is bit-identical to the sequential one at every worker
        // count — including repeated indices (with-replacement draws).
        let panel: Matrix<Fx32> = w.cast();
        let indices: Vec<usize> = picks.into_iter().map(|p| p % panel.rows()).collect();
        let seq = panel.gather_columns(&indices).unwrap();
        prop_assert_eq!(seq.shape(), (indices.len(), panel.cols()));
        for (k, &j) in indices.iter().enumerate() {
            prop_assert_eq!(seq.row(k), panel.row(j));
        }
        let par = fixar_pool::Parallelism::with_workers(workers);
        prop_assert_eq!(panel.gather_columns_par(&indices, &par).unwrap(), seq);
    }

    #[test]
    fn packed_gemv_kernels_equal_unpacked_fx32(
        w in small_matrix(),
        batch in 1usize..9,
        amp in 1.0..2000.0f64,
    ) {
        // Packed ≡ unpacked, bit for bit, sequential and parallel —
        // `amp` near the Fx32 rail makes the saturating adds clamp, so
        // any chain-order deviation in the packed tiles would show.
        let wq: Matrix<Fx32> = w.cast();
        let pack = wq.pack();
        let a = Matrix::<f64>::from_fn(batch, w.cols(), |b, c| {
            ((b * 13 + c * 7) as f64 * 0.37).sin() * amp
        }).cast::<Fx32>();
        let e = Matrix::<f64>::from_fn(batch, w.rows(), |b, r| {
            ((b * 5 + r * 11) as f64 * 0.29).cos() * amp
        }).cast::<Fx32>();
        let fwd = wq.gemv_batch_alloc(&a).unwrap();
        let bwd = wq.gemv_t_batch_alloc(&e).unwrap();
        let mut fwd_p = Matrix::zeros(batch, w.rows());
        pack.gemv_batch(&a, &mut fwd_p).unwrap();
        prop_assert_eq!(&fwd, &fwd_p);
        let mut bwd_p = Matrix::zeros(batch, w.cols());
        pack.gemv_t_batch(&e, &mut bwd_p).unwrap();
        prop_assert_eq!(&bwd, &bwd_p);
        for workers in [1usize, 2, 8] {
            let par = fixar_pool::Parallelism::with_workers(workers);
            let mut yp = Matrix::zeros(batch, w.rows());
            pack.gemv_batch_par(&a, &mut yp, &par).unwrap();
            prop_assert_eq!(&fwd, &yp);
            let mut tp = Matrix::zeros(batch, w.cols());
            pack.gemv_t_batch_par(&e, &mut tp, &par).unwrap();
            prop_assert_eq!(&bwd, &tp);
        }
    }

    #[test]
    fn retiled_add_outer_batch_equals_sample_order_accumulation_saturating(
        w in small_matrix(),
        batch in 1usize..9,
        amp in 500.0..2000.0f64,
    ) {
        // The gradient span's row-resident four-sample tiles must keep
        // the ascending-sample chain per element even when every add
        // saturates; the per-sample loop is the reference semantics.
        let e = Matrix::<f64>::from_fn(batch, w.rows(), |b, r| {
            ((b * 3 + r) as f64 * 0.41).sin() * amp
        }).cast::<Fx32>();
        let a = Matrix::<f64>::from_fn(batch, w.cols(), |b, c| {
            ((b * 7 + c) as f64 * 0.53).cos() * amp
        }).cast::<Fx32>();
        let mut looped: Matrix<Fx32> = w.cast();
        let reference = {
            let mut g = looped.clone();
            for b in 0..batch {
                g.add_outer(e.row(b), a.row(b)).unwrap();
            }
            g
        };
        let mut batched = looped.clone();
        batched.add_outer_batch(&e, &a).unwrap();
        prop_assert_eq!(&batched, &reference);
        for workers in [1usize, 2, 8] {
            let par = fixar_pool::Parallelism::with_workers(workers);
            let mut g = looped.clone();
            g.add_outer_batch_par(&e, &a, &par).unwrap();
            prop_assert_eq!(&g, &reference);
        }
        looped.add_outer_batch(&e, &a).unwrap();
        prop_assert_eq!(&looped, &reference);
    }

    #[test]
    fn retiled_matmul_equals_ascending_k_reference_fx32(
        lhs in small_matrix(),
        n in 1usize..8,
        amp in 1.0..2000.0f64,
    ) {
        // The two-row matmul tiles against an explicit per-element
        // ascending-k reduction, at saturating amplitudes.
        let a: Matrix<Fx32> = lhs.cast();
        let b = Matrix::<f64>::from_fn(lhs.cols(), n, |k, j| {
            ((k * 9 + j * 5) as f64 * 0.47).sin() * amp
        }).cast::<Fx32>();
        let mut reference = Matrix::<Fx32>::zeros(a.rows(), n);
        for i in 0..a.rows() {
            for j in 0..n {
                let mut acc = Fx32::zero();
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                reference[(i, j)] = acc;
            }
        }
        let got = a.matmul(&b).unwrap();
        prop_assert_eq!(&got, &reference);
        for workers in [1usize, 2, 8] {
            let par = fixar_pool::Parallelism::with_workers(workers);
            prop_assert_eq!(&a.matmul_par(&b, &par).unwrap(), &reference);
        }
    }

    #[test]
    fn dot_of_cat_is_sum_of_dots(
        a in prop::collection::vec(-5.0..5.0f64, 1..8),
        b in prop::collection::vec(-5.0..5.0f64, 1..8),
    ) {
        let ones_a = vec![1.0; a.len()];
        let ones_b = vec![1.0; b.len()];
        let mut cat = a.clone();
        cat.extend_from_slice(&b);
        let ones_cat = vec![1.0; cat.len()];
        let lhs = vector::dot(&cat, &ones_cat);
        let rhs = vector::dot(&a, &ones_a) + vector::dot(&b, &ones_b);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }
}
