//! Row-major dense matrix with hardware-order kernels.

use core::fmt;
use core::ops::{Index, IndexMut, Range};
use std::error::Error;
use std::sync::Arc;

use fixar_fixed::Scalar;
use fixar_pool::{split_ranges, KernelScope, Parallelism};

/// Error returned when operand shapes do not line up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    what: &'static str,
    expected: (usize, usize),
    got: (usize, usize),
}

impl ShapeError {
    /// Creates a shape error; `expected`/`got` are `(rows, cols)` pairs
    /// (use `1` for the free dimension of a vector).
    pub fn new(what: &'static str, expected: (usize, usize), got: (usize, usize)) -> Self {
        Self {
            what,
            expected,
            got,
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: expected {}x{}, got {}x{}",
            self.what, self.expected.0, self.expected.1, self.got.0, self.got.1
        )
    }
}

impl Error for ShapeError {}

/// Row-major dense matrix over any FIXAR scalar.
///
/// The weight matrices of the FIXAR actor/critic are stored row by row in
/// the on-chip weight memory (16 weights per 512-bit word); this type is
/// the software image of that storage. See the crate docs for the
/// accumulation-order contract of the multiply kernels.
///
/// # Example
///
/// ```
/// use fixar_tensor::Matrix;
///
/// let w = Matrix::<f32>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let y = w.gemv_alloc(&[1.0, 1.0])?;
/// assert_eq!(y, vec![3.0, 7.0]);
/// # Ok::<(), fixar_tensor::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<S> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> Matrix<S> {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![S::zero(); rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[S]]) -> Result<Self, ShapeError> {
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(ShapeError::new("from_rows", (i, ncols), (i, row.len())));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols: ncols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for a 0-element matrix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[S] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [S] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Flat mutable row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Matrix-vector product `y = W·x` in hardware column order.
    ///
    /// Column-wise decomposition: for each column `j`, the broadcast input
    /// element `x[j]` multiplies the whole column, and the partial-sum
    /// vector is accumulated into `y` — the order the AAP core produces.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `x.len() == cols && y.len() == rows`.
    pub fn gemv(&self, x: &[S], y: &mut [S]) -> Result<(), ShapeError> {
        if x.len() != self.cols {
            return Err(ShapeError::new("gemv input", (self.cols, 1), (x.len(), 1)));
        }
        if y.len() != self.rows {
            return Err(ShapeError::new("gemv output", (self.rows, 1), (y.len(), 1)));
        }
        for v in y.iter_mut() {
            *v = S::zero();
        }
        for (j, &xj) in x.iter().enumerate() {
            // One broadcast step: x[j] enters every PE row mapped to col j.
            for (i, yi) in y.iter_mut().enumerate() {
                let prod = self.data[i * self.cols + j] * xj;
                *yi += prod;
            }
        }
        Ok(())
    }

    /// Allocating variant of [`Matrix::gemv`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `x.len() == cols`.
    pub fn gemv_alloc(&self, x: &[S]) -> Result<Vec<S>, ShapeError> {
        let mut y = vec![S::zero(); self.rows];
        self.gemv(x, &mut y)?;
        Ok(y)
    }

    /// Transposed matrix-vector product `y = Wᵀ·e` in hardware column
    /// order (used by back-propagation; the accelerator feeds rows of `W`
    /// to PE rows instead of columns, solving the transpose for free).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `e.len() == rows && y.len() == cols`.
    pub fn gemv_t(&self, e: &[S], y: &mut [S]) -> Result<(), ShapeError> {
        if e.len() != self.rows {
            return Err(ShapeError::new(
                "gemv_t input",
                (self.rows, 1),
                (e.len(), 1),
            ));
        }
        if y.len() != self.cols {
            return Err(ShapeError::new(
                "gemv_t output",
                (self.cols, 1),
                (y.len(), 1),
            ));
        }
        for v in y.iter_mut() {
            *v = S::zero();
        }
        // For Wᵀ the "columns" of the decomposition are the rows of W:
        // broadcast e[i] across row i and accumulate down the outputs.
        for (i, &ei) in e.iter().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (j, &w) in row.iter().enumerate() {
                y[j] += w * ei;
            }
        }
        Ok(())
    }

    /// Allocating variant of [`Matrix::gemv_t`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `e.len() == rows`.
    pub fn gemv_t_alloc(&self, e: &[S]) -> Result<Vec<S>, ShapeError> {
        let mut y = vec![S::zero(); self.cols];
        self.gemv_t(e, &mut y)?;
        Ok(y)
    }

    /// Rank-1 update `W += e ⊗ a` (gradient accumulation:
    /// `dW[i][j] += e[i]·a[j]`).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `e.len() == rows && a.len() == cols`.
    pub fn add_outer(&mut self, e: &[S], a: &[S]) -> Result<(), ShapeError> {
        if e.len() != self.rows {
            return Err(ShapeError::new(
                "add_outer rows",
                (self.rows, 1),
                (e.len(), 1),
            ));
        }
        if a.len() != self.cols {
            return Err(ShapeError::new(
                "add_outer cols",
                (self.cols, 1),
                (a.len(), 1),
            ));
        }
        for (i, &ei) in e.iter().enumerate() {
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (j, &aj) in a.iter().enumerate() {
                row[j] += ei * aj;
            }
        }
        Ok(())
    }

    /// Batched matrix-vector product `Y[b] = W·A[b]` for a minibatch
    /// stored one sample per row: `a` is `(batch, cols)`, `y` is
    /// `(batch, rows)`.
    ///
    /// # Accumulation order
    ///
    /// Bit-exact with calling [`Matrix::gemv`] on every row of `a` in
    /// row order: for each output element `y[b][i]`, partial products are
    /// reduced over the columns `j` in ascending order — the same
    /// per-element reduction sequence as the column-broadcast hardware
    /// dataflow. (Only the *loop nest* differs: the batched kernel walks
    /// `W` row-major with a register accumulator, which is what makes it
    /// faster; saturation and rounding are per-element, so the result is
    /// identical.)
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `a.cols() == cols` and `y` is
    /// `(a.rows(), rows)`.
    pub fn gemv_batch(&self, a: &Matrix<S>, y: &mut Matrix<S>) -> Result<(), ShapeError> {
        self.check_gemv_batch(a, y)?;
        // Column-broadcast form over a materialized transpose: for each
        // input column `j`, the broadcast element `x[j]` multiplies the
        // contiguous row `j` of Wᵀ and accumulates into the whole output
        // row — element-independent within a step, so it vectorizes,
        // while every output element still reduces in ascending `j`,
        // exactly the per-element order of `gemv`'s column broadcast
        // (bit-exact per row). The one-off transpose copy is amortized
        // over the whole minibatch — this is what a per-sample kernel
        // cannot do.
        let wt = self.transposed();
        gemv_batch_span(&wt, a, 0..a.rows, &mut y.data);
        Ok(())
    }

    fn check_gemv_batch(&self, a: &Matrix<S>, y: &Matrix<S>) -> Result<(), ShapeError> {
        if a.cols != self.cols {
            return Err(ShapeError::new(
                "gemv_batch input",
                (a.rows, self.cols),
                a.shape(),
            ));
        }
        if y.shape() != (a.rows, self.rows) {
            return Err(ShapeError::new(
                "gemv_batch output",
                (a.rows, self.rows),
                y.shape(),
            ));
        }
        Ok(())
    }

    /// Pool-parallel [`Matrix::gemv_batch`]: batch rows shard
    /// contiguously across the pool of `par`, each worker computing its
    /// disjoint slice of output rows with the *same* per-element
    /// ascending-`j` reduction chain as the sequential kernel. Shard
    /// outputs are disjoint, so the merge is trivial and the result is
    /// **bit-identical** to the sequential kernel for every backend
    /// (including saturating `Fx32`) at every worker count.
    ///
    /// # Errors
    ///
    /// Same shape conditions as [`Matrix::gemv_batch`].
    ///
    /// # Panics
    ///
    /// Panics if a pool worker panics (impossible for in-contract
    /// operands; it would be a kernel bug, exactly as in the sequential
    /// form).
    pub fn gemv_batch_par(
        &self,
        a: &Matrix<S>,
        y: &mut Matrix<S>,
        par: &Parallelism,
    ) -> Result<(), ShapeError> {
        let shards = par.shards(a.rows);
        if shards <= 1 {
            return self.gemv_batch(a, y);
        }
        self.check_gemv_batch(a, y)?;
        let out_dim = self.rows;
        let wt = self.transposed();
        let pool = par.pool().expect("shards > 1 implies a pool");
        pool.scope(|scope| {
            let mut rest = y.data.as_mut_slice();
            for range in split_ranges(a.rows, shards) {
                let (chunk, tail) = rest.split_at_mut(range.len() * out_dim);
                rest = tail;
                let wt = &wt;
                scope.execute(move || gemv_batch_span(wt, a, range, chunk));
            }
        })
        .unwrap_or_else(|e| panic!("gemv_batch_par worker panicked: {e}"));
        Ok(())
    }

    /// Allocating variant of [`Matrix::gemv_batch_par`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `a.cols() == cols`.
    pub fn gemv_batch_par_alloc(
        &self,
        a: &Matrix<S>,
        par: &Parallelism,
    ) -> Result<Matrix<S>, ShapeError> {
        let mut y = Matrix::zeros(a.rows(), self.rows);
        self.gemv_batch_par(a, &mut y, par)?;
        Ok(y)
    }

    /// Allocating variant of [`Matrix::gemv_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `a.cols() == cols`.
    pub fn gemv_batch_alloc(&self, a: &Matrix<S>) -> Result<Matrix<S>, ShapeError> {
        let mut y = Matrix::zeros(a.rows(), self.rows);
        self.gemv_batch(a, &mut y)?;
        Ok(y)
    }

    /// [`Matrix::gemv_batch`] submitted into a **caller-owned fused
    /// scope** instead of opening its own: the shards enqueue through
    /// `ks` and join together with every other kernel fused into the
    /// same [`fixar_pool::Parallelism::fused`] call — one barrier for
    /// the whole phase instead of one per kernel. On the sequential
    /// degradation (no pool, or nested on a pool thread) the shards run
    /// inline, bit-identically.
    ///
    /// The result is only complete once the owning fused scope joins;
    /// `y` must stay borrowed until then (the `'scope` bound enforces
    /// it). Outputs of distinct kernels fused into one scope must be
    /// disjoint — that is the caller's contract, exactly as for shards
    /// of a single kernel.
    ///
    /// # Errors
    ///
    /// Same shape conditions as [`Matrix::gemv_batch`], checked on the
    /// calling thread before anything enqueues.
    pub fn gemv_batch_par_in<'scope>(
        &'scope self,
        a: &'scope Matrix<S>,
        y: &'scope mut Matrix<S>,
        ks: &KernelScope<'_, '_, 'scope>,
    ) -> Result<(), ShapeError> {
        self.check_gemv_batch(a, y)?;
        let out_dim = self.rows;
        // The transpose is shared by every shard and must survive until
        // the fused scope joins, which outlives this call — hence Arc.
        let wt = Arc::new(self.transposed());
        let shards = ks.shards(a.rows);
        let mut rest = y.data.as_mut_slice();
        for range in split_ranges(a.rows, shards) {
            let (chunk, tail) = rest.split_at_mut(range.len() * out_dim);
            rest = tail;
            let wt = Arc::clone(&wt);
            ks.submit(move || gemv_batch_span(&wt, a, range, chunk));
        }
        Ok(())
    }

    /// Batched transposed product `Y[b] = Wᵀ·E[b]` (back-propagation of a
    /// whole minibatch of error rows): `e` is `(batch, rows)`, `y` is
    /// `(batch, cols)`.
    ///
    /// # Accumulation order
    ///
    /// Bit-exact with calling [`Matrix::gemv_t`] on every row of `e` in
    /// row order: for each output element `y[b][j]`, contributions are
    /// reduced over `i` (the rows of `W`) in ascending order, exactly as
    /// the row-broadcast transpose dataflow produces them.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `e.cols() == rows` and `y` is
    /// `(e.rows(), cols)`.
    pub fn gemv_t_batch(&self, e: &Matrix<S>, y: &mut Matrix<S>) -> Result<(), ShapeError> {
        self.check_gemv_t_batch(e, y)?;
        gemv_t_batch_span(self, e, 0..e.rows, &mut y.data);
        Ok(())
    }

    fn check_gemv_t_batch(&self, e: &Matrix<S>, y: &Matrix<S>) -> Result<(), ShapeError> {
        if e.cols != self.rows {
            return Err(ShapeError::new(
                "gemv_t_batch input",
                (e.rows, self.rows),
                e.shape(),
            ));
        }
        if y.shape() != (e.rows, self.cols) {
            return Err(ShapeError::new(
                "gemv_t_batch output",
                (e.rows, self.cols),
                y.shape(),
            ));
        }
        Ok(())
    }

    /// Pool-parallel [`Matrix::gemv_t_batch`]: batch rows shard
    /// contiguously across the pool, each worker running the sequential
    /// kernel's loop nest (including its four-sample unroll) over its
    /// disjoint output slice. Per-element chains stay ascending-`i`, so
    /// the result is **bit-identical** to the sequential kernel at
    /// every worker count, in every backend.
    ///
    /// # Errors
    ///
    /// Same shape conditions as [`Matrix::gemv_t_batch`].
    ///
    /// # Panics
    ///
    /// Panics if a pool worker panics (a kernel bug).
    pub fn gemv_t_batch_par(
        &self,
        e: &Matrix<S>,
        y: &mut Matrix<S>,
        par: &Parallelism,
    ) -> Result<(), ShapeError> {
        let shards = par.shards(e.rows);
        if shards <= 1 {
            return self.gemv_t_batch(e, y);
        }
        self.check_gemv_t_batch(e, y)?;
        let cols = self.cols;
        let pool = par.pool().expect("shards > 1 implies a pool");
        pool.scope(|scope| {
            let mut rest = y.data.as_mut_slice();
            for range in split_ranges(e.rows, shards) {
                let (chunk, tail) = rest.split_at_mut(range.len() * cols);
                rest = tail;
                scope.execute(move || gemv_t_batch_span(self, e, range, chunk));
            }
        })
        .unwrap_or_else(|err| panic!("gemv_t_batch_par worker panicked: {err}"));
        Ok(())
    }

    /// Allocating variant of [`Matrix::gemv_t_batch_par`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `e.cols() == rows`.
    pub fn gemv_t_batch_par_alloc(
        &self,
        e: &Matrix<S>,
        par: &Parallelism,
    ) -> Result<Matrix<S>, ShapeError> {
        let mut y = Matrix::zeros(e.rows(), self.cols);
        self.gemv_t_batch_par(e, &mut y, par)?;
        Ok(y)
    }

    /// Allocating variant of [`Matrix::gemv_t_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `e.cols() == rows`.
    pub fn gemv_t_batch_alloc(&self, e: &Matrix<S>) -> Result<Matrix<S>, ShapeError> {
        let mut y = Matrix::zeros(e.rows(), self.cols);
        self.gemv_t_batch(e, &mut y)?;
        Ok(y)
    }

    /// [`Matrix::gemv_t_batch`] submitted into a caller-owned fused
    /// scope (see [`Matrix::gemv_batch_par_in`] for the fused-scope
    /// contract): shards enqueue through `ks`, the join belongs to the
    /// owning [`fixar_pool::Parallelism::fused`] call, and the
    /// sequential degradation runs inline, bit-identically.
    ///
    /// # Errors
    ///
    /// Same shape conditions as [`Matrix::gemv_t_batch`], checked
    /// before anything enqueues.
    pub fn gemv_t_batch_par_in<'scope>(
        &'scope self,
        e: &'scope Matrix<S>,
        y: &'scope mut Matrix<S>,
        ks: &KernelScope<'_, '_, 'scope>,
    ) -> Result<(), ShapeError> {
        self.check_gemv_t_batch(e, y)?;
        let cols = self.cols;
        let shards = ks.shards(e.rows);
        let mut rest = y.data.as_mut_slice();
        for range in split_ranges(e.rows, shards) {
            let (chunk, tail) = rest.split_at_mut(range.len() * cols);
            rest = tail;
            ks.submit(move || gemv_t_batch_span(self, e, range, chunk));
        }
        Ok(())
    }

    /// Batched rank-1 gradient accumulation
    /// `W += Σ_b E[b] ⊗ A[b]`, summed **in row (sample) order** — the
    /// documented batch-reduction order of the gradient memory. Bit-exact
    /// with calling [`Matrix::add_outer`] per sample row in order.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `e` is `(batch, rows)` and `a` is
    /// `(batch, cols)` with equal batch sizes.
    pub fn add_outer_batch(&mut self, e: &Matrix<S>, a: &Matrix<S>) -> Result<(), ShapeError> {
        self.check_add_outer_batch(e, a)?;
        let (rows, cols) = self.shape();
        add_outer_batch_span(e, a, 0..rows, cols, &mut self.data);
        Ok(())
    }

    fn check_add_outer_batch(&self, e: &Matrix<S>, a: &Matrix<S>) -> Result<(), ShapeError> {
        if e.rows != a.rows {
            return Err(ShapeError::new(
                "add_outer_batch batch",
                e.shape(),
                a.shape(),
            ));
        }
        if e.cols != self.rows {
            return Err(ShapeError::new(
                "add_outer_batch rows",
                (e.rows, self.rows),
                e.shape(),
            ));
        }
        if a.cols != self.cols {
            return Err(ShapeError::new(
                "add_outer_batch cols",
                (a.rows, self.cols),
                a.shape(),
            ));
        }
        Ok(())
    }

    /// Pool-parallel [`Matrix::add_outer_batch`]. Unlike the MVM
    /// kernels, gradient accumulation reduces **across** the batch, so
    /// sharding the batch would change the per-element accumulation
    /// chain under saturation. Instead the *weight rows* shard: each
    /// worker owns a disjoint row range of the gradient matrix and
    /// walks the whole batch in ascending sample order for those rows —
    /// the exact sequential chain per element, hence **bit-identical**
    /// to the sequential kernel at every worker count in every backend.
    ///
    /// # Errors
    ///
    /// Same shape conditions as [`Matrix::add_outer_batch`].
    ///
    /// # Panics
    ///
    /// Panics if a pool worker panics (a kernel bug).
    pub fn add_outer_batch_par(
        &mut self,
        e: &Matrix<S>,
        a: &Matrix<S>,
        par: &Parallelism,
    ) -> Result<(), ShapeError> {
        let shards = par.shards(self.rows);
        if shards <= 1 {
            return self.add_outer_batch(e, a);
        }
        self.check_add_outer_batch(e, a)?;
        let cols = self.cols;
        let rows = self.rows;
        let pool = par.pool().expect("shards > 1 implies a pool");
        pool.scope(|scope| {
            let mut rest = self.data.as_mut_slice();
            for range in split_ranges(rows, shards) {
                let (chunk, tail) = rest.split_at_mut(range.len() * cols);
                rest = tail;
                scope.execute(move || add_outer_batch_span(e, a, range, cols, chunk));
            }
        })
        .unwrap_or_else(|err| panic!("add_outer_batch_par worker panicked: {err}"));
        Ok(())
    }

    /// [`Matrix::add_outer_batch`] submitted into a caller-owned fused
    /// scope (see [`Matrix::gemv_batch_par_in`]): the *weight rows*
    /// shard through `ks` — each shard walking the whole batch in
    /// ascending sample order, the sequential chain — and join with the
    /// owning [`fixar_pool::Parallelism::fused`] call. This is the form
    /// the fused layer backward uses to run gradient accumulation and
    /// error propagation under a single join.
    ///
    /// # Errors
    ///
    /// Same shape conditions as [`Matrix::add_outer_batch`], checked
    /// before anything enqueues.
    pub fn add_outer_batch_par_in<'scope>(
        &'scope mut self,
        e: &'scope Matrix<S>,
        a: &'scope Matrix<S>,
        ks: &KernelScope<'_, '_, 'scope>,
    ) -> Result<(), ShapeError> {
        self.check_add_outer_batch(e, a)?;
        let cols = self.cols;
        let rows = self.rows;
        let shards = ks.shards(rows);
        let mut rest = self.data.as_mut_slice();
        for range in split_ranges(rows, shards) {
            let (chunk, tail) = rest.split_at_mut(range.len() * cols);
            rest = tail;
            ks.submit(move || add_outer_batch_span(e, a, range, cols, chunk));
        }
        Ok(())
    }

    /// General matrix-matrix product `C = self · rhs` with the crate's
    /// reduction contract: every output element accumulates its products
    /// over the shared dimension `k` in ascending order, each product
    /// rounded to the scalar format before the saturating add.
    ///
    /// [`Matrix::gemv_batch`] is this kernel specialized to
    /// `A · selfᵀ` layouts; `w.gemv_batch_alloc(&a)` equals
    /// `a.matmul(&w.transposed())` bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `rhs.rows() == cols`.
    pub fn matmul(&self, rhs: &Matrix<S>) -> Result<Matrix<S>, ShapeError> {
        self.check_matmul(rhs)?;
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        matmul_span(self, rhs, 0..self.rows, &mut out.data);
        Ok(out)
    }

    fn check_matmul(&self, rhs: &Matrix<S>) -> Result<(), ShapeError> {
        if rhs.rows != self.cols {
            return Err(ShapeError::new(
                "matmul",
                (self.cols, rhs.cols),
                rhs.shape(),
            ));
        }
        Ok(())
    }

    /// Pool-parallel [`Matrix::matmul`]: output rows shard contiguously
    /// across the pool, every element keeping the ascending-`k`
    /// reduction chain — **bit-identical** to the sequential kernel at
    /// every worker count in every backend.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `rhs.rows() == cols`.
    ///
    /// # Panics
    ///
    /// Panics if a pool worker panics (a kernel bug).
    pub fn matmul_par(&self, rhs: &Matrix<S>, par: &Parallelism) -> Result<Matrix<S>, ShapeError> {
        let shards = par.shards(self.rows);
        if shards <= 1 {
            return self.matmul(rhs);
        }
        self.check_matmul(rhs)?;
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let out_cols = rhs.cols;
        let pool = par.pool().expect("shards > 1 implies a pool");
        pool.scope(|scope| {
            let mut rest = out.data.as_mut_slice();
            for range in split_ranges(self.rows, shards) {
                let (chunk, tail) = rest.split_at_mut(range.len() * out_cols);
                rest = tail;
                scope.execute(move || matmul_span(self, rhs, range, chunk));
            }
        })
        .unwrap_or_else(|err| panic!("matmul_par worker panicked: {err}"));
        Ok(out)
    }

    /// [`Matrix::matmul`] submitted into a caller-owned fused scope
    /// (see [`Matrix::gemv_batch_par_in`]), writing into a caller-owned
    /// `out` — the output must outlive the scope, so the allocating
    /// form cannot be fused. `out` must be `(rows, rhs.cols)`; its
    /// previous contents are overwritten (each shard zeroes its region
    /// before accumulating).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `rhs.rows() == cols` and `out` is
    /// `(rows, rhs.cols)`.
    pub fn matmul_par_in<'scope>(
        &'scope self,
        rhs: &'scope Matrix<S>,
        out: &'scope mut Matrix<S>,
        ks: &KernelScope<'_, '_, 'scope>,
    ) -> Result<(), ShapeError> {
        self.check_matmul(rhs)?;
        if out.shape() != (self.rows, rhs.cols) {
            return Err(ShapeError::new(
                "matmul_par_in output",
                (self.rows, rhs.cols),
                out.shape(),
            ));
        }
        let out_cols = rhs.cols;
        let shards = ks.shards(self.rows);
        let mut rest = out.data.as_mut_slice();
        for range in split_ranges(self.rows, shards) {
            let (chunk, tail) = rest.split_at_mut(range.len() * out_cols);
            rest = tail;
            ks.submit(move || {
                for v in chunk.iter_mut() {
                    *v = S::zero();
                }
                matmul_span(self, rhs, range, chunk);
            });
        }
        Ok(())
    }

    /// Adds `bias` to every row (the batched bias broadcast of the
    /// accumulator stage).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `bias.len() == cols`.
    pub fn add_row_broadcast(&mut self, bias: &[S]) -> Result<(), ShapeError> {
        if bias.len() != self.cols {
            return Err(ShapeError::new(
                "add_row_broadcast",
                (1, self.cols),
                (1, bias.len()),
            ));
        }
        for b in 0..self.rows {
            let row = &mut self.data[b * self.cols..(b + 1) * self.cols];
            for (v, &bi) in row.iter_mut().zip(bias) {
                *v += bi;
            }
        }
        Ok(())
    }

    /// Horizontal concatenation `[self | rhs]` row by row (builds the
    /// critic's `(state ‖ action)` batch input).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless the operands have equal row counts.
    pub fn hcat(&self, rhs: &Matrix<S>) -> Result<Matrix<S>, ShapeError> {
        if self.rows != rhs.rows {
            return Err(ShapeError::new("hcat", self.shape(), rhs.shape()));
        }
        let cols = self.cols + rhs.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for b in 0..self.rows {
            data.extend_from_slice(self.row(b));
            data.extend_from_slice(rhs.row(b));
        }
        Ok(Matrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Copies a contiguous column range into a new `(rows, hi - lo)`
    /// matrix (extracts `∂Q/∂a` from the critic's input gradient).
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= hi <= cols`.
    pub fn columns(&self, lo: usize, hi: usize) -> Matrix<S> {
        assert!(lo <= hi && hi <= self.cols, "column range out of bounds");
        let mut data = Vec::with_capacity(self.rows * (hi - lo));
        for b in 0..self.rows {
            data.extend_from_slice(&self.row(b)[lo..hi]);
        }
        Matrix {
            rows: self.rows,
            cols: hi - lo,
            data,
        }
    }

    /// Gathers columns of a **column-major panel** into a row-major
    /// batch matrix — the replay buffer's sampling kernel.
    ///
    /// `Matrix` is row-major, so a column-major `(dim, n)` panel is held
    /// as its row-major transpose: `self` is `(n, dim)` and logical
    /// column `j` of the panel (one stored sample) is stored row `j`,
    /// contiguous in memory. `gather_columns(idx)` returns the
    /// `(idx.len(), dim)` batch matrix whose row `k` is logical column
    /// `idx[k]` — one contiguous copy per gathered column, no reduction
    /// and no per-element arithmetic, hence trivially bit-exact in every
    /// backend. Repeated indices are allowed (sampling with
    /// replacement).
    ///
    /// # Example
    ///
    /// ```
    /// use fixar_tensor::Matrix;
    ///
    /// // A 2-wide panel holding 3 samples (stored transpose: 3x2).
    /// let panel = Matrix::<f64>::from_rows(&[&[0.0, 0.5], &[1.0, 1.5], &[2.0, 2.5]])?;
    /// let batch = panel.gather_columns(&[2, 0, 2])?;
    /// assert_eq!(batch.row(0), &[2.0, 2.5]);
    /// assert_eq!(batch.row(1), &[0.0, 0.5]);
    /// assert_eq!(batch.row(2), &[2.0, 2.5]);
    /// # Ok::<(), fixar_tensor::ShapeError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if any index is `>= rows()` (the panel's
    /// column count).
    pub fn gather_columns(&self, indices: &[usize]) -> Result<Matrix<S>, ShapeError> {
        self.check_gather_columns(indices)?;
        // Append-style copies into reserved (not zero-filled) storage:
        // the hot sampling path never touches an output element twice.
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &j in indices {
            data.extend_from_slice(&self.data[j * self.cols..(j + 1) * self.cols]);
        }
        Ok(Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        })
    }

    fn check_gather_columns(&self, indices: &[usize]) -> Result<(), ShapeError> {
        for (k, &j) in indices.iter().enumerate() {
            if j >= self.rows {
                return Err(ShapeError::new(
                    "gather_columns index",
                    (self.rows, self.cols),
                    (j, k),
                ));
            }
        }
        Ok(())
    }

    /// Pool-parallel [`Matrix::gather_columns`]: the gathered output
    /// columns shard contiguously across the pool (`split_ranges` over
    /// `indices`), each worker copying its disjoint slice of output
    /// rows through the same span as the sequential kernel. Gathers are
    /// pure copies, so the result is **bit-identical** to the
    /// sequential form at every worker count in every backend — the
    /// same contract as the batched MVM kernels.
    ///
    /// # Errors
    ///
    /// Same index condition as [`Matrix::gather_columns`].
    ///
    /// # Panics
    ///
    /// Panics if a pool worker panics (a kernel bug).
    pub fn gather_columns_par(
        &self,
        indices: &[usize],
        par: &Parallelism,
    ) -> Result<Matrix<S>, ShapeError> {
        let shards = par.shards(indices.len());
        if shards <= 1 {
            return self.gather_columns(indices);
        }
        self.check_gather_columns(indices)?;
        let mut out = Matrix::zeros(indices.len(), self.cols);
        let cols = self.cols;
        let pool = par.pool().expect("shards > 1 implies a pool");
        pool.scope(|scope| {
            let mut rest = out.data.as_mut_slice();
            for range in split_ranges(indices.len(), shards) {
                let (chunk, tail) = rest.split_at_mut(range.len() * cols);
                rest = tail;
                let idx = &indices[range];
                scope.execute(move || gather_columns_span(self, idx, chunk));
            }
        })
        .unwrap_or_else(|err| panic!("gather_columns_par worker panicked: {err}"));
        Ok(out)
    }

    /// [`Matrix::gather_columns`] into a caller-owned output matrix —
    /// the allocation-free sampling path: `out` is reshaped in place to
    /// `(indices.len(), cols)` (reusing its storage once grown, see
    /// [`Matrix::reset_shape`]) and filled by the same gather span as
    /// the allocating form, so the bytes are identical.
    ///
    /// # Errors
    ///
    /// Same index condition as [`Matrix::gather_columns`].
    pub fn gather_columns_into(
        &self,
        indices: &[usize],
        out: &mut Matrix<S>,
    ) -> Result<(), ShapeError> {
        self.check_gather_columns(indices)?;
        out.reset_shape(indices.len(), self.cols);
        gather_columns_span(self, indices, &mut out.data);
        Ok(())
    }

    /// Pool-parallel [`Matrix::gather_columns_into`]: the reshape and
    /// shard layout happen on the calling thread, the disjoint output
    /// shards fill on the pool — bit-identical to the sequential form
    /// at every worker count.
    ///
    /// # Errors
    ///
    /// Same index condition as [`Matrix::gather_columns`].
    ///
    /// # Panics
    ///
    /// Panics if a pool worker panics (a kernel bug).
    pub fn gather_columns_par_into(
        &self,
        indices: &[usize],
        par: &Parallelism,
        out: &mut Matrix<S>,
    ) -> Result<(), ShapeError> {
        let shards = par.shards(indices.len());
        if shards <= 1 {
            return self.gather_columns_into(indices, out);
        }
        self.check_gather_columns(indices)?;
        out.reset_shape(indices.len(), self.cols);
        let cols = self.cols;
        let pool = par.pool().expect("shards > 1 implies a pool");
        pool.scope(|scope| {
            let mut rest = out.data.as_mut_slice();
            for range in split_ranges(indices.len(), shards) {
                let (chunk, tail) = rest.split_at_mut(range.len() * cols);
                rest = tail;
                let idx = &indices[range];
                scope.execute(move || gather_columns_span(self, idx, chunk));
            }
        })
        .unwrap_or_else(|err| panic!("gather_columns_par_into worker panicked: {err}"));
        Ok(())
    }

    /// [`Matrix::gather_columns`] submitted into a caller-owned fused
    /// scope (see [`Matrix::gemv_batch_par_in`]), writing into a
    /// caller-owned, **pre-shaped** `(indices.len(), cols)` output.
    ///
    /// # Errors
    ///
    /// Same index condition as [`Matrix::gather_columns`], plus a shape
    /// check on `out`.
    pub fn gather_columns_par_in<'scope>(
        &'scope self,
        indices: &'scope [usize],
        out: &'scope mut Matrix<S>,
        ks: &KernelScope<'_, '_, 'scope>,
    ) -> Result<(), ShapeError> {
        self.check_gather_columns(indices)?;
        if out.shape() != (indices.len(), self.cols) {
            return Err(ShapeError::new(
                "gather_columns_par_in output",
                (indices.len(), self.cols),
                out.shape(),
            ));
        }
        let cols = self.cols;
        let shards = ks.shards(indices.len());
        let mut rest = out.data.as_mut_slice();
        for range in split_ranges(indices.len(), shards) {
            let (chunk, tail) = rest.split_at_mut(range.len() * cols);
            rest = tail;
            let idx = &indices[range];
            ks.submit(move || gather_columns_span(self, idx, chunk));
        }
        Ok(())
    }

    /// Builds a `(rows.len(), cols)` batch matrix from row slices drawn
    /// through `f` (e.g. replay transitions to a state batch).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if any produced row has the wrong length.
    pub fn from_row_fn<'a, T: 'a>(
        items: &'a [T],
        cols: usize,
        mut f: impl FnMut(&'a T) -> &'a [S],
    ) -> Result<Matrix<S>, ShapeError> {
        let mut data = Vec::with_capacity(items.len() * cols);
        for (b, item) in items.iter().enumerate() {
            let row = f(item);
            if row.len() != cols {
                return Err(ShapeError::new("from_row_fn", (b, cols), (b, row.len())));
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: items.len(),
            cols,
            data,
        })
    }

    /// Elementwise `self += other * scale`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix<S>, scale: S) -> Result<(), ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new("add_scaled", self.shape(), other.shape()));
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
        Ok(())
    }

    /// Reshapes in place to `(rows, cols)`, reusing the existing
    /// allocation whenever its capacity suffices — the scratch-reuse
    /// primitive behind the allocation-free replay sampling path
    /// ([`Matrix::gather_columns_into`]). After the first call at a
    /// given size, subsequent calls never allocate. The retained
    /// elements keep **stale values** (only growth is zero-filled):
    /// this is for callers that overwrite every element, like the
    /// gather scratch path — zeroing first would double the memory
    /// writes of the hot sampling loop for nothing.
    pub fn reset_shape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, S::zero());
    }

    /// Copies a contiguous row range into a new `(hi - lo, cols)`
    /// matrix — the row twin of [`Matrix::columns`], used to split a
    /// fleet observation batch into double-buffered halves.
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= hi <= rows`.
    pub fn row_range(&self, lo: usize, hi: usize) -> Matrix<S> {
        assert!(lo <= hi && hi <= self.rows, "row range out of bounds");
        Matrix {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }

    /// Sets every element to zero (gradient reset between batches).
    pub fn fill_zero(&mut self) {
        for v in &mut self.data {
            *v = S::zero();
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(S) -> S) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns the transposed matrix (a data copy; the accelerator never
    /// materializes this — it redistributes reads instead).
    pub fn transposed(&self) -> Matrix<S> {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.data[c * self.cols + r])
    }

    /// Converts every element to another scalar backend through `f64`.
    pub fn cast<T: Scalar>(&self) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| T::from_f64(v.to_f64())).collect(),
        }
    }

    /// Largest absolute element, as `f64` (diagnostics).
    pub fn max_abs(&self) -> f64 {
        self.data
            .iter()
            .map(|v| v.to_f64().abs())
            .fold(0.0, f64::max)
    }

    /// Builds the cache-resident packed layout for this matrix — see
    /// [`WeightPack`].
    pub fn pack(&self) -> WeightPack<S> {
        let panels = self.cols.div_ceil(GEMV_T_PANEL);
        let mut w_panels = vec![S::zero(); panels * self.rows * GEMV_T_PANEL];
        for p in 0..panels {
            for i in 0..self.rows {
                let j0 = p * GEMV_T_PANEL;
                let width = GEMV_T_PANEL.min(self.cols - j0);
                let dst = (p * self.rows + i) * GEMV_T_PANEL;
                w_panels[dst..dst + width]
                    .copy_from_slice(&self.data[i * self.cols + j0..i * self.cols + j0 + width]);
            }
        }
        WeightPack {
            rows: self.rows,
            cols: self.cols,
            wt: self.transposed(),
            w_panels,
        }
    }
}

/// Width of the register-blocked output panel in the packed
/// `gemv_t_batch` kernel: one panel of accumulators stays resident
/// while a weight panel streams past with unit stride.
const GEMV_T_PANEL: usize = 16;

/// Cache-resident packed image of a weight matrix, in both hot-loop
/// layouts.
///
/// The batched MVM kernels want *two* purpose-built layouts of `W`: the
/// forward kernel streams rows of `Wᵀ` (one per input column), and the
/// backward kernel streams zero-padded width-`GEMV_T_PANEL` column
/// panels of `W` (layout `[panel][row][lane]`) so a register-resident
/// panel of outputs accumulates from unit-stride loads with no
/// per-step output-row traffic. A plain [`Matrix::gemv_batch`]
/// re-materializes the transpose on every call; a `WeightPack` hoists
/// both copies out of the hot loop so a layer that is applied many
/// times between weight updates (training batches, serving) pays for
/// the pack once.
///
/// The packed kernels are **bit-identical** to their unpacked
/// [`Matrix`] counterparts: only the loop nests differ, never the
/// per-element reduction chains (ascending `j` for `gemv_batch`,
/// ascending `i` for `gemv_t_batch` — the crate's accumulation-order
/// contract), so packed ≡ unpacked ≡ per-sample in every backend,
/// including saturating `Fx32`, at every worker count.
///
/// A pack is a snapshot: it does **not** track later mutations of the
/// source matrix. Callers that mutate weights must rebuild (or, like
/// `fixar-nn`'s `Mlp`, invalidate and lazily rebuild) the pack.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightPack<S> {
    rows: usize,
    cols: usize,
    /// `(cols, rows)` row-major transpose of the source matrix.
    wt: Matrix<S>,
    /// Zero-padded column panels of the source matrix for the packed
    /// `gemv_t_batch` kernel: element `(i, p * GEMV_T_PANEL + t)` of the
    /// source lives at `(p * rows + i) * GEMV_T_PANEL + t`.
    w_panels: Vec<S>,
}

impl<S: Scalar> WeightPack<S> {
    /// Row count of the *source* matrix (the output dimension of
    /// [`WeightPack::gemv_batch`]).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count of the *source* matrix (the output dimension of
    /// [`WeightPack::gemv_t_batch`]).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` of the source matrix.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn check_gemv_batch(&self, a: &Matrix<S>, y: &Matrix<S>) -> Result<(), ShapeError> {
        if a.cols != self.cols {
            return Err(ShapeError::new(
                "gemv_batch input",
                (a.rows, self.cols),
                a.shape(),
            ));
        }
        if y.shape() != (a.rows, self.rows) {
            return Err(ShapeError::new(
                "gemv_batch output",
                (a.rows, self.rows),
                y.shape(),
            ));
        }
        Ok(())
    }

    fn check_gemv_t_batch(&self, e: &Matrix<S>, y: &Matrix<S>) -> Result<(), ShapeError> {
        if e.cols != self.rows {
            return Err(ShapeError::new(
                "gemv_t_batch input",
                (e.rows, self.rows),
                e.shape(),
            ));
        }
        if y.shape() != (e.rows, self.cols) {
            return Err(ShapeError::new(
                "gemv_t_batch output",
                (e.rows, self.cols),
                y.shape(),
            ));
        }
        Ok(())
    }

    /// Packed [`Matrix::gemv_batch`]: `Y[b] = W·A[b]` over the cached
    /// transpose, two samples per register tile (sharing every streamed
    /// `Wᵀ` row across the pair), each output element still reducing
    /// over the input columns `j` in ascending order — bit-exact with
    /// the unpacked kernel.
    ///
    /// # Errors
    ///
    /// Same shape conditions as [`Matrix::gemv_batch`].
    pub fn gemv_batch(&self, a: &Matrix<S>, y: &mut Matrix<S>) -> Result<(), ShapeError> {
        self.check_gemv_batch(a, y)?;
        gemv_batch_span_packed(&self.wt, a, 0..a.rows, &mut y.data);
        Ok(())
    }

    /// Pool-parallel [`WeightPack::gemv_batch`] — batch rows shard
    /// contiguously, disjoint output slices, bit-identical to the
    /// sequential packed kernel at every worker count.
    ///
    /// # Errors
    ///
    /// Same shape conditions as [`Matrix::gemv_batch`].
    ///
    /// # Panics
    ///
    /// Panics if a pool worker panics (a kernel bug).
    pub fn gemv_batch_par(
        &self,
        a: &Matrix<S>,
        y: &mut Matrix<S>,
        par: &Parallelism,
    ) -> Result<(), ShapeError> {
        let shards = par.shards(a.rows);
        if shards <= 1 {
            return self.gemv_batch(a, y);
        }
        self.check_gemv_batch(a, y)?;
        let out_dim = self.rows;
        let wt = &self.wt;
        let pool = par.pool().expect("shards > 1 implies a pool");
        pool.scope(|scope| {
            let mut rest = y.data.as_mut_slice();
            for range in split_ranges(a.rows, shards) {
                let (chunk, tail) = rest.split_at_mut(range.len() * out_dim);
                rest = tail;
                scope.execute(move || gemv_batch_span_packed(wt, a, range, chunk));
            }
        })
        .unwrap_or_else(|e| panic!("gemv_batch_par worker panicked: {e}"));
        Ok(())
    }

    /// [`WeightPack::gemv_batch`] submitted into a caller-owned fused
    /// scope (see [`Matrix::gemv_batch_par_in`] for the fused-scope
    /// contract). Unlike the unpacked form, no transpose is built on
    /// the calling thread — the shards borrow the cached pack for the
    /// scope's lifetime.
    ///
    /// # Errors
    ///
    /// Same shape conditions as [`Matrix::gemv_batch`], checked before
    /// anything enqueues.
    pub fn gemv_batch_par_in<'scope>(
        &'scope self,
        a: &'scope Matrix<S>,
        y: &'scope mut Matrix<S>,
        ks: &KernelScope<'_, '_, 'scope>,
    ) -> Result<(), ShapeError> {
        self.check_gemv_batch(a, y)?;
        let out_dim = self.rows;
        let wt = &self.wt;
        let shards = ks.shards(a.rows);
        let mut rest = y.data.as_mut_slice();
        for range in split_ranges(a.rows, shards) {
            let (chunk, tail) = rest.split_at_mut(range.len() * out_dim);
            rest = tail;
            ks.submit(move || gemv_batch_span_packed(wt, a, range, chunk));
        }
        Ok(())
    }

    /// Packed [`Matrix::gemv_t_batch`]: `Y[b] = Wᵀ·E[b]` over the
    /// cached column panels — a register-resident panel of outputs per
    /// sample accumulates from unit-stride weight loads, with no
    /// per-step output-row load/store traffic, four samples per tile.
    /// The per-element chain still ascends `i`, so the result is
    /// bit-exact with the unpacked kernel, which streams `W` row-major
    /// and scatter-accumulates through memory instead.
    ///
    /// # Errors
    ///
    /// Same shape conditions as [`Matrix::gemv_t_batch`].
    pub fn gemv_t_batch(&self, e: &Matrix<S>, y: &mut Matrix<S>) -> Result<(), ShapeError> {
        self.check_gemv_t_batch(e, y)?;
        gemv_t_batch_span_packed(
            &self.w_panels,
            self.rows,
            self.cols,
            e,
            0..e.rows,
            &mut y.data,
        );
        Ok(())
    }

    /// Pool-parallel [`WeightPack::gemv_t_batch`] — batch rows shard
    /// contiguously, disjoint output slices, bit-identical to the
    /// sequential packed kernel at every worker count.
    ///
    /// # Errors
    ///
    /// Same shape conditions as [`Matrix::gemv_t_batch`].
    ///
    /// # Panics
    ///
    /// Panics if a pool worker panics (a kernel bug).
    pub fn gemv_t_batch_par(
        &self,
        e: &Matrix<S>,
        y: &mut Matrix<S>,
        par: &Parallelism,
    ) -> Result<(), ShapeError> {
        let shards = par.shards(e.rows);
        if shards <= 1 {
            return self.gemv_t_batch(e, y);
        }
        self.check_gemv_t_batch(e, y)?;
        let cols = self.cols;
        let rows = self.rows;
        let w_panels = self.w_panels.as_slice();
        let pool = par.pool().expect("shards > 1 implies a pool");
        pool.scope(|scope| {
            let mut rest = y.data.as_mut_slice();
            for range in split_ranges(e.rows, shards) {
                let (chunk, tail) = rest.split_at_mut(range.len() * cols);
                rest = tail;
                scope.execute(move || {
                    gemv_t_batch_span_packed(w_panels, rows, cols, e, range, chunk)
                });
            }
        })
        .unwrap_or_else(|err| panic!("gemv_t_batch_par worker panicked: {err}"));
        Ok(())
    }

    /// [`WeightPack::gemv_t_batch`] submitted into a caller-owned fused
    /// scope (see [`Matrix::gemv_batch_par_in`] for the fused-scope
    /// contract).
    ///
    /// # Errors
    ///
    /// Same shape conditions as [`Matrix::gemv_t_batch`], checked
    /// before anything enqueues.
    pub fn gemv_t_batch_par_in<'scope>(
        &'scope self,
        e: &'scope Matrix<S>,
        y: &'scope mut Matrix<S>,
        ks: &KernelScope<'_, '_, 'scope>,
    ) -> Result<(), ShapeError> {
        self.check_gemv_t_batch(e, y)?;
        let cols = self.cols;
        let rows = self.rows;
        let w_panels = self.w_panels.as_slice();
        let shards = ks.shards(e.rows);
        let mut rest = y.data.as_mut_slice();
        for range in split_ranges(e.rows, shards) {
            let (chunk, tail) = rest.split_at_mut(range.len() * cols);
            rest = tail;
            ks.submit(move || gemv_t_batch_span_packed(w_panels, rows, cols, e, range, chunk));
        }
        Ok(())
    }
}

impl<S: Scalar> Index<(usize, usize)> for Matrix<S> {
    type Output = S;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &S {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl<S: Scalar> IndexMut<(usize, usize)> for Matrix<S> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut S {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

// --- shard span kernels ---------------------------------------------------
//
// Each span computes a contiguous output region with exactly the
// per-element reduction chain of its sequential kernel; the sequential
// kernels call their span with the full range, the `_par` kernels call
// one span per pool worker over disjoint ranges. Sharing the loop nests
// is what *guarantees* sequential ≡ parallel bit-for-bit.

/// Forward-MVM span: output rows `batch` of `Y = A·Wᵀ` into `y_chunk`
/// (`batch.len() * wt.cols` elements), reading the pre-transposed
/// weights `wt` (`(in_dim, out_dim)` row-major). Ascending-`j` chains.
fn gemv_batch_span<S: Scalar>(
    wt: &Matrix<S>,
    a: &Matrix<S>,
    batch: Range<usize>,
    y_chunk: &mut [S],
) {
    let cols = a.cols;
    let out_dim = wt.cols;
    for (local_b, b) in batch.enumerate() {
        let a_row = &a.data[b * cols..(b + 1) * cols];
        let y_row = &mut y_chunk[local_b * out_dim..(local_b + 1) * out_dim];
        for v in y_row.iter_mut() {
            *v = S::zero();
        }
        for (j, &xj) in a_row.iter().enumerate() {
            let wt_row = &wt.data[j * out_dim..(j + 1) * out_dim];
            for (yi, &w) in y_row.iter_mut().zip(wt_row) {
                *yi += w * xj;
            }
        }
    }
}

/// Transposed-MVM span: output rows `batch` of `Y = E·W` into `y_chunk`.
/// Four samples per pass (independent per-element chains, each still
/// accumulating in ascending `i` — bit-exact with `gemv_t` per row),
/// sharing every streamed weight row across the lanes.
fn gemv_t_batch_span<S: Scalar>(
    w: &Matrix<S>,
    e: &Matrix<S>,
    batch: Range<usize>,
    y_chunk: &mut [S],
) {
    let cols = w.cols;
    let start = batch.start;
    for v in y_chunk.iter_mut() {
        *v = S::zero();
    }
    let mut b = start;
    while b + 4 <= batch.end {
        let base = (b - start) * cols;
        for i in 0..w.rows {
            let w_row = &w.data[i * cols..(i + 1) * cols];
            let e0 = e.data[b * e.cols + i];
            let e1 = e.data[(b + 1) * e.cols + i];
            let e2 = e.data[(b + 2) * e.cols + i];
            let e3 = e.data[(b + 3) * e.cols + i];
            for (j, &w) in w_row.iter().enumerate() {
                y_chunk[base + j] += w * e0;
                y_chunk[base + cols + j] += w * e1;
                y_chunk[base + 2 * cols + j] += w * e2;
                y_chunk[base + 3 * cols + j] += w * e3;
            }
        }
        b += 4;
    }
    // Remainder rows: plain per-sample loop, same chain order.
    for b in b..batch.end {
        let e_row = &e.data[b * e.cols..(b + 1) * e.cols];
        let y_row = &mut y_chunk[(b - start) * cols..(b - start + 1) * cols];
        for (i, &ei) in e_row.iter().enumerate() {
            let w_row = &w.data[i * cols..(i + 1) * cols];
            for (yj, &w) in y_row.iter_mut().zip(w_row) {
                *yj += w * ei;
            }
        }
    }
}

/// Forward-MVM span over a cached pack: like [`gemv_batch_span`] but
/// with two samples per register tile, so every streamed `Wᵀ` row is
/// reused across the pair. Per-element chains still ascend `j` (the
/// tile's two chains are independent), so the output is bit-exact with
/// the unpacked span.
fn gemv_batch_span_packed<S: Scalar>(
    wt: &Matrix<S>,
    a: &Matrix<S>,
    batch: Range<usize>,
    y_chunk: &mut [S],
) {
    let cols = a.cols;
    let out_dim = wt.cols;
    let start = batch.start;
    for v in y_chunk.iter_mut() {
        *v = S::zero();
    }
    let mut b = start;
    while b + 2 <= batch.end {
        let base = (b - start) * out_dim;
        let (y0, y1) = y_chunk[base..base + 2 * out_dim].split_at_mut(out_dim);
        let a0 = &a.data[b * cols..(b + 1) * cols];
        let a1 = &a.data[(b + 1) * cols..(b + 2) * cols];
        for j in 0..cols {
            let wt_row = &wt.data[j * out_dim..(j + 1) * out_dim];
            let x0 = a0[j];
            let x1 = a1[j];
            for (i, &w) in wt_row.iter().enumerate() {
                y0[i] += w * x0;
                y1[i] += w * x1;
            }
        }
        b += 2;
    }
    // Remainder row: the plain single-sample nest, same chain order.
    for b in b..batch.end {
        let a_row = &a.data[b * cols..(b + 1) * cols];
        let y_row = &mut y_chunk[(b - start) * out_dim..(b - start + 1) * out_dim];
        for (j, &xj) in a_row.iter().enumerate() {
            let wt_row = &wt.data[j * out_dim..(j + 1) * out_dim];
            for (yi, &w) in y_row.iter_mut().zip(wt_row) {
                *yi += w * xj;
            }
        }
    }
}

/// Transposed-MVM span over the pack's zero-padded column panels.
///
/// One width-[`GEMV_T_PANEL`] panel of output accumulators per sample
/// stays register-resident while the matching weight panel streams past
/// with unit stride, so — unlike [`gemv_t_batch_span`], which re-loads
/// and re-stores its output rows on every reduction step — the inner
/// loop touches memory only to read. Four samples per tile share each
/// streamed panel row. The padded lanes compute garbage that is sliced
/// off at store time; the real lanes' chains still sum their products
/// in ascending `i`, the exact chain of [`gemv_t_batch_span`].
fn gemv_t_batch_span_packed<S: Scalar>(
    w_panels: &[S],
    in_dim: usize, // reduction dim (= source W rows)
    cols: usize,   // output dim per sample (= source W cols)
    e: &Matrix<S>,
    batch: Range<usize>,
    y_chunk: &mut [S],
) {
    const PW: usize = GEMV_T_PANEL;
    let panels = cols.div_ceil(PW);
    let start = batch.start;
    let mut b = start;
    while b + 4 <= batch.end {
        let base = (b - start) * cols;
        let e_rows = [
            &e.data[b * in_dim..(b + 1) * in_dim],
            &e.data[(b + 1) * in_dim..(b + 2) * in_dim],
            &e.data[(b + 2) * in_dim..(b + 3) * in_dim],
            &e.data[(b + 3) * in_dim..(b + 4) * in_dim],
        ];
        for p in 0..panels {
            let panel = &w_panels[p * in_dim * PW..(p + 1) * in_dim * PW];
            let mut acc = [[S::zero(); PW]; 4];
            for i in 0..in_dim {
                let w: &[S; PW] = panel[i * PW..i * PW + PW].try_into().unwrap();
                for (s, e_row) in e_rows.iter().enumerate() {
                    let ei = e_row[i];
                    for (t, &wt) in w.iter().enumerate() {
                        acc[s][t] += wt * ei;
                    }
                }
            }
            let j0 = p * PW;
            let width = PW.min(cols - j0);
            for (s, row) in acc.iter().enumerate() {
                y_chunk[base + s * cols + j0..base + s * cols + j0 + width]
                    .copy_from_slice(&row[..width]);
            }
        }
        b += 4;
    }
    // Remainder rows: the same panel walk, one sample at a time.
    for b in b..batch.end {
        let base = (b - start) * cols;
        let e_row = &e.data[b * in_dim..(b + 1) * in_dim];
        for p in 0..panels {
            let panel = &w_panels[p * in_dim * PW..(p + 1) * in_dim * PW];
            let mut acc = [S::zero(); PW];
            for (i, &ei) in e_row.iter().enumerate() {
                let w: &[S; PW] = panel[i * PW..i * PW + PW].try_into().unwrap();
                for (t, &wt) in w.iter().enumerate() {
                    acc[t] += wt * ei;
                }
            }
            let j0 = p * PW;
            let width = PW.min(cols - j0);
            y_chunk[base + j0..base + j0 + width].copy_from_slice(&acc[..width]);
        }
    }
}

/// Gradient-accumulation span: rows `w_rows` of `W += Σ_b E[b] ⊗ A[b]`
/// into `w_chunk`. The loop nest keeps each gradient row resident
/// (weight-row outer, four samples per tile) instead of re-streaming
/// the whole gradient matrix once per sample, but every element still
/// accumulates its batch contributions **in ascending sample order** —
/// the documented batch-reduction order (the four lanes of a tile
/// apply to each element sequentially, `b`, `b+1`, `b+2`, `b+3`).
fn add_outer_batch_span<S: Scalar>(
    e: &Matrix<S>,
    a: &Matrix<S>,
    w_rows: Range<usize>,
    w_cols: usize,
    w_chunk: &mut [S],
) {
    let batch = e.rows;
    for (local_i, i) in w_rows.enumerate() {
        let w_row = &mut w_chunk[local_i * w_cols..(local_i + 1) * w_cols];
        let mut b = 0;
        while b + 4 <= batch {
            let e0 = e.data[b * e.cols + i];
            let e1 = e.data[(b + 1) * e.cols + i];
            let e2 = e.data[(b + 2) * e.cols + i];
            let e3 = e.data[(b + 3) * e.cols + i];
            let a0 = &a.data[b * a.cols..(b + 1) * a.cols];
            let a1 = &a.data[(b + 1) * a.cols..(b + 2) * a.cols];
            let a2 = &a.data[(b + 2) * a.cols..(b + 3) * a.cols];
            let a3 = &a.data[(b + 3) * a.cols..(b + 4) * a.cols];
            for (j, w) in w_row.iter_mut().enumerate() {
                *w += e0 * a0[j];
                *w += e1 * a1[j];
                *w += e2 * a2[j];
                *w += e3 * a3[j];
            }
            b += 4;
        }
        for b in b..batch {
            let eb = e.data[b * e.cols + i];
            let a_row = &a.data[b * a.cols..(b + 1) * a.cols];
            for (w, &aj) in w_row.iter_mut().zip(a_row) {
                *w += eb * aj;
            }
        }
    }
}

/// Gather span: rows `k` of the output batch are stored rows
/// `indices[k]` of the panel's stored transpose `src` — one contiguous
/// `memcpy` per gathered column, no arithmetic at all (which is why the
/// parallel form needs no accumulation-order argument).
fn gather_columns_span<S: Scalar>(src: &Matrix<S>, indices: &[usize], out_chunk: &mut [S]) {
    let dim = src.cols;
    for (k, &j) in indices.iter().enumerate() {
        out_chunk[k * dim..(k + 1) * dim].copy_from_slice(&src.data[j * dim..(j + 1) * dim]);
    }
}

/// Matmul span: output rows `lhs_rows` of `C = lhs · rhs` into
/// `out_chunk` (pre-zeroed), ascending-`k` chains, streaming `rhs`
/// row-major. Two output rows per register tile share every streamed
/// `rhs` row (halving its memory traffic); the two per-element chains
/// are independent, each still ascending `k`.
fn matmul_span<S: Scalar>(
    lhs: &Matrix<S>,
    rhs: &Matrix<S>,
    lhs_rows: Range<usize>,
    out_chunk: &mut [S],
) {
    let n = rhs.cols;
    let start = lhs_rows.start;
    let mut i = start;
    while i + 2 <= lhs_rows.end {
        let base = (i - start) * n;
        let (out0, out1) = out_chunk[base..base + 2 * n].split_at_mut(n);
        let a0 = &lhs.data[i * lhs.cols..(i + 1) * lhs.cols];
        let a1 = &lhs.data[(i + 1) * lhs.cols..(i + 2) * lhs.cols];
        for k in 0..lhs.cols {
            let b_row = &rhs.data[k * n..(k + 1) * n];
            let x0 = a0[k];
            let x1 = a1[k];
            for (j, &bkj) in b_row.iter().enumerate() {
                out0[j] += x0 * bkj;
                out1[j] += x1 * bkj;
            }
        }
        i += 2;
    }
    // Remainder row: the plain single-row nest, same chain order.
    for i in i..lhs_rows.end {
        let a_row = &lhs.data[i * lhs.cols..(i + 1) * lhs.cols];
        let out_row = &mut out_chunk[(i - start) * n..(i - start + 1) * n];
        for (k, &aik) in a_row.iter().enumerate() {
            let b_row = &rhs.data[k * n..(k + 1) * n];
            for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                *o += aik * bkj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_fixed::{Fx32, Q16};

    fn mat2x3() -> Matrix<f64> {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn gemv_matches_hand_computation() {
        let y = mat2x3().gemv_alloc(&[1.0, 0.5, -1.0]).unwrap();
        assert_eq!(y, vec![1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
    }

    #[test]
    fn gemv_t_matches_transposed_gemv() {
        let w = mat2x3();
        let e = [2.0, -1.0];
        let direct = w.gemv_t_alloc(&e).unwrap();
        let via_copy = w.transposed().gemv_alloc(&e).unwrap();
        assert_eq!(direct, via_copy);
    }

    #[test]
    fn gemv_rejects_bad_shapes() {
        let w = mat2x3();
        assert!(w.gemv_alloc(&[1.0, 2.0]).is_err());
        let mut y = vec![0.0; 3];
        assert!(w.gemv(&[1.0, 2.0, 3.0], &mut y).is_err());
        assert!(w.gemv_t_alloc(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn add_outer_accumulates_gradient() {
        let mut g = Matrix::<f64>::zeros(2, 3);
        g.add_outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]).unwrap();
        g.add_outer(&[1.0, 0.0], &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(g.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(g.row(1), &[6.0, 8.0, 10.0]);
    }

    #[test]
    fn add_scaled_and_fill_zero() {
        let mut a = Matrix::<f64>::zeros(2, 2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        a.add_scaled(&b, 0.5).unwrap();
        assert_eq!(a[(1, 1)], 2.0);
        a.fill_zero();
        assert_eq!(a.max_abs(), 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let rows: &[&[f64]] = &[&[1.0, 2.0], &[3.0]];
        assert!(Matrix::from_rows(rows).is_err());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![0.0f64; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0f64; 4]).is_ok());
    }

    #[test]
    fn fixed_point_gemv_tracks_float_reference() {
        let wf = Matrix::<f64>::from_fn(8, 8, |r, c| ((r * 13 + c * 7) % 11) as f64 * 0.1 - 0.5);
        let xf: Vec<f64> = (0..8).map(|i| i as f64 * 0.25 - 1.0).collect();
        let yf = wf.gemv_alloc(&xf).unwrap();

        let wq: Matrix<Fx32> = wf.cast();
        let xq: Vec<Fx32> = xf.iter().map(|&v| Fx32::from_f64(v)).collect();
        let yq = wq.gemv_alloc(&xq).unwrap();
        for (a, b) in yf.iter().zip(&yq) {
            assert!((a - b.to_f64()).abs() < 1e-4);
        }
    }

    #[test]
    fn saturating_accumulation_clamps_not_wraps() {
        // 8 products of 30*1 in Q6.10 saturate at 32 instead of wrapping.
        type Q = Q16<10>;
        let w = Matrix::<Q>::from_fn(1, 8, |_, _| Q::from_f64(30.0));
        let x = vec![Q::from_f64(1.0); 8];
        let y = w.gemv_alloc(&x).unwrap();
        assert_eq!(y[0], Q::MAX);
    }

    #[test]
    fn index_panics_out_of_bounds() {
        let w = mat2x3();
        let result = std::panic::catch_unwind(|| w[(5, 0)]);
        assert!(result.is_err());
    }

    #[test]
    fn cast_roundtrip_preserves_values_within_resolution() {
        let wf = Matrix::<f64>::from_fn(3, 3, |r, c| (r as f64 - c as f64) * 0.3);
        let back: Matrix<f64> = wf.cast::<Fx32>().cast();
        for (a, b) in wf.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn shape_error_message_is_descriptive() {
        let err = mat2x3().gemv_alloc(&[1.0]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("gemv input"));
        assert!(msg.contains("3"));
    }

    /// Pseudo-random Fx32 batch/weight pair for bit-exactness checks.
    fn fx32_case(rows: usize, cols: usize, batch: usize) -> (Matrix<Fx32>, Matrix<Fx32>) {
        let w = Matrix::<f64>::from_fn(rows, cols, |r, c| {
            (((r * 31 + c * 17) % 23) as f64 - 11.0) * 0.13
        })
        .cast::<Fx32>();
        let a = Matrix::<f64>::from_fn(batch, cols, |b, c| {
            (((b * 7 + c * 13) % 19) as f64 - 9.0) * 0.21
        })
        .cast::<Fx32>();
        (w, a)
    }

    #[test]
    fn gemv_batch_bit_exact_with_per_row_gemv() {
        let (w, a) = fx32_case(5, 7, 6);
        let y = w.gemv_batch_alloc(&a).unwrap();
        for b in 0..a.rows() {
            assert_eq!(y.row(b), w.gemv_alloc(a.row(b)).unwrap().as_slice());
        }
    }

    #[test]
    fn packed_kernels_bit_exact_with_unpacked() {
        // Odd shapes and batches around the tile sizes (2 for forward,
        // 4 for transposed) so every remainder path runs.
        for &(rows, cols, batch) in &[(5, 7, 1), (5, 7, 2), (5, 7, 3), (6, 4, 4), (3, 9, 7)] {
            let (w, a) = fx32_case(rows, cols, batch);
            let pack = w.pack();
            assert_eq!(pack.shape(), w.shape());

            let fwd = w.gemv_batch_alloc(&a).unwrap();
            let mut fwd_p = Matrix::zeros(batch, rows);
            pack.gemv_batch(&a, &mut fwd_p).unwrap();
            assert_eq!(fwd, fwd_p);

            let e = Matrix::<f64>::from_fn(batch, rows, |b, r| {
                (((b * 5 + r * 11) % 17) as f64 - 8.0) * 0.17
            })
            .cast::<Fx32>();
            let bwd = w.gemv_t_batch_alloc(&e).unwrap();
            let mut bwd_p = Matrix::zeros(batch, cols);
            pack.gemv_t_batch(&e, &mut bwd_p).unwrap();
            assert_eq!(bwd, bwd_p);

            for workers in [1usize, 2, 3, 8] {
                let par = Parallelism::with_workers(workers);
                let mut yp = Matrix::zeros(batch, rows);
                pack.gemv_batch_par(&a, &mut yp, &par).unwrap();
                assert_eq!(fwd, yp);
                let mut tp = Matrix::zeros(batch, cols);
                pack.gemv_t_batch_par(&e, &mut tp, &par).unwrap();
                assert_eq!(bwd, tp);
            }
        }
    }

    #[test]
    fn packed_kernels_saturate_like_unpacked() {
        // Near-rail Q16 values so the saturating adds actually clamp:
        // the packed tiles must replay the exact per-element chains.
        type Q = Q16<10>;
        let w = Matrix::<f64>::from_fn(6, 5, |r, c| if (r + c) % 2 == 0 { 31.0 } else { -31.0 })
            .cast::<Q>();
        let a = Matrix::<f64>::from_fn(7, 5, |b, c| if (b + c) % 3 == 0 { 31.0 } else { 30.0 })
            .cast::<Q>();
        let e = Matrix::<f64>::from_fn(7, 6, |b, r| if (b * r) % 2 == 0 { -31.0 } else { 31.0 })
            .cast::<Q>();
        let pack = w.pack();
        let fwd = w.gemv_batch_alloc(&a).unwrap();
        let mut fwd_p = Matrix::zeros(7, 6);
        pack.gemv_batch(&a, &mut fwd_p).unwrap();
        assert_eq!(fwd, fwd_p);
        let bwd = w.gemv_t_batch_alloc(&e).unwrap();
        let mut bwd_p = Matrix::zeros(7, 5);
        pack.gemv_t_batch(&e, &mut bwd_p).unwrap();
        assert_eq!(bwd, bwd_p);
    }

    #[test]
    fn packed_kernels_reject_bad_shapes() {
        let (w, a) = fx32_case(5, 7, 4);
        let pack = w.pack();
        let mut bad_out = Matrix::zeros(4, 6);
        assert!(pack.gemv_batch(&a, &mut bad_out).is_err());
        let bad_in = Matrix::<Fx32>::zeros(4, 6);
        let mut y = Matrix::zeros(4, 5);
        assert!(pack.gemv_batch(&bad_in, &mut y).is_err());
        let mut bad_t = Matrix::zeros(4, 6);
        let e = Matrix::<Fx32>::zeros(4, 5);
        assert!(pack.gemv_t_batch(&e, &mut bad_t).is_err());
        let bad_e = Matrix::<Fx32>::zeros(4, 6);
        let mut t = Matrix::zeros(4, 7);
        assert!(pack.gemv_t_batch(&bad_e, &mut t).is_err());
    }

    #[test]
    fn gemv_t_batch_bit_exact_with_per_row_gemv_t() {
        let (w, _) = fx32_case(5, 7, 6);
        let e = Matrix::<f64>::from_fn(6, 5, |b, i| ((b * 5 + i) % 11) as f64 * 0.3 - 1.5)
            .cast::<Fx32>();
        let y = w.gemv_t_batch_alloc(&e).unwrap();
        for b in 0..e.rows() {
            assert_eq!(y.row(b), w.gemv_t_alloc(e.row(b)).unwrap().as_slice());
        }
    }

    #[test]
    fn add_outer_batch_bit_exact_with_sample_order_loop() {
        let (w, a) = fx32_case(5, 7, 6);
        let e = Matrix::<f64>::from_fn(6, 5, |b, i| ((b * 3 + i) % 13) as f64 * 0.17 - 1.0)
            .cast::<Fx32>();
        let mut batched = Matrix::<Fx32>::zeros(w.rows(), w.cols());
        batched.add_outer_batch(&e, &a).unwrap();
        let mut looped = Matrix::<Fx32>::zeros(w.rows(), w.cols());
        for b in 0..e.rows() {
            looped.add_outer(e.row(b), a.row(b)).unwrap();
        }
        assert_eq!(batched, looped);
    }

    #[test]
    fn gemv_batch_is_matmul_against_transpose() {
        // The documented identity: W.gemv_batch(A) == A · Wᵀ, bit-exact
        // in fixed point.
        let (w, a) = fx32_case(4, 6, 5);
        let via_batch = w.gemv_batch_alloc(&a).unwrap();
        let via_matmul = a.matmul(&w.transposed()).unwrap();
        assert_eq!(via_batch, via_matmul);
    }

    #[test]
    fn matmul_matches_float_reference() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::<f64>::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
        assert!(a.matmul(&Matrix::<f64>::zeros(3, 2)).is_err());
    }

    #[test]
    fn batched_kernels_saturate_like_per_sample() {
        // Saturating accumulation must clamp identically on both paths.
        type Q = Q16<10>;
        let w = Matrix::<Q>::from_fn(1, 8, |_, _| Q::from_f64(30.0));
        let a = Matrix::<Q>::from_fn(3, 8, |_, _| Q::from_f64(1.0));
        let y = w.gemv_batch_alloc(&a).unwrap();
        for b in 0..3 {
            assert_eq!(y[(b, 0)], Q::MAX);
        }
    }

    #[test]
    fn add_row_broadcast_and_hcat_and_columns() {
        let mut z = Matrix::<f64>::zeros(2, 3);
        z.add_row_broadcast(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(z.row(1), &[1.0, 2.0, 3.0]);
        assert!(z.add_row_broadcast(&[1.0]).is_err());

        let s = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let a = Matrix::<f64>::from_rows(&[&[5.0], &[6.0]]).unwrap();
        let cat = s.hcat(&a).unwrap();
        assert_eq!(cat.row(0), &[1.0, 2.0, 5.0]);
        assert_eq!(cat.row(1), &[3.0, 4.0, 6.0]);
        assert!(s.hcat(&Matrix::<f64>::zeros(3, 1)).is_err());

        let right = cat.columns(2, 3);
        assert_eq!(right.shape(), (2, 1));
        assert_eq!(right[(1, 0)], 6.0);
    }

    #[test]
    fn from_row_fn_builds_batches_and_validates() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let m = Matrix::<f64>::from_row_fn(&rows, 2, |r| r.as_slice()).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert!(Matrix::<f64>::from_row_fn(&rows, 3, |r| r.as_slice()).is_err());
    }

    #[test]
    fn batched_shape_errors() {
        let (w, a) = fx32_case(4, 6, 5);
        let bad = Matrix::<Fx32>::zeros(5, 4);
        assert!(w.gemv_batch_alloc(&bad).is_err());
        let mut y = Matrix::<Fx32>::zeros(4, 4);
        assert!(w.gemv_batch(&a, &mut y).is_err());
        assert!(w.gemv_t_batch_alloc(&a).is_err());
        let mut g = Matrix::<Fx32>::zeros(4, 6);
        let e = Matrix::<Fx32>::zeros(3, 4);
        assert!(g.add_outer_batch(&e, &a).is_err());
    }

    #[test]
    fn parallel_kernels_bit_exact_with_sequential_across_worker_counts() {
        // The tentpole contract at the kernel level: every pool-parallel
        // kernel equals its sequential form bit-for-bit in saturating
        // Fx32, for worker counts spanning under- and over-subscription
        // of the batch and awkward shard remainders.
        let (w, a) = fx32_case(7, 9, 13);
        let e = Matrix::<f64>::from_fn(13, 7, |b, i| ((b * 5 + i * 3) % 17) as f64 * 0.23 - 1.8)
            .cast::<Fx32>();
        let y_seq = w.gemv_batch_alloc(&a).unwrap();
        let yt_seq = w.gemv_t_batch_alloc(&e).unwrap();
        let mut g_seq = Matrix::<Fx32>::zeros(7, 9);
        g_seq.add_outer_batch(&e, &a).unwrap();
        let m_seq = a.matmul(&w.transposed()).unwrap();

        for workers in [1, 2, 3, 4, 8, 16] {
            let par = Parallelism::with_workers(workers);
            assert_eq!(w.gemv_batch_par_alloc(&a, &par).unwrap(), y_seq);
            assert_eq!(w.gemv_t_batch_par_alloc(&e, &par).unwrap(), yt_seq);
            let mut g = Matrix::<Fx32>::zeros(7, 9);
            g.add_outer_batch_par(&e, &a, &par).unwrap();
            assert_eq!(g, g_seq);
            assert_eq!(a.matmul_par(&w.transposed(), &par).unwrap(), m_seq);
        }
    }

    #[test]
    fn parallel_kernels_saturate_like_sequential() {
        // Saturating accumulation must clamp identically on the sharded
        // path: the per-element chains are shared code, so a mid-chain
        // clamp lands at the same partial sum.
        type Q = Q16<10>;
        let w = Matrix::<Q>::from_fn(3, 8, |_, _| Q::from_f64(30.0));
        let a = Matrix::<Q>::from_fn(9, 8, |_, _| Q::from_f64(1.0));
        let par = Parallelism::with_workers(4);
        let seq = w.gemv_batch_alloc(&a).unwrap();
        let parr = w.gemv_batch_par_alloc(&a, &par).unwrap();
        assert_eq!(seq, parr);
        assert_eq!(parr[(8, 2)], Q::MAX);

        // Gradient saturation, W-row sharded.
        let e = Matrix::<Q>::from_fn(9, 3, |_, _| Q::from_f64(30.0));
        let mut g_seq = Matrix::<Q>::zeros(3, 8);
        g_seq.add_outer_batch(&e, &a).unwrap();
        let mut g_par = Matrix::<Q>::zeros(3, 8);
        g_par.add_outer_batch_par(&e, &a, &par).unwrap();
        assert_eq!(g_seq, g_par);
    }

    #[test]
    fn gather_columns_picks_stored_rows_with_replacement() {
        let panel = Matrix::<f64>::from_fn(5, 3, |r, c| (r * 10 + c) as f64);
        let batch = panel.gather_columns(&[4, 0, 4, 2]).unwrap();
        assert_eq!(batch.shape(), (4, 3));
        assert_eq!(batch.row(0), panel.row(4));
        assert_eq!(batch.row(1), panel.row(0));
        assert_eq!(batch.row(2), panel.row(4));
        assert_eq!(batch.row(3), panel.row(2));
        // Empty gather: a 0-row batch with the panel's width.
        assert_eq!(panel.gather_columns(&[]).unwrap().shape(), (0, 3));
    }

    #[test]
    fn gather_columns_rejects_out_of_range_indices() {
        let panel = Matrix::<Fx32>::zeros(4, 2);
        let err = panel.gather_columns(&[1, 4]).unwrap_err();
        assert!(err.to_string().contains("gather_columns index"));
        let par = Parallelism::with_workers(2);
        assert!(panel.gather_columns_par(&[0, 9], &par).is_err());
    }

    #[test]
    fn gather_columns_par_bit_exact_across_worker_counts() {
        // Same contract as the MVM kernels: disjoint output shards,
        // bit-identical at every worker count (trivially here — gathers
        // are pure copies — but the shard plumbing is what's under
        // test, including remainders and over-subscription).
        let panel =
            Matrix::<f64>::from_fn(17, 5, |r, c| (r as f64 - c as f64) * 0.31).cast::<Fx32>();
        let indices: Vec<usize> = (0..13).map(|k| (k * 7 + 3) % 17).collect();
        let seq = panel.gather_columns(&indices).unwrap();
        for workers in [1, 2, 3, 4, 8, 16] {
            let par = Parallelism::with_workers(workers);
            assert_eq!(
                panel.gather_columns_par(&indices, &par).unwrap(),
                seq,
                "workers {workers}"
            );
        }
    }

    #[test]
    fn fused_scope_kernels_bit_exact_with_sequential_across_worker_counts() {
        // The tentpole contract at the tensor level: all five `_par_in`
        // kernels fused into ONE scope (single join) produce exactly
        // the bytes of their sequential forms, in saturating Fx32, at
        // every worker count including over-subscription.
        let (w, a) = fx32_case(7, 9, 13);
        let e = Matrix::<f64>::from_fn(13, 7, |b, i| ((b * 5 + i * 3) % 17) as f64 * 0.23 - 1.8)
            .cast::<Fx32>();
        let panel =
            Matrix::<f64>::from_fn(17, 5, |r, c| (r as f64 - c as f64) * 0.31).cast::<Fx32>();
        let indices: Vec<usize> = (0..13).map(|k| (k * 7 + 3) % 17).collect();

        let y_seq = w.gemv_batch_alloc(&a).unwrap();
        let yt_seq = w.gemv_t_batch_alloc(&e).unwrap();
        let mut g_seq = Matrix::<Fx32>::zeros(7, 9);
        g_seq.add_outer_batch(&e, &a).unwrap();
        let m_seq = a.matmul(&w.transposed()).unwrap();
        let gather_seq = panel.gather_columns(&indices).unwrap();

        for workers in [1usize, 2, 3, 8] {
            let par = Parallelism::with_workers(workers);
            let mut y = Matrix::<Fx32>::zeros(13, 7);
            let mut yt = Matrix::<Fx32>::zeros(13, 9);
            let mut g = Matrix::<Fx32>::zeros(7, 9);
            let mut m = Matrix::<Fx32>::zeros(13, 7);
            let mut gathered = Matrix::<Fx32>::zeros(13, 5);
            let wt = w.transposed();
            par.fused(|ks| -> Result<(), ShapeError> {
                w.gemv_batch_par_in(&a, &mut y, ks)?;
                w.gemv_t_batch_par_in(&e, &mut yt, ks)?;
                g.add_outer_batch_par_in(&e, &a, ks)?;
                a.matmul_par_in(&wt, &mut m, ks)?;
                panel.gather_columns_par_in(&indices, &mut gathered, ks)?;
                Ok(())
            })
            .unwrap()
            .unwrap();
            assert_eq!(y, y_seq, "workers {workers}: gemv_batch");
            assert_eq!(yt, yt_seq, "workers {workers}: gemv_t_batch");
            assert_eq!(g, g_seq, "workers {workers}: add_outer_batch");
            assert_eq!(m, m_seq, "workers {workers}: matmul");
            assert_eq!(gathered, gather_seq, "workers {workers}: gather");
        }
    }

    #[test]
    fn fused_scope_kernels_degrade_on_pool_threads() {
        // A `_par_in` kernel invoked from inside a pool task must run
        // its sequential form inline instead of deadlocking on a
        // nested scope — the satellite's degradation contract.
        let (w, a) = fx32_case(5, 7, 6);
        let y_seq = w.gemv_batch_alloc(&a).unwrap();
        let par = Parallelism::with_workers(2);
        let mut y = Matrix::<Fx32>::zeros(6, 5);
        par.fused(|outer| {
            let par = &par;
            let w = &w;
            let a = &a;
            let y = &mut y;
            outer.submit(move || {
                // On a pool thread: the nested fused scope is the
                // sequential degradation, submissions run inline.
                par.fused(|ks| {
                    assert!(!ks.is_pooled());
                    w.gemv_batch_par_in(a, y, ks).unwrap();
                })
                .unwrap();
            });
        })
        .unwrap();
        assert_eq!(y, y_seq);
    }

    #[test]
    fn fused_scope_kernels_validate_shapes_before_enqueueing() {
        // Operands live outside the scope (the `'scope` bound requires
        // it); every malformed call errors on the calling thread before
        // anything enqueues.
        let (w, a) = fx32_case(4, 6, 5);
        let par = Parallelism::with_workers(2);
        let bad = Matrix::<Fx32>::zeros(5, 4);
        let mut y1 = Matrix::<Fx32>::zeros(5, 4);
        let mut y2 = Matrix::<Fx32>::zeros(5, 4);
        let mut g = Matrix::<Fx32>::zeros(4, 6);
        let e3 = Matrix::<Fx32>::zeros(3, 4);
        let wt = w.transposed();
        let mut wrong_out = Matrix::<Fx32>::zeros(2, 2);
        let mut small = Matrix::<Fx32>::zeros(1, 6);
        par.fused(|ks| {
            assert!(w.gemv_batch_par_in(&bad, &mut y1, ks).is_err());
            assert!(w.gemv_t_batch_par_in(&a, &mut y2, ks).is_err());
            assert!(g.add_outer_batch_par_in(&e3, &a, ks).is_err());
            // matmul_par_in also validates the out shape.
            assert!(a.matmul_par_in(&wt, &mut wrong_out, ks).is_err());
            assert!(w.gather_columns_par_in(&[0, 1], &mut small, ks).is_err());
        })
        .unwrap();
    }

    #[test]
    fn gather_columns_into_reuses_storage_and_matches_alloc_form() {
        let panel = Matrix::<f64>::from_fn(11, 4, |r, c| (r * 4 + c) as f64).cast::<Fx32>();
        let idx_a: Vec<usize> = (0..9).map(|k| (k * 3 + 1) % 11).collect();
        let idx_b: Vec<usize> = (0..6).map(|k| (k * 5) % 11).collect();
        let mut out = Matrix::<Fx32>::zeros(0, 0);
        panel.gather_columns_into(&idx_a, &mut out).unwrap();
        assert_eq!(out, panel.gather_columns(&idx_a).unwrap());
        let ptr = out.as_slice().as_ptr();
        // Smaller gather into the same scratch: no reallocation.
        panel.gather_columns_into(&idx_b, &mut out).unwrap();
        assert_eq!(out, panel.gather_columns(&idx_b).unwrap());
        assert_eq!(out.as_slice().as_ptr(), ptr, "scratch must be reused");
        // Pool-parallel into-form agrees at every worker count.
        for workers in [1usize, 2, 8] {
            let par = Parallelism::with_workers(workers);
            panel
                .gather_columns_par_into(&idx_a, &par, &mut out)
                .unwrap();
            assert_eq!(out, panel.gather_columns(&idx_a).unwrap());
        }
        assert!(panel.gather_columns_into(&[99], &mut out).is_err());
    }

    #[test]
    fn reset_shape_and_row_range() {
        let mut m = Matrix::<f64>::from_fn(3, 4, |r, c| (r * 4 + c) as f64);
        let mid = m.row_range(1, 3);
        assert_eq!(mid.shape(), (2, 4));
        assert_eq!(mid.row(0), m.row(1));
        assert_eq!(mid.row(1), m.row(2));
        assert_eq!(m.row_range(2, 2).shape(), (0, 4));

        m.reset_shape(2, 3);
        assert_eq!(m.shape(), (2, 3));
        let ptr = m.as_slice().as_ptr();
        m.reset_shape(1, 2);
        assert_eq!(m.as_slice().as_ptr(), ptr, "shrinking reuses storage");
        // Growth past the original capacity zero-fills the new tail.
        let mut fresh = Matrix::<f64>::zeros(0, 0);
        fresh.reset_shape(2, 2);
        assert_eq!(fresh.max_abs(), 0.0);
    }

    #[test]
    fn parallel_kernels_validate_shapes_and_handle_degenerate_batches() {
        let (w, a) = fx32_case(4, 6, 5);
        let par = Parallelism::with_workers(2);
        let bad = Matrix::<Fx32>::zeros(5, 4);
        assert!(w.gemv_batch_par_alloc(&bad, &par).is_err());
        assert!(w.gemv_t_batch_par_alloc(&a, &par).is_err());
        let mut g = Matrix::<Fx32>::zeros(4, 6);
        let e3 = Matrix::<Fx32>::zeros(3, 4);
        assert!(g.add_outer_batch_par(&e3, &a, &par).is_err());
        assert!(w.matmul_par(&Matrix::<Fx32>::zeros(3, 2), &par).is_err());

        // Single-row batch degrades to the sequential kernel.
        let one = Matrix::<Fx32>::zeros(1, 6);
        let y = w.gemv_batch_par_alloc(&one, &par).unwrap();
        assert_eq!(y, w.gemv_batch_alloc(&one).unwrap());

        // Empty batch is a no-op on both paths.
        let empty = Matrix::<Fx32>::zeros(0, 6);
        assert_eq!(
            w.gemv_batch_par_alloc(&empty, &par).unwrap().shape(),
            (0, 4)
        );
    }
}
