//! Row-major dense matrix with hardware-order kernels.

use core::fmt;
use core::ops::{Index, IndexMut};
use std::error::Error;

use fixar_fixed::Scalar;

/// Error returned when operand shapes do not line up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    what: &'static str,
    expected: (usize, usize),
    got: (usize, usize),
}

impl ShapeError {
    /// Creates a shape error; `expected`/`got` are `(rows, cols)` pairs
    /// (use `1` for the free dimension of a vector).
    pub fn new(what: &'static str, expected: (usize, usize), got: (usize, usize)) -> Self {
        Self {
            what,
            expected,
            got,
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: expected {}x{}, got {}x{}",
            self.what, self.expected.0, self.expected.1, self.got.0, self.got.1
        )
    }
}

impl Error for ShapeError {}

/// Row-major dense matrix over any FIXAR scalar.
///
/// The weight matrices of the FIXAR actor/critic are stored row by row in
/// the on-chip weight memory (16 weights per 512-bit word); this type is
/// the software image of that storage. See the crate docs for the
/// accumulation-order contract of the multiply kernels.
///
/// # Example
///
/// ```
/// use fixar_tensor::Matrix;
///
/// let w = Matrix::<f32>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let y = w.gemv_alloc(&[1.0, 1.0])?;
/// assert_eq!(y, vec![3.0, 7.0]);
/// # Ok::<(), fixar_tensor::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<S> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> Matrix<S> {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![S::zero(); rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[S]]) -> Result<Self, ShapeError> {
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(ShapeError::new("from_rows", (i, ncols), (i, row.len())));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols: ncols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for a 0-element matrix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[S] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [S] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Flat mutable row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Matrix-vector product `y = W·x` in hardware column order.
    ///
    /// Column-wise decomposition: for each column `j`, the broadcast input
    /// element `x[j]` multiplies the whole column, and the partial-sum
    /// vector is accumulated into `y` — the order the AAP core produces.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `x.len() == cols && y.len() == rows`.
    pub fn gemv(&self, x: &[S], y: &mut [S]) -> Result<(), ShapeError> {
        if x.len() != self.cols {
            return Err(ShapeError::new("gemv input", (self.cols, 1), (x.len(), 1)));
        }
        if y.len() != self.rows {
            return Err(ShapeError::new("gemv output", (self.rows, 1), (y.len(), 1)));
        }
        for v in y.iter_mut() {
            *v = S::zero();
        }
        for (j, &xj) in x.iter().enumerate() {
            // One broadcast step: x[j] enters every PE row mapped to col j.
            for i in 0..self.rows {
                let prod = self.data[i * self.cols + j] * xj;
                y[i] = y[i] + prod;
            }
        }
        Ok(())
    }

    /// Allocating variant of [`Matrix::gemv`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `x.len() == cols`.
    pub fn gemv_alloc(&self, x: &[S]) -> Result<Vec<S>, ShapeError> {
        let mut y = vec![S::zero(); self.rows];
        self.gemv(x, &mut y)?;
        Ok(y)
    }

    /// Transposed matrix-vector product `y = Wᵀ·e` in hardware column
    /// order (used by back-propagation; the accelerator feeds rows of `W`
    /// to PE rows instead of columns, solving the transpose for free).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `e.len() == rows && y.len() == cols`.
    pub fn gemv_t(&self, e: &[S], y: &mut [S]) -> Result<(), ShapeError> {
        if e.len() != self.rows {
            return Err(ShapeError::new("gemv_t input", (self.rows, 1), (e.len(), 1)));
        }
        if y.len() != self.cols {
            return Err(ShapeError::new(
                "gemv_t output",
                (self.cols, 1),
                (y.len(), 1),
            ));
        }
        for v in y.iter_mut() {
            *v = S::zero();
        }
        // For Wᵀ the "columns" of the decomposition are the rows of W:
        // broadcast e[i] across row i and accumulate down the outputs.
        for (i, &ei) in e.iter().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (j, &w) in row.iter().enumerate() {
                y[j] = y[j] + w * ei;
            }
        }
        Ok(())
    }

    /// Allocating variant of [`Matrix::gemv_t`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `e.len() == rows`.
    pub fn gemv_t_alloc(&self, e: &[S]) -> Result<Vec<S>, ShapeError> {
        let mut y = vec![S::zero(); self.cols];
        self.gemv_t(e, &mut y)?;
        Ok(y)
    }

    /// Rank-1 update `W += e ⊗ a` (gradient accumulation:
    /// `dW[i][j] += e[i]·a[j]`).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `e.len() == rows && a.len() == cols`.
    pub fn add_outer(&mut self, e: &[S], a: &[S]) -> Result<(), ShapeError> {
        if e.len() != self.rows {
            return Err(ShapeError::new(
                "add_outer rows",
                (self.rows, 1),
                (e.len(), 1),
            ));
        }
        if a.len() != self.cols {
            return Err(ShapeError::new(
                "add_outer cols",
                (self.cols, 1),
                (a.len(), 1),
            ));
        }
        for (i, &ei) in e.iter().enumerate() {
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (j, &aj) in a.iter().enumerate() {
                row[j] = row[j] + ei * aj;
            }
        }
        Ok(())
    }

    /// Elementwise `self += other * scale`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix<S>, scale: S) -> Result<(), ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new("add_scaled", self.shape(), other.shape()));
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = *a + b * scale;
        }
        Ok(())
    }

    /// Sets every element to zero (gradient reset between batches).
    pub fn fill_zero(&mut self) {
        for v in &mut self.data {
            *v = S::zero();
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(S) -> S) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns the transposed matrix (a data copy; the accelerator never
    /// materializes this — it redistributes reads instead).
    pub fn transposed(&self) -> Matrix<S> {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.data[c * self.cols + r])
    }

    /// Converts every element to another scalar backend through `f64`.
    pub fn cast<T: Scalar>(&self) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| T::from_f64(v.to_f64())).collect(),
        }
    }

    /// Largest absolute element, as `f64` (diagnostics).
    pub fn max_abs(&self) -> f64 {
        self.data
            .iter()
            .map(|v| v.to_f64().abs())
            .fold(0.0, f64::max)
    }
}

impl<S: Scalar> Index<(usize, usize)> for Matrix<S> {
    type Output = S;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &S {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl<S: Scalar> IndexMut<(usize, usize)> for Matrix<S> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut S {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_fixed::{Fx32, Q16};

    fn mat2x3() -> Matrix<f64> {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn gemv_matches_hand_computation() {
        let y = mat2x3().gemv_alloc(&[1.0, 0.5, -1.0]).unwrap();
        assert_eq!(y, vec![1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
    }

    #[test]
    fn gemv_t_matches_transposed_gemv() {
        let w = mat2x3();
        let e = [2.0, -1.0];
        let direct = w.gemv_t_alloc(&e).unwrap();
        let via_copy = w.transposed().gemv_alloc(&e).unwrap();
        assert_eq!(direct, via_copy);
    }

    #[test]
    fn gemv_rejects_bad_shapes() {
        let w = mat2x3();
        assert!(w.gemv_alloc(&[1.0, 2.0]).is_err());
        let mut y = vec![0.0; 3];
        assert!(w.gemv(&[1.0, 2.0, 3.0], &mut y).is_err());
        assert!(w.gemv_t_alloc(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn add_outer_accumulates_gradient() {
        let mut g = Matrix::<f64>::zeros(2, 3);
        g.add_outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]).unwrap();
        g.add_outer(&[1.0, 0.0], &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(g.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(g.row(1), &[6.0, 8.0, 10.0]);
    }

    #[test]
    fn add_scaled_and_fill_zero() {
        let mut a = Matrix::<f64>::zeros(2, 2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        a.add_scaled(&b, 0.5).unwrap();
        assert_eq!(a[(1, 1)], 2.0);
        a.fill_zero();
        assert_eq!(a.max_abs(), 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let rows: &[&[f64]] = &[&[1.0, 2.0], &[3.0]];
        assert!(Matrix::from_rows(rows).is_err());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![0.0f64; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0f64; 4]).is_ok());
    }

    #[test]
    fn fixed_point_gemv_tracks_float_reference() {
        let wf = Matrix::<f64>::from_fn(8, 8, |r, c| ((r * 13 + c * 7) % 11) as f64 * 0.1 - 0.5);
        let xf: Vec<f64> = (0..8).map(|i| i as f64 * 0.25 - 1.0).collect();
        let yf = wf.gemv_alloc(&xf).unwrap();

        let wq: Matrix<Fx32> = wf.cast();
        let xq: Vec<Fx32> = xf.iter().map(|&v| Fx32::from_f64(v)).collect();
        let yq = wq.gemv_alloc(&xq).unwrap();
        for (a, b) in yf.iter().zip(&yq) {
            assert!((a - b.to_f64()).abs() < 1e-4);
        }
    }

    #[test]
    fn saturating_accumulation_clamps_not_wraps() {
        // 8 products of 30*1 in Q6.10 saturate at 32 instead of wrapping.
        type Q = Q16<10>;
        let w = Matrix::<Q>::from_fn(1, 8, |_, _| Q::from_f64(30.0));
        let x = vec![Q::from_f64(1.0); 8];
        let y = w.gemv_alloc(&x).unwrap();
        assert_eq!(y[0], Q::MAX);
    }

    #[test]
    fn index_panics_out_of_bounds() {
        let w = mat2x3();
        let result = std::panic::catch_unwind(|| w[(5, 0)]);
        assert!(result.is_err());
    }

    #[test]
    fn cast_roundtrip_preserves_values_within_resolution() {
        let wf = Matrix::<f64>::from_fn(3, 3, |r, c| (r as f64 - c as f64) * 0.3);
        let back: Matrix<f64> = wf.cast::<Fx32>().cast();
        for (a, b) in wf.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn shape_error_message_is_descriptive() {
        let err = mat2x3().gemv_alloc(&[1.0]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("gemv input"));
        assert!(msg.contains("3"));
    }
}
