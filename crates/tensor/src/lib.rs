//! Dense matrix/vector kernels generic over the FIXAR [`Scalar`] trait.
//!
//! This crate provides exactly the kernel set the FIXAR accelerator
//! implements in hardware: matrix-vector multiplication by **column-wise
//! matrix decomposition** (Fig. 4 of the paper), the transposed variant
//! used in back-propagation, and outer-product gradient accumulation.
//!
//! # Accumulation-order contract
//!
//! Saturating fixed-point addition is not associative, so the *order* of a
//! dot-product reduction is part of its semantics. Every kernel here
//! accumulates in **column order** — for each matrix column `j` (one
//! broadcast activation element), partial products are added into the
//! output vector — because that is the order the adaptive array processing
//! core produces them. The accelerator model in `fixar-accel` replays the
//! same order, which is what makes the cycle-level model bit-exact against
//! this reference. Each product is rounded to the scalar format before
//! accumulation (the PE output register), and accumulation saturates (the
//! accumulator clamp).
//!
//! [`Scalar`]: fixar_fixed::Scalar

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
pub mod vector;

pub use matrix::{Matrix, ShapeError};
