//! Dense matrix/vector kernels generic over the FIXAR [`Scalar`] trait.
//!
//! This crate provides exactly the kernel set the FIXAR accelerator
//! implements in hardware: matrix-vector multiplication by **column-wise
//! matrix decomposition** (Fig. 4 of the paper), the transposed variant
//! used in back-propagation, and outer-product gradient accumulation —
//! plus their **batched matrix-matrix forms** ([`Matrix::gemv_batch`],
//! [`Matrix::gemv_t_batch`], [`Matrix::add_outer_batch`],
//! [`Matrix::matmul`]) that move a whole minibatch through a layer as one
//! operand, the software image of the accelerator's intra-batch
//! parallelism.
//!
//! # Accumulation-order contract
//!
//! Saturating fixed-point addition is not associative, so the *order* of a
//! dot-product reduction is part of its semantics. Every kernel here
//! accumulates in **column order** — for each matrix column `j` (one
//! broadcast activation element), partial products are added into the
//! output vector — because that is the order the adaptive array processing
//! core produces them. The accelerator model in `fixar-accel` replays the
//! same order, which is what makes the cycle-level model bit-exact against
//! this reference. Each product is rounded to the scalar format before
//! accumulation (the PE output register), and accumulation saturates (the
//! accumulator clamp).
//!
//! The batched kernels extend the contract to minibatches: a batch is one
//! row-major matrix with **one sample per row**, every output element
//! keeps the exact per-element reduction order of its per-sample kernel
//! (ascending `j` for forward, ascending `i` for the transpose), and
//! batch-level reductions (gradient accumulation across samples) run in
//! **ascending sample order**. Batched results are therefore bit-exact
//! with running the per-sample kernel row by row — only the loop nest
//! (and the throughput) differs.
//!
//! The pool-parallel kernels (`*_par`, backed by the persistent
//! [`fixar_pool::WorkerPool`]) extend it once more: work shards into
//! **disjoint output regions** — batch rows for the forward/transposed
//! MVMs and `matmul`, *weight rows* for `add_outer_batch` (whose
//! reduction runs across the batch) — and every shard executes the very
//! same span loop nest as the sequential kernel over its range. No
//! reduction chain changes and no two workers touch the same element,
//! so parallel output is **bit-identical to sequential at every worker
//! count**, for every backend including saturating `Fx32`, independent
//! of thread scheduling.
//!
//! The packed-layout kernels ([`Matrix::pack`] → [`WeightPack`])
//! restate the same contract from a cache-resident pre-transposed copy
//! of the weights: [`WeightPack::gemv_batch`] reuses the transpose
//! across calls instead of rebuilding it per batch, and
//! [`WeightPack::gemv_t_batch`] turns the transposed MVM into
//! unit-stride register-accumulated dot products. Only the loop nests
//! differ — per-element chains are unchanged — so packed ≡ unpacked ≡
//! per-sample, bit for bit, at every worker count. A pack is a
//! snapshot of the weights at [`Matrix::pack`] time; mutating the
//! source matrix afterwards does not update it (callers invalidate and
//! re-pack, as `fixar-nn`'s `Mlp` does on weight updates).
//!
//! The `*_par_in` forms ([`Matrix::gemv_batch_par_in`],
//! [`Matrix::gemv_t_batch_par_in`], [`Matrix::add_outer_batch_par_in`],
//! [`Matrix::matmul_par_in`], [`Matrix::gather_columns_par_in`]) extend
//! the contract a final time: instead of opening a scope per kernel
//! call, they enqueue their shards into a **caller-owned fused scope**
//! ([`fixar_pool::Parallelism::fused`]), so several *independent*
//! kernels — disjoint output regions, e.g. the twin TD3 critics' MVMs
//! or a layer's gradient outer product alongside its error MVM — share
//! one barrier join per phase. The shards are the same span loop nests,
//! so fused output is bit-identical to per-kernel scopes and to
//! sequential execution at every worker count.
//!
//! [`fixar_pool::Parallelism::fused`]: Parallelism::fused
//!
//! [`Scalar`]: fixar_fixed::Scalar

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
pub mod vector;

pub use fixar_pool::{KernelScope, Parallelism, PoolError, WorkerPool};
pub use matrix::{Matrix, ShapeError, WeightPack};
