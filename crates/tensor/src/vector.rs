//! Slice-based vector kernels shared by the NN stack and the accelerator
//! model.
//!
//! All reductions run left-to-right (index order), matching the hardware
//! accumulation contract described in the crate docs.

use fixar_fixed::Scalar;

/// Dot product `Σ a[i]·b[i]`, reduced in index order.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot<S: Scalar>(a: &[S], b: &[S]) -> S {
    assert_eq!(a.len(), b.len(), "dot requires equal lengths");
    a.iter().zip(b).fold(S::zero(), |acc, (&x, &y)| acc + x * y)
}

/// `y[i] += alpha · x[i]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal lengths");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Elementwise product `out[i] = a[i]·b[i]` (used for activation-derivative
/// masking in backprop).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn hadamard<S: Scalar>(a: &[S], b: &[S], out: &mut [S]) {
    assert_eq!(a.len(), b.len(), "hadamard requires equal lengths");
    assert_eq!(a.len(), out.len(), "hadamard requires equal lengths");
    for i in 0..a.len() {
        out[i] = a[i] * b[i];
    }
}

/// Elementwise in-place scale `x[i] *= alpha`.
pub fn scale<S: Scalar>(alpha: S, x: &mut [S]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Largest absolute value in the slice, as `f64` (0 for an empty slice).
pub fn max_abs<S: Scalar>(x: &[S]) -> f64 {
    x.iter().map(|v| v.to_f64().abs()).fold(0.0, f64::max)
}

/// Mean of the slice as `f64` (0 for an empty slice).
pub fn mean_f64<S: Scalar>(x: &[S]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().map(|v| v.to_f64()).sum::<f64>() / x.len() as f64
}

/// Converts a `f64` slice into any scalar backend.
pub fn from_f64_slice<S: Scalar>(x: &[f64]) -> Vec<S> {
    x.iter().map(|&v| S::from_f64(v)).collect()
}

/// Converts a scalar slice to `f64`.
pub fn to_f64_vec<S: Scalar>(x: &[S]) -> Vec<f64> {
    x.iter().map(|v| v.to_f64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_fixed::Fx32;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot::<f64>(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn hadamard_masks() {
        let mut out = vec![0.0; 3];
        hadamard(&[1.0, 2.0, 3.0], &[0.0, 1.0, 0.5], &mut out);
        assert_eq!(out, vec![0.0, 2.0, 1.5]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
    }

    #[test]
    fn max_abs_and_mean() {
        assert_eq!(max_abs(&[1.0, -5.0, 3.0]), 5.0);
        assert_eq!(mean_f64(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(max_abs::<f64>(&[]), 0.0);
        assert_eq!(mean_f64::<f64>(&[]), 0.0);
    }

    #[test]
    fn conversion_helpers_roundtrip() {
        let xs = [0.5, -1.25, 3.0];
        let q = from_f64_slice::<Fx32>(&xs);
        let back = to_f64_vec(&q);
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
