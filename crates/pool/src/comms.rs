//! Channel primitives for request-driven serving: a hand-rolled MPMC
//! queue and a one-shot completion slot.
//!
//! No crates-registry channel library is available to this workspace, so
//! the serving front door (`fixar-serve`) builds on these two std-only
//! primitives:
//!
//! * [`MpmcQueue`] — an unbounded multi-producer/multi-consumer queue
//!   with blocking, deadline-bounded, and non-blocking pops. Producers
//!   are request submitters; consumers are the per-shard batcher
//!   threads. [`MpmcQueue::close`] drains gracefully: queued items stay
//!   poppable, new pushes are rejected, and blocked consumers wake.
//! * [`oneshot`] — a single-value completion slot: the batcher sends
//!   exactly one response, the requesting client blocks on
//!   [`OneShotReceiver::recv`]. Dropping either end unblocks the other
//!   (a dropped sender surfaces as [`ChannelClosed`] instead of a
//!   deadlock).
//!
//! Both are plain `Mutex` + `Condvar` state machines — no spinning, no
//! unsafe code, FIFO per queue (ordering across producers is the lock
//! acquisition order, which serving does not rely on for determinism:
//! the served *values* are batch-composition-independent by the kernel
//! bit-exactness contract).

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Error returned when the other side of a [`oneshot`] slot or a closed
/// [`MpmcQueue`] makes the operation impossible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelClosed;

impl fmt::Display for ChannelClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel closed")
    }
}

impl Error for ChannelClosed {}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Unbounded multi-producer/multi-consumer FIFO queue with blocking and
/// deadline-bounded pops — the request spine of the serving front door.
///
/// # Example
///
/// ```
/// use fixar_pool::MpmcQueue;
///
/// let q = MpmcQueue::new();
/// q.push(1).unwrap();
/// q.push(2).unwrap();
/// assert_eq!(q.pop(), Some(1));
/// q.close();
/// assert!(q.push(3).is_err()); // closed: no new items...
/// assert_eq!(q.pop(), Some(2)); // ...but queued ones drain
/// assert_eq!(q.pop(), None); // drained + closed
/// ```
pub struct MpmcQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
}

impl<T> Default for MpmcQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MpmcQueue<T> {
    /// Creates an empty open queue.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues `item`, waking one blocked consumer.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues without blocking; `None` when the queue is momentarily
    /// empty (closed or not).
    pub fn try_pop(&self) -> Option<T> {
        self.state.lock().expect("queue lock").items.pop_front()
    }

    /// Dequeues, blocking until an item arrives. Returns `None` only
    /// when the queue is closed **and** drained — the consumer's
    /// shutdown signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue wait");
        }
    }

    /// Dequeues, blocking until an item arrives, `deadline` passes, or
    /// the queue closes empty. `None` means "no item by the deadline" —
    /// the batcher's flush signal.
    pub fn pop_deadline(&self, deadline: Instant) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            let now = Instant::now();
            let remaining = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())?;
            let (guard, timeout) = self
                .ready
                .wait_timeout(state, remaining)
                .expect("queue wait");
            state = guard;
            if timeout.timed_out() && state.items.is_empty() {
                return None;
            }
        }
    }

    /// Closes the queue: subsequent pushes fail, queued items remain
    /// poppable, and every blocked consumer wakes (returning items while
    /// the queue drains, then `None`).
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    /// `true` once [`MpmcQueue::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// Momentary queue depth (diagnostics only — racy by nature).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// `true` when momentarily empty (diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct SlotState<T> {
    value: Option<T>,
    sender_gone: bool,
    receiver_gone: bool,
}

struct Slot<T> {
    state: Mutex<SlotState<T>>,
    ready: Condvar,
}

/// Sending half of a [`oneshot`] slot: consumed by the single
/// [`OneShotSender::send`]. Dropping it unsent wakes the receiver with
/// [`ChannelClosed`].
pub struct OneShotSender<T> {
    slot: Arc<Slot<T>>,
}

/// Receiving half of a [`oneshot`] slot: consumed by
/// [`OneShotReceiver::recv`]. Dropping it lets the sender observe the
/// abandonment via [`OneShotSender::send`]'s error.
pub struct OneShotReceiver<T> {
    slot: Arc<Slot<T>>,
}

/// Creates a one-shot completion slot: one value travels from sender to
/// receiver, each endpoint usable exactly once.
///
/// # Example
///
/// ```
/// use fixar_pool::oneshot;
///
/// let (tx, rx) = oneshot();
/// std::thread::spawn(move || tx.send(42).unwrap());
/// assert_eq!(rx.recv(), Ok(42));
/// ```
pub fn oneshot<T>() -> (OneShotSender<T>, OneShotReceiver<T>) {
    let slot = Arc::new(Slot {
        state: Mutex::new(SlotState {
            value: None,
            sender_gone: false,
            receiver_gone: false,
        }),
        ready: Condvar::new(),
    });
    (
        OneShotSender {
            slot: Arc::clone(&slot),
        },
        OneShotReceiver { slot },
    )
}

impl<T> OneShotSender<T> {
    /// Delivers the value, waking a blocked receiver.
    ///
    /// # Errors
    ///
    /// Returns the value back if the receiver was already dropped (the
    /// client gave up — the server counts these instead of panicking).
    pub fn send(self, value: T) -> Result<(), T> {
        let mut state = self.slot.state.lock().expect("oneshot lock");
        if state.receiver_gone {
            return Err(value);
        }
        state.value = Some(value);
        drop(state);
        self.slot.ready.notify_one();
        // Drop runs after this, but `value.is_some()` masks `sender_gone`.
        Ok(())
    }
}

impl<T> Drop for OneShotSender<T> {
    fn drop(&mut self) {
        self.slot.state.lock().expect("oneshot lock").sender_gone = true;
        self.slot.ready.notify_one();
    }
}

impl<T> OneShotReceiver<T> {
    /// Blocks until the value arrives.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelClosed`] if the sender dropped without sending
    /// (e.g. the server shut down while the request was queued).
    pub fn recv(self) -> Result<T, ChannelClosed> {
        let mut state = self.slot.state.lock().expect("oneshot lock");
        loop {
            if let Some(value) = state.value.take() {
                return Ok(value);
            }
            if state.sender_gone {
                return Err(ChannelClosed);
            }
            state = self.slot.ready.wait(state).expect("oneshot wait");
        }
    }

    /// Non-blocking probe: `Ok(Some(value))` when delivered,
    /// `Ok(None)` when still pending, and the receiver is handed back
    /// for a later retry.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelClosed`] if the sender dropped without sending.
    pub fn try_recv(self) -> Result<Result<T, Self>, ChannelClosed> {
        {
            let mut state = self.slot.state.lock().expect("oneshot lock");
            if let Some(value) = state.value.take() {
                return Ok(Ok(value));
            }
            if state.sender_gone {
                return Err(ChannelClosed);
            }
        }
        Ok(Err(self))
    }
}

impl<T> Drop for OneShotReceiver<T> {
    fn drop(&mut self) {
        self.slot.state.lock().expect("oneshot lock").receiver_gone = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn queue_is_fifo_and_survives_threads() {
        let q = Arc::new(MpmcQueue::new());
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..100 {
                    q.push(i).unwrap();
                }
            })
        };
        let mut got = Vec::new();
        while got.len() < 100 {
            if let Some(v) = q.pop() {
                got.push(v);
            }
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn close_rejects_pushes_but_drains_queued_items() {
        let q = MpmcQueue::new();
        q.push('a').unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.push('b'), Err('b'));
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), None);
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(MpmcQueue::<u8>::new());
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then close.
        thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn pop_deadline_times_out_and_still_delivers_items() {
        let q = MpmcQueue::new();
        let t = Instant::now();
        assert_eq!(
            q.pop_deadline(Instant::now() + Duration::from_millis(5)),
            None::<u8>
        );
        assert!(t.elapsed() >= Duration::from_millis(5));
        q.push(7).unwrap();
        assert_eq!(q.pop_deadline(Instant::now()), Some(7));
        // A deadline already in the past still drains ready items first.
        q.push(8).unwrap();
        assert_eq!(
            q.pop_deadline(Instant::now() - Duration::from_millis(1)),
            Some(8)
        );
    }

    #[test]
    fn multiple_consumers_partition_the_items() {
        let q = Arc::new(MpmcQueue::new());
        for i in 0..200 {
            q.push(i).unwrap();
        }
        q.close();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut mine = Vec::new();
                    while let Some(v) = q.pop() {
                        mine.push(v);
                    }
                    mine
                })
            })
            .collect();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn oneshot_delivers_once_across_threads() {
        let (tx, rx) = oneshot();
        let t = thread::spawn(move || tx.send(99).unwrap());
        assert_eq!(rx.recv(), Ok(99));
        t.join().unwrap();
    }

    #[test]
    fn dropped_sender_surfaces_as_closed_not_deadlock() {
        let (tx, rx) = oneshot::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(ChannelClosed));

        // Blocked receiver wakes when the sender drops later.
        let (tx, rx) = oneshot::<u8>();
        let t = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(10));
        drop(tx);
        assert_eq!(t.join().unwrap(), Err(ChannelClosed));
    }

    #[test]
    fn dropped_receiver_bounces_the_send() {
        let (tx, rx) = oneshot();
        drop(rx);
        assert_eq!(tx.send(5), Err(5));
    }

    #[test]
    fn try_recv_probes_without_blocking() {
        let (tx, rx) = oneshot();
        let rx = match rx.try_recv() {
            Ok(Err(rx)) => rx, // still pending
            Ok(Ok(v)) => panic!("expected pending, got value {v}"),
            Err(e) => panic!("expected pending, got {e}"),
        };
        tx.send(3).unwrap();
        assert!(matches!(rx.try_recv(), Ok(Ok(3))));
        let (tx, rx) = oneshot::<u8>();
        drop(tx);
        assert!(rx.try_recv().is_err());
    }
}
