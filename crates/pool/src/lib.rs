//! Persistent worker pool for FIXAR's kernel-level data parallelism.
//!
//! The batched kernels in `fixar-tensor` are embarrassingly parallel
//! across disjoint output regions (batch rows for the forward/transpose
//! MVMs, weight rows for gradient accumulation). This crate provides the
//! execution substrate they shard over:
//!
//! * [`WorkerPool`] — a fixed set of worker threads fed closures over a
//!   channel, created **once** and reused for every kernel call (no
//!   per-call thread spawning, unlike `crossbeam::thread::scope`);
//! * [`WorkerPool::scope`] — a scoped-task API: borrowing, non-`'static`
//!   tasks run on the pool and are all joined (barrier) before the scope
//!   returns, so shards may borrow the operands of the calling kernel;
//! * [`Parallelism`] — the handle threaded through `fixar-nn`,
//!   `fixar-rl`, and `fixar-accel`: a worker count plus a shared pool,
//!   honoring the `FIXAR_WORKERS` environment override;
//! * [`PoolError`] — typed propagation of worker panics: a panicking
//!   task fails the scope instead of aborting the process, and the pool
//!   survives for subsequent scopes.
//!
//! # Determinism contract
//!
//! The pool itself never reorders arithmetic: callers shard work into
//! **disjoint output regions** computed with the exact per-element
//! reduction chains of the sequential kernel, and merge shard results in
//! **ascending shard order** on the calling thread. Results are
//! therefore bit-identical to the sequential kernel for every backend —
//! including saturating `Fx32` — and independent of thread scheduling.
//!
//! # Nesting
//!
//! Scopes started *from a pool worker thread* would deadlock a fully
//! loaded pool, so [`Parallelism::shards`] reports `1` on pool threads:
//! nested parallel kernels transparently degrade to their sequential
//! (bit-identical) form.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::Cell;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Environment variable overriding the worker count of every
/// [`Parallelism::from_env_or`] handle (CI's determinism matrix sweeps
/// it across 1/2/8).
pub const WORKERS_ENV: &str = "FIXAR_WORKERS";

/// Error returned by [`WorkerPool::scope`] when one or more queued
/// tasks panicked. The panics are contained on the worker threads
/// (caught per task), the scope still joins every task, and the pool
/// remains usable afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// `count` tasks of the scope panicked; `first` is the payload of
    /// the first panic observed (payload order is scheduling-dependent,
    /// the error itself is not).
    TaskPanicked {
        /// Number of panicked tasks in the scope.
        count: usize,
        /// Stringified payload of the first observed panic.
        first: String,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::TaskPanicked { count, first } => {
                write!(f, "{count} pool task(s) panicked; first: {first}")
            }
        }
    }
}

impl Error for PoolError {}

type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// `true` when called from one of a [`WorkerPool`]'s worker threads
/// (used to degrade nested scopes to sequential execution).
pub fn on_pool_thread() -> bool {
    IS_POOL_WORKER.with(Cell::get)
}

/// A fixed set of persistent worker threads fed closures over a channel.
///
/// Workers are spawned once in [`WorkerPool::new`] and live until the
/// pool drops; every [`WorkerPool::scope`] reuses them. Multiple scopes
/// (from different calling threads) may run concurrently on one pool —
/// each joins exactly its own tasks.
///
/// # Example
///
/// ```
/// use fixar_pool::WorkerPool;
///
/// let pool = WorkerPool::new(2);
/// let mut halves = [0u64, 0u64];
/// let (lo, hi) = halves.split_at_mut(1);
/// pool.scope(|scope| {
///     scope.execute(|| lo[0] = (1..=50).sum());
///     scope.execute(|| hi[0] = (51..=100).sum());
/// })
/// .unwrap();
/// assert_eq!(halves[0] + halves[1], 5050);
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Task>>,
    handles: Vec<thread::JoinHandle<()>>,
    workers: usize,
}

/// Join state of one scope: outstanding task count, a condvar the
/// calling thread parks on, and the collected panic payloads.
#[derive(Default)]
struct ScopeSync {
    pending: Mutex<usize>,
    done: Condvar,
    panics: Mutex<Vec<String>>,
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&receiver);
                thread::Builder::new()
                    .name(format!("fixar-pool-{i}"))
                    .spawn(move || Self::worker_loop(&rx))
                    .expect("spawning pool worker")
            })
            .collect();
        Self {
            sender: Some(sender),
            handles,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn worker_loop(rx: &Mutex<Receiver<Task>>) {
        IS_POOL_WORKER.with(|f| f.set(true));
        loop {
            // Hold the lock only while dequeueing, never while running.
            let task = {
                let guard = rx.lock().expect("pool queue lock");
                guard.recv()
            };
            match task {
                Ok(task) => task(),
                Err(_) => break, // all senders dropped: shutdown
            }
        }
    }

    /// Runs `f` with a [`Scope`] on which borrowing tasks can be queued;
    /// returns once **every** queued task has finished (barrier join —
    /// this is what makes lending shards of local buffers to the pool
    /// sound).
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::TaskPanicked`] if any task panicked. The
    /// panic is contained: remaining tasks still run, the scope still
    /// joins, and the pool stays usable.
    pub fn scope<'pool, 'scope, F, R>(&'pool self, f: F) -> Result<R, PoolError>
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            sync: Arc::new(ScopeSync::default()),
            _marker: PhantomData,
        };
        // If `f` itself unwinds after queueing tasks, `Scope::drop`
        // still joins them before any borrow they hold expires.
        let result = f(&scope);
        scope.wait();
        let panics = scope.sync.panics.lock().expect("scope panic list");
        if panics.is_empty() {
            Ok(result)
        } else {
            Err(PoolError::TaskPanicked {
                count: panics.len(),
                first: panics[0].clone(),
            })
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the channel so workers drain and exit, then join.
        self.sender.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Handle for queueing borrowing tasks inside [`WorkerPool::scope`].
pub struct Scope<'pool, 'scope> {
    pool: &'pool WorkerPool,
    sync: Arc<ScopeSync>,
    /// Invariant over `'scope`: prevents the scope lifetime from being
    /// shortened to admit borrows the join cannot protect.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Queues `f` onto the pool. The task may borrow anything that
    /// outlives the `scope` call; panics are caught per task and
    /// surfaced as the scope's [`PoolError`].
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        *self.sync.pending.lock().expect("scope pending lock") += 1;
        let sync = Arc::clone(&self.sync);
        let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let msg = payload
                    .downcast_ref::<&'static str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                sync.panics.lock().expect("scope panic list").push(msg);
            }
            let mut pending = sync.pending.lock().expect("scope pending lock");
            *pending -= 1;
            if *pending == 0 {
                sync.done.notify_all();
            }
        });
        // SAFETY: the task is erased to 'static only to traverse the
        // channel; `Scope::wait` (called by `WorkerPool::scope` and by
        // `Drop` on unwind) blocks until the task has run to completion,
        // so every 'scope borrow it captures outlives its execution.
        let wrapped: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(wrapped) };
        self.pool
            .sender
            .as_ref()
            .expect("pool alive while scope runs")
            .send(wrapped)
            .expect("pool workers alive while scope runs");
    }

    fn wait(&self) {
        let mut pending = self.sync.pending.lock().expect("scope pending lock");
        while *pending > 0 {
            pending = self.sync.done.wait(pending).expect("scope join wait");
        }
    }
}

impl Drop for Scope<'_, '_> {
    fn drop(&mut self) {
        self.wait();
    }
}

/// Contiguous ascending split of `items` into at most `parts` chunks of
/// `ceil(items / parts)` (the shard decomposition every parallel kernel
/// uses; identical to `slice.chunks(chunk_len)` boundaries, so shard
/// layout depends only on `(items, parts)` — never on scheduling).
pub fn split_ranges(items: usize, parts: usize) -> Vec<Range<usize>> {
    if items == 0 || parts == 0 {
        return Vec::new();
    }
    let chunk = items.div_ceil(parts);
    (0..items.div_ceil(chunk))
        .map(|i| i * chunk..((i + 1) * chunk).min(items))
        .collect()
}

/// Process-wide pools keyed by worker count, so every agent/kernel
/// requesting `n` workers shares one `n`-thread pool instead of
/// spawning its own.
fn shared_pool(workers: usize) -> Arc<WorkerPool> {
    static REGISTRY: OnceLock<Mutex<HashMap<usize, Arc<WorkerPool>>>> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = registry.lock().expect("pool registry lock");
    Arc::clone(
        map.entry(workers)
            .or_insert_with(|| Arc::new(WorkerPool::new(workers))),
    )
}

/// The parallelism handle threaded through the stack: a worker count
/// plus the pool that backs it. `workers == 1` carries no pool and
/// selects the strictly sequential kernels; cloning shares the pool.
///
/// # Example
///
/// ```
/// use fixar_pool::Parallelism;
///
/// let seq = Parallelism::sequential();
/// assert_eq!(seq.workers(), 1);
/// let par = Parallelism::with_workers(4);
/// assert_eq!(par.workers(), 4);
/// assert_eq!(par.shards(100), 4);
/// assert_eq!(par.shards(3), 3); // never more shards than items
/// ```
#[derive(Clone, Default)]
pub struct Parallelism {
    workers: usize,
    pool: Option<Arc<WorkerPool>>,
}

impl fmt::Debug for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Parallelism")
            .field("workers", &self.workers())
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

impl Parallelism {
    /// The sequential handle: one worker, no pool.
    pub fn sequential() -> Self {
        Self {
            workers: 1,
            pool: None,
        }
    }

    /// A handle over the shared `workers`-thread pool (sequential when
    /// `workers <= 1`).
    pub fn with_workers(workers: usize) -> Self {
        if workers <= 1 {
            Self::sequential()
        } else {
            Self {
                workers,
                pool: Some(shared_pool(workers)),
            }
        }
    }

    /// A handle over a caller-provided pool.
    pub fn with_pool(pool: Arc<WorkerPool>, workers: usize) -> Self {
        if workers <= 1 {
            Self::sequential()
        } else {
            Self {
                workers,
                pool: Some(pool),
            }
        }
    }

    /// Reads the [`WORKERS_ENV`] override, falling back to `default`
    /// when unset or unparsable. This is how agent configs resolve
    /// their effective worker count.
    pub fn from_env_or(default: usize) -> Self {
        let workers = std::env::var(WORKERS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(default);
        Self::with_workers(workers)
    }

    /// Configured worker count (≥ 1).
    pub fn workers(&self) -> usize {
        self.workers.max(1)
    }

    /// The backing pool, if parallel.
    pub fn pool(&self) -> Option<&WorkerPool> {
        self.pool.as_deref()
    }

    /// Number of shards a kernel should split `items` into: at most one
    /// per worker, never more than `items`, and `1` (sequential) when
    /// there is no pool **or when already running on a pool thread**
    /// (nested scopes would deadlock; the sequential kernels are
    /// bit-identical, so degrading is free).
    pub fn shards(&self, items: usize) -> usize {
        if self.pool.is_none() || on_pool_thread() {
            1
        } else {
            self.workers().min(items).max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks_before_returning() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..64 {
                scope.execute(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn tasks_may_mutate_disjoint_borrowed_shards() {
        let pool = WorkerPool::new(3);
        let mut data = vec![0usize; 10];
        let ranges = split_ranges(data.len(), 3);
        pool.scope(|scope| {
            let mut rest = data.as_mut_slice();
            for range in &ranges {
                let (chunk, tail) = rest.split_at_mut(range.len());
                rest = tail;
                let base = range.start;
                scope.execute(move || {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = base + i;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(data, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_task_yields_typed_error_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let err = pool
            .scope(|scope| {
                scope.execute(|| panic!("injected failure"));
                scope.execute(|| {}); // healthy sibling still runs
            })
            .unwrap_err();
        match &err {
            PoolError::TaskPanicked { count, first } => {
                assert_eq!(*count, 1);
                assert!(first.contains("injected failure"), "payload: {first}");
            }
        }
        assert!(err.to_string().contains("injected failure"));
        // The pool is not poisoned: the next scope succeeds.
        let ok = pool.scope(|scope| {
            scope.execute(|| {});
        });
        assert!(ok.is_ok());
    }

    #[test]
    fn concurrent_scopes_on_one_pool_join_independently() {
        let pool = Arc::new(WorkerPool::new(2));
        let a = Arc::clone(&pool);
        let t = thread::spawn(move || {
            let sum = AtomicUsize::new(0);
            a.scope(|scope| {
                let sum = &sum;
                for i in 0..32 {
                    scope.execute(move || {
                        sum.fetch_add(i, Ordering::SeqCst);
                    });
                }
            })
            .unwrap();
            sum.load(Ordering::SeqCst)
        });
        let sum = AtomicUsize::new(0);
        pool.scope(|scope| {
            let sum = &sum;
            for i in 0..32 {
                scope.execute(move || {
                    sum.fetch_add(i + 100, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(t.join().unwrap(), (0..32).sum::<usize>());
        assert_eq!(sum.load(Ordering::SeqCst), (0..32).map(|i| i + 100).sum());
    }

    #[test]
    fn split_ranges_covers_everything_contiguously() {
        for items in 0..40 {
            for parts in 1..9 {
                let ranges = split_ranges(items, parts);
                assert!(ranges.len() <= parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, items);
            }
        }
        assert!(split_ranges(5, 0).is_empty());
    }

    #[test]
    fn parallelism_shards_and_env_fallback() {
        let seq = Parallelism::sequential();
        assert_eq!(seq.shards(100), 1);
        assert!(seq.pool().is_none());

        let par = Parallelism::with_workers(3);
        assert_eq!(par.workers(), 3);
        assert_eq!(par.shards(100), 3);
        assert_eq!(par.shards(2), 2);
        assert_eq!(par.shards(0), 1);
        assert!(par.pool().is_some());

        // Clones share the backing pool.
        let clone = par.clone();
        assert!(std::ptr::eq(par.pool().unwrap(), clone.pool().unwrap()));

        // with_workers(1) never carries a pool.
        assert!(Parallelism::with_workers(1).pool().is_none());
    }

    #[test]
    fn nested_scopes_degrade_to_sequential() {
        let par = Parallelism::with_workers(2);
        let inner_shards = AtomicUsize::new(usize::MAX);
        par.pool()
            .unwrap()
            .scope(|scope| {
                let par = &par;
                let inner_shards = &inner_shards;
                scope.execute(move || {
                    // On a pool thread the same handle reports 1 shard,
                    // so nested kernels run their sequential form.
                    inner_shards.store(par.shards(100), Ordering::SeqCst);
                });
            })
            .unwrap();
        assert_eq!(inner_shards.load(Ordering::SeqCst), 1);
        assert!(!on_pool_thread());
    }
}
