//! Persistent worker pool for FIXAR's kernel-level data parallelism.
//!
//! The batched kernels in `fixar-tensor` are embarrassingly parallel
//! across disjoint output regions (batch rows for the forward/transpose
//! MVMs, weight rows for gradient accumulation). This crate provides the
//! execution substrate they shard over:
//!
//! * [`WorkerPool`] — a fixed set of worker threads fed closures over a
//!   channel, created **once** and reused for every kernel call (no
//!   per-call thread spawning, unlike `crossbeam::thread::scope`);
//! * [`WorkerPool::scope`] — a scoped-task API: borrowing, non-`'static`
//!   tasks run on the pool and are all joined (barrier) before the scope
//!   returns, so shards may borrow the operands of the calling kernel;
//! * [`Parallelism`] — the handle threaded through `fixar-nn`,
//!   `fixar-rl`, and `fixar-accel`: a worker count plus a shared pool,
//!   honoring the `FIXAR_WORKERS` environment override;
//! * [`PoolError`] — typed propagation of worker panics: a panicking
//!   task fails the scope instead of aborting the process, and the pool
//!   survives for subsequent scopes;
//! * [`MpmcQueue`] / [`oneshot`] — std-only channel primitives (MPMC
//!   request queue with deadline-bounded pops, one-shot completion
//!   slots) that the request-driven serving front door (`fixar-serve`)
//!   builds on instead of an async runtime.
//!
//! # Determinism contract
//!
//! The pool itself never reorders arithmetic: callers shard work into
//! **disjoint output regions** computed with the exact per-element
//! reduction chains of the sequential kernel, and merge shard results in
//! **ascending shard order** on the calling thread. Results are
//! therefore bit-identical to the sequential kernel for every backend —
//! including saturating `Fx32` — and independent of thread scheduling.
//!
//! # Nesting
//!
//! Scopes started *from a pool worker thread* would deadlock a fully
//! loaded pool, so [`Parallelism::shards`] reports `1` on pool threads:
//! nested parallel kernels transparently degrade to their sequential
//! (bit-identical) form.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod comms;

pub use comms::{oneshot, ChannelClosed, MpmcQueue, OneShotReceiver, OneShotSender};

use std::cell::Cell;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Environment variable overriding the worker count of every
/// [`Parallelism::from_env_or`] handle (CI's determinism matrix sweeps
/// it across 1/2/8).
pub const WORKERS_ENV: &str = "FIXAR_WORKERS";

/// Error returned by [`WorkerPool::scope`] when one or more queued
/// tasks panicked. The panics are contained on the worker threads
/// (caught per task), the scope still joins every task, and the pool
/// remains usable afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// `count` tasks of the scope panicked; `first` is the payload of
    /// the first panic observed (payload order is scheduling-dependent,
    /// the error itself is not).
    TaskPanicked {
        /// Number of panicked tasks in the scope.
        count: usize,
        /// Stringified payload of the first observed panic.
        first: String,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::TaskPanicked { count, first } => {
                write!(f, "{count} pool task(s) panicked; first: {first}")
            }
        }
    }
}

impl Error for PoolError {}

type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// `true` when called from one of a [`WorkerPool`]'s worker threads
/// (used to degrade nested scopes to sequential execution).
pub fn on_pool_thread() -> bool {
    IS_POOL_WORKER.with(Cell::get)
}

/// A fixed set of persistent worker threads fed closures over a channel.
///
/// Workers are spawned once in [`WorkerPool::new`] and live until the
/// pool drops; every [`WorkerPool::scope`] reuses them. Multiple scopes
/// (from different calling threads) may run concurrently on one pool —
/// each joins exactly its own tasks.
///
/// # Example
///
/// ```
/// use fixar_pool::WorkerPool;
///
/// let pool = WorkerPool::new(2);
/// let mut halves = [0u64, 0u64];
/// let (lo, hi) = halves.split_at_mut(1);
/// pool.scope(|scope| {
///     scope.execute(|| lo[0] = (1..=50).sum());
///     scope.execute(|| hi[0] = (51..=100).sum());
/// })
/// .unwrap();
/// assert_eq!(halves[0] + halves[1], 5050);
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Task>>,
    handles: Vec<thread::JoinHandle<()>>,
    workers: usize,
}

/// Join state of one scope: outstanding task count, a condvar the
/// calling thread parks on, and the collected panic payloads.
#[derive(Default)]
struct ScopeSync {
    pending: Mutex<usize>,
    done: Condvar,
    panics: Mutex<Vec<String>>,
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&receiver);
                thread::Builder::new()
                    .name(format!("fixar-pool-{i}"))
                    .spawn(move || Self::worker_loop(&rx))
                    .expect("spawning pool worker")
            })
            .collect();
        Self {
            sender: Some(sender),
            handles,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn worker_loop(rx: &Mutex<Receiver<Task>>) {
        IS_POOL_WORKER.with(|f| f.set(true));
        loop {
            // Hold the lock only while dequeueing, never while running.
            let task = {
                let guard = rx.lock().expect("pool queue lock");
                guard.recv()
            };
            match task {
                Ok(task) => task(),
                Err(_) => break, // all senders dropped: shutdown
            }
        }
    }

    /// Runs `f` with a [`Scope`] on which borrowing tasks can be queued;
    /// returns once **every** queued task has finished (barrier join —
    /// this is what makes lending shards of local buffers to the pool
    /// sound).
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::TaskPanicked`] if any task panicked. The
    /// panic is contained: remaining tasks still run, the scope still
    /// joins, and the pool stays usable.
    pub fn scope<'pool, 'scope, F, R>(&'pool self, f: F) -> Result<R, PoolError>
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            sync: Arc::new(ScopeSync::default()),
            _marker: PhantomData,
        };
        // If `f` itself unwinds after queueing tasks, `Scope::drop`
        // still joins them before any borrow they hold expires.
        let result = f(&scope);
        scope.wait();
        let panics = scope.sync.panics.lock().expect("scope panic list");
        if panics.is_empty() {
            Ok(result)
        } else {
            Err(PoolError::TaskPanicked {
                count: panics.len(),
                first: panics[0].clone(),
            })
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the channel so workers drain and exit, then join.
        self.sender.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Handle for queueing borrowing tasks inside [`WorkerPool::scope`].
pub struct Scope<'pool, 'scope> {
    pool: &'pool WorkerPool,
    sync: Arc<ScopeSync>,
    /// Invariant over `'scope`: prevents the scope lifetime from being
    /// shortened to admit borrows the join cannot protect.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Queues `f` onto the pool. The task may borrow anything that
    /// outlives the `scope` call; panics are caught per task and
    /// surfaced as the scope's [`PoolError`].
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        *self.sync.pending.lock().expect("scope pending lock") += 1;
        let sync = Arc::clone(&self.sync);
        let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let msg = payload
                    .downcast_ref::<&'static str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                sync.panics.lock().expect("scope panic list").push(msg);
            }
            let mut pending = sync.pending.lock().expect("scope pending lock");
            *pending -= 1;
            if *pending == 0 {
                sync.done.notify_all();
            }
        });
        // SAFETY: the task is erased to 'static only to traverse the
        // channel; `Scope::wait` (called by `WorkerPool::scope` and by
        // `Drop` on unwind) blocks until the task has run to completion,
        // so every 'scope borrow it captures outlives its execution.
        let wrapped: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(wrapped) };
        self.pool
            .sender
            .as_ref()
            .expect("pool alive while scope runs")
            .send(wrapped)
            .expect("pool workers alive while scope runs");
    }

    fn wait(&self) {
        let mut pending = self.sync.pending.lock().expect("scope pending lock");
        while *pending > 0 {
            pending = self.sync.done.wait(pending).expect("scope join wait");
        }
    }
}

impl Drop for Scope<'_, '_> {
    fn drop(&mut self) {
        self.wait();
    }
}

/// A fused multi-kernel phase: the handle through which several
/// *independent* kernels (disjoint output regions) enqueue their shards
/// into **one** pool scope and share a **single** barrier join — the
/// phase-scoped heterogeneous scheduling that replaces one-scope-per-
/// kernel calls on hot paths (e.g. TD3's twin critics, or a layer's
/// gradient outer product fused with its error MVM).
///
/// Obtained from [`Parallelism::fused`]. Two shapes exist:
///
/// * **pooled** — wraps a live [`Scope`]; [`KernelScope::submit`]
///   enqueues onto the pool and [`KernelScope::shards`] reports the
///   worker count, so `*_par_in` kernels shard exactly as their `*_par`
///   forms do;
/// * **sequential** — no pool (or the caller is already on a pool
///   thread, where opening a scope would deadlock): `shards` reports 1
///   and `submit` runs the task **inline** on the calling thread, so
///   every `*_par_in` kernel transparently degrades to its sequential,
///   bit-identical form.
///
/// # Determinism
///
/// Fusing kernels into one scope never reorders arithmetic: each kernel
/// still shards into disjoint output regions computed with its
/// sequential per-element chains, and distinct kernels in one scope
/// write disjoint outputs by the caller's contract. Only the *join*
/// count changes — results are bit-identical to running the kernels in
/// separate scopes (or sequentially) at every worker count.
///
/// # Example
///
/// ```
/// use fixar_pool::Parallelism;
///
/// let par = Parallelism::with_workers(2);
/// let mut a = [0u64; 2];
/// let mut b = [0u64; 2];
/// par.fused(|ks| {
///     // Two independent "kernels" share one scope and one join.
///     let (a0, a1) = a.split_at_mut(1);
///     ks.submit(|| a0[0] = 1);
///     ks.submit(|| a1[0] = 2);
///     let (b0, b1) = b.split_at_mut(1);
///     ks.submit(|| b0[0] = 3);
///     ks.submit(|| b1[0] = 4);
/// })
/// .unwrap();
/// assert_eq!((a, b), ([1, 2], [3, 4]));
/// ```
pub struct KernelScope<'a, 'pool, 'scope> {
    scope: Option<&'a Scope<'pool, 'scope>>,
    workers: usize,
}

impl<'a, 'pool, 'scope> KernelScope<'a, 'pool, 'scope> {
    /// A sequential kernel scope: `shards` is 1 and `submit` runs
    /// inline. This is what `*_par_in` kernels see when no pool is
    /// available, letting callers keep a single code path.
    pub fn sequential() -> Self {
        Self {
            scope: None,
            workers: 1,
        }
    }

    /// A kernel scope over a live pool [`Scope`], sharding for
    /// `workers` lanes.
    pub fn pooled(scope: &'a Scope<'pool, 'scope>, workers: usize) -> Self {
        Self {
            scope: Some(scope),
            workers: workers.max(1),
        }
    }

    /// `true` when submissions actually reach a pool (false for the
    /// sequential degradation).
    pub fn is_pooled(&self) -> bool {
        self.scope.is_some()
    }

    /// Number of shards a kernel submitting here should split `items`
    /// into: the worker count capped by `items` when pooled, `1` when
    /// sequential — the same arithmetic as [`Parallelism::shards`].
    pub fn shards(&self, items: usize) -> usize {
        if self.scope.is_some() {
            self.workers.min(items).max(1)
        } else {
            1
        }
    }

    /// Submits one kernel shard. Pooled scopes enqueue it (the shared
    /// join happens when the owning [`Parallelism::fused`] call
    /// returns); the sequential degradation runs it inline, preserving
    /// submission order.
    ///
    /// # Panics
    ///
    /// On the **sequential degradation** a panicking task unwinds
    /// straight through the caller — there is no worker thread to
    /// contain it, so the typed-[`PoolError`] contract applies to
    /// pooled scopes only. In-contract kernels never panic, so this
    /// only changes how a kernel *bug* surfaces at one worker.
    pub fn submit<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        match self.scope {
            Some(scope) => scope.execute(f),
            None => f(),
        }
    }
}

/// Contiguous ascending split of `items` into at most `parts` chunks of
/// `ceil(items / parts)` (the shard decomposition every parallel kernel
/// uses; identical to `slice.chunks(chunk_len)` boundaries, so shard
/// layout depends only on `(items, parts)` — never on scheduling).
pub fn split_ranges(items: usize, parts: usize) -> Vec<Range<usize>> {
    if items == 0 || parts == 0 {
        return Vec::new();
    }
    let chunk = items.div_ceil(parts);
    (0..items.div_ceil(chunk))
        .map(|i| i * chunk..((i + 1) * chunk).min(items))
        .collect()
}

/// Process-wide pools keyed by worker count, so every agent/kernel
/// requesting `n` workers shares one `n`-thread pool instead of
/// spawning its own.
fn shared_pool(workers: usize) -> Arc<WorkerPool> {
    static REGISTRY: OnceLock<Mutex<HashMap<usize, Arc<WorkerPool>>>> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = registry.lock().expect("pool registry lock");
    Arc::clone(
        map.entry(workers)
            .or_insert_with(|| Arc::new(WorkerPool::new(workers))),
    )
}

/// The parallelism handle threaded through the stack: a worker count
/// plus the pool that backs it. `workers == 1` carries no pool and
/// selects the strictly sequential kernels; cloning shares the pool.
///
/// # Example
///
/// ```
/// use fixar_pool::Parallelism;
///
/// let seq = Parallelism::sequential();
/// assert_eq!(seq.workers(), 1);
/// let par = Parallelism::with_workers(4);
/// assert_eq!(par.workers(), 4);
/// assert_eq!(par.shards(100), 4);
/// assert_eq!(par.shards(3), 3); // never more shards than items
/// ```
#[derive(Clone, Default)]
pub struct Parallelism {
    workers: usize,
    pool: Option<Arc<WorkerPool>>,
}

impl fmt::Debug for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Parallelism")
            .field("workers", &self.workers())
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

impl Parallelism {
    /// The sequential handle: one worker, no pool.
    pub fn sequential() -> Self {
        Self {
            workers: 1,
            pool: None,
        }
    }

    /// A handle over the shared `workers`-thread pool (sequential when
    /// `workers <= 1`).
    pub fn with_workers(workers: usize) -> Self {
        if workers <= 1 {
            Self::sequential()
        } else {
            Self {
                workers,
                pool: Some(shared_pool(workers)),
            }
        }
    }

    /// A handle over a caller-provided pool.
    pub fn with_pool(pool: Arc<WorkerPool>, workers: usize) -> Self {
        if workers <= 1 {
            Self::sequential()
        } else {
            Self {
                workers,
                pool: Some(pool),
            }
        }
    }

    /// Reads the [`WORKERS_ENV`] override, falling back to `default`
    /// when unset or unparsable. This is how agent configs resolve
    /// their effective worker count.
    pub fn from_env_or(default: usize) -> Self {
        let workers = std::env::var(WORKERS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(default);
        Self::with_workers(workers)
    }

    /// Configured worker count (≥ 1).
    pub fn workers(&self) -> usize {
        self.workers.max(1)
    }

    /// The backing pool, if parallel.
    pub fn pool(&self) -> Option<&WorkerPool> {
        self.pool.as_deref()
    }

    /// Number of shards a kernel should split `items` into: at most one
    /// per worker, never more than `items`, and `1` (sequential) when
    /// there is no pool **or when already running on a pool thread**
    /// (nested scopes would deadlock; the sequential kernels are
    /// bit-identical, so degrading is free).
    pub fn shards(&self, items: usize) -> usize {
        if self.pool.is_none() || on_pool_thread() {
            1
        } else {
            self.workers().min(items).max(1)
        }
    }

    /// Opens **one** fused multi-kernel scope and runs `f` with its
    /// [`KernelScope`]: every independent kernel `f` submits (directly
    /// via [`KernelScope::submit`], or through a `*_par_in` kernel form)
    /// shares the scope's single barrier join, which happens before
    /// `fused` returns. With no pool — or when already on a pool thread,
    /// where a nested scope would deadlock — `f` receives the
    /// sequential degradation and every submission runs inline,
    /// bit-identically.
    ///
    /// Anything the caller runs in `f` *after* submitting kernels
    /// executes on the calling thread **concurrently with the queued
    /// shards** — this is the host/accelerator overlap hook the
    /// double-buffered fleet trainer uses.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::TaskPanicked`] if any submitted task
    /// panicked on a **pooled** scope. The panic is contained per
    /// task: sibling kernels in the scope still run to completion, the
    /// scope still joins, and the pool stays usable. On the sequential
    /// degradation there is no worker to contain a panic — an inline
    /// task that panics unwinds through the caller instead (see
    /// [`KernelScope::submit`]); only kernel *bugs* panic, so the two
    /// modes differ only in how a bug is reported.
    pub fn fused<'pool, 'scope, F, R>(&'pool self, f: F) -> Result<R, PoolError>
    where
        F: FnOnce(&KernelScope<'_, 'pool, 'scope>) -> R,
    {
        match self.pool() {
            Some(pool) if !on_pool_thread() => {
                let workers = self.workers();
                pool.scope(move |scope| f(&KernelScope::pooled(scope, workers)))
            }
            _ => Ok(f(&KernelScope::sequential())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks_before_returning() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..64 {
                scope.execute(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn tasks_may_mutate_disjoint_borrowed_shards() {
        let pool = WorkerPool::new(3);
        let mut data = vec![0usize; 10];
        let ranges = split_ranges(data.len(), 3);
        pool.scope(|scope| {
            let mut rest = data.as_mut_slice();
            for range in &ranges {
                let (chunk, tail) = rest.split_at_mut(range.len());
                rest = tail;
                let base = range.start;
                scope.execute(move || {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = base + i;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(data, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_task_yields_typed_error_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let err = pool
            .scope(|scope| {
                scope.execute(|| panic!("injected failure"));
                scope.execute(|| {}); // healthy sibling still runs
            })
            .unwrap_err();
        match &err {
            PoolError::TaskPanicked { count, first } => {
                assert_eq!(*count, 1);
                assert!(first.contains("injected failure"), "payload: {first}");
            }
        }
        assert!(err.to_string().contains("injected failure"));
        // The pool is not poisoned: the next scope succeeds.
        let ok = pool.scope(|scope| {
            scope.execute(|| {});
        });
        assert!(ok.is_ok());
    }

    #[test]
    fn concurrent_scopes_on_one_pool_join_independently() {
        let pool = Arc::new(WorkerPool::new(2));
        let a = Arc::clone(&pool);
        let t = thread::spawn(move || {
            let sum = AtomicUsize::new(0);
            a.scope(|scope| {
                let sum = &sum;
                for i in 0..32 {
                    scope.execute(move || {
                        sum.fetch_add(i, Ordering::SeqCst);
                    });
                }
            })
            .unwrap();
            sum.load(Ordering::SeqCst)
        });
        let sum = AtomicUsize::new(0);
        pool.scope(|scope| {
            let sum = &sum;
            for i in 0..32 {
                scope.execute(move || {
                    sum.fetch_add(i + 100, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(t.join().unwrap(), (0..32).sum::<usize>());
        assert_eq!(sum.load(Ordering::SeqCst), (0..32).map(|i| i + 100).sum());
    }

    #[test]
    fn split_ranges_covers_everything_contiguously() {
        for items in 0..40 {
            for parts in 1..9 {
                let ranges = split_ranges(items, parts);
                assert!(ranges.len() <= parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, items);
            }
        }
        assert!(split_ranges(5, 0).is_empty());
    }

    #[test]
    fn parallelism_shards_and_env_fallback() {
        let seq = Parallelism::sequential();
        assert_eq!(seq.shards(100), 1);
        assert!(seq.pool().is_none());

        let par = Parallelism::with_workers(3);
        assert_eq!(par.workers(), 3);
        assert_eq!(par.shards(100), 3);
        assert_eq!(par.shards(2), 2);
        assert_eq!(par.shards(0), 1);
        assert!(par.pool().is_some());

        // Clones share the backing pool.
        let clone = par.clone();
        assert!(std::ptr::eq(par.pool().unwrap(), clone.pool().unwrap()));

        // with_workers(1) never carries a pool.
        assert!(Parallelism::with_workers(1).pool().is_none());
    }

    #[test]
    fn fused_scope_hosts_independent_kernels_with_one_join() {
        let par = Parallelism::with_workers(3);
        let mut left = vec![0usize; 9];
        let mut right = vec![0usize; 5];
        par.fused(|ks| {
            assert!(ks.is_pooled());
            // Kernel 1: shard `left` like a *_par kernel would.
            let shards = ks.shards(left.len());
            let mut rest = left.as_mut_slice();
            for range in split_ranges(9, shards) {
                let (chunk, tail) = rest.split_at_mut(range.len());
                rest = tail;
                let base = range.start;
                ks.submit(move || {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = base + i;
                    }
                });
            }
            // Kernel 2: disjoint output, same scope, same join.
            let mut rest = right.as_mut_slice();
            for range in split_ranges(5, ks.shards(5)) {
                let (chunk, tail) = rest.split_at_mut(range.len());
                rest = tail;
                let base = range.start;
                ks.submit(move || {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = 100 + base + i;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(left, (0..9).collect::<Vec<_>>());
        assert_eq!(right, (100..105).collect::<Vec<_>>());
    }

    #[test]
    fn fused_scope_panic_is_typed_and_does_not_poison_siblings() {
        // The satellite contract: one fused kernel panicking surfaces
        // as PoolError while sibling kernels in the same scope still
        // complete, and the handle stays usable.
        let par = Parallelism::with_workers(2);
        let mut sibling = [0u64; 2];
        let err = par
            .fused(|ks| {
                let (lo, hi) = sibling.split_at_mut(1);
                ks.submit(|| panic!("injected fused-kernel failure"));
                ks.submit(move || lo[0] = 7);
                ks.submit(move || hi[0] = 9);
            })
            .unwrap_err();
        match &err {
            PoolError::TaskPanicked { count, first } => {
                assert_eq!(*count, 1);
                assert!(first.contains("injected fused-kernel failure"));
            }
        }
        assert_eq!(sibling, [7, 9], "siblings must not be poisoned");
        // The same handle opens a clean scope afterwards.
        let ok = par.fused(|ks| ks.submit(|| {}));
        assert!(ok.is_ok());
    }

    #[test]
    fn fused_scope_degrades_inline_without_a_pool_and_when_nested() {
        // Sequential handle: submissions run inline, in order.
        let seq = Parallelism::sequential();
        let order = Mutex::new(Vec::new());
        seq.fused(|ks| {
            assert!(!ks.is_pooled());
            assert_eq!(ks.shards(100), 1);
            ks.submit(|| order.lock().unwrap().push(1));
            order.lock().unwrap().push(2);
            ks.submit(|| order.lock().unwrap().push(3));
        })
        .unwrap();
        assert_eq!(*order.lock().unwrap(), vec![1, 2, 3]);

        // Nested: from a pool task the same handle degrades too, so a
        // fused kernel called inside another scope cannot deadlock.
        let par = Parallelism::with_workers(2);
        let nested_inline = AtomicUsize::new(0);
        par.fused(|ks| {
            let par = &par;
            let nested_inline = &nested_inline;
            ks.submit(move || {
                par.fused(|inner| {
                    assert!(!inner.is_pooled());
                    inner.submit(|| {
                        nested_inline.fetch_add(1, Ordering::SeqCst);
                    });
                })
                .unwrap();
            });
        })
        .unwrap();
        assert_eq!(nested_inline.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn fused_scope_overlaps_host_work_with_queued_kernels() {
        // The closure body after submission runs on the calling thread
        // while the task runs on a worker — both sides complete by the
        // single join.
        let par = Parallelism::with_workers(2);
        let worker_side = AtomicUsize::new(0);
        let mut host_side = 0usize;
        par.fused(|ks| {
            let worker_side = &worker_side;
            ks.submit(move || {
                worker_side.store(11, Ordering::SeqCst);
            });
            host_side = 22; // host work inside the scope
        })
        .unwrap();
        assert_eq!(worker_side.load(Ordering::SeqCst), 11);
        assert_eq!(host_side, 22);
    }

    #[test]
    fn nested_scopes_degrade_to_sequential() {
        let par = Parallelism::with_workers(2);
        let inner_shards = AtomicUsize::new(usize::MAX);
        par.pool()
            .unwrap()
            .scope(|scope| {
                let par = &par;
                let inner_shards = &inner_shards;
                scope.execute(move || {
                    // On a pool thread the same handle reports 1 shard,
                    // so nested kernels run their sequential form.
                    inner_shards.store(par.shards(100), Ordering::SeqCst);
                });
            })
            .unwrap();
        assert_eq!(inner_shards.load(Ordering::SeqCst), 1);
        assert!(!on_pool_thread());
    }
}
