//! FIXAR: a fixed-point deep reinforcement learning platform —
//! high-level facade.
//!
//! This crate ties the FIXAR reproduction together: pick a benchmark, a
//! precision mode, and a configuration; [`FixarSystem`] instantiates the
//! right numeric backend, runs DDPG training with the quantization-aware
//! schedule of Algorithm 1 when the mode calls for it, and attaches the
//! modelled CPU-FPGA platform throughput to the result.
//!
//! The layering underneath (each its own crate):
//!
//! * [`fixar_fixed`] — saturating fixed-point arithmetic and the affine
//!   activation quantizer,
//! * [`fixar_tensor`] / [`fixar_nn`] — hardware-order matrix kernels and
//!   the MLP training stack,
//! * `fixar_sim` / [`fixar_env`] — the planar physics engine and the
//!   MuJoCo-dimensioned locomotion benchmarks,
//! * [`fixar_rl`] — DDPG with the QAT controller,
//! * [`fixar_serve`] — the request-driven serving front door (deadline
//!   micro-batching over published policy snapshots),
//! * [`fixar_deploy`] — integer-only deployment artifacts: a trained
//!   QAT actor frozen into a self-contained blob plus a no-float
//!   interpreter,
//! * [`fixar_accel`] — the cycle-level U50 accelerator model (PEs, AAP
//!   cores, memories, Adam unit, PRNG, resource/power/GPU models),
//! * [`fixar_platform`] — end-to-end timestep timing and co-simulation.
//!
//! # Quickstart
//!
//! ```
//! use fixar::{EnvKind, FixarSystem, PrecisionMode};
//! use fixar::DdpgConfig;
//!
//! // A deliberately tiny run: Pendulum, small nets, few steps.
//! let report = FixarSystem::new(EnvKind::Pendulum, PrecisionMode::DynamicFixed)
//!     .with_config(DdpgConfig::small_test().with_qat(100, 16))
//!     .run(200, 100, 1)?;
//! assert_eq!(report.training.curve.len(), 2);
//! assert!(report.platform_ips > 0.0);
//! # Ok::<(), fixar::RlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fixar_accel::Precision;
pub use fixar_env::{EnvKind, Environment};
pub use fixar_fixed::{Fx16, Fx32, Scalar};
pub use fixar_rl::{DdpgConfig, PrecisionMode, RlError, Trainer, TrainingReport};

/// Convenience re-exports of the most common FIXAR types.
pub mod prelude {
    pub use fixar_accel::{
        AccelConfig, BatchedInferenceSchedule, DoubleBufferedServing, FixarAccelerator, GpuModel,
        InferenceSchedule, LayerFormat, MicroBatchServing, PowerModel, Precision,
        PrecisionPlanCost, ResourceModel, TrainingSchedule, U50_BUDGET,
    };
    pub use fixar_deploy::{
        verify_generated_source, ActKind, BlobStats, DeployError, PolicyArtifact,
        ARTIFACT_FRAC_BITS,
    };
    pub use fixar_env::{EnvKind, EnvPool, EnvSpec, Environment, EpisodeStats, StepResult};
    pub use fixar_fixed::{AffineQuantizer, Fx16, Fx32, QFormat, RangeMonitor, Scalar, Q16, Q32};
    pub use fixar_nn::{
        Activation, Adam, AdamConfig, Mlp, MlpConfig, PrecisionError, PrecisionPolicy, QatMode,
        QatRuntime, QatRuntimeBuilder,
    };
    pub use fixar_platform::{CpuGpuPlatformModel, FixarCosim, FixarPlatformModel};
    pub use fixar_pool::{KernelScope, Parallelism, PoolError, WorkerPool, WORKERS_ENV};
    pub use fixar_rl::{
        Ddpg, DdpgConfig, EvalPoint, ExplorationNoise, GaussianNoise, OrnsteinUhlenbeck,
        PolicySnapshot, PrecisionMode, PrioritizedConfig, PrioritizedReplay, QatSchedule,
        ReplayBuffer, ReplaySampler, ReplayStrategy, RlError, SampledBatch, Td3, Td3Config,
        TrainMetrics, Trainer, TrainingReport, Transition, TransitionBatch, VecTrainer,
    };
    pub use fixar_serve::{
        ActionResponse, ActionServer, ArtifactClient, ArtifactPublisher, ArtifactReplica,
        ArtifactResponse, ArtifactServer, ArtifactStore, PendingAction, PendingArtifactAction,
        PendingReply, ServeClient, ServeConfig, ServeError, ServeStats, ShardStats,
        SnapshotPublisher, SnapshotStore,
    };

    pub use crate::{FixarRunReport, FixarSystem};
}

use fixar_accel::AccelError;
use fixar_platform::FixarPlatformModel;

/// Outcome of one FIXAR training run.
#[derive(Debug, Clone)]
pub struct FixarRunReport {
    /// Which precision arm produced this run.
    pub mode: PrecisionMode,
    /// Benchmark name.
    pub env: &'static str,
    /// Reward curve and training statistics.
    pub training: TrainingReport,
    /// Modelled end-to-end platform IPS at this run's final precision
    /// phase and batch size (float32 runs report the CPU-GPU baseline).
    pub platform_ips: f64,
}

/// High-level runner: benchmark × precision mode × configuration.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct FixarSystem {
    env: EnvKind,
    mode: PrecisionMode,
    cfg: DdpgConfig,
    train_seed: u64,
    eval_seed: u64,
}

impl FixarSystem {
    /// Creates a system for a benchmark in a precision mode with the
    /// paper's default DDPG configuration.
    pub fn new(env: EnvKind, mode: PrecisionMode) -> Self {
        Self {
            env,
            mode,
            cfg: DdpgConfig::default(),
            train_seed: 1,
            eval_seed: 2,
        }
    }

    /// Overrides the DDPG configuration (builder style).
    pub fn with_config(mut self, cfg: DdpgConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Overrides the environment seeds (builder style).
    pub fn with_seeds(mut self, train: u64, eval: u64) -> Self {
        self.train_seed = train;
        self.eval_seed = eval;
        self
    }

    /// The effective configuration after mode adjustments: the
    /// `DynamicFixed` arm enables QAT (defaulting the quantization delay
    /// to `total_steps / 4` when unset); all other arms disable it.
    pub fn effective_config(&self, total_steps: u64) -> DdpgConfig {
        let mut cfg = self.cfg.clone();
        if self.mode.uses_qat() {
            if cfg.qat.is_none() {
                cfg = cfg.with_qat((total_steps / 4).max(1), 16);
            }
        } else {
            cfg.qat = None;
        }
        cfg
    }

    /// Runs training for `total_steps`, evaluating every `eval_every`
    /// steps over `eval_episodes` episodes (paper: 5000 and 10), and
    /// attaches the modelled platform throughput.
    ///
    /// # Errors
    ///
    /// Propagates [`RlError`] from agent construction or training.
    pub fn run(
        &self,
        total_steps: u64,
        eval_every: u64,
        eval_episodes: usize,
    ) -> Result<FixarRunReport, RlError> {
        let cfg = self.effective_config(total_steps);
        let env = self.env.make(self.train_seed);
        let eval_env = self.env.make(self.eval_seed);
        let training = match self.mode {
            PrecisionMode::Float32 => Trainer::<f32>::new(env, eval_env, cfg.clone())?.run(
                total_steps,
                eval_every,
                eval_episodes,
            )?,
            PrecisionMode::Fixed32 | PrecisionMode::DynamicFixed => Trainer::<Fx32>::new(
                env,
                eval_env,
                cfg.clone(),
            )?
            .run(total_steps, eval_every, eval_episodes)?,
            PrecisionMode::Fixed16 => Trainer::<Fx16>::new(env, eval_env, cfg.clone())?.run(
                total_steps,
                eval_every,
                eval_episodes,
            )?,
        };
        let platform_ips = self
            .modelled_ips(&cfg, training.qat_switch_step.is_some())
            .map_err(|e| RlError::InvalidConfig(e.to_string()))?;
        Ok(FixarRunReport {
            mode: self.mode,
            env: self.env.name(),
            training,
            platform_ips,
        })
    }

    /// Modelled platform IPS for this system's benchmark and batch size.
    fn modelled_ips(&self, cfg: &DdpgConfig, qat_fired: bool) -> Result<f64, AccelError> {
        let spec_env = self.env.make(0);
        let spec = spec_env.spec();
        match self.mode {
            PrecisionMode::Float32 => {
                Ok(fixar_platform::CpuGpuPlatformModel::for_benchmark().ips(cfg.batch_size))
            }
            _ => {
                let model = FixarPlatformModel::for_benchmark(spec.obs_dim, spec.action_dim)?;
                let precision = if self.mode.uses_qat() && qat_fired {
                    Precision::Half16
                } else {
                    Precision::Full32
                };
                model.ips(cfg.batch_size, precision)
            }
        }
    }
}

/// Runs the full Fig. 7 precision study (all four arms with identical
/// seeds and schedules) and returns one report per arm, in
/// [`PrecisionMode::ALL`] order.
///
/// # Errors
///
/// Propagates the first arm failure.
pub fn precision_study(
    env: EnvKind,
    cfg: DdpgConfig,
    total_steps: u64,
    eval_every: u64,
    eval_episodes: usize,
) -> Result<Vec<FixarRunReport>, RlError> {
    PrecisionMode::ALL
        .iter()
        .map(|&mode| {
            FixarSystem::new(env, mode).with_config(cfg.clone()).run(
                total_steps,
                eval_every,
                eval_episodes,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_run_on_pendulum() {
        for mode in PrecisionMode::ALL {
            let report = FixarSystem::new(EnvKind::Pendulum, mode)
                .with_config(DdpgConfig::small_test().with_qat(60, 16))
                .run(120, 60, 1)
                .unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert_eq!(report.mode, mode);
            assert_eq!(report.training.curve.len(), 2);
            assert!(report.platform_ips > 0.0, "{mode}");
        }
    }

    #[test]
    fn dynamic_mode_defaults_a_qat_schedule() {
        let sys = FixarSystem::new(EnvKind::Pendulum, PrecisionMode::DynamicFixed)
            .with_config(DdpgConfig::small_test());
        let cfg = sys.effective_config(1000);
        assert_eq!(cfg.qat.as_ref().map(|q| q.delay), Some(250));
        assert_eq!(cfg.qat.as_ref().map(|q| q.bits), Some(16));
    }

    #[test]
    fn non_qat_modes_strip_the_schedule() {
        let sys = FixarSystem::new(EnvKind::Pendulum, PrecisionMode::Fixed32)
            .with_config(DdpgConfig::small_test().with_qat(10, 16));
        assert!(sys.effective_config(1000).qat.is_none());
    }

    #[test]
    fn qat_switch_is_reported_in_dynamic_mode() {
        let report = FixarSystem::new(EnvKind::Pendulum, PrecisionMode::DynamicFixed)
            .with_config(DdpgConfig::small_test().with_qat(100, 16))
            .run(200, 100, 1)
            .unwrap();
        assert_eq!(report.training.qat_switch_step, Some(100));
    }

    #[test]
    fn float32_reports_the_cpu_gpu_platform() {
        // The float arm is the baseline platform; its modelled IPS must
        // be below the fixed-point arms' (the 2.7× platform gap).
        let f = FixarSystem::new(EnvKind::Pendulum, PrecisionMode::Float32)
            .with_config(DdpgConfig::small_test())
            .run(60, 60, 1)
            .unwrap();
        let q = FixarSystem::new(EnvKind::Pendulum, PrecisionMode::Fixed32)
            .with_config(DdpgConfig::small_test())
            .run(60, 60, 1)
            .unwrap();
        assert!(q.platform_ips > f.platform_ips);
    }
}
