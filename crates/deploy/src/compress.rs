//! Lossless compression of threshold-table quantizer specs.
//!
//! A 16-bit [`QuantSpec::Table`] carries 65 535 `i64` thresholds plus
//! 65 536 `i32` dequant words — over three quarters of a megabyte per
//! activation point, dominating both the serialized blob and the static
//! arrays of generated firmware source. But the sequences are anything
//! but random: thresholds are the rounded boundaries of an affine map,
//! so consecutive differences take only a handful of adjacent values
//! (typically two), and the dequant words are an equally regular ramp
//! with saturation plateaus at the rails.
//!
//! Two exact transforms exploit this:
//!
//! * **pow2-snap** ([`pow2_snap`]) — when a table is *exactly*
//!   equivalent to a [`QuantSpec::Shift`] (arithmetic thresholds with a
//!   power-of-two step, matching dequant ramp), replace it with the
//!   shift form outright. Verified code-by-code against the table
//!   before snapping, so bit-equality is preserved by construction.
//! * **packed deltas** ([`pack_seq`] / [`unpack_seq`]) — store the
//!   first element and then each consecutive difference, offset by the
//!   minimum difference and bit-packed at the narrowest width that
//!   holds the spread. A rounded-affine threshold ramp packs at one or
//!   two bits per entry (~60× smaller); decompression reproduces every
//!   word exactly because the transform is lossless, and
//!   [`compress_table`] additionally verifies the round-trip before
//!   returning, so a compressed spec can never decode differently.
//!
//! Saturating end codes — the `i64::MAX` sentinel thresholds marking
//! codes no `i32` raw word reaches — are split off as an explicit tail
//! count rather than fed through the delta coder (a single `i64::MAX`
//! delta would blow the packed width past any benefit).

use crate::artifact::QuantSpec;

/// A sequence of `i64` values stored as a base element plus bit-packed
/// consecutive differences.
///
/// Reconstruction: `v[0] = base`, `v[k] = v[k-1] + min_delta + d[k-1]`
/// where `d` values are `width`-bit fields packed little-endian into
/// `words`. Lossless for any sequence whose difference spread fits in
/// 63 bits.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PackedSeq {
    /// First element of the sequence.
    pub base: i64,
    /// Minimum consecutive difference (packed fields are offsets above it).
    pub min_delta: i64,
    /// Bits per packed difference field, `0..=63`.
    pub width: u8,
    /// Number of values in the sequence (`>= 1`).
    pub count: u32,
    /// `ceil((count - 1) * width / 64)` little-endian packed words.
    pub words: Vec<u64>,
}

impl PackedSeq {
    /// Number of packed words the header fields imply; decode rejects
    /// blobs whose word count disagrees.
    pub fn expected_words(count: u32, width: u8) -> usize {
        let bits = (count as usize).saturating_sub(1) * width as usize;
        bits.div_ceil(64)
    }

    /// Serialized size in bytes: base + min_delta + width + packed
    /// words (the count is implied by the enclosing table header).
    pub fn encoded_size(&self) -> usize {
        8 + 8 + 1 + 8 * self.words.len()
    }
}

/// Packs `values` into delta-coded form, or `None` when the difference
/// spread needs 64 bits (pathological; raw storage is better anyway).
///
/// The transform is lossless: [`unpack_seq`] reproduces `values`
/// word-for-word for every sequence this accepts.
pub(crate) fn pack_seq(values: &[i64]) -> Option<PackedSeq> {
    let (&base, rest) = values.split_first()?;
    let mut deltas = Vec::with_capacity(rest.len());
    let mut prev = base;
    for &v in rest {
        deltas.push(v.checked_sub(prev)?);
        prev = v;
    }
    let min_delta = deltas.iter().copied().min().unwrap_or(0);
    let spread = deltas
        .iter()
        .map(|&d| (d as i128 - min_delta as i128) as u128)
        .max()
        .unwrap_or(0);
    if spread > (u64::MAX >> 1) as u128 {
        return None;
    }
    let width = (128 - spread.leading_zeros()).min(63) as u8;
    let mut words = vec![0u64; PackedSeq::expected_words(values.len() as u32, width)];
    if width > 0 {
        for (k, &d) in deltas.iter().enumerate() {
            let field = (d as i128 - min_delta as i128) as u64;
            let bit = k * width as usize;
            let (word, off) = (bit >> 6, (bit & 63) as u32);
            words[word] |= field << off;
            if off + width as u32 > 64 {
                words[word + 1] |= field >> (64 - off);
            }
        }
    }
    Some(PackedSeq {
        base,
        min_delta,
        width,
        count: values.len() as u32,
        words,
    })
}

/// Reconstructs the original sequence, or `None` when the packed form
/// is structurally inconsistent (wrong word count, overflowing
/// reconstruction) — decode maps that to a corrupt-blob error.
pub(crate) fn unpack_seq(p: &PackedSeq) -> Option<Vec<i64>> {
    if p.count == 0 || p.width > 63 || p.words.len() != PackedSeq::expected_words(p.count, p.width)
    {
        return None;
    }
    let n = p.count as usize;
    let mut out = Vec::with_capacity(n);
    out.push(p.base);
    let mut acc = p.base;
    let mask = if p.width == 0 {
        0
    } else {
        (1u64 << p.width) - 1
    };
    for k in 0..n - 1 {
        let mut field = 0u64;
        if p.width > 0 {
            let bit = k * p.width as usize;
            let (word, off) = (bit >> 6, (bit & 63) as u32);
            field = p.words[word] >> off;
            if off + p.width as u32 > 64 {
                field |= p.words[word + 1] << (64 - off);
            }
            field &= mask;
        }
        let delta = p.min_delta.checked_add(i64::try_from(field).ok()?)?;
        acc = acc.checked_add(delta)?;
        out.push(acc);
    }
    Some(out)
}

/// A [`QuantSpec::Table`] in compressed wire form: the finite threshold
/// prefix and the dequant ramp as packed-delta sequences, plus an
/// explicit count of the `i64::MAX` saturating tail.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CompressedTable {
    /// Total threshold count, including the saturating tail.
    pub n_thresholds: u32,
    /// Packed finite prefix (`None` when every threshold is the
    /// `i64::MAX` sentinel). `thresholds[finite.count..]` are all
    /// `i64::MAX`.
    pub finite: Option<PackedSeq>,
    /// Packed dequant words (always fully finite; `n_thresholds + 1`
    /// values).
    pub dequant: PackedSeq,
}

impl CompressedTable {
    /// Serialized size: total count + finite count + both sequences.
    pub fn encoded_size(&self) -> usize {
        4 + 4
            + self.finite.as_ref().map_or(0, PackedSeq::encoded_size)
            + self.dequant.encoded_size()
    }

    /// Size of the equivalent raw (tag 2) encoding.
    pub fn raw_size(&self) -> usize {
        4 + 8 * self.n_thresholds as usize + 4 + 4 * (self.n_thresholds as usize + 1)
    }
}

/// Compresses a threshold table, or `None` when it would not shrink or
/// cannot be represented (a sentinel in the middle of the sequence, a
/// pathological difference spread).
///
/// Exactness is guaranteed twice over: the transform is lossless by
/// design, and the round-trip is verified against the inputs before the
/// compressed form is returned — a `Some` result *cannot* decode to
/// different thresholds.
pub(crate) fn compress_table(thresholds: &[i64], dequant: &[i32]) -> Option<CompressedTable> {
    if dequant.len() != thresholds.len() + 1 {
        return None;
    }
    // Split the saturating tail: every sentinel must sit at the end.
    let n_finite = thresholds
        .iter()
        .position(|&t| t == i64::MAX)
        .unwrap_or(thresholds.len());
    if thresholds[n_finite..].iter().any(|&t| t != i64::MAX) {
        return None;
    }
    let finite = if n_finite == 0 {
        None
    } else {
        Some(pack_seq(&thresholds[..n_finite])?)
    };
    let deq64: Vec<i64> = dequant.iter().map(|&d| d as i64).collect();
    let packed_deq = pack_seq(&deq64)?;
    let ct = CompressedTable {
        n_thresholds: thresholds.len() as u32,
        finite,
        dequant: packed_deq,
    };
    if ct.encoded_size() >= ct.raw_size() {
        return None;
    }
    // Paranoia round-trip: a compressed table that does not reproduce
    // every word exactly is discarded, never emitted.
    match decompress_table(&ct) {
        Some((t, d)) if t == thresholds && d == dequant => Some(ct),
        _ => None,
    }
}

/// Reconstructs the full threshold/dequant arrays from compressed form,
/// or `None` when the structure is inconsistent.
pub(crate) fn decompress_table(ct: &CompressedTable) -> Option<(Vec<i64>, Vec<i32>)> {
    let n = ct.n_thresholds as usize;
    let mut thresholds = match &ct.finite {
        Some(p) => {
            if p.count as usize > n {
                return None;
            }
            unpack_seq(p)?
        }
        None => Vec::new(),
    };
    thresholds.resize(n, i64::MAX);
    if ct.dequant.count as usize != n + 1 {
        return None;
    }
    let dequant = unpack_seq(&ct.dequant)?
        .into_iter()
        .map(i32::try_from)
        .collect::<Result<Vec<_>, _>>()
        .ok()?;
    Some((thresholds, dequant))
}

/// Saturates a shifted code difference onto the 32-bit rails — the
/// dequant arithmetic of [`QuantSpec::Shift`].
fn shift_dequant(code: i64, zero_point: i64, shift: u32) -> i32 {
    let scaled = (code.saturating_sub(zero_point) as i128) << shift;
    if scaled > i32::MAX as i128 {
        i32::MAX
    } else if scaled < i32::MIN as i128 {
        i32::MIN
    } else {
        scaled as i32
    }
}

/// The threshold a [`QuantSpec::Shift`] implies for code `c`: the
/// smallest `i32` raw word whose shifted code reaches `c`, with the
/// same clamp/sentinel conventions as the table compiler (`i64::MAX`
/// for unreachable codes, `i32::MIN` when every word reaches it).
fn shift_threshold(c: i64, zero_point: i64, shift: u32) -> i64 {
    let v = ((c - zero_point) as i128) << shift;
    if v > i32::MAX as i128 {
        i64::MAX
    } else if v < i32::MIN as i128 {
        i32::MIN as i64
    } else {
        v as i64
    }
}

/// Detects a threshold table that is *exactly* a power-of-two shift
/// quantizer and returns the equivalent [`QuantSpec::Shift`].
///
/// Every code's threshold and dequant word is verified against the
/// candidate shift spec before snapping, so the returned spec maps
/// every `i32` input to the same output word as the table — bit
/// equality by construction, proven not assumed.
pub(crate) fn pow2_snap(thresholds: &[i64], dequant: &[i32]) -> Option<QuantSpec> {
    if dequant.len() != thresholds.len() + 1 || thresholds.is_empty() {
        return None;
    }
    let max_code = thresholds.len() as i64;
    // Candidate step from the first adjacent pair of ordinary (finite,
    // unclamped) thresholds; fall back to trying every shift for
    // degenerate tables with no such pair.
    let candidate_shifts: Vec<u32> = thresholds
        .windows(2)
        .find(|w| w[0] != i64::MAX && w[1] != i64::MAX && w[0] != i32::MIN as i64 && w[1] > w[0])
        .and_then(|w| {
            let step = (w[1] - w[0]) as u64;
            step.is_power_of_two().then(|| vec![step.trailing_zeros()])
        })
        .unwrap_or_else(|| (0..=62).collect());
    'candidates: for shift in candidate_shifts {
        // Derive the zero point from the first threshold that is neither
        // a sentinel nor clamped at the bottom rail.
        let (c, &t) = thresholds
            .iter()
            .enumerate()
            .map(|(i, t)| (i as i64 + 1, t))
            .find(|&(_, &t)| t != i64::MAX && t != i32::MIN as i64)?;
        if t & ((1i64 << shift) - 1) != 0 {
            continue;
        }
        let zero_point = c - (t >> shift);
        for (i, &want) in thresholds.iter().enumerate() {
            if shift_threshold(i as i64 + 1, zero_point, shift) != want {
                continue 'candidates;
            }
        }
        for (code, &want) in dequant.iter().enumerate() {
            if shift_dequant(code as i64, zero_point, shift) != want {
                continue 'candidates;
            }
        }
        return Some(QuantSpec::Shift {
            shift,
            zero_point,
            max_code,
        });
    }
    None
}

/// An O(1) multiply-shift replacement for a threshold table's
/// lower-bound search, proven equal to the `partition_point` semantics
/// of [`QuantSpec::Table`] over the whole `i32` input domain by
/// [`affine_fit`] before it is ever used.
///
/// For an input word `r`:
///
/// ```text
/// x = r - base                       // base = thresholds[0]
/// x < 0          →  code 0
/// x >= span      →  code n_finite    // span = t[n_finite-1] - base
/// otherwise      →  code ((x·mul + add) >> AFFINE_SHIFT) + 1
/// ```
///
/// Integer-only (the interpreter's no-float contract), branch-light,
/// and independent of the table length — the paper's "requantization is
/// a shift and a multiply" claim, recovered from the serialized table
/// without trusting the producer: a table that is *not* exactly a
/// rounded-affine ramp fails the fit and keeps the binary search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct AffineIndex {
    /// First finite threshold (smallest raw word with code ≥ 1).
    pub base: i64,
    /// `thresholds[n_finite - 1] - base`; inputs at or past it take the
    /// top finite code.
    pub span: i64,
    /// Fixed-point slope at [`AFFINE_SHIFT`] fractional bits.
    pub mul: u64,
    /// Fixed-point intercept at [`AFFINE_SHIFT`] fractional bits.
    pub add: u64,
    /// Number of finite (non-sentinel) thresholds.
    pub n_finite: usize,
}

impl AffineIndex {
    /// The code for raw word `key`, identical to
    /// `thresholds.partition_point(|&t| t <= key)` for the fitted table.
    #[inline]
    pub fn index_for(&self, key: i64) -> usize {
        let x = key - self.base;
        if x < 0 {
            0
        } else if x >= self.span {
            self.n_finite
        } else {
            (((x as u128 * self.mul as u128 + self.add as u128) >> AFFINE_SHIFT) as usize) + 1
        }
    }
}

/// Fractional bits of the fitted slope and intercept. 32 would already
/// index exactly, but real tables come from a float oracle whose
/// rounding wobble leaves only a sliver of feasible real slopes — at 32
/// bits that sliver is often narrower than one representable slope, so
/// the fit would spuriously fail. 44 bits leaves every feasible table
/// hundreds of representable slopes while `k·2^44` (k < 2^16) and the
/// products below stay far inside `u64`/`i128`.
pub(crate) const AFFINE_SHIFT: u32 = 44;

/// Upper bound on the fitted slope: strictly increasing thresholds have
/// a step ≥ 1 (slope ≤ 2^AFFINE_SHIFT); duplicate runs at the base push
/// it a little higher, anything past this is degenerate and keeps the
/// search.
const AFFINE_MUL_MAX: i128 = 1 << (AFFINE_SHIFT + 4);

/// The feasible intercept interval `[lo, hi]` for slope `m`: each code
/// boundary `k` pins `floor((s_k·m + add) >> AFFINE_SHIFT)` to exactly
/// `k`, which is the half-open constraint `(k << AFFINE_SHIFT) - s_k·m
/// <= add < (k << AFFINE_SHIFT) - s_k·m + m`; the system is feasible
/// iff the intersection over all boundaries (plus `add >= 0`) is
/// non-empty.
fn affine_intercepts(s: &[i64], m: i128) -> (i128, i128) {
    let mut lo: i128 = 0;
    let mut hi = i128::MAX;
    for (k, &sk) in s.iter().enumerate().skip(1) {
        let a = ((k as i128) << AFFINE_SHIFT) - sk as i128 * m;
        lo = lo.max(a);
        hi = hi.min(a + m - 1);
    }
    (lo, hi)
}

/// Finds `(mul, add)` making the multiply-shift hit every code boundary
/// of the normalized threshold offsets `s`, or `None` when no slope
/// does. The infeasibility gap `lo - hi` is convex in `m` (a max of
/// affine functions minus a min of affine functions), so after probing
/// the rounded ideal slope the search is a ternary descent.
fn affine_solve(s: &[i64]) -> Option<(u64, u64)> {
    let span = *s.last().expect("non-empty") as i128;
    let f = s.len() as i128;
    let ideal = (((f - 1) << AFFINE_SHIFT) + span / 2) / span;
    for m in [ideal, ideal - 1, ideal + 1] {
        if m >= 1 {
            let (lo, hi) = affine_intercepts(s, m);
            if lo <= hi {
                return Some((m as u64, lo as u64));
            }
        }
    }
    let (mut lo_m, mut hi_m) = (1i128, AFFINE_MUL_MAX);
    let gap = |m: i128| {
        let (lo, hi) = affine_intercepts(s, m);
        lo.saturating_sub(hi)
    };
    while hi_m - lo_m > 2 {
        let m1 = lo_m + (hi_m - lo_m) / 3;
        let m2 = hi_m - (hi_m - lo_m) / 3;
        if gap(m1) <= gap(m2) {
            hi_m = m2;
        } else {
            lo_m = m1 + 1;
        }
    }
    for m in lo_m..=hi_m {
        let (lo, hi) = affine_intercepts(s, m);
        if lo <= hi {
            return Some((m as u64, lo as u64));
        }
    }
    None
}

/// Fits an [`AffineIndex`] to a threshold table, or `None` when the
/// table is not exactly an affine code ramp.
///
/// Like [`pow2_snap`], the fit is *proven, not assumed*: after deriving
/// candidate `(mul, add)` the result is checked against
/// `partition_point` at both edges of every constant interval of the
/// table's step function (each `t_k` and `t_k - 1`, plus the `i32`
/// domain rails). Both functions are monotone, so agreement at every
/// interval edge implies agreement at every one of the 2^32 inputs.
/// Any failure — sentinel in the middle, unsorted head, out-of-range
/// base, infeasible slope — falls back to the search, whose semantics
/// are the definition.
pub(crate) fn affine_fit(thresholds: &[i64]) -> Option<AffineIndex> {
    const KEY_MIN: i64 = i32::MIN as i64;
    const KEY_MAX: i64 = i32::MAX as i64;
    let n = thresholds.len();
    if n == 0 || n > 1 << 16 {
        return None;
    }
    let n_finite = thresholds.iter().position(|&t| t == i64::MAX).unwrap_or(n);
    if thresholds[n_finite..].iter().any(|&t| t != i64::MAX) || n_finite == 0 {
        return None;
    }
    let base = thresholds[0];
    if !(KEY_MIN..=KEY_MAX).contains(&base) {
        return None;
    }
    // Normalized offsets s_k = t_k - base; the fit needs them sorted
    // (partition_point is only a count function on sorted input).
    let mut s = Vec::with_capacity(n_finite);
    let mut prev = 0i64;
    for &t in &thresholds[..n_finite] {
        let d = t.checked_sub(base)?;
        if d < prev {
            return None;
        }
        prev = d;
        s.push(d);
    }
    let span = s[n_finite - 1];
    let (mul, add) = if span == 0 {
        // All finite thresholds equal: the two range branches cover
        // every input and the multiply is dead code.
        (1, 0)
    } else {
        affine_solve(&s)?
    };
    let aff = AffineIndex {
        base,
        span,
        mul,
        add,
        n_finite,
    };
    let check = |key: i64| aff.index_for(key) == thresholds.partition_point(|&t| t <= key);
    if !check(KEY_MIN) || !check(KEY_MAX) {
        return None;
    }
    for &t in &thresholds[..n_finite] {
        for key in [t - 1, t] {
            if (KEY_MIN..=KEY_MAX).contains(&key) && !check(key) {
                return None;
            }
        }
    }
    Some(aff)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[i64]) {
        let packed = pack_seq(values).expect("pack");
        assert_eq!(unpack_seq(&packed).expect("unpack"), values);
    }

    #[test]
    fn pack_roundtrips_regular_and_irregular_sequences() {
        roundtrip(&[5]);
        roundtrip(&[0, 1, 2, 3, 4]);
        roundtrip(&[-100, -53, -6, 41, 88]); // constant step 47 → width 0
        roundtrip(&[10, 12, 15, 17, 20, 22]); // alternating 2/3 → width 1
        roundtrip(&[i32::MIN as i64, 0, i32::MAX as i64]);
        roundtrip(&[7, 7, 7, 7]); // zero deltas
        roundtrip(&[3, 1, 4, 1, 5, 9, 2, 6]); // non-monotone
    }

    #[test]
    fn constant_step_packs_at_zero_width() {
        let p = pack_seq(&[0, 48, 96, 144, 192]).unwrap();
        assert_eq!(p.width, 0);
        assert!(p.words.is_empty());
        assert_eq!(p.min_delta, 48);
    }

    #[test]
    fn two_valued_steps_pack_at_one_bit() {
        // A rounded-affine ramp: steps alternate between 48 and 49.
        let mut values = vec![0i64];
        for k in 0..1000 {
            let step = if (k * 37) % 100 < 37 { 49 } else { 48 };
            values.push(values[k] + step);
        }
        let p = pack_seq(&values).unwrap();
        assert_eq!(p.width, 1);
        assert_eq!(p.words.len(), 1000usize.div_ceil(64));
        assert_eq!(unpack_seq(&p).unwrap(), values);
    }

    #[test]
    fn fields_spanning_word_boundaries_roundtrip() {
        // width 5 → fields straddle u64 boundaries at k = 12, 25, ...
        let values: Vec<i64> = (0..200)
            .scan(0i64, |acc, k| {
                *acc += 3 + (k * k % 29);
                Some(*acc)
            })
            .collect();
        let p = pack_seq(&values).unwrap();
        assert!(p.width >= 5);
        assert_eq!(unpack_seq(&p).unwrap(), values);
    }

    #[test]
    fn pathological_spread_is_rejected() {
        assert!(pack_seq(&[0, i64::MAX]).is_some()); // spread 0, single delta
        assert!(pack_seq(&[0, i64::MAX, 0]).is_none()); // subtraction overflow
        assert!(pack_seq(&[i64::MIN, i64::MAX]).is_none()); // delta overflow
    }

    #[test]
    fn unpack_rejects_inconsistent_structure() {
        let mut p = pack_seq(&[1, 3, 6, 10]).unwrap();
        p.words.push(0);
        assert!(unpack_seq(&p).is_none(), "extra word");
        let mut p = pack_seq(&[1, 3, 6, 10]).unwrap();
        p.count = 0;
        assert!(unpack_seq(&p).is_none(), "zero count");
        let p = PackedSeq {
            base: i64::MAX,
            min_delta: i64::MAX,
            width: 0,
            count: 3,
            words: vec![],
        };
        assert!(unpack_seq(&p).is_none(), "overflowing reconstruction");
    }

    #[test]
    fn table_with_saturating_tail_compresses_and_roundtrips() {
        // 200 finite thresholds then a sentinel tail — the shape of a
        // quantizer whose top codes no i32 word reaches.
        let mut thresholds: Vec<i64> = (0..200).map(|k| -4800 + k * 48).collect();
        thresholds.extend([i64::MAX; 55]);
        let dequant: Vec<i32> = (0..=255).map(|c| (c - 100) * 48).collect();
        let ct = compress_table(&thresholds, &dequant).expect("compress");
        assert!(ct.encoded_size() < ct.raw_size());
        let (t, d) = decompress_table(&ct).expect("decompress");
        assert_eq!(t, thresholds);
        assert_eq!(d, dequant);
    }

    #[test]
    fn all_sentinel_table_compresses() {
        let thresholds = vec![i64::MAX; 15];
        let dequant: Vec<i32> = (0..=15).collect();
        let ct = compress_table(&thresholds, &dequant).expect("compress");
        assert!(ct.finite.is_none());
        let (t, d) = decompress_table(&ct).unwrap();
        assert_eq!(t, thresholds);
        assert_eq!(d, dequant);
    }

    #[test]
    fn sentinel_in_the_middle_is_not_compressible() {
        let thresholds = vec![0, i64::MAX, 100];
        let dequant = vec![0, 1, 2, 3];
        assert!(compress_table(&thresholds, &dequant).is_none());
    }

    #[test]
    fn tiny_tables_fall_back_to_raw() {
        // 2 thresholds: the packed headers (two bases, two min-deltas,
        // two widths) outweigh the raw words, so compression declines.
        let thresholds = vec![10, 20];
        let dequant = vec![0, 10, 20];
        assert!(compress_table(&thresholds, &dequant).is_none());
    }

    #[test]
    fn monotonicity_is_preserved_across_packed_boundaries() {
        // A strictly increasing ramp must come back strictly increasing
        // everywhere, including at every packed-word boundary.
        let values: Vec<i64> = (0..500)
            .scan(-12_000i64, |acc, k| {
                *acc += 47 + ((k * 13) % 3);
                Some(*acc)
            })
            .collect();
        let p = pack_seq(&values).unwrap();
        let back = unpack_seq(&p).unwrap();
        assert_eq!(back, values);
        assert!(back.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pow2_snap_detects_exact_shift_tables() {
        // Build the table a Shift{shift: 4, zero_point: 8, max_code: 15}
        // spec implies, then snap it back.
        let (shift, z, max_code) = (4u32, 8i64, 15i64);
        let thresholds: Vec<i64> = (1..=max_code)
            .map(|c| shift_threshold(c, z, shift))
            .collect();
        let dequant: Vec<i32> = (0..=max_code).map(|c| shift_dequant(c, z, shift)).collect();
        let snapped = pow2_snap(&thresholds, &dequant).expect("snap");
        assert_eq!(
            snapped,
            QuantSpec::Shift {
                shift,
                zero_point: z,
                max_code
            }
        );
    }

    #[test]
    fn pow2_snap_handles_clamped_and_unreachable_codes() {
        // A wide shift: low codes clamp at i32::MIN, high codes are
        // unreachable (i64::MAX sentinels) — both conventions must be
        // reproduced for the snap to verify.
        let (shift, z, max_code) = (30u32, 4i64, 15i64);
        let thresholds: Vec<i64> = (1..=max_code)
            .map(|c| shift_threshold(c, z, shift))
            .collect();
        assert!(thresholds.contains(&(i32::MIN as i64)));
        assert!(thresholds.contains(&i64::MAX));
        let dequant: Vec<i32> = (0..=max_code).map(|c| shift_dequant(c, z, shift)).collect();
        let snapped = pow2_snap(&thresholds, &dequant).expect("snap");
        assert_eq!(
            snapped,
            QuantSpec::Shift {
                shift,
                zero_point: z,
                max_code
            }
        );
    }

    #[test]
    fn pow2_snap_rejects_non_shift_tables() {
        // Step 48 is not a power of two.
        let thresholds: Vec<i64> = (1..=15).map(|c| (c - 8) * 48).collect();
        let dequant: Vec<i32> = (0..=15).map(|c| (c - 8) * 48).collect();
        assert!(pow2_snap(&thresholds, &dequant).is_none());

        // Power-of-two step but one perturbed dequant word: the
        // verification pass must catch it.
        let thresholds: Vec<i64> = (1..=15).map(|c| (c - 8) << 4).collect();
        let mut dequant: Vec<i32> = (0..=15).map(|c| (c - 8) << 4).collect();
        dequant[7] += 1;
        assert!(pow2_snap(&thresholds, &dequant).is_none());

        // Power-of-two step but one perturbed threshold likewise.
        let thresholds_ok: Vec<i64> = (1..=15).map(|c| (c - 8) << 4).collect();
        let dequant_ok: Vec<i32> = (0..=15).map(|c| (c - 8) << 4).collect();
        assert!(pow2_snap(&thresholds_ok, &dequant_ok).is_some());
        let mut bad = thresholds_ok.clone();
        bad[3] += 1;
        assert!(pow2_snap(&bad, &dequant_ok).is_none());
    }

    /// Oracle-checks a fitted table at every interval edge plus a dense
    /// sweep around the base, mirroring what `affine_fit` itself proves.
    fn assert_affine_matches_search(thresholds: &[i64]) {
        let aff = affine_fit(thresholds).expect("fit");
        let lo = (thresholds[0] - 3).max(i32::MIN as i64);
        let hi = (thresholds[0] + 200).min(i32::MAX as i64);
        for key in lo..=hi {
            assert_eq!(
                aff.index_for(key),
                thresholds.partition_point(|&t| t <= key),
                "key {key}"
            );
        }
    }

    #[test]
    fn affine_fit_uniform_steps() {
        // Plain uniform ramps at several strides, including stride 1.
        for step in [1i64, 3, 48, 1000] {
            let thresholds: Vec<i64> = (0..16).map(|k| -40 + k * step).collect();
            assert_affine_matches_search(&thresholds);
        }
    }

    #[test]
    fn affine_fit_rounded_affine_steps() {
        // Boundaries of a real affine map with a fractional step
        // (48.6): rounding makes deltas alternate 48/49, which no single
        // integer stride reproduces but the multiply-shift must.
        let thresholds: Vec<i64> = (0..32).map(|k| (k as f64 * 48.6).round() as i64).collect();
        assert!(thresholds.windows(2).any(|w| w[1] - w[0] == 48));
        assert!(thresholds.windows(2).any(|w| w[1] - w[0] == 49));
        assert_affine_matches_search(&thresholds);
    }

    #[test]
    fn affine_fit_handles_sentinel_tail_and_duplicates() {
        // Sentinel suffix (unreachable top codes) shrinks the finite
        // prefix; a short duplicate run needs a slope above 2^32.
        let mut thresholds: Vec<i64> = (0..10).map(|k| k * 7).collect();
        thresholds.extend([i64::MAX; 3]);
        assert_affine_matches_search(&thresholds);

        // Duplicates *at the base* (bottom-clamped codes) fit: the
        // intercept absorbs the extra codes. Duplicates after a gap
        // cannot — a two-code jump across one input step needs a slope
        // above 2^32, which the earlier boundaries forbid.
        let base_dup = [7i64, 7, 12, 17];
        assert_affine_matches_search(&base_dup);
        assert!(affine_fit(&[0, 5, 5, 10, 15]).is_none());
    }

    #[test]
    fn affine_fit_rejects_non_affine_tables() {
        // Empty, unsorted, interior sentinel, out-of-domain base.
        assert!(affine_fit(&[]).is_none());
        assert!(affine_fit(&[0, 10, 5, 20]).is_none());
        assert!(affine_fit(&[0, i64::MAX, 10]).is_none());
        assert!(affine_fit(&[i64::MIN, 0, 10]).is_none());

        // Bottom-clamped table: a long duplicate run at i32::MIN (as
        // `from_range` over a huge span produces) followed by normal
        // steps is not one line.
        let mut clamped = vec![i32::MIN as i64; 6];
        clamped.extend((0..10).map(|k| k * 100));
        assert!(affine_fit(&clamped).is_none());

        // A single perturbed interior threshold breaks exactness: the
        // verification pass must catch what the solver missed.
        let mut bent: Vec<i64> = (0..16).map(|k| k * 48).collect();
        bent[7] += 5;
        assert!(affine_fit(&bent).is_none());
    }

    #[test]
    fn affine_fit_all_equal_span_zero() {
        // Every finite threshold identical: two-valued step function
        // handled entirely by the range branches.
        let thresholds = [42i64, 42, 42];
        let aff = affine_fit(&thresholds).expect("fit");
        assert_eq!(aff.index_for(41), 0);
        assert_eq!(aff.index_for(42), 3);
        assert_eq!(aff.index_for(i32::MAX as i64), 3);
    }
}
