//! The integer-only artifact interpreter.
//!
//! Every operation in this module is plain `i32`/`i64`/`i128` arithmetic:
//! shifts, saturating adds, threshold-table lookups, and the shared
//! piecewise-linear tanh ROM from `fixar_fixed::math`. The module contains
//! no floating-point tokens at all — a static test in `lib.rs` greps this
//! file's source to keep it that way — and [`run`] arms a
//! [`NoFloatZone`] so the `deploy-float-guard` feature would catch any
//! instrumented helper of this crate being reached from the walk.
//!
//! Bit-exactness with the frozen `fixar-nn` path comes from replicating
//! its arithmetic one operation at a time, in the same order: the
//! column-broadcast matrix-vector accumulation of the AAP core, the
//! saturating multiply with round-to-nearest, the saturating bias add,
//! the activation on raw words, and the frozen quantizer at every
//! activation point.

use fixar_fixed::math::tanh_raw;

use crate::artifact::{ActKind, PolicyArtifact, QuantSpec, ARTIFACT_FRAC_BITS};
use crate::guard::NoFloatZone;

/// Saturates a wide accumulator onto the 32-bit rails.
#[inline]
fn clamp_word(v: i64) -> i32 {
    if v > i32::MAX as i64 {
        i32::MAX
    } else if v < i32::MIN as i64 {
        i32::MIN
    } else {
        v as i32
    }
}

/// Saturating fixed-point multiply: widen to `i64`, round to nearest,
/// clamp — bit-identical to the scalar type's saturating multiply.
#[inline]
fn fx_mul(a: i32, b: i32, frac: u32) -> i32 {
    let prod = a as i64 * b as i64;
    clamp_word((prod + (1i64 << (frac - 1))) >> frac)
}

/// Saturating fixed-point add — bit-identical to the scalar type's.
#[inline]
fn fx_add(a: i32, b: i32) -> i32 {
    a.saturating_add(b)
}

/// Applies an activation to one raw word.
#[inline]
fn apply_act(kind: ActKind, r: i32, frac: u32) -> i32 {
    match kind {
        ActKind::Identity => r,
        // relu is max(x, 0); zero's raw word is 0 in any format.
        ActKind::Relu => r.max(0),
        ActKind::Tanh => clamp_word(tanh_raw(r as i64, frac)),
    }
}

/// Applies a frozen quantizer spec to one raw word.
#[inline]
fn apply_spec(spec: &QuantSpec, r: i32) -> i32 {
    match spec {
        QuantSpec::PassThrough => r,
        QuantSpec::Shift {
            shift,
            zero_point,
            max_code,
        } => {
            // Quantize: the arithmetic right shift IS Algorithm 1's
            // flooring division by the power-of-two step; then offset by
            // the zero point and clamp onto the code range.
            let code = ((r as i64) >> shift)
                .saturating_add(*zero_point)
                .clamp(0, *max_code);
            // Dequantize: scale the centered code back by the same power
            // of two, widening through i128 so saturation sees the exact
            // value.
            let scaled = (code.saturating_sub(*zero_point) as i128) << shift;
            if scaled > i32::MAX as i128 {
                i32::MAX
            } else if scaled < i32::MIN as i128 {
                i32::MIN
            } else {
                scaled as i32
            }
        }
        QuantSpec::Table {
            thresholds,
            dequant,
            affine,
        } => {
            // Entry `k` of `thresholds` is the smallest raw word reaching
            // code `k + 1`, so the number of entries at or below `r` is
            // exactly r's code; `dequant` maps the code straight back to
            // a raw word on the artifact grid. When decode proved the
            // table an exact affine ramp, the count collapses to one
            // integer multiply-shift (`AffineIndex` is verified equal to
            // this search over the whole i32 domain before it exists).
            let code = match affine {
                Some(a) => a.index_for(r as i64),
                None => thresholds.partition_point(|&t| t <= r as i64),
            };
            dequant[code]
        }
    }
}

/// Evaluates the artifact on one raw observation vector.
///
/// The caller has already validated the input length. The no-float zone
/// is armed for the entire walk.
pub(crate) fn run(art: &PolicyArtifact, obs: &[i32]) -> Vec<i32> {
    let _zone = NoFloatZone::enter();
    // Every constructor pins the grid, so the multiply's shift count is
    // a compile-time constant in the loop below (a variable shift blocks
    // vectorization of the widening multiply).
    assert_eq!(art.frac_bits, ARTIFACT_FRAC_BITS);
    let frac = ARTIFACT_FRAC_BITS;
    let n = art.weights.len();
    let mut a = obs.to_vec();
    for v in a.iter_mut() {
        *v = apply_spec(&art.specs[0], *v);
    }
    for l in 0..n {
        let rows = art.layer_sizes[l + 1] as usize;
        let wt = &art.weights_t[l];
        let mut z = vec![0i32; rows];
        // Column-broadcast order: input element j multiplies the whole
        // column, partial sums accumulate into z — the AAP core's order.
        // The columns are streamed from the derived transposed image, so
        // the inner accumulation is unit-stride on both z and wt.
        for (j, &xj) in a.iter().enumerate() {
            let wt_col = &wt[j * rows..(j + 1) * rows];
            for (zi, &w) in z.iter_mut().zip(wt_col) {
                *zi = fx_add(*zi, fx_mul(w, xj, frac));
            }
        }
        for (zi, &bi) in z.iter_mut().zip(&art.biases[l]) {
            *zi = fx_add(*zi, bi);
        }
        let act = if l + 1 == n {
            art.output_act
        } else {
            art.hidden_act
        };
        for zi in z.iter_mut() {
            *zi = apply_act(act, *zi, frac);
            *zi = apply_spec(&art.specs[l + 1], *zi);
        }
        a = z;
    }
    a
}
