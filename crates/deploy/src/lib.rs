//! Integer-only deployment artifacts for frozen FIXAR policies.
//!
//! FIXAR's end goal is a policy that runs on integer-only hardware. This
//! crate is the last mile: it freezes a trained QAT actor into a
//! [`PolicyArtifact`] — a self-contained blob of raw `i32` weight words,
//! activation kinds, and per-point integer quantizer specs — plus a
//! standalone interpreter that evaluates it with **zero floating-point
//! operations**, bit-identical to the frozen `fixar-nn` forward pass. The
//! crate depends only on `fixar-fixed` (for the shared integer tanh ROM)
//! and the `bytes` shim; none of the float-capable tensor or network
//! machinery is reachable from the inference path.
//!
//! The no-float contract is machine-checked three ways:
//!
//! 1. **Statically** — a test greps the interpreter source for float
//!    tokens.
//! 2. **Dynamically** — the `deploy-float-guard` feature arms a
//!    per-thread tripwire ([`guard`]) that panics if any instrumented
//!    float helper of this crate runs while the interpreter holds a
//!    [`guard::NoFloatZone`].
//! 3. **Differentially** — `tests/deploy_props.rs` proves artifact output
//!    ≡ `forward_qat_frozen` bit-for-bit across agents, precision-policy
//!    arms, and serialization round-trips.
//!
//! # Blob layout (v2, little-endian)
//!
//! ```text
//! ┌──────────┬─────────┬───────────┬────────────┬──────────────────┐
//! │ "FXDA"   │ version │ frac_bits │ num_layers │ layer_sizes      │
//! │ 4 bytes  │ u32 = 2 │ u32 = 20  │ u32 = n    │ (n+1) × u32      │
//! ├──────────┴─────────┴───────────┴────────────┴──────────────────┤
//! │ hidden_act u8 · output_act u8                                  │
//! ├────────────────────────────────────────────────────────────────┤
//! │ per layer l: weights rows·cols × i32 (row-major), bias rows×i32│
//! ├────────────────────────────────────────────────────────────────┤
//! │ num_points u32 = n+1, then per point one spec:                 │
//! │   tag 0 = pass-through                                         │
//! │   tag 1 = shift     (shift u32, zero_point i64, max_code i64)  │
//! │   tag 2 = table     (len u32, thresholds len×i64,              │
//! │                      len+1 u32, dequant (len+1)×i32)           │
//! │   tag 3 = packed table (len u32, n_finite u32, then per packed │
//! │           sequence: base i64, min_delta i64, width u8,         │
//! │           ⌈(count-1)·width/64⌉ × u64 — finite thresholds when  │
//! │           n_finite > 0, then the len+1 dequant words)          │
//! ├────────────────────────────────────────────────────────────────┤
//! │ FNV-1a 64 checksum of everything above · u64                   │
//! └────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Tag 3 is the delta-compressed form of tag 2 (see `compress.rs`):
//! thresholds of a calibrated quantizer are rounded-affine ramps whose
//! consecutive differences span one or two values, so they bit-pack at
//! 1-2 bits per entry instead of 64. Compression is lossless and the
//! encoder verifies the round-trip before emitting tag 3, falling back
//! to tag 2 otherwise — decoding reproduces every threshold word
//! exactly, so inference is unaffected by the wire form.
//!
//! The trailing checksum doubles as the artifact's
//! [`PolicyArtifact::content_hash`]: encoding is canonical, so equal
//! artifacts hash equal and any byte flip is detected at decode.
//!
//! # Example
//!
//! ```
//! use fixar_deploy::{ActKind, PolicyArtifact};
//! use fixar_fixed::Fx32;
//!
//! // A 2→1 policy: y = x0 + x1 + 0.5 on the Fx32 grid.
//! let one = Fx32::ONE.raw();
//! let art = PolicyArtifact::from_parts(
//!     &[2, 1],
//!     ActKind::Relu,
//!     ActKind::Identity,
//!     vec![vec![one, one]],
//!     vec![vec![Fx32::from_f64(0.5).raw()]],
//!     &[None, None],
//! )?;
//!
//! // Round-trip through bytes, then run the integer interpreter.
//! let blob = art.encode();
//! let back = PolicyArtifact::decode(&blob)?;
//! assert_eq!(back.content_hash(), art.content_hash());
//! assert_eq!(back.infer(&[1.0, 2.0])?, vec![3.5]);
//! # Ok::<(), fixar_deploy::DeployError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod codegen;
mod compress;
mod error;
pub mod guard;
mod interp;

pub use artifact::{ActKind, BlobStats, PolicyArtifact, ARTIFACT_FRAC_BITS};
pub use codegen::verify_generated_source;
pub use error::DeployError;

#[cfg(test)]
mod no_float_source_gate {
    /// The static half of the no-float contract: the interpreter source
    /// must not mention float types or float-producing methods, not even
    /// in comments. The dynamic half is the `deploy-float-guard` feature.
    #[test]
    fn interpreter_source_has_no_float_tokens() {
        let src = include_str!("interp.rs");
        for token in [
            "f32", "f64", "to_f", "from_f", ".floor", ".round", "powi", "powf", "as f",
        ] {
            assert!(
                !src.contains(token),
                "interp.rs contains forbidden float token {token:?}"
            );
        }
    }
}
