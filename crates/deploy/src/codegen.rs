//! `no_std` Rust source generation from a [`PolicyArtifact`].
//!
//! [`PolicyArtifact::emit_rust`] turns a frozen policy into one
//! self-contained source file: weights and biases as `static` `i32`
//! arrays on the artifact grid, the i64-accumulated MAC loop, the
//! piecewise-linear tanh ROM, and each activation point's quantizer
//! unrolled inline — [`QuantSpec::Shift`] as shift/clamp expressions,
//! [`QuantSpec::Table`] as an O(1) multiply-shift when the table fit
//! the affine fast path (no threshold array in the source at all), or
//! a `static` threshold array plus a binary search otherwise. The
//! artifact's FNV-1a content hash is baked in as a `pub const` so
//! deployed firmware is auditable against the serving fleet.
//!
//! The emitted file declares `#![no_std]`, contains no `use` items,
//! and reaches nothing outside `core` — [`verify_generated_source`]
//! is the static gate, and `tests/deploy_props.rs` compiles the
//! output and proves it bit-equal to [`PolicyArtifact::infer_raw`].
//!
//! Large threshold tables are emitted in the same packed-delta form
//! the wire format uses (`compress.rs`): a compact `const` word array
//! plus a `const fn` that reconstructs the full table at *compile
//! time*, shrinking the generated source by roughly the blob's
//! compression ratio while the unpacking arithmetic is checked by the
//! compiler's const evaluator (any overflow is a build error).

use std::fmt::Write;

use crate::artifact::{ActKind, PolicyArtifact, QuantSpec};
use crate::compress::{self, PackedSeq};

/// Float tokens forbidden in generated source — the same list the
/// interpreter's static gate uses. Hex literals are emitted with
/// uppercase digits so `0x..F32..` can never false-positive.
const FLOAT_TOKENS: [&str; 9] = [
    "f32", "f64", "to_f", "from_f", ".floor", ".round", "powi", "powf", "as f",
];

/// Static gate over generated source: rejects anything that is not
/// dependency-free integer-only `no_std` Rust.
///
/// Checks, in order: the file declares `#![no_std]`; outside that
/// declaration the token `std` never appears; `alloc` never appears;
/// no line declares a `use` or `extern crate` item; none of the float
/// tokens of the interpreter gate appear.
///
/// # Errors
///
/// A human-readable description of the first violated rule.
pub fn verify_generated_source(src: &str) -> Result<(), String> {
    if !src.contains("#![no_std]") {
        return Err("generated source does not declare #![no_std]".into());
    }
    let stripped = src.replace("#![no_std]", "");
    if stripped.contains("std") {
        return Err("generated source references `std`".into());
    }
    if stripped.contains("alloc") {
        return Err("generated source references `alloc`".into());
    }
    for line in src.lines() {
        let t = line.trim_start();
        if t.starts_with("use ") || t.starts_with("extern crate") {
            return Err(format!("generated source declares an import: {t:?}"));
        }
    }
    for token in FLOAT_TOKENS {
        if src.contains(token) {
            return Err(format!("generated source contains float token {token:?}"));
        }
    }
    Ok(())
}

/// `i64` literal text, with the rails spelled symbolically so the
/// sentinel conventions stay readable and no literal overflows.
fn lit_i64(v: i64) -> String {
    if v == i64::MAX {
        "i64::MAX".into()
    } else if v == i64::MIN {
        "i64::MIN".into()
    } else {
        v.to_string()
    }
}

/// `i32` literal text; `i32::MIN` has no negatable literal form.
fn lit_i32(v: i32) -> String {
    if v == i32::MIN {
        "i32::MIN".into()
    } else {
        v.to_string()
    }
}

/// Emits `decl name: [ty; len] = [ ... ];`, wrapped a few values per
/// line so the file stays diffable.
fn emit_array(out: &mut String, decl: &str, name: &str, ty: &str, vals: &[String]) {
    if vals.is_empty() {
        let _ = writeln!(out, "{decl} {name}: [{ty}; 0] = [];");
        return;
    }
    let _ = writeln!(out, "{decl} {name}: [{ty}; {}] = [", vals.len());
    for chunk in vals.chunks(12) {
        let _ = writeln!(out, "    {},", chunk.join(", "));
    }
    let _ = writeln!(out, "];");
}

/// Emits the packed-word `const` plus the `static` initializer call
/// that unpacks it at compile time.
fn emit_packed_i64(out: &mut String, name: &str, p: &PackedSeq, total_len: usize) {
    let words: Vec<String> = p.words.iter().map(|w| format!("{w:#018X}")).collect();
    emit_array(out, "const", &format!("{name}_W"), "u64", &words);
    let _ = writeln!(
        out,
        "static {name}: [i64; {total_len}] = unpack_i64::<{total_len}>({}, {}, {}, {}, &{name}_W);",
        lit_i64(p.base),
        lit_i64(p.min_delta),
        p.width,
        p.count,
    );
}

/// As [`emit_packed_i64`] for a fully-finite `i32` sequence.
fn emit_packed_i32(out: &mut String, name: &str, p: &PackedSeq) {
    let words: Vec<String> = p.words.iter().map(|w| format!("{w:#018X}")).collect();
    emit_array(out, "const", &format!("{name}_W"), "u64", &words);
    let _ = writeln!(
        out,
        "static {name}: [i32; {count}] = unpack_i32::<{count}>({}, {}, {}, &{name}_W);",
        lit_i64(p.base),
        lit_i64(p.min_delta),
        p.width,
        count = p.count,
    );
}

/// The compile-time unpackers, emitted only for the variants the file
/// actually uses (an affine-quantized artifact carries no threshold
/// arrays, so it gets `unpack_i32` alone — nothing dead in the source).
/// They mirror `compress::unpack_seq` exactly; entries past `n` in the
/// `i64` variant are the `i64::MAX` sentinel (codes no input reaches).
fn emit_unpack_helpers(out: &mut String, need_i64: bool, need_i32: bool) {
    if need_i64 {
        out.push_str(
            "const fn unpack_i64<const N: usize>(\n\
             \x20   base: i64,\n\
             \x20   min_delta: i64,\n\
             \x20   width: u32,\n\
             \x20   n: u32,\n\
             \x20   words: &[u64],\n\
             ) -> [i64; N] {\n\
             \x20   let mut out = [i64::MAX; N];\n\
             \x20   if n == 0 {\n\
             \x20       return out;\n\
             \x20   }\n\
             \x20   out[0] = base;\n\
             \x20   let mut acc = base;\n\
             \x20   let mut k = 0;\n\
             \x20   while k + 1 < n as usize {\n\
             \x20       acc = acc + min_delta + unpack_field(width, k, words) as i64;\n\
             \x20       out[k + 1] = acc;\n\
             \x20       k += 1;\n\
             \x20   }\n\
             \x20   out\n\
             }\n\n",
        );
    }
    if need_i32 {
        out.push_str(
            "const fn unpack_i32<const N: usize>(\n\
             \x20   base: i64,\n\
             \x20   min_delta: i64,\n\
             \x20   width: u32,\n\
             \x20   words: &[u64],\n\
             ) -> [i32; N] {\n\
             \x20   let mut out = [0i32; N];\n\
             \x20   out[0] = base as i32;\n\
             \x20   let mut acc = base;\n\
             \x20   let mut k = 0;\n\
             \x20   while k + 1 < N {\n\
             \x20       acc = acc + min_delta + unpack_field(width, k, words) as i64;\n\
             \x20       out[k + 1] = acc as i32;\n\
             \x20       k += 1;\n\
             \x20   }\n\
             \x20   out\n\
             }\n\n",
        );
    }
    if need_i64 || need_i32 {
        out.push_str(
            "const fn unpack_field(width: u32, k: usize, words: &[u64]) -> u64 {\n\
             \x20   if width == 0 {\n\
             \x20       return 0;\n\
             \x20   }\n\
             \x20   let bit = k * width as usize;\n\
             \x20   let word = bit >> 6;\n\
             \x20   let off = (bit & 63) as u32;\n\
             \x20   let mut field = words[word] >> off;\n\
             \x20   if off + width > 64 {\n\
             \x20       field |= words[word + 1] << (64 - off);\n\
             \x20   }\n\
             \x20   field & ((1u64 << width) - 1)\n\
             }\n\n",
        );
    }
}

impl PolicyArtifact {
    /// Generates a self-contained `#![no_std]` Rust source file that
    /// evaluates this policy with integer arithmetic only, bit-equal
    /// to [`PolicyArtifact::infer_raw`].
    ///
    /// The file exports `CONTENT_HASH` (the artifact's FNV-1a content
    /// hash), `INPUT_DIM`, `OUTPUT_DIM`, `FRAC_BITS`, and
    /// `infer(obs: &[i32; INPUT_DIM], action: &mut [i32; OUTPUT_DIM])`.
    /// It depends on nothing outside `core` — no `use` items at all —
    /// and passes [`verify_generated_source`]; the differential suite
    /// in `tests/deploy_props.rs` compiles it and proves bit-equality
    /// across agents and precision-policy arms.
    pub fn emit_rust(&self) -> String {
        let frac = self.frac_bits;
        let n = self.weights.len();
        let hash = self.content_hash();
        let mut out = String::new();

        let _ = writeln!(
            out,
            "//! FIXAR policy {hash:#018X} — generated integer-only inference source.\n\
             //!\n\
             //! Layers: {:?} · grid Q{}.{frac} · emitted by fixar-deploy codegen.\n\
             //! Call [`infer`] on raw grid words; the result is bit-equal to the\n\
             //! source artifact's interpreter. No imports, nothing outside `core`.\n\
             #![no_std]\n",
            self.layer_sizes(),
            32 - frac,
        );
        let _ = writeln!(
            out,
            "/// FNV-1a 64 content hash of the source artifact blob.\n\
             pub const CONTENT_HASH: u64 = {hash:#018X};\n\
             /// Observation words expected by [`infer`].\n\
             pub const INPUT_DIM: usize = {};\n\
             /// Action words produced by [`infer`].\n\
             pub const OUTPUT_DIM: usize = {};\n\
             /// Fractional bits of the fixed-point grid.\n\
             pub const FRAC_BITS: u32 = {frac};\n",
            self.input_dim(),
            self.output_dim(),
        );

        // Weight and bias statics. Weights are emitted in the same
        // column-major (transposed) image the interpreter streams, so
        // the generated column-broadcast loop below is unit-stride.
        for l in 0..n {
            let w: Vec<String> = self.weights_t[l].iter().map(|&v| lit_i32(v)).collect();
            emit_array(&mut out, "static", &format!("W{l}"), "i32", &w);
            let b: Vec<String> = self.biases[l].iter().map(|&v| lit_i32(v)).collect();
            emit_array(&mut out, "static", &format!("B{l}"), "i32", &b);
        }
        out.push('\n');

        // Table statics, packed where the wire format would pack them.
        // Affine-qualified tables drop their threshold array entirely —
        // the quantizer fn below is a multiply-shift and only the
        // dequant ramp survives into the source.
        let mut need_unpack_i64 = false;
        let mut need_unpack_i32 = false;
        let mut table_decls = String::new();
        for (p, spec) in self.specs.iter().enumerate() {
            if let QuantSpec::Table {
                thresholds,
                dequant,
                affine,
            } = spec
            {
                let packed = compress::compress_table(thresholds, dequant);
                if affine.is_none() {
                    match packed.as_ref().map(|ct| &ct.finite) {
                        Some(Some(seq)) => {
                            need_unpack_i64 = true;
                            emit_packed_i64(
                                &mut table_decls,
                                &format!("T{p}"),
                                seq,
                                thresholds.len(),
                            );
                        }
                        Some(None) => {
                            let _ = writeln!(
                                table_decls,
                                "static T{p}: [i64; {}] = [i64::MAX; {}];",
                                thresholds.len(),
                                thresholds.len(),
                            );
                        }
                        None => {
                            let t: Vec<String> = thresholds.iter().map(|&v| lit_i64(v)).collect();
                            emit_array(&mut table_decls, "static", &format!("T{p}"), "i64", &t);
                        }
                    }
                }
                match packed {
                    Some(ct) => {
                        need_unpack_i32 = true;
                        emit_packed_i32(&mut table_decls, &format!("D{p}"), &ct.dequant);
                    }
                    None => {
                        let d: Vec<String> = dequant.iter().map(|&v| lit_i32(v)).collect();
                        emit_array(&mut table_decls, "static", &format!("D{p}"), "i32", &d);
                    }
                }
            }
        }
        emit_unpack_helpers(&mut out, need_unpack_i64, need_unpack_i32);
        out.push_str(&table_decls);
        out.push('\n');

        // The tanh ROM, only when some layer uses it.
        let acts_used: Vec<ActKind> = (0..n)
            .map(|l| {
                if l + 1 == n {
                    self.output_act
                } else {
                    self.hidden_act
                }
            })
            .collect();
        let need_tanh = acts_used.contains(&ActKind::Tanh);
        if need_tanh {
            let rom: Vec<String> = fixar_fixed::math::TANH_Q30
                .iter()
                .map(|v| v.to_string())
                .collect();
            emit_array(&mut out, "static", "TANH_Q30", "i64", &rom);
            out.push('\n');
        }

        // Arithmetic helpers — one operation at a time, in the same
        // order as the interpreter, so every word matches.
        out.push_str(
            "#[inline]\n\
             fn clamp_word(v: i64) -> i32 {\n\
             \x20   if v > i32::MAX as i64 {\n\
             \x20       i32::MAX\n\
             \x20   } else if v < i32::MIN as i64 {\n\
             \x20       i32::MIN\n\
             \x20   } else {\n\
             \x20       v as i32\n\
             \x20   }\n\
             }\n\n",
        );
        let _ = writeln!(
            out,
            "#[inline]\n\
             fn fx_mul(a: i32, b: i32) -> i32 {{\n\
             \x20   let wide = a as i64 * b as i64;\n\
             \x20   clamp_word((wide + (1i64 << {})) >> {frac})\n\
             }}\n\n\
             #[inline]\n\
             fn fx_add(a: i32, b: i32) -> i32 {{\n\
             \x20   a.saturating_add(b)\n\
             }}\n",
            frac - 1,
        );
        if need_tanh {
            let one = 1i64 << frac;
            let seg_shift = frac - 4;
            let q30_shift = 30 - frac;
            let q30_expr = if q30_shift == 0 {
                "v".to_string()
            } else {
                format!("(v + (1i64 << {})) >> {q30_shift}", q30_shift - 1)
            };
            let _ = writeln!(
                out,
                "#[inline]\n\
                 fn q30_to_grid(v: i64) -> i64 {{\n\
                 \x20   {q30_expr}\n\
                 }}\n\n\
                 #[inline]\n\
                 fn tanh_word(r: i32) -> i32 {{\n\
                 \x20   let raw = r as i64;\n\
                 \x20   let ax = if raw < 0 {{ -raw }} else {{ raw }};\n\
                 \x20   let y = if ax >= {xmax} {{\n\
                 \x20       {one}\n\
                 \x20   }} else {{\n\
                 \x20       let idx = (ax >> {seg_shift}) as usize;\n\
                 \x20       let rem = ax & {rem_mask};\n\
                 \x20       let y0 = q30_to_grid(TANH_Q30[idx]);\n\
                 \x20       let y1 = q30_to_grid(TANH_Q30[idx + 1]);\n\
                 \x20       y0 + (((y1 - y0) * rem) >> {seg_shift})\n\
                 \x20   }};\n\
                 \x20   clamp_word(if raw < 0 {{ -y }} else {{ y }})\n\
                 }}\n",
                xmax = 4 * one,
                rem_mask = (1i64 << seg_shift) - 1,
            );
        }

        // One quantizer fn per non-pass-through activation point.
        for (p, spec) in self.specs.iter().enumerate() {
            match spec {
                QuantSpec::PassThrough => {}
                QuantSpec::Shift {
                    shift,
                    zero_point,
                    max_code,
                } => {
                    let _ = writeln!(
                        out,
                        "#[inline]\n\
                         fn quant_p{p}(r: i32) -> i32 {{\n\
                         \x20   let code = ((r as i64) >> {shift})\n\
                         \x20       .saturating_add({zp})\n\
                         \x20       .clamp(0, {max});\n\
                         \x20   let scaled = (code.saturating_sub({zp}) as i128) << {shift};\n\
                         \x20   if scaled > i32::MAX as i128 {{\n\
                         \x20       i32::MAX\n\
                         \x20   }} else if scaled < i32::MIN as i128 {{\n\
                         \x20       i32::MIN\n\
                         \x20   }} else {{\n\
                         \x20       scaled as i32\n\
                         \x20   }}\n\
                         }}\n",
                        zp = lit_i64(*zero_point),
                        max = lit_i64(*max_code),
                    );
                }
                QuantSpec::Table {
                    affine: Some(aff), ..
                } => {
                    // O(1) affine fast path: the fitted multiply-shift is
                    // proven equal to the lower-bound search over the
                    // whole i32 domain, so no threshold array is emitted.
                    let _ = writeln!(
                        out,
                        "#[inline]\n\
                         fn quant_p{p}(r: i32) -> i32 {{\n\
                         \x20   let x = r as i64 - ({base});\n\
                         \x20   let code = if x < 0 {{\n\
                         \x20       0\n\
                         \x20   }} else if x >= {span} {{\n\
                         \x20       {nf}\n\
                         \x20   }} else {{\n\
                         \x20       (((x as u128 * {mul}u128 + {add}u128) >> {shift}) as usize) + 1\n\
                         \x20   }};\n\
                         \x20   D{p}[code]\n\
                         }}\n",
                        shift = compress::AFFINE_SHIFT,
                        base = lit_i64(aff.base),
                        span = lit_i64(aff.span),
                        nf = aff.n_finite,
                        mul = aff.mul,
                        add = aff.add,
                    );
                }
                QuantSpec::Table { affine: None, .. } => {
                    // Manual lower-bound search computing exactly
                    // `thresholds.partition_point(|&t| t <= r as i64)`.
                    let _ = writeln!(
                        out,
                        "#[inline]\n\
                         fn quant_p{p}(r: i32) -> i32 {{\n\
                         \x20   let key = r as i64;\n\
                         \x20   let mut lo = 0;\n\
                         \x20   let mut hi = T{p}.len();\n\
                         \x20   while lo < hi {{\n\
                         \x20       let mid = lo + (hi - lo) / 2;\n\
                         \x20       if T{p}[mid] <= key {{\n\
                         \x20           lo = mid + 1;\n\
                         \x20       }} else {{\n\
                         \x20           hi = mid;\n\
                         \x20       }}\n\
                         \x20   }}\n\
                         \x20   D{p}[lo]\n\
                         }}\n",
                    );
                }
            }
        }

        // The inference entry point: the interpreter walk, unrolled
        // per layer over the statics above.
        let _ = writeln!(
            out,
            "/// Evaluates the policy on one raw grid observation.\n\
             pub fn infer(obs: &[i32; INPUT_DIM], action: &mut [i32; OUTPUT_DIM]) {{"
        );
        if matches!(self.specs[0], QuantSpec::PassThrough) {
            let _ = writeln!(out, "    let x0 = *obs;");
        } else {
            let _ = writeln!(
                out,
                "    let mut x0 = *obs;\n\
                 \x20   let mut j = 0;\n\
                 \x20   while j < INPUT_DIM {{\n\
                 \x20       x0[j] = quant_p0(x0[j]);\n\
                 \x20       j += 1;\n\
                 \x20   }}"
            );
        }
        for (l, &act) in acts_used.iter().enumerate() {
            let rows = self.layer_sizes[l + 1] as usize;
            let cols = self.layer_sizes[l] as usize;
            let _ = writeln!(
                out,
                "    let mut x{next} = [0i32; {rows}];\n\
                 \x20   let mut j = 0;\n\
                 \x20   while j < {cols} {{\n\
                 \x20       let xj = x{l}[j];\n\
                 \x20       let col: &[i32; {rows}] = match W{l}[j * {rows}..(j + 1) * {rows}].try_into() {{\n\
                 \x20           Ok(c) => c,\n\
                 \x20           Err(_) => unreachable!(),\n\
                 \x20       }};\n\
                 \x20       let mut i = 0;\n\
                 \x20       while i < {rows} {{\n\
                 \x20           x{next}[i] = fx_add(x{next}[i], fx_mul(col[i], xj));\n\
                 \x20           i += 1;\n\
                 \x20       }}\n\
                 \x20       j += 1;\n\
                 \x20   }}\n\
                 \x20   let mut i = 0;\n\
                 \x20   while i < {rows} {{\n\
                 \x20       let v = fx_add(x{next}[i], B{l}[i]);",
                next = l + 1,
            );
            match act {
                ActKind::Identity => {}
                ActKind::Relu => {
                    let _ = writeln!(out, "        let v = if v < 0 {{ 0 }} else {{ v }};");
                }
                ActKind::Tanh => {
                    let _ = writeln!(out, "        let v = tanh_word(v);");
                }
            }
            if !matches!(self.specs[l + 1], QuantSpec::PassThrough) {
                let _ = writeln!(out, "        let v = quant_p{}(v);", l + 1);
            }
            let _ = writeln!(
                out,
                "        x{next}[i] = v;\n\
                 \x20       i += 1;\n\
                 \x20   }}",
                next = l + 1,
            );
        }
        let _ = writeln!(out, "    *action = x{n};\n}}");
        debug_assert!(verify_generated_source(&out).is_ok());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_fixed::{AffineQuantizer, Fx32, QFormat};

    fn raw(x: f64) -> i32 {
        Fx32::from_f64(x).raw()
    }

    fn artifact_with_all_spec_kinds() -> PolicyArtifact {
        // Shift spec on the hidden point (format quantizer), Table spec
        // on the output point (calibrated range), pass-through input.
        let q_shift = AffineQuantizer::from_format(QFormat::q(4, 12).unwrap()).unwrap();
        // Range width 2.1 → delta 2.1/256, not a power of two → Table.
        let q_table = AffineQuantizer::from_range(-0.9, 1.2, 8).unwrap();
        PolicyArtifact::from_parts(
            &[2, 3, 1],
            ActKind::Relu,
            ActKind::Tanh,
            vec![
                vec![
                    raw(0.5),
                    raw(-1.25),
                    raw(2.0),
                    raw(0.125),
                    raw(-0.33),
                    raw(0.77),
                ],
                vec![raw(1.0), raw(-0.75), raw(0.4)],
            ],
            vec![vec![raw(0.1), raw(-0.2), raw(0.3)], vec![raw(0.05)]],
            &[None, Some(&q_shift), Some(&q_table)],
        )
        .unwrap()
    }

    #[test]
    fn emitted_source_passes_the_static_gate() {
        let src = artifact_with_all_spec_kinds().emit_rust();
        verify_generated_source(&src).unwrap();
    }

    #[test]
    fn emitted_source_declares_the_public_contract() {
        let art = artifact_with_all_spec_kinds();
        let src = art.emit_rust();
        let hash = art.content_hash();
        assert!(src.contains(&format!("pub const CONTENT_HASH: u64 = {hash:#018X};")));
        assert!(src.contains("pub const INPUT_DIM: usize = 2;"));
        assert!(src.contains("pub const OUTPUT_DIM: usize = 1;"));
        assert!(src.contains("pub const FRAC_BITS: u32 = 20;"));
        assert!(
            src.contains("pub fn infer(obs: &[i32; INPUT_DIM], action: &mut [i32; OUTPUT_DIM])")
        );
    }

    #[test]
    fn emitted_source_unrolls_each_spec_kind() {
        let src = artifact_with_all_spec_kinds().emit_rust();
        // Shift point: shift/clamp expressions, no table statics.
        assert!(src.contains("fn quant_p1"));
        assert!(src.contains(".clamp(0, 65535)"));
        // Table point: the calibrated ramp fits the affine fast path, so
        // the quantizer is a multiply-shift over the dequant ramp alone —
        // no threshold array survives into the source.
        assert!(src.contains("fn quant_p2"));
        assert!(
            !src.contains("static T2"),
            "affine table emitted thresholds"
        );
        assert!(src.contains(&format!(">> {}", compress::AFFINE_SHIFT)));
        assert!(src.contains("static D2"));
        // Tanh output layer pulls in the ROM.
        assert!(src.contains("static TANH_Q30"));
    }

    #[test]
    fn non_affine_tables_keep_the_search() {
        // A sorted table bent off any affine line must fall back to the
        // emitted threshold array + binary search.
        let mut thresholds: Vec<i64> = (0..16).map(|k| k * 48).collect();
        thresholds[7] += 5;
        let dequant: Vec<i32> = (0..17).map(|c| c * 40).collect();
        let spec = QuantSpec::table(thresholds, dequant);
        assert!(matches!(spec, QuantSpec::Table { affine: None, .. }));
        let art = PolicyArtifact::assemble(
            20,
            vec![1, 1],
            ActKind::Identity,
            ActKind::Identity,
            vec![vec![Fx32::ONE.raw()]],
            vec![vec![0]],
            vec![QuantSpec::PassThrough, spec],
        );
        let src = art.emit_rust();
        verify_generated_source(&src).unwrap();
        assert!(
            src.contains("static T1"),
            "fallback needs the threshold array"
        );
        assert!(src.contains("while lo < hi"), "fallback needs the search");
    }

    #[test]
    fn large_tables_are_emitted_packed() {
        let q = AffineQuantizer::from_range(-0.9, 1.2, 12).unwrap();
        let art = PolicyArtifact::from_parts(
            &[1, 1],
            ActKind::Identity,
            ActKind::Identity,
            vec![vec![Fx32::ONE.raw()]],
            vec![vec![0]],
            &[None, Some(&q)],
        )
        .unwrap();
        let src = art.emit_rust();
        verify_generated_source(&src).unwrap();
        // The 12-bit calibrated ramp is affine, so no threshold array is
        // emitted at all — only the packed dequant ramp and its unpacker.
        assert!(
            !src.contains("const T1_W"),
            "affine table emitted thresholds"
        );
        assert!(src.contains("const D1_W"), "dequant ramp should be packed");
        assert!(src.contains("unpack_i32"), "i32 unpacker should be emitted");
        assert!(
            !src.contains("unpack_i64"),
            "no threshold array, no i64 unpacker"
        );
        // A 12-bit raw table would be ~4095 i64 literals plus ~4096 i32
        // literals; affine + packed emission must come in far under that.
        assert!(
            src.len() < 120_000,
            "packed emission should shrink the source ({} bytes)",
            src.len()
        );
    }

    #[test]
    fn identity_policy_emits_minimal_source() {
        let art = PolicyArtifact::from_parts(
            &[2, 1],
            ActKind::Identity,
            ActKind::Identity,
            vec![vec![Fx32::ONE.raw(), Fx32::ONE.raw()]],
            vec![vec![0]],
            &[None, None],
        )
        .unwrap();
        let src = art.emit_rust();
        verify_generated_source(&src).unwrap();
        assert!(!src.contains("TANH_Q30"), "no tanh layer, no ROM");
        assert!(!src.contains("quant_p"), "no quantizers, no quant fns");
        assert!(!src.contains("unpack_i64"), "no tables, no unpackers");
    }

    #[test]
    fn gate_rejects_std_floats_and_imports() {
        assert!(
            verify_generated_source("fn main() {}").is_err(),
            "missing no_std"
        );
        for bad in [
            "#![no_std]\nuse core::mem;\n",
            "#![no_std]\nextern crate foo;\n",
            "#![no_std]\nfn f() { std::mem::drop(()); }\n",
            "#![no_std]\nfn f(x: f32) {}\n",
            "#![no_std]\nfn f(x: f64) {}\n",
        ] {
            assert!(verify_generated_source(bad).is_err(), "{bad:?}");
        }
        assert!(verify_generated_source("#![no_std]\npub fn f() -> i32 { 7 }\n").is_ok());
    }
}
