//! The deployment artifact: integer layout, export-time quantizer
//! freezing, serialization, and the public inference entry points.
//!
//! An artifact is everything a frozen policy needs and nothing it does
//! not: raw `i32` weight/bias words on the `Fx32` grid, the activation
//! kinds, and one integer [`QuantSpec`] per activation point. The float
//! machinery of `fixar-nn` is consulted once, at export time, to compile
//! each [`AffineQuantizer`] into either a shift (power-of-two step) or a
//! threshold table (arbitrary calibrated step); after that the interpreter
//! in `interp.rs` never touches a float.

use bytes::Bytes;
use fixar_fixed::{AffineQuantizer, Fx32};

use crate::compress::{self, CompressedTable, PackedSeq};
use crate::error::DeployError;
use crate::guard;
use crate::interp;

/// Fractional bits of the v1 artifact grid — the `Fx32` (Q12.20) format
/// every FIXAR policy trains in.
pub const ARTIFACT_FRAC_BITS: u32 = 20;

const MAGIC: [u8; 4] = *b"FXDA";
/// v2 added compressed threshold tables (spec tag 3) to the wire format.
const VERSION: u32 = 2;

/// Widest code space representable as a threshold table (2^16 codes).
/// Wider quantizers must have a power-of-two step or export fails with
/// [`DeployError::UnsupportedQuantizer`].
const MAX_TABLE_BITS: u32 = 16;

/// Decode-time cap on the layer count; real FIXAR actors have 2-3 layers,
/// so anything huge is a corrupt or hostile blob, rejected before any
/// allocation is sized from it.
const MAX_LAYERS: u32 = 1024;

/// Activation kind of an artifact layer.
///
/// The integer interpreter implements each kind directly on raw words:
/// identity is a pass-through, relu is `max(x, 0)`, tanh is the shared
/// 64-segment piecewise-linear ROM from `fixar_fixed::math`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActKind {
    /// Pass-through.
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent (piecewise-linear ROM).
    Tanh,
}

impl ActKind {
    fn tag(self) -> u8 {
        match self {
            ActKind::Identity => 0,
            ActKind::Relu => 1,
            ActKind::Tanh => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ActKind::Identity),
            1 => Some(ActKind::Relu),
            2 => Some(ActKind::Tanh),
            _ => None,
        }
    }
}

/// A frozen activation quantizer compiled to integer form.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum QuantSpec {
    /// No quantization at this point (no quantizer, excluded point, or a
    /// runtime that never reached quantize mode).
    PassThrough,
    /// Power-of-two step: quantization is an arithmetic shift.
    Shift {
        /// `frac_bits + log2(step)` — the shift distance.
        shift: u32,
        /// Algorithm 1's zero point `z`.
        zero_point: i64,
        /// Largest code, `2^bits - 1`.
        max_code: i64,
    },
    /// Arbitrary calibrated step: quantization is a sorted threshold
    /// search, dequantization a direct table lookup.
    Table {
        /// Entry `k` is the smallest raw word reaching code `k + 1`
        /// (`i64::MAX` marks codes no `i32` raw word reaches).
        thresholds: Vec<i64>,
        /// Raw output word for each code (`thresholds.len() + 1` entries).
        dequant: Vec<i32>,
        /// O(1) multiply-shift replacement for the threshold search,
        /// present when the table is exactly an affine code ramp.
        /// Derived from `thresholds` at construction (never serialized),
        /// so `PartialEq` on the derived fields stays sound.
        affine: Option<compress::AffineIndex>,
    },
}

impl QuantSpec {
    /// The one way to build a [`QuantSpec::Table`]: fits the O(1) affine
    /// fast path against the thresholds (proven, not assumed — see
    /// [`compress::affine_fit`]) so every producer, including
    /// [`PolicyArtifact::decode`] on hostile blobs, gets the
    /// specialization exactly when it is bit-exact.
    pub(crate) fn table(thresholds: Vec<i64>, dequant: Vec<i32>) -> Self {
        let affine = compress::affine_fit(&thresholds);
        QuantSpec::Table {
            thresholds,
            dequant,
            affine,
        }
    }
}

/// The exact base-2 exponent of `x`, when `x` is a positive power of two
/// (normal, zero mantissa); `None` otherwise.
fn exact_log2(x: f64) -> Option<i32> {
    let bits = x.to_bits();
    let exp = (bits >> 52) & 0x7ff;
    let mantissa = bits & ((1u64 << 52) - 1);
    if x <= 0.0 || exp == 0 || exp == 0x7ff || mantissa != 0 {
        return None;
    }
    Some(exp as i32 - 1023)
}

/// The code the reference float path assigns to a raw `Fx32` word — the
/// oracle the threshold tables are compiled against.
fn quantize_code(q: &AffineQuantizer, raw: i32) -> i64 {
    guard::float_op("quantizer oracle evaluation during export");
    q.quantize(Fx32::from_raw(raw).to_f64())
}

/// The smallest raw word whose code reaches `c`, by binary search over the
/// monotone quantize-of-raw map; `i64::MAX` when no raw word reaches it.
fn threshold_for(q: &AffineQuantizer, c: i64) -> i64 {
    if quantize_code(q, i32::MAX) < c {
        return i64::MAX;
    }
    let (mut lo, mut hi) = (i32::MIN as i64, i32::MAX as i64);
    // Invariant: quantize_code(hi) >= c; converges on the smallest such raw.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if quantize_code(q, mid as i32) >= c {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    hi
}

/// Compiles a frozen [`AffineQuantizer`] into its integer-only spec.
///
/// Power-of-two steps become [`QuantSpec::Shift`]; any other step becomes
/// a [`QuantSpec::Table`] when the code space fits, and is rejected
/// otherwise. Both forms reproduce `fake_quantize_scalar` on the `Fx32`
/// grid bit-for-bit — the shift because every float step of the reference
/// path is exact power-of-two scaling, the table because it is compiled
/// against the reference path as an oracle.
fn spec_for_quantizer(point: usize, q: &AffineQuantizer) -> Result<QuantSpec, DeployError> {
    guard::float_op("freezing a quantizer into an integer spec");
    let max_code = (1i64 << q.bits()) - 1;
    if let Some(e) = exact_log2(q.delta()) {
        let s = ARTIFACT_FRAC_BITS as i64 + e as i64;
        if (0..=62).contains(&s) {
            return Ok(QuantSpec::Shift {
                shift: s as u32,
                zero_point: q.zero_point(),
                max_code,
            });
        }
    }
    if q.bits() > MAX_TABLE_BITS {
        return Err(DeployError::UnsupportedQuantizer {
            point,
            bits: q.bits(),
        });
    }
    let thresholds: Vec<i64> = (1..=max_code).map(|c| threshold_for(q, c)).collect();
    let dequant: Vec<i32> = (0..=max_code)
        .map(|c| Fx32::from_f64(q.dequantize(c)).raw())
        .collect();
    // pow2-snap: a table that is exactly equivalent to a shift spec
    // (arithmetic thresholds at a power-of-two step, matching dequant
    // ramp) is stored as the shift — verified code-by-code first, so
    // the snap cannot change any output word.
    if let Some(snapped) = compress::pow2_snap(&thresholds, &dequant) {
        return Ok(snapped);
    }
    Ok(QuantSpec::table(thresholds, dequant))
}

/// Blob-size accounting for a [`PolicyArtifact`], as reported by
/// [`PolicyArtifact::blob_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlobStats {
    /// Size of [`PolicyArtifact::encode`] (threshold tables
    /// delta-compressed where that is smaller).
    pub bytes: usize,
    /// Size of [`PolicyArtifact::encode_uncompressed`] (every table
    /// stored raw, the v1 layout).
    pub bytes_uncompressed: usize,
    /// Activation points carrying threshold-table quantizers.
    pub table_points: usize,
    /// How many of those tables pack smaller than their raw form.
    pub tables_compressed: usize,
    /// How many of those tables qualified for the O(1) affine
    /// multiply-shift quantizer instead of the threshold search.
    pub tables_affine: usize,
}

/// A self-contained integer-only deployment artifact of a frozen policy.
///
/// Produced by `PolicySnapshot::export_artifact` in `fixar-rl` (or
/// assembled directly with [`PolicyArtifact::from_parts`]), serialized
/// with [`PolicyArtifact::encode`] / [`PolicyArtifact::decode`], and
/// evaluated with [`PolicyArtifact::infer_raw`] — which performs zero
/// floating-point operations — or the `f64` convenience wrapper
/// [`PolicyArtifact::infer`].
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyArtifact {
    /// Fractional bits of the grid (always [`ARTIFACT_FRAC_BITS`] in v1).
    pub(crate) frac_bits: u32,
    /// `num_layers + 1` entries: input dim, hidden dims, output dim.
    pub(crate) layer_sizes: Vec<u32>,
    /// Activation of every hidden layer.
    pub(crate) hidden_act: ActKind,
    /// Activation of the output layer.
    pub(crate) output_act: ActKind,
    /// Per layer, `rows × cols` raw weight words in row-major order.
    pub(crate) weights: Vec<Vec<i32>>,
    /// Per layer, `rows` raw bias words.
    pub(crate) biases: Vec<Vec<i32>>,
    /// One spec per activation point (`num_layers + 1`).
    pub(crate) specs: Vec<QuantSpec>,
    /// Per layer, the `cols × rows` column-major (transposed) image of
    /// `weights` — derived at construction, never serialized (the
    /// derived value is a pure function of `weights`, so the derived
    /// `PartialEq` stays consistent). The interpreter streams one
    /// transposed row per input element, making its per-output
    /// accumulation unit-stride instead of walking `weights` with a
    /// `cols`-element stride.
    pub(crate) weights_t: Vec<Vec<i32>>,
}

impl PolicyArtifact {
    /// Assembles an artifact from raw parts: layer sizes, activations,
    /// raw weight/bias words on the `Fx32` grid, and the frozen quantizer
    /// (if any) at each of the `num_layers + 1` activation points.
    ///
    /// # Errors
    ///
    /// [`DeployError::DimensionMismatch`] when any component length
    /// disagrees with `layer_sizes`, [`DeployError::Corrupt`] for empty or
    /// degenerate shapes, and [`DeployError::UnsupportedQuantizer`] when a
    /// quantizer has no integer-only form.
    ///
    /// # Example
    ///
    /// ```
    /// use fixar_deploy::{ActKind, PolicyArtifact};
    /// use fixar_fixed::Fx32;
    ///
    /// // y = relu(x0 + x1) for a 2→1 net with unit weights, zero bias.
    /// let one = Fx32::ONE.raw();
    /// let art = PolicyArtifact::from_parts(
    ///     &[2, 1],
    ///     ActKind::Identity,
    ///     ActKind::Relu,
    ///     vec![vec![one, one]],
    ///     vec![vec![0]],
    ///     &[None, None],
    /// )?;
    /// assert_eq!(art.infer(&[1.5, -0.25])?, vec![1.25]);
    /// # Ok::<(), fixar_deploy::DeployError>(())
    /// ```
    pub fn from_parts(
        layer_sizes: &[usize],
        hidden_act: ActKind,
        output_act: ActKind,
        weights: Vec<Vec<i32>>,
        biases: Vec<Vec<i32>>,
        quantizers: &[Option<&AffineQuantizer>],
    ) -> Result<Self, DeployError> {
        if layer_sizes.len() < 2 {
            return Err(DeployError::Corrupt(
                "a policy needs at least one layer".into(),
            ));
        }
        if layer_sizes.iter().any(|&s| s == 0 || s > u32::MAX as usize) {
            return Err(DeployError::Corrupt("zero or oversized layer size".into()));
        }
        let n = layer_sizes.len() - 1;
        if weights.len() != n {
            return Err(DeployError::DimensionMismatch {
                expected: n,
                got: weights.len(),
            });
        }
        if biases.len() != n {
            return Err(DeployError::DimensionMismatch {
                expected: n,
                got: biases.len(),
            });
        }
        if quantizers.len() != n + 1 {
            return Err(DeployError::DimensionMismatch {
                expected: n + 1,
                got: quantizers.len(),
            });
        }
        for l in 0..n {
            let rows = layer_sizes[l + 1];
            let cols = layer_sizes[l];
            if weights[l].len() != rows * cols {
                return Err(DeployError::DimensionMismatch {
                    expected: rows * cols,
                    got: weights[l].len(),
                });
            }
            if biases[l].len() != rows {
                return Err(DeployError::DimensionMismatch {
                    expected: rows,
                    got: biases[l].len(),
                });
            }
        }
        let specs = quantizers
            .iter()
            .enumerate()
            .map(|(point, q)| match q {
                Some(q) => spec_for_quantizer(point, q),
                None => Ok(QuantSpec::PassThrough),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::assemble(
            ARTIFACT_FRAC_BITS,
            layer_sizes.iter().map(|&s| s as u32).collect(),
            hidden_act,
            output_act,
            weights,
            biases,
            specs,
        ))
    }

    /// Finishes construction from validated parts: derives the
    /// transposed weight images the interpreter streams. Every
    /// constructor ([`PolicyArtifact::from_parts`],
    /// [`PolicyArtifact::decode`], in-crate tests) funnels through here
    /// so the derived field can never disagree with `weights`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        frac_bits: u32,
        layer_sizes: Vec<u32>,
        hidden_act: ActKind,
        output_act: ActKind,
        weights: Vec<Vec<i32>>,
        biases: Vec<Vec<i32>>,
        specs: Vec<QuantSpec>,
    ) -> Self {
        let weights_t = weights
            .iter()
            .enumerate()
            .map(|(l, w)| {
                let rows = layer_sizes[l + 1] as usize;
                let cols = layer_sizes[l] as usize;
                let mut wt = vec![0i32; w.len()];
                for i in 0..rows {
                    for (j, &wij) in w[i * cols..(i + 1) * cols].iter().enumerate() {
                        wt[j * rows + i] = wij;
                    }
                }
                wt
            })
            .collect();
        Self {
            frac_bits,
            layer_sizes,
            hidden_act,
            output_act,
            weights,
            biases,
            specs,
            weights_t,
        }
    }

    /// Observation dimension.
    pub fn input_dim(&self) -> usize {
        self.layer_sizes[0] as usize
    }

    /// Action dimension.
    pub fn output_dim(&self) -> usize {
        *self.layer_sizes.last().expect("validated layer sizes") as usize
    }

    /// Number of weight layers.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Fractional bits of the artifact's fixed-point grid.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Layer sizes, input through output.
    pub fn layer_sizes(&self) -> Vec<usize> {
        self.layer_sizes.iter().map(|&s| s as usize).collect()
    }

    /// Evaluates the policy on one raw `Fx32` observation vector using
    /// only integer arithmetic — the deployment inference path. The
    /// result words are bit-identical to the frozen `fixar-nn` forward
    /// pass on the same observation.
    ///
    /// # Errors
    ///
    /// [`DeployError::DimensionMismatch`] when `obs` is not
    /// [`PolicyArtifact::input_dim`] long.
    pub fn infer_raw(&self, obs: &[i32]) -> Result<Vec<i32>, DeployError> {
        if obs.len() != self.input_dim() {
            return Err(DeployError::DimensionMismatch {
                expected: self.input_dim(),
                got: obs.len(),
            });
        }
        Ok(interp::run(self, obs))
    }

    /// `f64` convenience wrapper around [`PolicyArtifact::infer_raw`]:
    /// projects the observation onto the `Fx32` grid, runs the integer
    /// interpreter, and converts the action back. The conversions at the
    /// edges are the only float operations — they happen *outside* the
    /// interpreter's no-float zone.
    ///
    /// # Errors
    ///
    /// As [`PolicyArtifact::infer_raw`].
    pub fn infer(&self, obs: &[f64]) -> Result<Vec<f64>, DeployError> {
        guard::float_op("observation/action conversion at the artifact boundary");
        let raw: Vec<i32> = obs.iter().map(|&x| Fx32::from_f64(x).raw()).collect();
        let out = self.infer_raw(&raw)?;
        Ok(out
            .into_iter()
            .map(|r| Fx32::from_raw(r).to_f64())
            .collect())
    }

    /// Serializes the artifact to its canonical byte layout (see the
    /// crate docs for the diagram). Encoding is deterministic: equal
    /// artifacts produce identical blobs, which is what makes
    /// [`PolicyArtifact::content_hash`] a stable identity.
    ///
    /// Threshold tables are stored delta-compressed (spec tag 3)
    /// whenever the lossless packed form is smaller than the raw table;
    /// [`PolicyArtifact::decode`] reproduces every threshold and
    /// dequant word exactly, so compression never affects inference.
    pub fn encode(&self) -> Bytes {
        self.encode_with(true)
    }

    /// Serializes the artifact with every threshold table stored raw
    /// (spec tag 2), i.e. the v1 table layout. Decodes to the same
    /// artifact as [`PolicyArtifact::encode`]; exists so blob-size
    /// accounting (and the `deploy_inference` bench) can report the
    /// uncompressed baseline.
    pub fn encode_uncompressed(&self) -> Bytes {
        self.encode_with(false)
    }

    fn encode_with(&self, compress_tables: bool) -> Bytes {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        put_u32(&mut out, self.frac_bits);
        put_u32(&mut out, self.weights.len() as u32);
        for &s in &self.layer_sizes {
            put_u32(&mut out, s);
        }
        out.push(self.hidden_act.tag());
        out.push(self.output_act.tag());
        for l in 0..self.weights.len() {
            for &w in &self.weights[l] {
                put_i32(&mut out, w);
            }
            for &b in &self.biases[l] {
                put_i32(&mut out, b);
            }
        }
        put_u32(&mut out, self.specs.len() as u32);
        for spec in &self.specs {
            match spec {
                QuantSpec::PassThrough => out.push(0),
                QuantSpec::Shift {
                    shift,
                    zero_point,
                    max_code,
                } => {
                    out.push(1);
                    put_u32(&mut out, *shift);
                    put_i64(&mut out, *zero_point);
                    put_i64(&mut out, *max_code);
                }
                QuantSpec::Table {
                    thresholds,
                    dequant,
                    affine: _,
                } => {
                    let compressed = if compress_tables {
                        compress::compress_table(thresholds, dequant)
                    } else {
                        None
                    };
                    match compressed {
                        Some(ct) => {
                            out.push(3);
                            put_compressed_table(&mut out, &ct);
                        }
                        None => {
                            out.push(2);
                            put_u32(&mut out, thresholds.len() as u32);
                            for &t in thresholds {
                                put_i64(&mut out, t);
                            }
                            put_u32(&mut out, dequant.len() as u32);
                            for &d in dequant {
                                put_i32(&mut out, d);
                            }
                        }
                    }
                }
            }
        }
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        Bytes::from(out)
    }

    /// Blob-size accounting: compressed and uncompressed encodings side
    /// by side, plus how many activation points carry threshold tables
    /// and how many of those pack smaller than raw.
    pub fn blob_stats(&self) -> BlobStats {
        let table_points = self
            .specs
            .iter()
            .filter(|s| matches!(s, QuantSpec::Table { .. }))
            .count();
        let tables_compressed = self
            .specs
            .iter()
            .filter(|s| match s {
                QuantSpec::Table {
                    thresholds,
                    dequant,
                    ..
                } => compress::compress_table(thresholds, dequant).is_some(),
                _ => false,
            })
            .count();
        let tables_affine = self
            .specs
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    QuantSpec::Table {
                        affine: Some(_),
                        ..
                    }
                )
            })
            .count();
        BlobStats {
            bytes: self.encode().len(),
            bytes_uncompressed: self.encode_uncompressed().len(),
            table_points,
            tables_compressed,
            tables_affine,
        }
    }

    /// The artifact's content hash: the FNV-1a 64 checksum of its
    /// canonical encoding (the same word [`PolicyArtifact::encode`]
    /// appends as the blob trailer). Two artifacts hash equal exactly
    /// when their encodings are byte-identical.
    pub fn content_hash(&self) -> u64 {
        let blob = self.encode();
        let tail: [u8; 8] = blob[blob.len() - 8..]
            .try_into()
            .expect("encode always appends an 8-byte checksum");
        u64::from_le_bytes(tail)
    }

    /// Decodes an artifact from bytes, validating structure and the
    /// trailing checksum. Never panics on malformed input.
    ///
    /// # Errors
    ///
    /// Every malformed input maps to a typed [`DeployError`]:
    /// [`DeployError::Truncated`], [`DeployError::BadMagic`],
    /// [`DeployError::UnsupportedVersion`],
    /// [`DeployError::UnsupportedFormat`], [`DeployError::Corrupt`], or
    /// [`DeployError::ChecksumMismatch`].
    pub fn decode(blob: &[u8]) -> Result<Self, DeployError> {
        let mut cur = Cursor { data: blob, pos: 0 };
        if cur.take(4)? != MAGIC {
            return Err(DeployError::BadMagic);
        }
        let version = cur.u32()?;
        if version != VERSION {
            return Err(DeployError::UnsupportedVersion(version));
        }
        let frac_bits = cur.u32()?;
        if frac_bits != ARTIFACT_FRAC_BITS {
            return Err(DeployError::UnsupportedFormat { frac_bits });
        }
        let n = cur.u32()?;
        if n == 0 || n > MAX_LAYERS {
            return Err(DeployError::Corrupt(format!("implausible layer count {n}")));
        }
        let n = n as usize;
        let mut layer_sizes = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            let s = cur.u32()?;
            if s == 0 {
                return Err(DeployError::Corrupt("zero layer size".into()));
            }
            layer_sizes.push(s);
        }
        let hidden_act = ActKind::from_tag(cur.u8()?)
            .ok_or_else(|| DeployError::Corrupt("unknown hidden activation tag".into()))?;
        let output_act = ActKind::from_tag(cur.u8()?)
            .ok_or_else(|| DeployError::Corrupt("unknown output activation tag".into()))?;
        let mut weights = Vec::with_capacity(n);
        let mut biases = Vec::with_capacity(n);
        for l in 0..n {
            let rows = layer_sizes[l + 1] as usize;
            let cols = layer_sizes[l] as usize;
            let elems = rows
                .checked_mul(cols)
                .ok_or_else(|| DeployError::Corrupt("layer size product overflow".into()))?;
            weights.push(cur.i32_vec(elems)?);
            biases.push(cur.i32_vec(rows)?);
        }
        let num_points = cur.u32()? as usize;
        if num_points != n + 1 {
            return Err(DeployError::Corrupt(format!(
                "expected {} activation points, blob declares {num_points}",
                n + 1
            )));
        }
        let mut specs = Vec::with_capacity(num_points);
        for _ in 0..num_points {
            let spec = match cur.u8()? {
                0 => QuantSpec::PassThrough,
                1 => {
                    let shift = cur.u32()?;
                    if shift > 62 {
                        return Err(DeployError::Corrupt(format!(
                            "shift distance {shift} out of range"
                        )));
                    }
                    let zero_point = cur.i64()?;
                    let max_code = cur.i64()?;
                    if max_code < 0 {
                        return Err(DeployError::Corrupt("negative code range".into()));
                    }
                    QuantSpec::Shift {
                        shift,
                        zero_point,
                        max_code,
                    }
                }
                2 => {
                    let tlen = cur.u32()? as usize;
                    let thresholds = cur.i64_vec(tlen)?;
                    let dlen = cur.u32()? as usize;
                    if dlen != tlen + 1 {
                        return Err(DeployError::Corrupt(format!(
                            "table with {tlen} thresholds but {dlen} dequant entries"
                        )));
                    }
                    let dequant = cur.i32_vec(dlen)?;
                    QuantSpec::table(thresholds, dequant)
                }
                3 => {
                    let n_thresholds = cur.u32()?;
                    if n_thresholds == 0 || n_thresholds > 1 << MAX_TABLE_BITS {
                        return Err(DeployError::Corrupt(format!(
                            "implausible compressed table with {n_thresholds} thresholds"
                        )));
                    }
                    let n_finite = cur.u32()?;
                    if n_finite > n_thresholds {
                        return Err(DeployError::Corrupt(format!(
                            "compressed table declares {n_finite} finite of {n_thresholds} \
                             thresholds"
                        )));
                    }
                    let finite = if n_finite > 0 {
                        Some(read_packed_seq(&mut cur, n_finite)?)
                    } else {
                        None
                    };
                    let dequant = read_packed_seq(&mut cur, n_thresholds + 1)?;
                    let ct = CompressedTable {
                        n_thresholds,
                        finite,
                        dequant,
                    };
                    let (thresholds, dequant) =
                        compress::decompress_table(&ct).ok_or_else(|| {
                            DeployError::Corrupt("compressed table does not reconstruct".into())
                        })?;
                    QuantSpec::table(thresholds, dequant)
                }
                t => {
                    return Err(DeployError::Corrupt(format!("unknown spec tag {t}")));
                }
            };
            specs.push(spec);
        }
        let body_end = cur.pos;
        let stored = cur.u64()?;
        if cur.pos != blob.len() {
            return Err(DeployError::Corrupt("trailing bytes after checksum".into()));
        }
        let computed = fnv1a64(&blob[..body_end]);
        if stored != computed {
            return Err(DeployError::ChecksumMismatch { stored, computed });
        }
        Ok(Self::assemble(
            frac_bits,
            layer_sizes,
            hidden_act,
            output_act,
            weights,
            biases,
            specs,
        ))
    }
}

/// FNV-1a 64-bit hash — small, dependency-free, and deterministic across
/// platforms, which is all a content hash needs here.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_packed_seq(out: &mut Vec<u8>, p: &PackedSeq) {
    put_i64(out, p.base);
    put_i64(out, p.min_delta);
    out.push(p.width);
    for &w in &p.words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Tag-3 wire form: total count, finite count, then the packed finite
/// prefix (when present) and the packed dequant ramp. Sequence element
/// counts are implied by the two header counts, and word counts by
/// count × width, so the layout stays self-describing without
/// redundancy a corrupt blob could make inconsistent.
fn put_compressed_table(out: &mut Vec<u8>, ct: &CompressedTable) {
    put_u32(out, ct.n_thresholds);
    put_u32(out, ct.finite.as_ref().map_or(0, |p| p.count));
    if let Some(p) = &ct.finite {
        put_packed_seq(out, p);
    }
    put_packed_seq(out, &ct.dequant);
}

/// Reads one packed sequence whose element count is known from the table
/// header, validating the width before sizing the word read from it.
fn read_packed_seq(cur: &mut Cursor<'_>, count: u32) -> Result<PackedSeq, DeployError> {
    let base = cur.i64()?;
    let min_delta = cur.i64()?;
    let width = cur.u8()?;
    if width > 63 {
        return Err(DeployError::Corrupt(format!(
            "packed-sequence width {width} out of range"
        )));
    }
    let n_words = PackedSeq::expected_words(count, width);
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(cur.u64()?);
    }
    Ok(PackedSeq {
        base,
        min_delta,
        width,
        count,
        words,
    })
}

/// Bounds-checked reader over a blob; every read reports exactly what was
/// needed versus what remained, so truncation errors are actionable.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], DeployError> {
        let remaining = self.data.len() - self.pos;
        if remaining < n {
            return Err(DeployError::Truncated {
                needed: n,
                remaining,
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DeployError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DeployError> {
        let b: [u8; 4] = self.take(4)?.try_into().expect("exactly 4 bytes");
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, DeployError> {
        let b: [u8; 8] = self.take(8)?.try_into().expect("exactly 8 bytes");
        Ok(u64::from_le_bytes(b))
    }

    fn i64(&mut self) -> Result<i64, DeployError> {
        Ok(self.u64()? as i64)
    }

    fn i32_vec(&mut self, len: usize) -> Result<Vec<i32>, DeployError> {
        let needed = len
            .checked_mul(4)
            .ok_or_else(|| DeployError::Corrupt("element count overflow".into()))?;
        let bytes = self.take(needed)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().expect("exactly 4 bytes")))
            .collect())
    }

    fn i64_vec(&mut self, len: usize) -> Result<Vec<i64>, DeployError> {
        let needed = len
            .checked_mul(8)
            .ok_or_else(|| DeployError::Corrupt("element count overflow".into()))?;
        let bytes = self.take(needed)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().expect("exactly 8 bytes")))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use fixar_fixed::{QFormat, Scalar};

    fn raw(x: f64) -> i32 {
        Fx32::from_f64(x).raw()
    }

    fn tiny_artifact() -> PolicyArtifact {
        // 2 → 2 → 1 with relu hidden, tanh output, a format quantizer on
        // the hidden point (Shift spec) and pass-through elsewhere.
        let q = AffineQuantizer::from_format(QFormat::q(4, 12).unwrap()).unwrap();
        PolicyArtifact::from_parts(
            &[2, 2, 1],
            ActKind::Relu,
            ActKind::Tanh,
            vec![
                vec![raw(0.5), raw(-1.25), raw(2.0), raw(0.125)],
                vec![raw(1.0), raw(-0.75)],
            ],
            vec![vec![raw(0.1), raw(-0.2)], vec![raw(0.05)]],
            &[None, Some(&q), None],
        )
        .unwrap()
    }

    /// Reference evaluation of `tiny_artifact` through the real `Fx32`
    /// scalar type — the interpreter must match it word for word.
    fn tiny_reference(obs: [f64; 2], q: &AffineQuantizer) -> Vec<i32> {
        let w0 = [raw(0.5), raw(-1.25), raw(2.0), raw(0.125)].map(Fx32::from_raw);
        let b0 = [raw(0.1), raw(-0.2)].map(Fx32::from_raw);
        let w1 = [raw(1.0), raw(-0.75)].map(Fx32::from_raw);
        let b1 = Fx32::from_raw(raw(0.05));
        let x = obs.map(Fx32::from_f64);
        let mut h = [Fx32::ZERO; 2];
        for (j, &xj) in x.iter().enumerate() {
            for (i, hi) in h.iter_mut().enumerate() {
                *hi += w0[i * 2 + j] * xj;
            }
        }
        for (hi, &bi) in h.iter_mut().zip(&b0) {
            *hi += bi;
            *hi = hi.relu();
            *hi = q.fake_quantize_scalar(*hi);
        }
        let mut y = Fx32::ZERO;
        for (j, &hj) in h.iter().enumerate() {
            y += w1[j] * hj;
        }
        y = (y + b1).tanh();
        vec![y.raw()]
    }

    #[test]
    fn interpreter_matches_fx32_reference_bit_for_bit() {
        let art = tiny_artifact();
        let q = AffineQuantizer::from_format(QFormat::q(4, 12).unwrap()).unwrap();
        for obs in [
            [0.0, 0.0],
            [1.0, -1.0],
            [0.37, 2.41],
            [-100.0, 100.0],
            [2047.0, -2048.0],
        ] {
            let got = art.infer_raw(&[raw(obs[0]), raw(obs[1])]).unwrap();
            assert_eq!(got, tiny_reference(obs, &q), "obs={obs:?}");
        }
    }

    #[test]
    fn shift_spec_replicates_format_quantizer_exactly() {
        for fmt in [
            QFormat::q(4, 12).unwrap(),
            QFormat::q(2, 6).unwrap(),
            QFormat::q(8, 8).unwrap(),
            QFormat::q(1, 15).unwrap(),
        ] {
            let q = AffineQuantizer::from_format(fmt).unwrap();
            let spec = spec_for_quantizer(0, &q).unwrap();
            assert!(matches!(spec, QuantSpec::Shift { .. }), "{fmt}");
            let art = PolicyArtifact::assemble(
                ARTIFACT_FRAC_BITS,
                vec![1, 1],
                ActKind::Identity,
                ActKind::Identity,
                vec![vec![Fx32::ONE.raw()]],
                vec![vec![0]],
                vec![spec, QuantSpec::PassThrough],
            );
            for r in [
                0,
                1,
                -1,
                12345,
                -98765,
                raw(1.3),
                raw(-7.9),
                i32::MAX,
                i32::MIN,
                raw(500.0),
            ] {
                let want = q.fake_quantize_scalar(Fx32::from_raw(r)).raw();
                let got = art.infer_raw(&[r]).unwrap()[0];
                assert_eq!(got, want, "fmt={fmt} raw={r}");
            }
        }
    }

    #[test]
    fn table_spec_replicates_range_quantizer_exactly() {
        // Calibrated ranges produce non-power-of-two steps → Table specs.
        for (min, max, bits) in [(-3.0, 4.0, 8), (-0.7, 0.4, 10), (0.0, 10.0, 6)] {
            let q = AffineQuantizer::from_range(min, max, bits).unwrap();
            assert!(exact_log2(q.delta()).is_none(), "step must not be 2^k");
            let spec = spec_for_quantizer(0, &q).unwrap();
            assert!(matches!(spec, QuantSpec::Table { .. }));
            let art = PolicyArtifact::assemble(
                ARTIFACT_FRAC_BITS,
                vec![1, 1],
                ActKind::Identity,
                ActKind::Identity,
                vec![vec![Fx32::ONE.raw()]],
                vec![vec![0]],
                vec![spec, QuantSpec::PassThrough],
            );
            for i in -400..400 {
                let r = i * 37_991; // sweep the raw range, off-grid
                let want = q.fake_quantize_scalar(Fx32::from_raw(r)).raw();
                let got = art.infer_raw(&[r]).unwrap()[0];
                assert_eq!(got, want, "range=[{min},{max}]x{bits} raw={r}");
            }
            for r in [i32::MAX, i32::MIN, 0] {
                let want = q.fake_quantize_scalar(Fx32::from_raw(r)).raw();
                assert_eq!(art.infer_raw(&[r]).unwrap()[0], want);
            }
        }
    }

    #[test]
    fn wide_non_power_of_two_quantizer_is_rejected() {
        let q = AffineQuantizer::from_range(-3.0, 4.0, 20).unwrap();
        let err = spec_for_quantizer(7, &q).unwrap_err();
        assert_eq!(
            err,
            DeployError::UnsupportedQuantizer { point: 7, bits: 20 }
        );
    }

    #[test]
    fn encode_decode_roundtrips() {
        let art = tiny_artifact();
        let blob = art.encode();
        let back = PolicyArtifact::decode(&blob).unwrap();
        assert_eq!(back, art);
        assert_eq!(back.encode(), blob);
        assert_eq!(back.content_hash(), art.content_hash());
    }

    #[test]
    fn decode_rejects_malformed_blobs_with_typed_errors() {
        let blob = tiny_artifact().encode().to_vec();

        assert_eq!(
            PolicyArtifact::decode(&[]).unwrap_err(),
            DeployError::Truncated {
                needed: 4,
                remaining: 0
            }
        );
        let mut bad_magic = blob.clone();
        bad_magic[0] = b'Z';
        assert_eq!(
            PolicyArtifact::decode(&bad_magic).unwrap_err(),
            DeployError::BadMagic
        );
        let mut bad_version = blob.clone();
        bad_version[4] = 99;
        assert_eq!(
            PolicyArtifact::decode(&bad_version).unwrap_err(),
            DeployError::UnsupportedVersion(99)
        );
        let mut bad_frac = blob.clone();
        bad_frac[8] = 7;
        assert_eq!(
            PolicyArtifact::decode(&bad_frac).unwrap_err(),
            DeployError::UnsupportedFormat { frac_bits: 7 }
        );
        // Truncation anywhere in the body is typed, never a panic.
        for cut in [5, 17, blob.len() / 2, blob.len() - 1] {
            assert!(matches!(
                PolicyArtifact::decode(&blob[..cut]),
                Err(DeployError::Truncated { .. })
            ));
        }
        // A flipped weight byte survives structure checks but fails the
        // checksum.
        let mut flipped = blob.clone();
        let weight_offset = 4 + 4 + 4 + 4 + 3 * 4 + 2;
        flipped[weight_offset] ^= 0x40;
        assert!(matches!(
            PolicyArtifact::decode(&flipped).unwrap_err(),
            DeployError::ChecksumMismatch { .. }
        ));
        // Trailing garbage is rejected.
        let mut padded = blob.clone();
        padded.push(0);
        assert!(matches!(
            PolicyArtifact::decode(&padded).unwrap_err(),
            DeployError::Corrupt(_)
        ));
    }

    #[test]
    fn content_hash_tracks_content() {
        let a = tiny_artifact();
        let mut b = a.clone();
        assert_eq!(a.content_hash(), b.content_hash());
        b.biases[0][0] ^= 1;
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn from_parts_validates_shapes() {
        assert!(matches!(
            PolicyArtifact::from_parts(&[2], ActKind::Relu, ActKind::Identity, vec![], vec![], &[]),
            Err(DeployError::Corrupt(_))
        ));
        assert_eq!(
            PolicyArtifact::from_parts(
                &[2, 1],
                ActKind::Relu,
                ActKind::Identity,
                vec![vec![0, 0, 0]], // 3 words, needs 2
                vec![vec![0]],
                &[None, None],
            )
            .unwrap_err(),
            DeployError::DimensionMismatch {
                expected: 2,
                got: 3
            }
        );
        assert_eq!(
            PolicyArtifact::from_parts(
                &[2, 1],
                ActKind::Relu,
                ActKind::Identity,
                vec![vec![0, 0]],
                vec![vec![0]],
                &[None], // needs 2 points
            )
            .unwrap_err(),
            DeployError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn infer_checks_observation_dimension() {
        let art = tiny_artifact();
        assert_eq!(
            art.infer_raw(&[0]).unwrap_err(),
            DeployError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(art.input_dim(), 2);
        assert_eq!(art.output_dim(), 1);
        assert_eq!(art.num_layers(), 2);
        assert_eq!(art.layer_sizes(), vec![2, 2, 1]);
        assert_eq!(art.frac_bits(), ARTIFACT_FRAC_BITS);
    }
}
