//! Typed errors of the deployment-artifact layer.
//!
//! Every failure mode — malformed blobs, unsupported quantizers, shape
//! mismatches — is a [`DeployError`] variant. Decoding untrusted bytes
//! never panics; the proptest suite in `tests/deploy_props.rs` feeds
//! truncated and corrupted blobs through the decoder to hold that line.

use core::fmt;
use std::error::Error;

/// Error exporting, decoding, or interpreting a deployment artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum DeployError {
    /// The blob ended before a field could be read.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The blob does not start with the artifact magic `b"FXDA"`.
    BadMagic,
    /// The blob's format version is newer than this interpreter.
    UnsupportedVersion(u32),
    /// The artifact's fixed-point grid is not the `Fx32` format this
    /// interpreter implements.
    UnsupportedFormat {
        /// Fractional bits declared by the blob.
        frac_bits: u32,
    },
    /// A structural invariant of the layout is violated (zero layer size,
    /// unknown tag, inconsistent table lengths, trailing bytes, ...).
    Corrupt(String),
    /// The trailing checksum does not match the body.
    ChecksumMismatch {
        /// Checksum stored in the blob.
        stored: u64,
        /// Checksum recomputed over the body.
        computed: u64,
    },
    /// A frozen quantizer cannot be expressed as an integer-only spec
    /// (its step is not a power of two and its code space is too wide for
    /// a threshold table).
    UnsupportedQuantizer {
        /// Activation-point index of the offending quantizer.
        point: usize,
        /// Its code width in bits.
        bits: u32,
    },
    /// An input or component has the wrong length.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "artifact truncated: needed {needed} bytes, {remaining} remaining"
                )
            }
            DeployError::BadMagic => write!(f, "not a FIXAR deployment artifact (bad magic)"),
            DeployError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact version {v}")
            }
            DeployError::UnsupportedFormat { frac_bits } => {
                write!(
                    f,
                    "unsupported fixed-point grid with {frac_bits} fractional bits"
                )
            }
            DeployError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
            DeployError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            DeployError::UnsupportedQuantizer { point, bits } => {
                write!(
                    f,
                    "quantizer at point {point} ({bits} bits, non-power-of-two step) has no \
                     integer-only form"
                )
            }
            DeployError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl Error for DeployError {}

#[cfg(test)]
mod tests {
    use super::DeployError;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let cases = [
            (
                DeployError::Truncated {
                    needed: 8,
                    remaining: 3,
                },
                "truncated",
            ),
            (DeployError::BadMagic, "magic"),
            (DeployError::UnsupportedVersion(9), "version 9"),
            (
                DeployError::UnsupportedFormat { frac_bits: 10 },
                "10 fractional",
            ),
            (
                DeployError::Corrupt("zero layer size".into()),
                "zero layer size",
            ),
            (
                DeployError::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                "checksum",
            ),
            (
                DeployError::UnsupportedQuantizer { point: 3, bits: 20 },
                "point 3",
            ),
            (
                DeployError::DimensionMismatch {
                    expected: 4,
                    got: 2,
                },
                "expected 4",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }
}
