//! The float-guard instrumentation behind the artifact's no-float contract.
//!
//! The interpreter in this crate claims to execute **zero** floating-point
//! operations. That claim is enforced twice: statically (a test greps the
//! interpreter source for float tokens) and dynamically through this
//! module. Every function in `fixar-deploy` that performs floating-point
//! arithmetic — export-time quantizer freezing, the `f64` convenience
//! wrapper around inference — calls [`float_op`] first. The integer-only
//! entry point ([`crate::PolicyArtifact::infer_raw`]) arms a
//! [`NoFloatZone`] for the duration of the walk, so with the
//! `deploy-float-guard` cargo feature enabled, any float helper reached
//! from inside it panics immediately.
//!
//! Without the feature the hooks compile to no-ops, so production builds
//! pay nothing.
//!
//! # Example
//!
//! ```
//! use fixar_deploy::guard::{self, NoFloatZone};
//!
//! assert!(!guard::is_active());
//! let zone = NoFloatZone::enter();
//! // With `deploy-float-guard` enabled, any instrumented float helper
//! // called here would panic; `is_active` reports whether the tripwire
//! // is armed.
//! assert_eq!(guard::is_active(), cfg!(feature = "deploy-float-guard"));
//! drop(zone);
//! assert!(!guard::is_active());
//! ```

use std::cell::Cell;

thread_local! {
    static ARMED: Cell<u32> = const { Cell::new(0) };
}

/// RAII guard arming the no-float tripwire on the current thread.
///
/// Zones nest; the tripwire disarms when the last zone on the thread
/// drops. Arming is per-thread by design: parallel callers each arm their
/// own worker, so a float operation on an unrelated thread never trips a
/// zone it did not enter.
#[derive(Debug)]
pub struct NoFloatZone {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl NoFloatZone {
    /// Arms the tripwire for the current thread until the zone drops.
    pub fn enter() -> Self {
        ARMED.with(|a| a.set(a.get() + 1));
        Self {
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for NoFloatZone {
    fn drop(&mut self) {
        ARMED.with(|a| a.set(a.get() - 1));
    }
}

/// `true` when a [`NoFloatZone`] is armed on this thread **and** the
/// `deploy-float-guard` feature is compiled in (without the feature the
/// tripwire never fires, so it reports inactive).
pub fn is_active() -> bool {
    cfg!(feature = "deploy-float-guard") && ARMED.with(|a| a.get()) > 0
}

/// Instrumentation hook: declares that the caller is about to perform
/// floating-point arithmetic.
///
/// No-op unless the `deploy-float-guard` feature is enabled and a
/// [`NoFloatZone`] is armed on this thread — then it panics, naming the
/// operation, because a float op inside the zone falsifies the artifact's
/// integer-only contract.
#[inline]
pub fn float_op(what: &str) {
    #[cfg(feature = "deploy-float-guard")]
    {
        if ARMED.with(|a| a.get()) > 0 {
            panic!("floating-point operation inside a no-float zone: {what}");
        }
    }
    #[cfg(not(feature = "deploy-float-guard"))]
    {
        let _ = what;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zones_nest_and_disarm() {
        assert!(!is_active());
        {
            let _outer = NoFloatZone::enter();
            let inner = NoFloatZone::enter();
            assert_eq!(is_active(), cfg!(feature = "deploy-float-guard"));
            drop(inner);
            assert_eq!(is_active(), cfg!(feature = "deploy-float-guard"));
        }
        assert!(!is_active());
    }

    #[test]
    fn hook_is_silent_outside_a_zone() {
        // Must never panic when no zone is armed, feature or not.
        float_op("unit test probe");
    }

    #[cfg(feature = "deploy-float-guard")]
    #[test]
    fn hook_panics_inside_a_zone_when_armed() {
        let _zone = NoFloatZone::enter();
        let err = std::panic::catch_unwind(|| float_op("unit test probe")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("no-float zone"), "unexpected panic: {msg}");
    }
}
