//! Per-sample vs batched DDPG training-step throughput across batch
//! sizes {32, 64, 128} — the speedup delivered by routing a minibatch
//! through the stack as one `Matrix` per layer
//! (`Ddpg::train_minibatch`) instead of `batch` vector passes
//! (`Ddpg::train_batch`). Both paths produce bit-identical `Fx32`
//! weights (property-tested in `crates/rl/tests/props.rs`), so this
//! bench isolates pure compute-path throughput.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use fixar::prelude::*;
use fixar_rl::TransitionBatch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BATCH_SIZES: [usize; 3] = [32, 64, 128];

fn study_config() -> DdpgConfig {
    // Pendulum-shaped agent at the quick-study network scale (64×48
    // hidden): big enough that kernel time dominates, small enough for a
    // bench run.
    let mut cfg = DdpgConfig::small_test();
    cfg.hidden = (64, 48);
    cfg
}

fn toy_transitions(n: usize, state_dim: usize, action_dim: usize) -> Vec<Transition> {
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    (0..n)
        .map(|_| Transition {
            state: (0..state_dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            action: (0..action_dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            reward: rng.gen_range(-1.0..1.0),
            next_state: (0..state_dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            terminal: rng.gen_bool(0.05),
        })
        .collect()
}

/// Median seconds per training step over `reps` timed repetitions.
fn time_steps(mut step: impl FnMut(), reps: usize) -> f64 {
    // One warmup call, then timed reps.
    step();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            step();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn print_speedup_table() {
    println!("\n=== Batched vs per-sample DDPG training step (Fx32, 64x48 hidden) ===");
    let mut rows = Vec::new();
    for &batch_size in &BATCH_SIZES {
        let data = toy_transitions(batch_size, 3, 1);
        let refs: Vec<&Transition> = data.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs).expect("homogeneous batch");
        let cfg = study_config().with_batch_size(batch_size);

        let mut per_sample = Ddpg::<Fx32>::new(3, 1, cfg).expect("valid config");
        let mut batched = per_sample.clone();

        let reps = 31;
        let t_per_sample = time_steps(
            || {
                per_sample.train_batch(&refs).expect("train");
            },
            reps,
        );
        let t_batched = time_steps(
            || {
                batched.train_minibatch(&batch).expect("train");
            },
            reps,
        );
        rows.push(vec![
            batch_size.to_string(),
            format!("{:.3}", t_per_sample * 1e3),
            format!("{:.3}", t_batched * 1e3),
            format!("{:.2}x", t_per_sample / t_batched),
        ]);
    }
    println!(
        "{}",
        fixar_bench::render_table(
            &["batch", "per-sample ms/step", "batched ms/step", "speedup"],
            &rows
        )
    );
}

fn bench_training_paths(c: &mut Criterion) {
    print_speedup_table();

    for &batch_size in &BATCH_SIZES {
        let data = toy_transitions(batch_size, 3, 1);
        let refs: Vec<&Transition> = data.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs).expect("homogeneous batch");
        let cfg = study_config().with_batch_size(batch_size);

        let mut group = c.benchmark_group(format!("ddpg_train_step_b{batch_size}"));
        group.sample_size(10);
        group.bench_function("per_sample", |b| {
            let mut agent = Ddpg::<Fx32>::new(3, 1, cfg).expect("valid config");
            b.iter(|| {
                agent
                    .train_batch(std::hint::black_box(&refs))
                    .expect("train")
            });
        });
        group.bench_function("batched", |b| {
            let mut agent = Ddpg::<Fx32>::new(3, 1, cfg).expect("valid config");
            b.iter(|| {
                agent
                    .train_minibatch(std::hint::black_box(&batch))
                    .expect("train")
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_training_paths);
criterion_main!(benches);
