//! Per-sample vs batched DDPG training-step throughput across batch
//! sizes {32, 64, 128} — the speedup delivered by routing a minibatch
//! through the stack as one `Matrix` per layer
//! (`Ddpg::train_minibatch`) instead of `batch` vector passes
//! (`Ddpg::train_batch`) — plus the **worker-count sweep** of the
//! pool-parallel kernel path (workers 1/2/4/8 × the same batch sizes).
//! Every path produces bit-identical `Fx32` weights (property-tested in
//! `crates/rl/tests/props.rs` and `tests/workspace_props.rs`), so this
//! bench isolates pure compute-path throughput.
//!
//! Parallel scaling is bounded by the host's cores: the sweep prints
//! the detected core count alongside the speedups (on a single-core
//! host the sharded path measures pure pool overhead, by design).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use fixar::prelude::*;
use fixar_rl::TransitionBatch;
use fixar_tensor::Parallelism;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BATCH_SIZES: [usize; 3] = [32, 64, 128];
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn study_config() -> DdpgConfig {
    // Pendulum-shaped agent at the quick-study network scale (64×48
    // hidden): big enough that kernel time dominates, small enough for a
    // bench run.
    let mut cfg = DdpgConfig::small_test();
    cfg.hidden = (64, 48);
    cfg
}

fn toy_transitions(n: usize, state_dim: usize, action_dim: usize) -> Vec<Transition> {
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    (0..n)
        .map(|_| Transition {
            state: (0..state_dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            action: (0..action_dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            reward: rng.gen_range(-1.0..1.0),
            next_state: (0..state_dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            terminal: rng.gen_bool(0.05),
        })
        .collect()
}

/// Median seconds per training step over `reps` timed repetitions.
fn time_steps(mut step: impl FnMut(), reps: usize) -> f64 {
    // One warmup call, then timed reps.
    step();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            step();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn print_speedup_table() {
    println!("\n=== Batched vs per-sample DDPG training step (Fx32, 64x48 hidden) ===");
    let mut rows = Vec::new();
    for &batch_size in &BATCH_SIZES {
        let data = toy_transitions(batch_size, 3, 1);
        let refs: Vec<&Transition> = data.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs).expect("homogeneous batch");
        let cfg = study_config().with_batch_size(batch_size);

        let mut per_sample = Ddpg::<Fx32>::new(3, 1, cfg.clone()).expect("valid config");
        let mut batched = per_sample.clone();

        let reps = 31;
        let t_per_sample = time_steps(
            || {
                per_sample.train_batch(&refs).expect("train");
            },
            reps,
        );
        let t_batched = time_steps(
            || {
                batched.train_minibatch(&batch).expect("train");
            },
            reps,
        );
        rows.push(vec![
            batch_size.to_string(),
            format!("{:.3}", t_per_sample * 1e3),
            format!("{:.3}", t_batched * 1e3),
            format!("{:.2}x", t_per_sample / t_batched),
        ]);
    }
    println!(
        "{}",
        fixar_bench::render_table(
            &["batch", "per-sample ms/step", "batched ms/step", "speedup"],
            &rows
        )
    );
}

/// Worker-count sweep of the pool-parallel batched training step: the
/// kernels of `train_minibatch` shard across 1/2/4/8 pool workers at a
/// network scale where kernel time dominates (256×192 hidden). Speedup
/// is reported against the 1-worker (sequential-kernel) batched path.
fn print_worker_sweep_table() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n=== Pool-parallel batched training step: worker sweep \
         (Fx32, 256x192 hidden, {cores} host core(s)) ==="
    );
    let mut rows = Vec::new();
    for &batch_size in &BATCH_SIZES {
        let data = toy_transitions(batch_size, 3, 1);
        let refs: Vec<&Transition> = data.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs).expect("homogeneous batch");
        let mut cfg = study_config().with_batch_size(batch_size);
        cfg.hidden = (256, 192);

        let reps = 15;
        let mut base_ms = 0.0;
        let mut row = vec![batch_size.to_string()];
        for &workers in &WORKER_COUNTS {
            let mut agent = Ddpg::<Fx32>::new(3, 1, cfg.clone()).expect("valid config");
            agent.set_parallelism(Parallelism::with_workers(workers));
            let t = time_steps(
                || {
                    agent.train_minibatch(&batch).expect("train");
                },
                reps,
            );
            if workers == 1 {
                base_ms = t * 1e3;
                row.push(format!("{base_ms:.2}"));
            } else {
                row.push(format!("{:.2} ({:.2}x)", t * 1e3, base_ms / (t * 1e3)));
            }
        }
        rows.push(row);
    }
    println!(
        "{}",
        fixar_bench::render_table(
            &[
                "batch",
                "1 worker ms/step",
                "2 workers",
                "4 workers",
                "8 workers"
            ],
            &rows
        )
    );
    println!(
        "(speedup vs the 1-worker batched path; scaling requires free host \
         cores — all worker counts produce bit-identical Fx32 weights)"
    );
}

fn bench_training_paths(c: &mut Criterion) {
    print_speedup_table();
    print_worker_sweep_table();

    for &batch_size in &BATCH_SIZES {
        let data = toy_transitions(batch_size, 3, 1);
        let refs: Vec<&Transition> = data.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs).expect("homogeneous batch");
        let cfg = study_config().with_batch_size(batch_size);

        let mut group = c.benchmark_group(format!("ddpg_train_step_b{batch_size}"));
        group.sample_size(10);
        group.bench_function("per_sample", |b| {
            let mut agent = Ddpg::<Fx32>::new(3, 1, cfg.clone()).expect("valid config");
            b.iter(|| {
                agent
                    .train_batch(std::hint::black_box(&refs))
                    .expect("train")
            });
        });
        group.bench_function("batched", |b| {
            let mut agent = Ddpg::<Fx32>::new(3, 1, cfg.clone()).expect("valid config");
            b.iter(|| {
                agent
                    .train_minibatch(std::hint::black_box(&batch))
                    .expect("train")
            });
        });
        group.bench_function("batched_pool4", |b| {
            let mut agent = Ddpg::<Fx32>::new(3, 1, cfg.clone()).expect("valid config");
            agent.set_parallelism(Parallelism::with_workers(4));
            b.iter(|| {
                agent
                    .train_minibatch(std::hint::black_box(&batch))
                    .expect("train")
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_training_paths);
criterion_main!(benches);
