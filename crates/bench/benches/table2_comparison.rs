//! Table II — Comparison with prior FPGA DRL accelerators (FA3C
//! ASPLOS'19, PPO FCCM'20), including the network-size-normalized peak
//! throughput column.

use criterion::{criterion_group, criterion_main, Criterion};
use fixar::prelude::*;
use fixar_accel::comparison::{self, PlatformEntry};
use fixar_bench::{paper, render_table};

fn row(e: &PlatformEntry, fixar_kb: f64) -> Vec<String> {
    vec![
        e.name.to_string(),
        e.platform.to_string(),
        format!("{:.0}MHz", e.clock_mhz),
        e.algorithm.to_string(),
        e.task_env.to_string(),
        e.precision.label().to_string(),
        e.dsp.to_string(),
        format!("{:.1}KB", e.network_kb),
        format!("{:.1}", e.peak_ips),
        format!("{:.1}", e.normalized_peak_ips(fixar_kb)),
        e.ips_per_watt
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "-".into()),
    ]
}

fn print_table2() {
    println!("\n=== Table II: comparison with previous works ===");
    // Our modelled numbers for the FIXAR row: full-precision peak and the
    // post-QAT efficiency.
    let model = FixarPlatformModel::for_benchmark(17, 6).expect("paper dims");
    let peak_full = model.accelerator_ips(512, Precision::Full32);
    let ips_half = model.accelerator_ips(512, Precision::Half16);
    let eff = PowerModel::ips_per_watt(ips_half, paper::FPGA_POWER_W);

    let entries = comparison::table2(peak_full, eff);
    let fixar_kb = entries[2].network_kb;
    let rows: Vec<Vec<String>> = entries.iter().map(|e| row(e, fixar_kb)).collect();
    println!(
        "{}",
        render_table(
            &[
                "work",
                "platform",
                "clock",
                "algorithm",
                "tasks",
                "precision",
                "DSP",
                "net size",
                "peak IPS",
                "norm. IPS",
                "IPS/W"
            ],
            &rows
        )
    );
    println!(
        "paper's FIXAR row: peak {} IPS, normalized {} IPS, {} IPS/W\n",
        paper::PEAK_IPS_FULL,
        paper::PEAK_IPS_FULL,
        paper::IPS_PER_WATT
    );
}

fn bench_normalization(c: &mut Criterion) {
    print_table2();

    let entries = comparison::table2(38_779.8, 2_638.0);
    c.bench_function("table2_normalization", |b| {
        b.iter(|| {
            entries
                .iter()
                .map(|e| e.normalized_peak_ips(std::hint::black_box(514.4)))
                .sum::<f64>()
        })
    });
}

criterion_group!(benches, bench_normalization);
criterion_main!(benches);
