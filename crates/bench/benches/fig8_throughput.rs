//! Fig. 8 — End-to-end training throughput (IPS) of the FIXAR platform
//! vs the CPU-GPU platform, per benchmark × batch size.

use criterion::{criterion_group, criterion_main, Criterion};
use fixar::prelude::*;
use fixar_bench::{paper, render_table, verdict};

fn print_fig8() {
    println!("\n=== Fig. 8: platform training throughput (IPS) ===");
    let gpu = CpuGpuPlatformModel::for_benchmark();
    let mut rows = Vec::new();
    for kind in EnvKind::PAPER_BENCHMARKS {
        let spec_env = kind.make(0);
        let spec = spec_env.spec();
        let fixar = FixarPlatformModel::for_benchmark(spec.obs_dim, spec.action_dim)
            .expect("paper dims are valid");
        for batch in paper::BATCH_SIZES {
            let f = fixar.ips(batch, Precision::Half16).expect("positive batch");
            let g = gpu.ips(batch);
            rows.push(vec![
                kind.name().to_string(),
                batch.to_string(),
                format!("{f:.1}"),
                format!("{g:.1}"),
                format!("{:.2}x", f / g),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["benchmark", "batch", "FIXAR IPS", "CPU-GPU IPS", "speedup"],
            &rows
        )
    );
    let hc = FixarPlatformModel::for_benchmark(17, 6).unwrap();
    println!(
        "{}",
        verdict(
            "HalfCheetah platform IPS @512",
            hc.ips(512, Precision::Half16).unwrap(),
            paper::PLATFORM_IPS
        )
    );
    println!(
        "{}\n",
        verdict(
            "platform speedup @512",
            hc.ips(512, Precision::Half16).unwrap() / CpuGpuPlatformModel::for_benchmark().ips(512),
            paper::PLATFORM_SPEEDUP
        )
    );
}

fn bench_platform_models(c: &mut Criterion) {
    print_fig8();

    let fixar = FixarPlatformModel::for_benchmark(17, 6).unwrap();
    let gpu = CpuGpuPlatformModel::for_benchmark();
    let mut group = c.benchmark_group("fig8_models");
    group.bench_function("fixar_breakdown_512", |b| {
        b.iter(|| {
            fixar
                .breakdown(std::hint::black_box(512), Precision::Half16)
                .unwrap()
        })
    });
    group.bench_function("cpu_gpu_breakdown_512", |b| {
        b.iter(|| gpu.breakdown(std::hint::black_box(512)))
    });
    group.finish();
}

criterion_group!(benches, bench_platform_models);
criterion_main!(benches);
