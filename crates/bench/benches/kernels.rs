//! Kernel microbenchmarks: the fixed-point primitives underneath every
//! figure — scalar MACs, the ROM-based activation functions, GEMV in
//! each backend, the Adam unit, and the PE datapath decomposition.

use criterion::{criterion_group, criterion_main, Criterion};
use fixar::prelude::*;
use fixar_accel::{ConfigurablePe, PeMode};
use fixar_nn::MlpGrads;
use fixar_tensor::Matrix;

fn bench_scalar_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalar_mac");
    let af = 1.2345f32;
    let bf = -0.5678f32;
    group.bench_function("f32", |b| {
        b.iter(|| std::hint::black_box(af) * std::hint::black_box(bf) + af)
    });
    let aq = Fx32::from_f64(1.2345);
    let bq = Fx32::from_f64(-0.5678);
    group.bench_function("fx32", |b| {
        b.iter(|| std::hint::black_box(aq) * std::hint::black_box(bq) + aq)
    });
    let ah = Fx16::from_f64(1.2345);
    let bh = Fx16::from_f64(-0.5678);
    group.bench_function("fx16", |b| {
        b.iter(|| std::hint::black_box(ah) * std::hint::black_box(bh) + ah)
    });
    group.finish();

    let mut group = c.benchmark_group("scalar_tanh");
    group.bench_function("f32_libm", |b| {
        b.iter(|| std::hint::black_box(0.7f32).tanh())
    });
    group.bench_function("fx32_rom", |b| {
        b.iter(|| std::hint::black_box(Fx32::from_f64(0.7)).tanh())
    });
    group.finish();
}

fn bench_gemv(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemv_400x300");
    let wf: Matrix<f32> = Matrix::from_fn(300, 400, |r, c| ((r * 3 + c) % 17) as f32 * 0.01);
    let xf: Vec<f32> = (0..400).map(|i| (i as f32 * 0.01).sin()).collect();
    group.bench_function("f32", |b| {
        b.iter(|| wf.gemv_alloc(std::hint::black_box(&xf)).unwrap())
    });
    let wq: Matrix<Fx32> = wf.cast();
    let xq: Vec<Fx32> = xf.iter().map(|&v| Fx32::from_f32(v)).collect();
    group.bench_function("fx32", |b| {
        b.iter(|| wq.gemv_alloc(std::hint::black_box(&xq)).unwrap())
    });
    group.finish();
}

fn bench_pe(c: &mut Criterion) {
    let mut group = c.benchmark_group("pe_datapath");
    let pe_full = ConfigurablePe::new(PeMode::Full);
    let pe_half = ConfigurablePe::new(PeMode::Half);
    group.bench_function("mac_full_32x32", |b| {
        b.iter(|| {
            pe_full.mac_full(
                std::hint::black_box(123_456),
                std::hint::black_box(-654_321),
            )
        })
    });
    group.bench_function("mac_half_two_lanes", |b| {
        b.iter(|| {
            pe_half.mac_half(
                std::hint::black_box(123_456),
                std::hint::black_box(77),
                std::hint::black_box(-99),
            )
        })
    });
    group.finish();
}

fn bench_adam(c: &mut Criterion) {
    let mut group = c.benchmark_group("adam_step_17x400x300x6");
    group.sample_size(10);
    let cfg = MlpConfig::new(vec![17, 400, 300, 6]);
    group.bench_function("fx32", |b| {
        let mut mlp = Mlp::<Fx32>::new_random(&cfg, 0).unwrap();
        let grads = MlpGrads::zeros_like(&mlp);
        let mut opt = Adam::new(&mlp, AdamConfig::default());
        b.iter(|| opt.step(&mut mlp, &grads).unwrap());
    });
    group.bench_function("f32", |b| {
        let mut mlp = Mlp::<f32>::new_random(&cfg, 0).unwrap();
        let grads = MlpGrads::zeros_like(&mlp);
        let mut opt = Adam::new(&mlp, AdamConfig::default());
        b.iter(|| opt.step(&mut mlp, &grads).unwrap());
    });
    group.finish();
}

fn bench_quantizer(c: &mut Criterion) {
    let q = AffineQuantizer::from_range(-3.0, 5.0, 16).unwrap();
    let mut xs: Vec<Fx32> = (0..512)
        .map(|i| Fx32::from_f64((i as f64 * 0.11).sin() * 3.0))
        .collect();
    c.bench_function("fake_quantize_512", |b| {
        b.iter(|| q.fake_quantize_slice(std::hint::black_box(&mut xs)))
    });
}

criterion_group!(
    benches,
    bench_scalar_ops,
    bench_gemv,
    bench_pe,
    bench_adam,
    bench_quantizer
);
criterion_main!(benches);
