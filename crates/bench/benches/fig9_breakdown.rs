//! Fig. 9 — Execution-time breakdown of a FIXAR timestep: (a) absolute
//! milliseconds per component, (b) component ratios, across batch sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use fixar::prelude::*;
use fixar_accel::TrainingSchedule;
use fixar_bench::{paper, render_table};

fn print_fig9() {
    let model = FixarPlatformModel::for_benchmark(17, 6).expect("paper dims");
    println!("\n=== Fig. 9a: execution time of one FIXAR timestep (HalfCheetah, ms) ===");
    let mut rows = Vec::new();
    for batch in paper::BATCH_SIZES {
        let b = model
            .breakdown(batch, Precision::Half16)
            .expect("positive batch");
        rows.push(vec![
            batch.to_string(),
            format!("{:.2}", b.cpu_env_s * 1e3),
            format!("{:.2}", b.runtime_s * 1e3),
            format!("{:.2}", b.accel_s * 1e3),
            format!("{:.2}", b.total_s() * 1e3),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["batch", "CPU env", "runtime/PCIe", "FPGA", "total"],
            &rows
        )
    );

    println!("=== Fig. 9b: execution time ratio (%) and bottleneck ===");
    let mut rows = Vec::new();
    for batch in paper::BATCH_SIZES {
        let b = model
            .breakdown(batch, Precision::Half16)
            .expect("positive batch");
        let (c, r, a) = b.fractions();
        rows.push(vec![
            batch.to_string(),
            format!("{:.1}", c * 100.0),
            format!("{:.1}", r * 100.0),
            format!("{:.1}", a * 100.0),
            b.bottleneck().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["batch", "CPU %", "runtime %", "FPGA %", "bottleneck"],
            &rows
        )
    );
    println!(
        "shape check: CPU time constant, runtime grows marginally, FPGA linear; \
         bottleneck shifts to the FPGA at large batch\n"
    );
}

fn bench_schedule(c: &mut Criterion) {
    print_fig9();

    let cfg = AccelConfig::default();
    let actor = [17usize, 400, 300, 6];
    let critic = [23usize, 400, 300, 1];
    let mut group = c.benchmark_group("fig9_schedule");
    group.bench_function("training_schedule_512", |b| {
        b.iter(|| {
            TrainingSchedule::for_ddpg(
                &cfg,
                std::hint::black_box(&actor),
                std::hint::black_box(&critic),
                512,
                Precision::Half16,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_schedule);
criterion_main!(benches);
