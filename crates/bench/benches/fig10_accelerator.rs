//! Fig. 10 — Accelerator-only comparison: (a) throughput (FIXAR flat,
//! GPU ramping with batch), (b) energy efficiency (IPS/W).
//!
//! Also criterion-measures the structural AAP-core MVM in both datapath
//! modes — the kernel whose doubling produces the FIXAR bar heights.

use criterion::{criterion_group, criterion_main, Criterion};
use fixar::prelude::*;
use fixar_accel::AapCore;
use fixar_bench::{paper, paper_networks, render_table, verdict};
use fixar_tensor::Matrix;

fn print_fig10() {
    let model = FixarPlatformModel::for_benchmark(17, 6).expect("paper dims");
    let gpu = CpuGpuPlatformModel::for_benchmark();
    let power = PowerModel::default();

    println!("\n=== Fig. 10a: accelerator throughput (IPS) ===");
    let mut rows = Vec::new();
    for batch in paper::BATCH_SIZES {
        let f = model.accelerator_ips(batch, Precision::Half16);
        let g = gpu.accelerator_ips(batch);
        rows.push(vec![
            batch.to_string(),
            format!("{f:.1}"),
            format!("{g:.1}"),
            format!("{:.2}x", f / g),
        ]);
    }
    println!(
        "{}",
        render_table(&["batch", "FIXAR IPS", "GPU IPS", "gap"], &rows)
    );

    println!("=== Fig. 10b: accelerator energy efficiency (IPS/W) ===");
    let mut rows = Vec::new();
    for batch in paper::BATCH_SIZES {
        let util = model.accelerator_utilization(batch, Precision::Half16);
        let f_ips = model.accelerator_ips(batch, Precision::Half16);
        let g_ips = gpu.accelerator_ips(batch);
        let f_eff = PowerModel::ips_per_watt(f_ips, paper::FPGA_POWER_W);
        let g_eff = power.gpu_ips_per_watt(g_ips);
        rows.push(vec![
            batch.to_string(),
            format!("{f_eff:.1}"),
            format!("{g_eff:.1}"),
            format!("{:.1}x", f_eff / g_eff),
            format!("{:.1}%", util * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["batch", "FIXAR IPS/W", "GPU IPS/W", "gap", "PE util"],
            &rows
        )
    );
    let f512 = model.accelerator_ips(512, Precision::Half16);
    println!(
        "{}",
        verdict("accelerator IPS @512", f512, paper::ACCEL_IPS)
    );
    println!(
        "{}",
        verdict(
            "energy efficiency",
            PowerModel::ips_per_watt(f512, paper::FPGA_POWER_W),
            paper::IPS_PER_WATT
        )
    );
    println!(
        "{}\n",
        verdict(
            "accelerator gap @512",
            f512 / gpu.accelerator_ips(512),
            paper::ACCEL_SPEEDUP
        )
    );
}

fn bench_aap_core(c: &mut Criterion) {
    print_fig10();

    let (actor, _) = paper_networks();
    let w: &Matrix<Fx32> = actor.weight(1); // the 300×400 hidden layer
    let x32: Vec<Fx32> = (0..w.cols())
        .map(|i| Fx32::from_f64((i as f64 * 0.37).sin()))
        .collect();
    let x16: Vec<Q16<10>> = x32.iter().map(|v| Q16::from_f64(v.to_f64())).collect();
    let core = AapCore::new(16, 16);

    let mut group = c.benchmark_group("fig10_aap_mvm_300x400");
    group.bench_function("full_precision", |b| {
        b.iter(|| {
            let mut y = vec![Fx32::ZERO; w.rows()];
            core.mvm_columns(std::hint::black_box(w), &x32, 0, 1, &mut y);
            y
        })
    });
    group.bench_function("half_precision", |b| {
        b.iter(|| {
            let mut y = vec![Fx32::ZERO; w.rows()];
            core.mvm_columns_half(std::hint::black_box(w), &x16, 0, 1, &mut y);
            y
        })
    });
    group.finish();
}

criterion_group!(benches, bench_aap_core);
criterion_main!(benches);
