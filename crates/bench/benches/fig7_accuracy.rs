//! Fig. 7 — Algorithm accuracy across precision modes.
//!
//! Regenerates the reward-curve comparison (float32 / fixed32 / fixed16 /
//! FIXAR dynamic) at bench scale on Pendulum, then criterion-measures one
//! DDPG training batch in each numeric backend. Full-scale curves:
//! `cargo run --release -p fixar-bench --bin fig7_accuracy`.

use criterion::{criterion_group, criterion_main, Criterion};
use fixar::prelude::*;
use fixar_bench::{format_curve, quick_precision_study, render_table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn print_fig7() {
    println!("\n=== Fig. 7: algorithm accuracy (bench scale: Pendulum, 2000 steps) ===");
    let reports = quick_precision_study(2000, 500);
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.mode.label().to_string(),
                format!("{:.1}", r.training.tail_mean(2)),
                r.training
                    .qat_switch_step
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["mode", "final avg reward", "qat switch step"], &rows)
    );
    for r in &reports {
        println!("{:>22}: {}", r.mode.label(), format_curve(r));
    }
    let float = reports[0].training.tail_mean(2);
    let fixed16 = reports[2].training.tail_mean(2);
    let dynamic = reports[3].training.tail_mean(2);
    println!(
        "shape check: dynamic-fixed tracks float ({dynamic:.1} vs {float:.1}); \
         fixed16-from-scratch trails ({fixed16:.1})\n"
    );
}

fn toy_batch(state_dim: usize, action_dim: usize, n: usize) -> Vec<Transition> {
    let mut rng = StdRng::seed_from_u64(3);
    (0..n)
        .map(|_| Transition {
            state: (0..state_dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            action: (0..action_dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            reward: rng.gen_range(-1.0..1.0),
            next_state: (0..state_dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            terminal: false,
        })
        .collect()
}

fn bench_train_batch(c: &mut Criterion) {
    print_fig7();

    let mut group = c.benchmark_group("fig7_train_batch");
    group.sample_size(10);
    let cfg = fixar_bench::quick_study_config();
    let data = toy_batch(3, 1, cfg.batch_size);

    group.bench_function("float32", |b| {
        let mut agent = Ddpg::<f32>::new(3, 1, cfg.clone()).unwrap();
        let refs: Vec<&Transition> = data.iter().collect();
        b.iter(|| agent.train_batch(&refs).unwrap());
    });
    group.bench_function("fixed32", |b| {
        let mut agent = Ddpg::<Fx32>::new(3, 1, cfg.clone()).unwrap();
        let refs: Vec<&Transition> = data.iter().collect();
        b.iter(|| agent.train_batch(&refs).unwrap());
    });
    group.bench_function("fixed16", |b| {
        let mut agent = Ddpg::<Fx16>::new(3, 1, cfg.clone()).unwrap();
        let refs: Vec<&Transition> = data.iter().collect();
        b.iter(|| agent.train_batch(&refs).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_train_batch);
criterion_main!(benches);
