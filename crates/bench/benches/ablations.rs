//! Ablation benches for FIXAR's design choices: AAP core count, QAT bit
//! width, quantization delay, Adam-unit width, and intra-batch worker
//! count. These are the sweeps behind the paper's fixed design point
//! (N = 2 cores, 16-bit activations, 512-bit Adam unit).

use criterion::{criterion_group, criterion_main, Criterion};
use fixar::prelude::*;
use fixar_accel::{ResourceModel, TrainingSchedule};
use fixar_bench::render_table;
use fixar_rl::Td3Config;

const ACTOR: [usize; 4] = [17, 400, 300, 6];
const CRITIC: [usize; 4] = [23, 400, 300, 1];

/// Core-count ablation: throughput vs resources (why N = 2).
fn print_core_sweep() {
    println!("\n=== ablation: AAP core count (batch 512, post-QAT) ===");
    let mut rows = Vec::new();
    for n_cores in [1usize, 2, 4, 8] {
        let cfg = AccelConfig {
            n_cores,
            ..AccelConfig::default()
        };
        let sched = TrainingSchedule::for_ddpg(&cfg, &ACTOR, &CRITIC, 512, Precision::Half16);
        let res = ResourceModel::new(cfg);
        let (lut, ..) = res.utilization(&U50_BUDGET);
        rows.push(vec![
            n_cores.to_string(),
            format!("{:.0}", sched.ips(&cfg)),
            format!("{:.1}%", lut * 100.0),
            if res.fits(&U50_BUDGET) { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["cores", "IPS", "LUT util", "fits U50"], &rows)
    );
}

/// Bit-width ablation: quantizer resolution vs action perturbation.
fn print_bits_sweep() {
    println!("=== ablation: activation quantizer bit width ===");
    let mut rows = Vec::new();
    for bits in [4u32, 8, 12, 16, 24] {
        let q = AffineQuantizer::from_range(-8.0, 8.0, bits).unwrap();
        // Worst-case and RMS projection error over a dense grid.
        let mut rms = 0.0;
        let n = 10_000;
        for i in 0..n {
            let x = -8.0 + 16.0 * i as f64 / n as f64;
            let e = q.fake_quantize(x) - x;
            rms += e * e;
        }
        rms = (rms / n as f64).sqrt();
        rows.push(vec![
            bits.to_string(),
            format!("{:.2e}", q.delta()),
            format!("{:.2e}", rms),
        ]);
    }
    println!("{}", render_table(&["bits", "step δ", "rms error"], &rows));
    println!("paper: 16 bits keeps δ ≈ 2.4e-4 over a ±8 range — far below ReLU activations.\n");
}

/// Quantization-delay ablation on a fast task: reward after a fixed
/// budget for different delays (the "why a delay at all" question).
fn print_delay_sweep() {
    println!("=== ablation: quantization delay (Pendulum, 2400 steps) ===");
    let total = 2_400u64;
    let mut rows = Vec::new();
    for delay in [1u64, total / 4, total / 2, total] {
        let cfg = fixar_bench::quick_study_config().with_qat(delay, 16);
        let report = fixar::FixarSystem::new(EnvKind::Pendulum, PrecisionMode::DynamicFixed)
            .with_config(cfg)
            .run(total, total / 4, 2)
            .expect("study runs");
        rows.push(vec![
            delay.to_string(),
            format!("{:.1}", report.training.tail_mean(2)),
            report
                .training
                .qat_switch_step
                .map(|s| s.to_string())
                .unwrap_or_else(|| "never".into()),
        ]);
    }
    println!(
        "{}",
        render_table(&["delay", "final avg reward", "switched at"], &rows)
    );
}

/// Adam-unit width ablation: weight-update cycles vs lanes.
fn print_adam_sweep() {
    println!("=== ablation: Adam unit lanes (weight-update cycles, batch 512) ===");
    let mut rows = Vec::new();
    for lanes in [1usize, 4, 16, 64] {
        let cfg = AccelConfig {
            adam_lanes: lanes,
            ..AccelConfig::default()
        };
        let sched = TrainingSchedule::for_ddpg(&cfg, &ACTOR, &CRITIC, 512, Precision::Half16);
        let share = sched.weight_update_cycles as f64 / sched.total_cycles() as f64;
        rows.push(vec![
            lanes.to_string(),
            sched.weight_update_cycles.to_string(),
            format!("{:.2}%", share * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(&["lanes", "WU cycles", "share of timestep"], &rows)
    );
}

fn bench_ablations(c: &mut Criterion) {
    print_core_sweep();
    print_bits_sweep();
    print_delay_sweep();
    print_adam_sweep();

    // Criterion target: intra-batch-parallel training step vs sequential
    // (the software mirror of adaptive parallelism).
    let mut group = c.benchmark_group("parallel_train_batch_64");
    group.sample_size(10);
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let data: Vec<Transition> = (0..64)
        .map(|_| Transition {
            state: (0..17).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            action: (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            reward: rng.gen_range(-1.0..1.0),
            next_state: (0..17).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            terminal: false,
        })
        .collect();
    let mut cfg = DdpgConfig::small_test();
    cfg.hidden = (64, 48);
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("workers_{workers}"), |b| {
            let mut agent = Ddpg::<Fx32>::new(17, 6, cfg.clone()).unwrap();
            let refs: Vec<&Transition> = data.iter().collect();
            b.iter(|| agent.train_batch_parallel(&refs, workers).unwrap());
        });
    }
    group.finish();

    // TD3 vs DDPG training-step cost (the variant's twin critics roughly
    // double critic work).
    let mut group = c.benchmark_group("variant_train_batch_16");
    group.sample_size(10);
    let refs: Vec<&Transition> = data.iter().take(16).collect();
    group.bench_function("ddpg_fx32", |b| {
        let mut agent = Ddpg::<Fx32>::new(17, 6, DdpgConfig::small_test()).unwrap();
        b.iter(|| agent.train_batch(&refs).unwrap());
    });
    group.bench_function("td3_fx32", |b| {
        let mut agent = fixar_rl::Td3::<Fx32>::new(17, 6, Td3Config::small_test()).unwrap();
        b.iter(|| agent.train_batch(&refs).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
