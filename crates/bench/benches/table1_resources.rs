//! Table I — FPGA resource usage on the Xilinx Alveo U50, per component,
//! with device-utilization percentages.

use criterion::{criterion_group, criterion_main, Criterion};
use fixar::prelude::*;
use fixar_accel::ResourceModel;
use fixar_bench::render_table;

fn fmt_k(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.1}K", v / 1000.0)
    } else {
        format!("{v:.0}")
    }
}

fn print_table1() {
    println!("\n=== Table I: FPGA resource usage on Xilinx Alveo U50 ===");
    let model = ResourceModel::new(AccelConfig::default());
    let mut rows: Vec<Vec<String>> = model
        .components()
        .into_iter()
        .map(|(name, u)| {
            vec![
                name.to_string(),
                fmt_k(u.lut),
                fmt_k(u.ff),
                format!("{:.0}", u.bram),
                format!("{:.0}", u.uram),
                format!("{:.0}", u.dsp),
            ]
        })
        .collect();
    let total = model.total();
    let (lut, ff, bram, uram, dsp) = model.utilization(&U50_BUDGET);
    rows.push(vec![
        "Total".into(),
        fmt_k(total.lut),
        fmt_k(total.ff),
        format!("{:.0}", total.bram),
        format!("{:.0}", total.uram),
        format!("{:.0}", total.dsp),
    ]);
    rows.push(vec![
        "(utilization)".into(),
        format!("{:.1}%", lut * 100.0),
        format!("{:.1}%", ff * 100.0),
        format!("{:.1}%", bram * 100.0),
        format!("{:.1}%", uram * 100.0),
        format!("{:.1}%", dsp * 100.0),
    ]);
    println!(
        "{}",
        render_table(&["Component", "LUT", "FF", "BRAM", "URAM", "DSP"], &rows)
    );
    println!(
        "paper totals: 508.1K LUT (58.4%), 408.8K FF (23.5%), 774 BRAM (57.6%), \
         128 URAM (20.0%), 2302 DSP (38.8%)\n"
    );

    // Ablation sweep: how resources scale with the core count (the
    // design-space exploration behind the paper's N = 2 choice).
    println!("=== Table I ablation: scaling with AAP core count ===");
    let mut rows = Vec::new();
    for n_cores in [1usize, 2, 4, 8] {
        let cfg = AccelConfig {
            n_cores,
            ..AccelConfig::default()
        };
        let m = ResourceModel::new(cfg);
        let (lut, _, _, _, dsp) = m.utilization(&U50_BUDGET);
        rows.push(vec![
            n_cores.to_string(),
            format!("{:.1}%", lut * 100.0),
            format!("{:.1}%", dsp * 100.0),
            if m.fits(&U50_BUDGET) { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["cores", "LUT util", "DSP util", "fits U50"], &rows)
    );
}

fn bench_resource_model(c: &mut Criterion) {
    print_table1();

    let model = ResourceModel::new(AccelConfig::default());
    c.bench_function("table1_resource_total", |b| {
        b.iter(|| std::hint::black_box(&model).total())
    });
}

criterion_group!(benches, bench_resource_model);
criterion_main!(benches);
