//! Shared helpers for the FIXAR benchmark harnesses.
//!
//! Each paper artifact (Figs. 7–10, Tables I–II) has both a criterion
//! bench (`benches/`) that prints the regenerated rows and measures the
//! relevant kernel, and a standalone binary (`src/bin/`) for longer,
//! configurable runs. This library holds the pieces they share: an ASCII
//! table renderer, the paper's reference numbers, and the scaled-down
//! precision-study runner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fixar::prelude::*;
use fixar::FixarRunReport;

/// The paper's reported numbers, used to annotate regenerated artifacts.
pub mod paper {
    /// Fig. 10a: accelerator throughput, flat across batch sizes.
    pub const ACCEL_IPS: f64 = 53_826.8;
    /// Table II: peak (full-precision) accelerator throughput.
    pub const PEAK_IPS_FULL: f64 = 38_779.8;
    /// Abstract/Fig. 8: end-to-end platform throughput at batch 512.
    pub const PLATFORM_IPS: f64 = 25_293.3;
    /// Fig. 10b: accelerator energy efficiency.
    pub const IPS_PER_WATT: f64 = 2_638.0;
    /// §VI-C: measured average FPGA board power.
    pub const FPGA_POWER_W: f64 = 20.4;
    /// §VI-C: measured average GPU board power.
    pub const GPU_POWER_W: f64 = 56.7;
    /// §VI-C: accelerator-level FIXAR/GPU throughput ratio.
    pub const ACCEL_SPEEDUP: f64 = 5.5;
    /// Abstract: platform-level FIXAR/CPU-GPU throughput ratio.
    pub const PLATFORM_SPEEDUP: f64 = 2.7;
    /// §VI-C: reported PE-array utilization.
    pub const UTILIZATION: f64 = 0.924;
    /// Batch sizes swept by Figs. 8–10.
    pub const BATCH_SIZES: [usize; 4] = [64, 128, 256, 512];
}

/// The pre-SoA replay buffer, kept verbatim as the behavioural
/// reference for the structure-of-arrays rewrite — **the** single copy
/// shared by the `replay_scale` bench bin (timing baseline, bit-equality
/// gate) and `tests/replay_props.rs` (legacy-equivalence pillar), so
/// the two cannot drift onto different reference semantics.
pub mod legacy_replay {
    use fixar_rl::{Transition, TransitionBatch};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Array-of-structs ring buffer: the pre-SoA `ReplayBuffer`,
    /// verbatim (struct-per-transition storage, per-row borrow
    /// sampling, row-copy batch packing through `from_transitions`).
    pub struct LegacyReplayBuffer {
        /// Stored transitions in ring order (slot order).
        pub storage: Vec<Transition>,
        capacity: usize,
        write_head: usize,
    }

    impl LegacyReplayBuffer {
        /// Creates a buffer holding at most `capacity` transitions.
        pub fn new(capacity: usize) -> Self {
            Self {
                storage: Vec::with_capacity(capacity),
                capacity,
                write_head: 0,
            }
        }

        /// Inserts a transition, overwriting the oldest once full.
        pub fn push(&mut self, t: Transition) {
            if self.storage.len() < self.capacity {
                self.storage.push(t);
            } else {
                self.storage[self.write_head] = t;
            }
            self.write_head = (self.write_head + 1) % self.capacity;
        }

        /// Uniform borrow sampling with replacement — the legacy draw
        /// sequence (`batch` ascending `gen_range(0..len)` calls), or
        /// no draws at all on underflow.
        pub fn sample<'a>(&'a self, batch: usize, rng: &mut StdRng) -> Vec<&'a Transition> {
            if self.storage.len() < batch {
                return Vec::new();
            }
            (0..batch)
                .map(|_| &self.storage[rng.gen_range(0..self.storage.len())])
                .collect()
        }

        /// Legacy row-copy batch sampling: `sample` + `from_transitions`.
        pub fn sample_batch(&self, batch: usize, rng: &mut StdRng) -> Option<TransitionBatch> {
            if batch == 0 {
                return None;
            }
            let picks = self.sample(batch, rng);
            if picks.is_empty() {
                return None;
            }
            Some(TransitionBatch::from_transitions(&picks).expect("homogeneous"))
        }
    }

    /// Deterministic synthetic transition `i` with the given dimensions
    /// (`reward == i`, so eviction checks can read the push index back).
    pub fn synthetic_transition(i: usize, state_dim: usize, action_dim: usize) -> Transition {
        Transition {
            state: (0..state_dim)
                .map(|d| (i * 7 + d) as f64 * 0.13 - 1.0)
                .collect(),
            action: (0..action_dim)
                .map(|d| ((i + d * 3) % 5) as f64 * 0.4 - 1.0)
                .collect(),
            reward: i as f64,
            next_state: (0..state_dim)
                .map(|d| (i * 7 + d) as f64 * 0.13 - 0.5)
                .collect(),
            terminal: i.is_multiple_of(9),
        }
    }
}

/// Renders a fixed-width ASCII table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:w$} |", w = w));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (c, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {c:>w$} |", w = w));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Scaled-down Fig. 7 configuration: Pendulum with small networks so a
/// four-arm study completes inside a bench run. The *relative* behaviour
/// of the arms (who learns, who fails, the QAT dip) is what transfers to
/// the full-scale runs.
pub fn quick_study_config() -> DdpgConfig {
    let mut cfg = DdpgConfig::small_test();
    cfg.hidden = (64, 48);
    cfg.batch_size = 64;
    cfg.warmup_steps = 500;
    cfg.actor_lr = 1e-3;
    cfg.critic_lr = 1e-3;
    cfg.exploration_sigma = 0.15;
    // Two workers mirror the two AAP cores and roughly halve the
    // wall-clock of the software fixed-point arms.
    cfg.parallel_workers = 2;
    cfg
}

/// Runs the four-arm precision study on Pendulum at reduced scale.
///
/// # Panics
///
/// Panics if any arm fails to run (benchmark harness context).
pub fn quick_precision_study(total_steps: u64, eval_every: u64) -> Vec<FixarRunReport> {
    let cfg = quick_study_config().with_qat(total_steps / 3, 16);
    fixar::precision_study(EnvKind::Pendulum, cfg, total_steps, eval_every, 3)
        .expect("precision study should run")
}

/// Formats a reward curve as aligned `step:reward` pairs.
pub fn format_curve(report: &FixarRunReport) -> String {
    report
        .training
        .curve
        .iter()
        .map(|p| format!("{:>6}:{:>8.1}", p.step, p.avg_reward))
        .collect::<Vec<_>>()
        .join("  ")
}

/// The paper's HalfCheetah-sized actor/critic pair in `Fx32`.
///
/// # Panics
///
/// Panics on construction failure (static configuration).
pub fn paper_networks() -> (Mlp<Fx32>, Mlp<Fx32>) {
    let actor = Mlp::new_random(
        &MlpConfig::new(vec![17, 400, 300, 6]).with_output_activation(Activation::Tanh),
        11,
    )
    .expect("static config");
    let critic =
        Mlp::new_random(&MlpConfig::new(vec![23, 400, 300, 1]), 12).expect("static config");
    (actor, critic)
}

/// Summary verdict line comparing a measured value against the paper.
pub fn verdict(label: &str, measured: f64, paper_value: f64) -> String {
    let ratio = measured / paper_value;
    format!("{label}: measured {measured:.1} vs paper {paper_value:.1} (x{ratio:.3})")
}

/// Reads `--name value` from the process arguments, falling back to a
/// default. Used by the full-scale harness binaries.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a benchmark name into an [`EnvKind`] (defaults to Pendulum so
/// harnesses are fast unless asked otherwise).
pub fn env_kind_arg() -> EnvKind {
    match arg::<String>("env", "pendulum".into())
        .to_lowercase()
        .as_str()
    {
        "halfcheetah" | "cheetah" => EnvKind::HalfCheetah,
        "hopper" => EnvKind::Hopper,
        "swimmer" => EnvKind::Swimmer,
        _ => EnvKind::Pendulum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renderer_aligns_columns() {
        let s = render_table(
            &["name", "ips"],
            &[
                vec!["fixar".into(), "53826.8".into()],
                vec!["gpu".into(), "9787.0".into()],
            ],
        );
        assert!(s.contains("| name "));
        assert!(s.contains("53826.8"));
        // Every line has the same width.
        let lens: std::collections::HashSet<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert_eq!(lens.len(), 1, "{s}");
    }

    #[test]
    fn verdict_reports_ratio() {
        let v = verdict("ips", 50_000.0, 53_826.8);
        assert!(v.contains("x0.929"));
    }

    #[test]
    fn paper_networks_have_paper_sizes() {
        let (actor, critic) = paper_networks();
        assert_eq!(actor.param_count(), 129_306);
        assert_eq!(critic.param_count(), 130_201);
    }
}
