//! Replay-at-scale microbenchmark: the SoA ring buffer's gather-based
//! `sample_batch` vs the legacy array-of-structs row-copy, at capacity
//! {1k, 64k} × batch {32, 128} (HalfCheetah dimensions: 17 obs, 6
//! actions), plus the prioritized-replay sampling overhead — the new
//! workload the SoA ring unlocks. Before timing, every cell asserts
//! the two paths produce bit-identical batches from identical RNG
//! states, so the speedup is measured on provably equivalent work.
//!
//! Environment:
//!
//! * `FIXAR_REPLAY_BENCH_REPS` — timed repetitions per cell
//!   (default 2000; CI's replay-bench step uses a short count);
//! * `FIXAR_BENCH_JSON` — when set to a path, also writes the results
//!   as a JSON document (the `BENCH_replay_scale.json` perf-trajectory
//!   artifact CI uploads on every push).

use fixar_bench::legacy_replay::{synthetic_transition, LegacyReplayBuffer};
use fixar_rl::{PrioritizedConfig, ReplayBuffer, ReplaySampler, ReplayStrategy};
use fixar_tensor::Parallelism;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

const CAPACITIES: [usize; 2] = [1_000, 64_000];
const BATCHES: [usize; 2] = [32, 128];
const STATE_DIM: usize = 17;
const ACTION_DIM: usize = 6;

struct Record {
    path: &'static str,
    capacity: usize,
    batch: usize,
    ns_per_sample: f64,
}

fn time_ns_per_sample(reps: usize, samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    t.elapsed().as_secs_f64() * 1e9 / (reps * samples) as f64
}

fn main() {
    let reps: usize = std::env::var("FIXAR_REPLAY_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(2000);
    println!(
        "replay_scale: state {STATE_DIM}, action {ACTION_DIM}, {reps} reps, \
         capacities {CAPACITIES:?}, batches {BATCHES:?}"
    );

    let mut records: Vec<Record> = Vec::new();
    for &capacity in &CAPACITIES {
        // Fill both buffers to capacity (and past it, so the ring has
        // wrapped: the steady-state layout, not the fresh-fill one).
        let mut soa = ReplayBuffer::with_dims(capacity, STATE_DIM, ACTION_DIM);
        let mut legacy = LegacyReplayBuffer::new(capacity);
        let mut sampler = ReplaySampler::new(
            ReplayStrategy::Prioritized(PrioritizedConfig::default()),
            capacity,
        );
        for i in 0..capacity + capacity / 2 {
            let t = synthetic_transition(i, STATE_DIM, ACTION_DIM);
            let slot = soa.push(t.clone());
            sampler.on_insert(slot);
            legacy.push(t);
        }
        // Give the priority mass some structure (uniform mass would be
        // the sum-tree's best case).
        let idx: Vec<usize> = (0..capacity).collect();
        let tds: Vec<f64> = (0..capacity)
            .map(|i| 0.01 + (i % 100) as f64 * 0.05)
            .collect();
        sampler.update_priorities(&idx, &tds);

        for &batch in &BATCHES {
            // Equivalence gate: identical RNG state in, bit-identical
            // batch out, before any timing.
            let a = soa
                .sample_batch(batch, &mut StdRng::seed_from_u64(7))
                .expect("filled");
            let b = legacy
                .sample_batch(batch, &mut StdRng::seed_from_u64(7))
                .expect("filled");
            assert_eq!(a, b, "SoA gather must equal the legacy row-copy");

            // Interleaved min-of-rounds: each round times every path
            // back to back, and the minimum across rounds rejects
            // scheduler noise (the standard microbenchmark estimator
            // of the undisturbed cost).
            const ROUNDS: usize = 9;
            let round_reps = reps.div_ceil(ROUNDS);
            let par = Parallelism::sequential();
            let (mut ns_legacy, mut ns_soa, mut ns_prio) = (f64::MAX, f64::MAX, f64::MAX);
            for _ in 0..ROUNDS {
                let mut rng = StdRng::seed_from_u64(1);
                let ns = time_ns_per_sample(round_reps, batch, || {
                    std::hint::black_box(legacy.sample_batch(batch, &mut rng).unwrap());
                });
                ns_legacy = ns_legacy.min(ns);
                let mut rng = StdRng::seed_from_u64(1);
                let ns = time_ns_per_sample(round_reps, batch, || {
                    std::hint::black_box(soa.sample_batch(batch, &mut rng).unwrap());
                });
                ns_soa = ns_soa.min(ns);
                let mut rng = StdRng::seed_from_u64(2);
                let ns = time_ns_per_sample(round_reps, batch, || {
                    std::hint::black_box(sampler.sample(&soa, batch, &mut rng, &par).unwrap());
                });
                ns_prio = ns_prio.min(ns);
            }
            let speedup = ns_legacy / ns_soa;
            println!(
                "capacity {capacity:>6} batch {batch:>4}: legacy {ns_legacy:>8.1} ns/sample, \
                 soa_gather {ns_soa:>8.1} ns/sample ({speedup:>5.2}x), \
                 prioritized {ns_prio:>8.1} ns/sample"
            );
            for (path, ns) in [
                ("legacy_row_copy", ns_legacy),
                ("soa_gather", ns_soa),
                ("prioritized_gather", ns_prio),
            ] {
                records.push(Record {
                    path,
                    capacity,
                    batch,
                    ns_per_sample: ns,
                });
            }
        }
    }

    if let Ok(path) = std::env::var("FIXAR_BENCH_JSON") {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"replay_scale\",");
        let _ = writeln!(
            json,
            "  \"dims\": {{\"state\": {STATE_DIM}, \"action\": {ACTION_DIM}}},"
        );
        let _ = writeln!(json, "  \"reps\": {reps},");
        json.push_str("  \"rows\": [\n");
        for (i, r) in records.iter().enumerate() {
            let comma = if i + 1 == records.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"path\": \"{}\", \"capacity\": {}, \"batch\": {}, \
                 \"ns_per_sample\": {:.1}}}{comma}",
                r.path, r.capacity, r.batch, r.ns_per_sample
            );
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench JSON");
        println!("wrote {path}");
    }
}
