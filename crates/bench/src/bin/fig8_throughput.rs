//! Full Fig. 8 harness: platform IPS per benchmark × batch size, both
//! platforms, both precision phases, plus a co-simulated measurement.
//!
//! ```text
//! cargo run --release -p fixar-bench --bin fig8_throughput -- --cosim-steps 2000
//! ```

use fixar::prelude::*;
use fixar_bench::{arg, paper, render_table, verdict};

fn main() {
    println!("Fig. 8: FIXAR platform training throughput\n");
    let gpu = CpuGpuPlatformModel::for_benchmark();

    let mut rows = Vec::new();
    for kind in EnvKind::PAPER_BENCHMARKS {
        let spec_env = kind.make(0);
        let spec = spec_env.spec();
        let fixar =
            FixarPlatformModel::for_benchmark(spec.obs_dim, spec.action_dim).expect("paper dims");
        for batch in paper::BATCH_SIZES {
            let f_full = fixar.ips(batch, Precision::Full32).expect("positive batch");
            let f_half = fixar.ips(batch, Precision::Half16).expect("positive batch");
            let g = gpu.ips(batch);
            rows.push(vec![
                kind.name().to_string(),
                batch.to_string(),
                format!("{f_full:.1}"),
                format!("{f_half:.1}"),
                format!("{g:.1}"),
                format!("{:.2}x", f_half / g),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "batch",
                "FIXAR IPS (32b)",
                "FIXAR IPS (post-QAT)",
                "CPU-GPU IPS",
                "speedup"
            ],
            &rows
        )
    );

    let hc = FixarPlatformModel::for_benchmark(17, 6).unwrap();
    println!(
        "{}",
        verdict(
            "HalfCheetah platform IPS @512",
            hc.ips(512, Precision::Half16).unwrap(),
            paper::PLATFORM_IPS
        )
    );

    // Co-simulated measurement: real training advancing the platform
    // clock, QAT switching precision mid-run.
    let cosim_steps: u64 = arg("cosim-steps", 1_500);
    let mut cfg = fixar_bench::quick_study_config().with_qat(cosim_steps / 3, 16);
    cfg.batch_size = arg("batch", 64);
    println!(
        "\nco-simulation: Pendulum, {cosim_steps} steps, batch {}",
        cfg.batch_size
    );
    let mut cosim = FixarCosim::new(
        Box::new(fixar_env::Pendulum::new(1)),
        Box::new(fixar_env::Pendulum::new(2)),
        cfg,
    )
    .expect("cosim builds");
    let report = cosim
        .run(cosim_steps, cosim_steps / 3, 2)
        .expect("cosim runs");
    println!(
        "  simulated platform time {:.2}s, measured {:.1} IPS, QAT switch at {:?} (t={:?}s)",
        report.sim_time_s,
        report.avg_ips,
        report.training.qat_switch_step,
        report
            .qat_switch_time_s
            .map(|t| (t * 100.0).round() / 100.0),
    );
}
