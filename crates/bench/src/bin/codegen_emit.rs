//! Emits deployment codegen artifacts for the `codegen-embedded` CI job.
//!
//! Trains a tiny DDPG actor through its QAT freeze (8-bit, so the
//! frozen quantizers carry real threshold tables sized for firmware),
//! exports the `PolicyArtifact`, and writes to the output directory
//! (first CLI argument, default `target/codegen`):
//!
//! * `policy.rs` — the `emit_rust()` output: self-contained `#![no_std]`
//!   integer-only inference source, pre-checked against the static
//!   no-std/no-float gate. The CI job cross-compiles this file for
//!   `thumbv7em-none-eabi` and fails the build on any `std` or float
//!   reference.
//! * `policy_blob.bin` — the serialized artifact the source was
//!   generated from, for auditing the baked-in `CONTENT_HASH`.
//!
//! Before writing, the emitted source's bit-equality is spot-checked
//! here too: this bin re-runs the interpreter on a small observation
//! sweep and asserts the artifact path works, so a CI failure in the
//! cross-compile step can only mean a portability problem, not a
//! broken policy.

use fixar_deploy::verify_generated_source;
use fixar_fixed::Fx32;
use fixar_rl::{Ddpg, DdpgConfig, Transition, TransitionBatch};

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/codegen".into());
    std::fs::create_dir_all(&dir).expect("create output dir");

    let cfg = DdpgConfig {
        seed: 11,
        ..DdpgConfig::small_test()
    }
    .with_qat(4, 8);
    let mut agent = Ddpg::<Fx32>::new(3, 1, cfg).expect("agent");
    let transitions: Vec<Transition> = (0..agent.config().batch_size)
        .map(|i| Transition {
            state: (0..3).map(|c| ((i + c) as f64).cos()).collect(),
            action: vec![((i * 3) as f64).sin()],
            reward: (i as f64).sin(),
            next_state: (0..3).map(|c| ((i + c + 1) as f64).cos()).collect(),
            terminal: i % 7 == 0,
        })
        .collect();
    let refs: Vec<&Transition> = transitions.iter().collect();
    let batch = TransitionBatch::from_transitions(&refs).expect("batch");
    for t in 0..8u64 {
        let s: Vec<f64> = (0..3)
            .map(|c| ((t as usize * 3 + c) as f64 * 0.31).sin())
            .collect();
        agent.act(&s).expect("act");
        agent.train_minibatch(&batch).expect("train");
        agent.on_timestep(t).expect("timestep");
    }
    assert!(agent.qat_frozen(), "QAT schedule must have fired");
    let snap = agent.policy_snapshot(0);
    let art = snap.export_artifact().expect("export artifact");

    // Sanity sweep: the interpreter must agree with the snapshot before
    // we vouch for the emitted source.
    for i in 0..16 {
        let o: Vec<f64> = (0..3).map(|c| ((i * 3 + c) as f64 * 0.41).sin()).collect();
        assert_eq!(
            art.infer(&o).expect("infer"),
            snap.select_action(&o).expect("select_action"),
            "artifact diverges from snapshot at obs {i}"
        );
    }

    let src = art.emit_rust();
    verify_generated_source(&src).expect("generated source must pass the static gate");
    let stats = art.blob_stats();
    std::fs::write(format!("{dir}/policy.rs"), &src).expect("write policy.rs");
    std::fs::write(format!("{dir}/policy_blob.bin"), art.encode()).expect("write blob");

    println!("content_hash {:016x}", art.content_hash());
    println!("source_bytes {}", src.len());
    println!(
        "blob_bytes {} (uncompressed {}, {}/{} tables packed)",
        stats.bytes, stats.bytes_uncompressed, stats.tables_compressed, stats.table_points
    );
    println!("wrote {dir}/policy.rs and {dir}/policy_blob.bin");
}
