//! Full Fig. 9 harness: per-timestep execution-time breakdown (absolute
//! and ratio views) for any benchmark and batch sweep.
//!
//! ```text
//! cargo run --release -p fixar-bench --bin fig9_breakdown -- --env hopper
//! ```

use fixar::prelude::*;
use fixar_bench::{env_kind_arg, paper, render_table};

fn main() {
    let kind = match env_kind_arg() {
        EnvKind::Pendulum => EnvKind::HalfCheetah, // Fig. 9 uses HalfCheetah
        other => other,
    };
    let spec_env = kind.make(0);
    let spec = spec_env.spec();
    let model =
        FixarPlatformModel::for_benchmark(spec.obs_dim, spec.action_dim).expect("paper dims");

    for (precision, name) in [
        (Precision::Full32, "full precision (before QAT)"),
        (Precision::Half16, "half precision (after QAT)"),
    ] {
        println!(
            "Fig. 9a — {} timestep breakdown, {} (ms):",
            kind.name(),
            name
        );
        let mut rows = Vec::new();
        for batch in paper::BATCH_SIZES {
            let b = model.breakdown(batch, precision).expect("positive batch");
            rows.push(vec![
                batch.to_string(),
                format!("{:.2}", b.cpu_env_s * 1e3),
                format!("{:.2}", b.runtime_s * 1e3),
                format!("{:.2}", b.accel_s * 1e3),
                format!("{:.2}", b.total_s() * 1e3),
                format!("{:.1}", b.ips()),
            ]);
        }
        println!(
            "{}",
            render_table(
                &["batch", "CPU env", "runtime/PCIe", "FPGA", "total", "IPS"],
                &rows
            )
        );

        println!("Fig. 9b — ratio view (%):");
        let mut rows = Vec::new();
        for batch in paper::BATCH_SIZES {
            let b = model.breakdown(batch, precision).expect("positive batch");
            let (c, r, a) = b.fractions();
            rows.push(vec![
                batch.to_string(),
                format!("{:.1}", c * 100.0),
                format!("{:.1}", r * 100.0),
                format!("{:.1}", a * 100.0),
                b.bottleneck().to_string(),
            ]);
        }
        println!(
            "{}",
            render_table(
                &["batch", "CPU %", "runtime %", "FPGA %", "bottleneck"],
                &rows
            )
        );
    }
    println!(
        "paper: CPU ≈ 2 ms constant; runtime grows marginally with batch; FPGA \
         linear in batch; bottleneck shifts CPU → FPGA"
    );
}
