//! Full Fig. 10 harness: accelerator-only throughput and energy
//! efficiency for FIXAR vs the GPU model, across batch sizes and both
//! precision phases, averaged over the three paper benchmarks (the
//! paper's power figures are three-benchmark averages).

use fixar::prelude::*;
use fixar_bench::{paper, render_table, verdict};

fn main() {
    println!("Fig. 10: accelerator throughput and energy efficiency\n");
    let gpu = CpuGpuPlatformModel::for_benchmark();
    let power = PowerModel::default();

    for kind in EnvKind::PAPER_BENCHMARKS {
        let spec_env = kind.make(0);
        let spec = spec_env.spec();
        let model =
            FixarPlatformModel::for_benchmark(spec.obs_dim, spec.action_dim).expect("paper dims");
        println!("— {} —", kind.name());
        let mut rows = Vec::new();
        for batch in paper::BATCH_SIZES {
            let f_full = model.accelerator_ips(batch, Precision::Full32);
            let f_half = model.accelerator_ips(batch, Precision::Half16);
            let g = gpu.accelerator_ips(batch);
            let util = model.accelerator_utilization(batch, Precision::Half16);
            rows.push(vec![
                batch.to_string(),
                format!("{f_full:.1}"),
                format!("{f_half:.1}"),
                format!("{g:.1}"),
                format!("{:.2}x", f_half / g),
                format!("{:.1}%", util * 100.0),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "batch",
                    "FIXAR IPS (32b)",
                    "FIXAR IPS (16b)",
                    "GPU IPS",
                    "gap",
                    "util"
                ],
                &rows
            )
        );
    }

    // Energy efficiency at the headline operating point.
    let hc = FixarPlatformModel::for_benchmark(17, 6).unwrap();
    let f512 = hc.accelerator_ips(512, Precision::Half16);
    let g512 = gpu.accelerator_ips(512);
    println!("Fig. 10b — energy efficiency at batch 512:");
    let rows = vec![
        vec![
            "FIXAR (U50)".to_string(),
            format!("{f512:.1}"),
            format!("{:.1}", paper::FPGA_POWER_W),
            format!("{:.1}", PowerModel::ips_per_watt(f512, paper::FPGA_POWER_W)),
        ],
        vec![
            "GPU (Titan RTX)".to_string(),
            format!("{g512:.1}"),
            format!("{:.1}", paper::GPU_POWER_W),
            format!("{:.1}", power.gpu_ips_per_watt(g512)),
        ],
    ];
    println!(
        "{}",
        render_table(&["accelerator", "IPS", "avg W", "IPS/W"], &rows)
    );
    println!(
        "{}",
        verdict("FIXAR accelerator IPS", f512, paper::ACCEL_IPS)
    );
    println!(
        "{}",
        verdict(
            "FIXAR IPS/W",
            PowerModel::ips_per_watt(f512, paper::FPGA_POWER_W),
            paper::IPS_PER_WATT
        )
    );
    println!(
        "{}",
        verdict(
            "efficiency gap",
            PowerModel::ips_per_watt(f512, paper::FPGA_POWER_W) / power.gpu_ips_per_watt(g512),
            15.4
        )
    );
}
