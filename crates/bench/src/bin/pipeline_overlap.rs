//! Pipeline-overlap benchmark: what phase-scoped heterogeneous
//! scheduling buys on this host.
//!
//! Two series, both gated on bit-equality before any timing:
//!
//! 1. **Fused vs per-kernel scopes** — the TD3 twin-critic shape
//!    (two 23-400-300-1 critics, Fx32) forward+backward, either as
//!    back-to-back pool-parallel passes (one scope per kernel, the
//!    pre-fusion path) or through the fused drivers (one scope per
//!    layer step hosting both critics' kernels), across worker counts.
//! 2. **Overlapped vs lockstep `VecTrainer`** — env steps/sec of the
//!    double-buffered serving loop against the lockstep loop at fleet
//!    sizes {4, 16, 64}.
//!
//! Environment:
//!
//! * `FIXAR_PIPELINE_BENCH_REPS` — fused-kernel reps per cell
//!   (default 40; CI's bench-smoke job uses a short count);
//! * `FIXAR_PIPELINE_BENCH_STEPS` — timed fleet steps per serving cell
//!   (default 250);
//! * `FIXAR_BENCH_JSON` — when set, also writes the results as a JSON
//!   document (the `BENCH_pipeline_overlap.json` artifact extending the
//!   perf trajectory with a scheduling series).

use fixar_env::{EnvKind, EnvPool};
use fixar_fixed::Fx32;
use fixar_nn::{
    backward_batch_fused, forward_batch_trace_fused, FusedBackward, Mlp, MlpConfig, MlpGrads,
};
use fixar_rl::{DdpgConfig, VecTrainer};
use fixar_tensor::{Matrix, Parallelism};
use std::fmt::Write as _;
use std::time::Instant;

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
const FLEET_SIZES: [usize; 3] = [4, 16, 64];
const BATCH: usize = 64;

struct KernelRecord {
    workers: usize,
    path: &'static str,
    ns_per_step: f64,
}

struct ServingRecord {
    fleet: usize,
    mode: &'static str,
    steps_per_sec: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// One twin-critic training step's compute on the given path; returns
/// the per-step wall clock over `reps` repetitions.
fn time_twin_step(
    c1: &Mlp<Fx32>,
    c2: &Mlp<Fx32>,
    x: &Matrix<Fx32>,
    dl: &Matrix<Fx32>,
    par: &Parallelism,
    fused: bool,
    reps: usize,
) -> f64 {
    let mut g1 = MlpGrads::zeros_like(c1);
    let mut g2 = MlpGrads::zeros_like(c2);
    let t = Instant::now();
    for _ in 0..reps {
        g1.reset();
        g2.reset();
        if fused {
            let traces = forward_batch_trace_fused(&[c1, c2], &[x, x], par).unwrap();
            backward_batch_fused(
                &mut [
                    FusedBackward {
                        mlp: c1,
                        trace: &traces[0],
                        dl_dout: dl,
                        grads: &mut g1,
                    },
                    FusedBackward {
                        mlp: c2,
                        trace: &traces[1],
                        dl_dout: dl,
                        grads: &mut g2,
                    },
                ],
                par,
            )
            .unwrap();
        } else {
            // Pre-fusion shape: each pass (and each backward kernel)
            // joins its own scope.
            let t1 = c1.forward_batch_trace_par(x, par).unwrap();
            let t2 = c2.forward_batch_trace_par(x, par).unwrap();
            c1.backward_batch_par(&t1, dl, &mut g1, par).unwrap();
            c2.backward_batch_par(&t2, dl, &mut g2, par).unwrap();
        }
        std::hint::black_box((&g1, &g2));
    }
    t.elapsed().as_nanos() as f64 / reps as f64
}

/// Env steps/sec of a `VecTrainer` run in the given serving mode.
fn time_serving(fleet: usize, overlap: bool, workers: usize, steps: u64) -> f64 {
    let mut cfg = DdpgConfig::small_test();
    cfg.hidden = (64, 48);
    cfg.warmup_steps = 8;
    let mut t = VecTrainer::<Fx32>::new(
        EnvPool::from_kind(EnvKind::Pendulum, fleet, 0),
        EnvKind::Pendulum.make(99),
        cfg,
    )
    .unwrap();
    t.set_overlap(overlap);
    t.agent_mut()
        .set_parallelism(Parallelism::with_workers(workers));
    // Warm the pipeline (and the replay scratch), then time.
    t.run(10, 10, 1).unwrap();
    let clock = Instant::now();
    t.run(steps, steps, 1).unwrap();
    (steps * fleet as u64) as f64 / clock.elapsed().as_secs_f64()
}

fn main() {
    let reps = env_usize("FIXAR_PIPELINE_BENCH_REPS", 40);
    let steps = env_usize("FIXAR_PIPELINE_BENCH_STEPS", 250) as u64;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "pipeline_overlap: twin 23-400-300-1 critics Fx32 batch {BATCH}, {reps} reps/cell; \
         Pendulum fleet serving, {steps} fleet steps/cell; {cores} host core(s)"
    );

    // --- series 1: fused vs per-kernel scopes -------------------------
    let critic_cfg = MlpConfig::new(vec![23, 400, 300, 1]);
    let c1 = Mlp::<Fx32>::new_random(&critic_cfg, 1).unwrap();
    let c2 = Mlp::<Fx32>::new_random(&critic_cfg, 2).unwrap();
    let x = Matrix::<f64>::from_fn(BATCH, 23, |b, i| ((b * 7 + i * 3) % 17) as f64 * 0.11 - 0.9)
        .cast::<Fx32>();
    let dl = Matrix::<f64>::from_fn(BATCH, 1, |b, _| (b as f64 - 32.0) * 0.002).cast::<Fx32>();

    // Bit-equality gate: fused ≡ per-kernel on every worker count.
    for &workers in &WORKER_COUNTS {
        let par = Parallelism::with_workers(workers);
        let fused = forward_batch_trace_fused(&[&c1, &c2], &[&x, &x], &par).unwrap();
        assert_eq!(fused[0].output, c1.forward_batch(&x).unwrap());
        assert_eq!(fused[1].output, c2.forward_batch(&x).unwrap());
    }

    let mut kernel_records = Vec::new();
    for &workers in &WORKER_COUNTS {
        let par = Parallelism::with_workers(workers);
        for (path, fused) in [("per_kernel", false), ("fused", true)] {
            let ns = time_twin_step(&c1, &c2, &x, &dl, &par, fused, reps);
            println!("twin-step w{workers} {path:>10}  {ns:>12.0} ns/step");
            kernel_records.push(KernelRecord {
                workers,
                path,
                ns_per_step: ns,
            });
        }
    }

    // --- series 2: overlapped vs lockstep serving ---------------------
    // Bit-equality gate: a short run must agree between the modes.
    {
        let mut cfg = DdpgConfig::small_test();
        cfg.hidden = (64, 48);
        let run = |overlap: bool| {
            let mut t = VecTrainer::<Fx32>::new(
                EnvPool::from_kind(EnvKind::Pendulum, 4, 0),
                EnvKind::Pendulum.make(99),
                cfg.clone(),
            )
            .unwrap();
            t.set_overlap(overlap);
            t.run(80, 80, 1).unwrap();
            t
        };
        let lock = run(false);
        let over = run(true);
        assert_eq!(
            lock.agent().actor(),
            over.agent().actor(),
            "overlap gate: weights must match lockstep"
        );
        assert_eq!(lock.replay().transitions(), over.replay().transitions());
    }

    let mut serving_records = Vec::new();
    for &fleet in &FLEET_SIZES {
        for (mode, overlap) in [("lockstep", false), ("overlap", true)] {
            let sps = time_serving(fleet, overlap, 2, steps);
            println!("serving fleet {fleet:>3} w2 {mode:>9}  {sps:>12.0} env steps/s");
            serving_records.push(ServingRecord {
                fleet,
                mode,
                steps_per_sec: sps,
            });
        }
    }

    if let Ok(path) = std::env::var("FIXAR_BENCH_JSON") {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"pipeline_overlap\",");
        let _ = writeln!(json, "  \"batch\": {BATCH},");
        let _ = writeln!(json, "  \"reps\": {reps},");
        let _ = writeln!(json, "  \"fleet_steps\": {steps},");
        let _ = writeln!(json, "  \"host_cores\": {cores},");
        json.push_str("  \"fused_kernels\": [\n");
        for (i, r) in kernel_records.iter().enumerate() {
            let comma = if i + 1 == kernel_records.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                json,
                "    {{\"workers\": {}, \"path\": \"{}\", \"ns_per_step\": {:.0}}}{comma}",
                r.workers, r.path, r.ns_per_step
            );
        }
        json.push_str("  ],\n  \"serving\": [\n");
        for (i, r) in serving_records.iter().enumerate() {
            let comma = if i + 1 == serving_records.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                json,
                "    {{\"fleet\": {}, \"mode\": \"{}\", \"env_steps_per_sec\": {:.0}}}{comma}",
                r.fleet, r.mode, r.steps_per_sec
            );
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench JSON");
        println!("wrote {path}");
    }
}
