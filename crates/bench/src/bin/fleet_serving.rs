//! Fleet-serving throughput: environment steps/sec of the vectorized
//! rollout loop (batched action selection + lockstep fleet stepping)
//! across fleet sizes {1, 4, 16, 64} × pool worker counts {1, 2, 4},
//! against the per-sample baseline (`act` once per env — the pre-fleet
//! rollout path, one `gemv` per env per step).
//!
//! The agent runs `Fx32` at the quick-study network scale so actor
//! inference, not the toy physics, dominates. Every configuration is
//! bit-identical in its actions (kernel contract); this bench isolates
//! pure serving throughput.
//!
//! Environment:
//!
//! * `FIXAR_FLEET_BENCH_STEPS` — timed fleet steps per configuration
//!   (default 300; CI's bench-smoke job uses a short count);
//! * `FIXAR_BENCH_JSON` — when set to a path, also writes the results
//!   as a JSON document (the `BENCH_fleet_serving.json` artifact that
//!   extends the perf trajectory with a serving-throughput series).

use fixar_env::{EnvKind, EnvPool};
use fixar_fixed::Fx32;
use fixar_rl::{Ddpg, DdpgConfig};
use fixar_tensor::{Matrix, Parallelism};
use std::fmt::Write as _;
use std::time::Instant;

const FLEET_SIZES: [usize; 4] = [1, 4, 16, 64];
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

struct Record {
    fleet: usize,
    workers: usize,
    path: &'static str,
    steps_per_sec: f64,
}

fn agent_config() -> DdpgConfig {
    // Pendulum-shaped agent at the quick-study network scale (64×48
    // hidden): inference cost dominates the lockstep physics.
    let mut cfg = DdpgConfig::small_test();
    cfg.hidden = (64, 48);
    cfg
}

/// Environment steps/sec of `steps` lockstep fleet steps driven by
/// `select` (which fills `actions` from the packed observations).
fn time_rollout(
    pool: &mut EnvPool,
    steps: usize,
    mut select: impl FnMut(&Matrix<f64>, &mut Matrix<f64>),
) -> f64 {
    let n = pool.len();
    let mut actions = Matrix::<f64>::zeros(n, pool.spec().action_dim);
    pool.reset_all();
    // Warmup step, then timed loop.
    let obs = pool.observations().clone();
    select(&obs, &mut actions);
    pool.step(&actions);
    let t = Instant::now();
    for _ in 0..steps {
        let obs = pool.observations().clone();
        select(&obs, &mut actions);
        pool.step(&actions);
    }
    (steps * n) as f64 / t.elapsed().as_secs_f64()
}

fn main() {
    let steps: usize = std::env::var("FIXAR_FLEET_BENCH_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(300);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "fleet_serving: Pendulum fleet, 64x48 actor, Fx32, {steps} fleet steps/config, {cores} host core(s)"
    );

    let cfg = agent_config();
    let mut records: Vec<Record> = Vec::new();
    for &fleet in &FLEET_SIZES {
        let mut pool = EnvPool::from_kind(EnvKind::Pendulum, fleet, 0);
        let mut agent = Ddpg::<Fx32>::new(3, 1, cfg.clone()).unwrap();

        // Per-sample baseline: one vector forward per env per step.
        let sps = time_rollout(&mut pool, steps, |obs, actions| {
            for i in 0..obs.rows() {
                let a = agent.act(obs.row(i)).expect("actor inference");
                actions.row_mut(i).copy_from_slice(&a);
            }
        });
        println!("fleet {fleet:>3}  per-sample act   {sps:>12.0} env steps/s");
        records.push(Record {
            fleet,
            workers: 1,
            path: "per_sample",
            steps_per_sec: sps,
        });

        // Batched fleet selection across worker counts.
        for &workers in &WORKER_COUNTS {
            let mut agent = Ddpg::<Fx32>::new(3, 1, cfg.clone()).unwrap();
            agent.set_parallelism(Parallelism::with_workers(workers));
            let sps = time_rollout(&mut pool, steps, |obs, actions| {
                let a = agent.select_actions_batch(obs).expect("batched inference");
                actions.as_mut_slice().copy_from_slice(a.as_slice());
            });
            println!("fleet {fleet:>3}  batched w{workers}       {sps:>12.0} env steps/s");
            records.push(Record {
                fleet,
                workers,
                path: "batched",
                steps_per_sec: sps,
            });
        }
    }

    if let Ok(path) = std::env::var("FIXAR_BENCH_JSON") {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"fleet_serving\",");
        let _ = writeln!(json, "  \"env\": \"Pendulum\",");
        let _ = writeln!(json, "  \"hidden\": [64, 48],");
        let _ = writeln!(json, "  \"backend\": \"Fx32\",");
        let _ = writeln!(json, "  \"fleet_steps\": {steps},");
        let _ = writeln!(json, "  \"host_cores\": {cores},");
        json.push_str("  \"series\": [\n");
        for (i, r) in records.iter().enumerate() {
            let comma = if i + 1 == records.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"fleet\": {}, \"workers\": {}, \"path\": \"{}\", \"env_steps_per_sec\": {:.0}}}{comma}",
                r.fleet, r.workers, r.path, r.steps_per_sec
            );
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench JSON");
        println!("wrote {path}");
    }
}
