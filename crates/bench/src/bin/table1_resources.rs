//! Table I harness: per-component FPGA resource usage plus a
//! design-space sweep over core count, PE geometry, and Adam width.
//!
//! ```text
//! cargo run --release -p fixar-bench --bin table1_resources
//! ```

use fixar::prelude::*;
use fixar_accel::ResourceModel;
use fixar_bench::render_table;

fn fmt_k(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.1}K", v / 1000.0)
    } else {
        format!("{v:.0}")
    }
}

fn print_design_point(label: &str, cfg: AccelConfig) {
    let model = ResourceModel::new(cfg);
    println!("— {label} —");
    let mut rows: Vec<Vec<String>> = model
        .components()
        .into_iter()
        .map(|(name, u)| {
            vec![
                name.to_string(),
                fmt_k(u.lut),
                fmt_k(u.ff),
                format!("{:.0}", u.bram),
                format!("{:.0}", u.uram),
                format!("{:.0}", u.dsp),
            ]
        })
        .collect();
    let total = model.total();
    let (lut, ff, bram, uram, dsp) = model.utilization(&U50_BUDGET);
    rows.push(vec![
        "Total".into(),
        format!("{} ({:.1}%)", fmt_k(total.lut), lut * 100.0),
        format!("{} ({:.1}%)", fmt_k(total.ff), ff * 100.0),
        format!("{:.0} ({:.1}%)", total.bram, bram * 100.0),
        format!("{:.0} ({:.1}%)", total.uram, uram * 100.0),
        format!("{:.0} ({:.1}%)", total.dsp, dsp * 100.0),
    ]);
    println!(
        "{}",
        render_table(&["Component", "LUT", "FF", "BRAM", "URAM", "DSP"], &rows)
    );
}

fn main() {
    println!("Table I: FPGA resource usage on Xilinx Alveo U50\n");
    print_design_point(
        "paper design point (2 cores, 16x16 PEs)",
        AccelConfig::default(),
    );
    println!(
        "paper totals: 508.1K LUT (58.4%), 408.8K FF (23.5%), 774 BRAM (57.6%), \
         128 URAM (20.0%), 2302 DSP (38.8%)\n"
    );

    println!("design-space sweep:");
    let mut rows = Vec::new();
    for (cores, lanes) in [(1usize, 16usize), (2, 16), (2, 32), (4, 16), (8, 16)] {
        let cfg = AccelConfig {
            n_cores: cores,
            adam_lanes: lanes,
            ..AccelConfig::default()
        };
        let m = ResourceModel::new(cfg);
        let t = m.total();
        rows.push(vec![
            format!("{cores} cores / {lanes} adam lanes"),
            fmt_k(t.lut),
            format!("{:.0}", t.dsp),
            if m.fits(&U50_BUDGET) { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["design", "LUT", "DSP", "fits U50"], &rows)
    );
}
