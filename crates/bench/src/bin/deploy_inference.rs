//! Deployment-artifact inference: the integer-only interpreter against
//! the float-side snapshot path it freezes.
//!
//! A DDPG actor is trained through its QAT freeze (so the artifact
//! carries real activation quantizers, not pass-throughs), exported
//! with `PolicySnapshot::export_artifact`, and timed on three paths:
//!
//! * `snapshot` — `PolicySnapshot::select_action`, the training-side
//!   reference the artifact must match bit-for-bit;
//! * `artifact` — `PolicyArtifact::infer`, the interpreter with f64
//!   conversion at the observation/action edges;
//! * `artifact_raw` — `PolicyArtifact::infer_raw`, the pure integer
//!   path a deployment target would run (observations pre-quantized to
//!   raw Q12.20 words).
//!
//! **Bit-equality gate:** before any timing, every path (including an
//! encode → decode round-trip of the blob and a short `ArtifactServer`
//! run stamped with the content hash) must agree with the snapshot
//! reference exactly — the bench panics rather than report timings for
//! an artifact that broke the freeze contract.
//!
//! Environment:
//!
//! * `FIXAR_DEPLOY_BENCH_REPS` — inference repetitions per path
//!   (default 20 000; CI's bench-smoke job sets a short cap);
//! * `FIXAR_BENCH_JSON` — when set to a path, also writes the results
//!   as a JSON document (the `BENCH_deploy_inference.json` CI artifact).

use fixar_deploy::PolicyArtifact;
use fixar_fixed::Fx32;
use fixar_rl::{Ddpg, DdpgConfig, PolicySnapshot, Transition, TransitionBatch};
use fixar_serve::{ArtifactReplica, ArtifactServer, ServeConfig};
use fixar_tensor::Matrix;
use std::fmt::Write as _;
use std::time::Instant;

const OBS_POOL: usize = 256;

fn frozen_snapshot() -> PolicySnapshot<Fx32> {
    let mut cfg = DdpgConfig::small_test().with_qat(4, 16);
    cfg.hidden = (64, 48);
    let mut agent = Ddpg::<Fx32>::new(3, 1, cfg).unwrap();
    let transitions: Vec<Transition> = (0..agent.config().batch_size)
        .map(|i| Transition {
            state: (0..3).map(|c| ((i + c) as f64).cos()).collect(),
            action: vec![((i * 3) as f64).sin()],
            reward: (i as f64).sin(),
            next_state: (0..3).map(|c| ((i + c + 1) as f64).cos()).collect(),
            terminal: i % 7 == 0,
        })
        .collect();
    let refs: Vec<&Transition> = transitions.iter().collect();
    let batch = TransitionBatch::from_transitions(&refs).unwrap();
    for t in 0..8u64 {
        let s: Vec<f64> = (0..3)
            .map(|c| ((t as usize * 3 + c) as f64).sin())
            .collect();
        agent.act(&s).unwrap();
        agent.train_minibatch(&batch).unwrap();
        agent.on_timestep(t).unwrap();
    }
    assert!(agent.qat_frozen(), "QAT schedule must have fired");
    agent.policy_snapshot(0)
}

fn obs_pool() -> Matrix<f64> {
    Matrix::from_fn(OBS_POOL, 3, |r, c| ((r * 3 + c) as f64 * 0.37).sin() * 0.9)
}

/// The freeze contract, end to end: interpreter ≡ snapshot, across an
/// encode → decode round-trip and through the serving front door.
fn bit_equality_gate(snap: &PolicySnapshot<Fx32>, art: &PolicyArtifact, obs: &Matrix<f64>) {
    let blob = art.encode();
    let decoded = PolicyArtifact::decode(&blob).expect("decode own blob");
    assert_eq!(&decoded, art, "decode(encode(art)) != art");
    let hash = art.content_hash();
    assert_eq!(decoded.content_hash(), hash);

    for r in 0..obs.rows() {
        let want = snap.select_action(obs.row(r)).expect("snapshot reference");
        assert_eq!(
            art.infer(obs.row(r)).unwrap(),
            want,
            "BIT-EQUALITY GATE FAILED: artifact diverges from snapshot at row {r}"
        );
        assert_eq!(
            decoded.infer(obs.row(r)).unwrap(),
            want,
            "BIT-EQUALITY GATE FAILED: decoded artifact diverges at row {r}"
        );
    }

    let server = ArtifactServer::start(ArtifactReplica::new(decoded, 0), ServeConfig::default())
        .expect("gate server");
    let client = server.client();
    for r in 0..obs.rows().min(64) {
        let resp = client.request(obs.row(r)).expect("served inference");
        assert_eq!(resp.content_hash, hash, "served hash stamp mismatch");
        assert_eq!(
            resp.action,
            snap.select_action(obs.row(r)).unwrap(),
            "BIT-EQUALITY GATE FAILED: served action diverges at row {r}"
        );
    }
    drop(server);
    println!(
        "bit-equality gate: {} offline + 64 served inferences match the snapshot exactly \
         (content hash {hash:016x})",
        obs.rows()
    );
}

fn time_ns<F: FnMut(usize)>(reps: usize, mut f: F) -> f64 {
    let t0 = Instant::now();
    for i in 0..reps {
        f(i);
    }
    t0.elapsed().as_secs_f64() * 1e9 / reps as f64
}

fn main() {
    let reps: usize = std::env::var("FIXAR_DEPLOY_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(20_000);
    println!("deploy_inference: Pendulum-shaped 64x48 QAT-frozen actor, {reps} reps per path");

    let snap = frozen_snapshot();
    let art = snap.export_artifact().expect("export artifact");
    let obs = obs_pool();
    bit_equality_gate(&snap, &art, &obs);

    let blob_bytes = art.encode().len();
    let raw_obs: Vec<Vec<i32>> = (0..obs.rows())
        .map(|r| {
            Fx32::raw_words(
                &obs.row(r)
                    .iter()
                    .map(|&v| Fx32::from_f64(v))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();

    let snapshot_ns = time_ns(reps, |i| {
        let row = obs.row(i % OBS_POOL);
        std::hint::black_box(snap.select_action(row).unwrap());
    });
    let artifact_ns = time_ns(reps, |i| {
        let row = obs.row(i % OBS_POOL);
        std::hint::black_box(art.infer(row).unwrap());
    });
    let raw_ns = time_ns(reps, |i| {
        let row = &raw_obs[i % OBS_POOL];
        std::hint::black_box(art.infer_raw(row).unwrap());
    });

    println!("blob size        {blob_bytes:>10} bytes");
    println!("snapshot         {snapshot_ns:>10.0} ns/action");
    println!("artifact (f64)   {artifact_ns:>10.0} ns/action");
    println!("artifact (raw)   {raw_ns:>10.0} ns/action");
    println!("raw interpreter vs snapshot: {:.2}x", snapshot_ns / raw_ns);

    if let Ok(path) = std::env::var("FIXAR_BENCH_JSON") {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"deploy_inference\",");
        let _ = writeln!(json, "  \"env\": \"Pendulum\",");
        let _ = writeln!(json, "  \"hidden\": [64, 48],");
        let _ = writeln!(json, "  \"backend\": \"Fx32\",");
        let _ = writeln!(json, "  \"qat_bits\": 16,");
        let _ = writeln!(json, "  \"reps\": {reps},");
        let _ = writeln!(json, "  \"bit_equality_gate\": \"passed\",");
        let _ = writeln!(json, "  \"content_hash\": \"{:016x}\",", art.content_hash());
        let _ = writeln!(json, "  \"blob_bytes\": {blob_bytes},");
        let _ = writeln!(json, "  \"snapshot_ns_per_action\": {snapshot_ns:.1},");
        let _ = writeln!(json, "  \"artifact_ns_per_action\": {artifact_ns:.1},");
        let _ = writeln!(json, "  \"artifact_raw_ns_per_action\": {raw_ns:.1},");
        let _ = writeln!(
            json,
            "  \"raw_speedup_vs_snapshot\": {:.3}",
            snapshot_ns / raw_ns
        );
        json.push_str("}\n");
        std::fs::write(&path, json).expect("write bench JSON");
        println!("wrote {path}");
    }
}
