//! Deployment-artifact inference: the integer-only interpreter against
//! the float-side snapshot path it freezes.
//!
//! A DDPG actor is trained through its QAT freeze (so the artifact
//! carries real activation quantizers, not pass-throughs), exported
//! with `PolicySnapshot::export_artifact`, and timed on three paths:
//!
//! * `snapshot` — `PolicySnapshot::select_action`, the training-side
//!   reference the artifact must match bit-for-bit;
//! * `artifact` — `PolicyArtifact::infer`, the interpreter with f64
//!   conversion at the observation/action edges;
//! * `artifact_raw` — `PolicyArtifact::infer_raw`, the pure integer
//!   path a deployment target would run (observations pre-quantized to
//!   raw Q12.20 words);
//! * `codegen` — the `emit_rust()` output compiled by the host `rustc`
//!   and timed in-process by a generated runner: the firmware path,
//!   where quantizer tables are resolved statics (or inlined affine
//!   multiply-shifts) instead of interpreter dispatch. The 16-bit
//!   `Table` quantizers here qualify for the O(1) affine fast path
//!   (`blob_tables_affine` in the JSON counts them), so raw
//!   interpretation runs at or above snapshot speed — before that fast
//!   path, per-element binary searches dragged it to ~0.54×.
//!
//! Blob-size accounting is reported alongside: the packed-delta wire
//! form (`encode`) against the raw v1 table layout
//! (`encode_uncompressed`), plus the generated source size.
//!
//! **Bit-equality gate:** before any timing, every path (including an
//! encode → decode round-trip of the blob and a short `ArtifactServer`
//! run stamped with the content hash) must agree with the snapshot
//! reference exactly — the bench panics rather than report timings for
//! an artifact that broke the freeze contract.
//!
//! Environment:
//!
//! * `FIXAR_DEPLOY_BENCH_REPS` — inference repetitions per path
//!   (default 20 000; CI's bench-smoke job sets a short cap);
//! * `FIXAR_BENCH_JSON` — when set to a path, also writes the results
//!   as a JSON document (the `BENCH_deploy_inference.json` CI artifact).

use fixar_deploy::PolicyArtifact;
use fixar_fixed::Fx32;
use fixar_rl::{Ddpg, DdpgConfig, PolicySnapshot, Transition, TransitionBatch};
use fixar_serve::{ArtifactReplica, ArtifactServer, ServeConfig};
use fixar_tensor::Matrix;
use std::fmt::Write as _;
use std::time::Instant;

const OBS_POOL: usize = 256;

fn frozen_snapshot() -> PolicySnapshot<Fx32> {
    let mut cfg = DdpgConfig::small_test().with_qat(4, 16);
    cfg.hidden = (64, 48);
    let mut agent = Ddpg::<Fx32>::new(3, 1, cfg).unwrap();
    let transitions: Vec<Transition> = (0..agent.config().batch_size)
        .map(|i| Transition {
            state: (0..3).map(|c| ((i + c) as f64).cos()).collect(),
            action: vec![((i * 3) as f64).sin()],
            reward: (i as f64).sin(),
            next_state: (0..3).map(|c| ((i + c + 1) as f64).cos()).collect(),
            terminal: i % 7 == 0,
        })
        .collect();
    let refs: Vec<&Transition> = transitions.iter().collect();
    let batch = TransitionBatch::from_transitions(&refs).unwrap();
    for t in 0..8u64 {
        let s: Vec<f64> = (0..3)
            .map(|c| ((t as usize * 3 + c) as f64).sin())
            .collect();
        agent.act(&s).unwrap();
        agent.train_minibatch(&batch).unwrap();
        agent.on_timestep(t).unwrap();
    }
    assert!(agent.qat_frozen(), "QAT schedule must have fired");
    agent.policy_snapshot(0)
}

fn obs_pool() -> Matrix<f64> {
    Matrix::from_fn(OBS_POOL, 3, |r, c| ((r * 3 + c) as f64 * 0.37).sin() * 0.9)
}

/// The freeze contract, end to end: interpreter ≡ snapshot, across an
/// encode → decode round-trip and through the serving front door.
fn bit_equality_gate(snap: &PolicySnapshot<Fx32>, art: &PolicyArtifact, obs: &Matrix<f64>) {
    let blob = art.encode();
    let decoded = PolicyArtifact::decode(&blob).expect("decode own blob");
    assert_eq!(&decoded, art, "decode(encode(art)) != art");
    let hash = art.content_hash();
    assert_eq!(decoded.content_hash(), hash);

    for r in 0..obs.rows() {
        let want = snap.select_action(obs.row(r)).expect("snapshot reference");
        assert_eq!(
            art.infer(obs.row(r)).unwrap(),
            want,
            "BIT-EQUALITY GATE FAILED: artifact diverges from snapshot at row {r}"
        );
        assert_eq!(
            decoded.infer(obs.row(r)).unwrap(),
            want,
            "BIT-EQUALITY GATE FAILED: decoded artifact diverges at row {r}"
        );
    }

    let server = ArtifactServer::start(ArtifactReplica::new(decoded, 0), ServeConfig::default())
        .expect("gate server");
    let client = server.client();
    for r in 0..obs.rows().min(64) {
        let resp = client.request(obs.row(r)).expect("served inference");
        assert_eq!(resp.content_hash, hash, "served hash stamp mismatch");
        assert_eq!(
            resp.action,
            snap.select_action(obs.row(r)).unwrap(),
            "BIT-EQUALITY GATE FAILED: served action diverges at row {r}"
        );
    }
    drop(server);
    println!(
        "bit-equality gate: {} offline + 64 served inferences match the snapshot exactly \
         (content hash {hash:016x})",
        obs.rows()
    );
}

fn time_ns<F: FnMut(usize)>(reps: usize, mut f: F) -> f64 {
    let t0 = Instant::now();
    for i in 0..reps {
        f(i);
    }
    t0.elapsed().as_secs_f64() * 1e9 / reps as f64
}

/// Compiles the artifact's `emit_rust()` output with the host `rustc`
/// and times it through a generated self-timing runner. The runner
/// first replays the whole observation pool (those action words are
/// checked against `infer_raw` — the codegen bit-equality gate), then
/// measures `reps` inferences in-process. Returns
/// `(ns_per_action, generated_source_bytes)`.
fn codegen_arm(art: &PolicyArtifact, raw_obs: &[Vec<i32>], reps: usize) -> (f64, usize) {
    let src = art.emit_rust();
    fixar_deploy::verify_generated_source(&src).expect("generated source must pass the gate");
    let dir = std::env::temp_dir().join(format!("fixar_codegen_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("codegen temp dir");
    let src_path = dir.join("policy.rs");
    std::fs::write(&src_path, &src).expect("write generated source");

    let rlib = dir.join("libpolicy.rlib");
    let out = std::process::Command::new("rustc")
        .args(["--edition=2021", "--crate-type=rlib", "--crate-name=policy"])
        // Match the workspace build flags (.cargo/config.toml): the
        // interpreter it races was compiled for the host's vector
        // units, so the emitted source must be too.
        .args(["-C", "opt-level=3", "-C", "target-cpu=native"])
        .arg("-o")
        .arg(&rlib)
        .arg(&src_path)
        .output()
        .expect("host rustc must be invocable");
    assert!(
        out.status.success(),
        "generated source failed to compile:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let in_dim = art.input_dim();
    let out_dim = art.output_dim();
    let pool = raw_obs.len();
    let mut runner = String::new();
    let _ = writeln!(runner, "static OBS: [[i32; {in_dim}]; {pool}] = [");
    for row in raw_obs {
        let _ = writeln!(runner, "    {row:?},");
    }
    runner.push_str("];\n\nfn main() {\n");
    let _ = writeln!(
        runner,
        "    for r in 0..{pool} {{\n        \
         let mut a = [0i32; {out_dim}];\n        \
         policy::infer(&OBS[r], &mut a);\n        \
         let words: Vec<String> = a.iter().map(|w| w.to_string()).collect();\n        \
         println!(\"act {{r}} {{}}\", words.join(\" \"));\n    }}\n    \
         let reps: usize = std::env::args().nth(1).unwrap().parse().unwrap();\n    \
         let mut sink = 0i64;\n    \
         let t0 = std::time::Instant::now();\n    \
         for i in 0..reps {{\n        \
         let mut a = [0i32; {out_dim}];\n        \
         policy::infer(&OBS[i % {pool}], &mut a);\n        \
         sink = sink.wrapping_add(a[0] as i64);\n    }}\n    \
         let ns = t0.elapsed().as_secs_f64() * 1e9 / reps as f64;\n    \
         println!(\"sink {{sink}}\");\n    \
         println!(\"ns {{ns:.1}}\");\n}}"
    );
    let runner_path = dir.join("runner.rs");
    std::fs::write(&runner_path, &runner).expect("write runner source");
    let runner_bin = dir.join("runner");
    let out = std::process::Command::new("rustc")
        .args([
            "--edition=2021",
            "-C",
            "opt-level=3",
            "-C",
            "target-cpu=native",
        ])
        .arg("-o")
        .arg(&runner_bin)
        .arg("--extern")
        .arg(format!("policy={}", rlib.display()))
        .arg(&runner_path)
        .output()
        .expect("host rustc must be invocable");
    assert!(
        out.status.success(),
        "codegen runner failed to compile:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let run = std::process::Command::new(&runner_bin)
        .arg(reps.to_string())
        .output()
        .expect("run codegen runner");
    assert!(run.status.success(), "codegen runner crashed");
    let stdout = String::from_utf8(run.stdout).expect("runner output");
    let mut ns = None;
    for line in stdout.lines() {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts[0] {
            "act" => {
                let r: usize = parts[1].parse().unwrap();
                let got: Vec<i32> = parts[2..].iter().map(|w| w.parse().unwrap()).collect();
                let want = art.infer_raw(&raw_obs[r]).unwrap();
                assert_eq!(
                    got, want,
                    "BIT-EQUALITY GATE FAILED: compiled codegen diverges at row {r}"
                );
            }
            "sink" => {}
            "ns" => ns = Some(parts[1].parse::<f64>().unwrap()),
            other => panic!("unexpected runner line {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "codegen gate: {pool} compiled inferences match the interpreter exactly \
         ({} bytes of generated source)",
        src.len()
    );
    (ns.expect("runner must report a timing"), src.len())
}

fn main() {
    let reps: usize = std::env::var("FIXAR_DEPLOY_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(20_000);
    println!("deploy_inference: Pendulum-shaped 64x48 QAT-frozen actor, {reps} reps per path");

    let snap = frozen_snapshot();
    let art = snap.export_artifact().expect("export artifact");
    let obs = obs_pool();
    bit_equality_gate(&snap, &art, &obs);

    let stats = art.blob_stats();
    let blob_bytes = stats.bytes;
    let raw_obs: Vec<Vec<i32>> = (0..obs.rows())
        .map(|r| {
            Fx32::raw_words(
                &obs.row(r)
                    .iter()
                    .map(|&v| Fx32::from_f64(v))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();

    let snapshot_ns = time_ns(reps, |i| {
        let row = obs.row(i % OBS_POOL);
        std::hint::black_box(snap.select_action(row).unwrap());
    });
    let artifact_ns = time_ns(reps, |i| {
        let row = obs.row(i % OBS_POOL);
        std::hint::black_box(art.infer(row).unwrap());
    });
    let raw_ns = time_ns(reps, |i| {
        let row = &raw_obs[i % OBS_POOL];
        std::hint::black_box(art.infer_raw(row).unwrap());
    });
    let (codegen_ns, gen_source_bytes) = codegen_arm(&art, &raw_obs, reps);

    println!(
        "blob size        {blob_bytes:>10} bytes ({} uncompressed, {}/{} tables packed, \
         {}/{} affine fast path)",
        stats.bytes_uncompressed,
        stats.tables_compressed,
        stats.table_points,
        stats.tables_affine,
        stats.table_points
    );
    println!("generated source {gen_source_bytes:>10} bytes");
    println!("snapshot         {snapshot_ns:>10.0} ns/action");
    println!("artifact (f64)   {artifact_ns:>10.0} ns/action");
    println!("artifact (raw)   {raw_ns:>10.0} ns/action");
    println!("codegen          {codegen_ns:>10.0} ns/action");
    println!("raw interpreter vs snapshot: {:.2}x", snapshot_ns / raw_ns);
    println!(
        "compiled codegen vs interpreter: {:.2}x",
        raw_ns / codegen_ns
    );

    if let Ok(path) = std::env::var("FIXAR_BENCH_JSON") {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"deploy_inference\",");
        let _ = writeln!(json, "  \"env\": \"Pendulum\",");
        let _ = writeln!(json, "  \"hidden\": [64, 48],");
        let _ = writeln!(json, "  \"backend\": \"Fx32\",");
        let _ = writeln!(json, "  \"qat_bits\": 16,");
        let _ = writeln!(json, "  \"reps\": {reps},");
        let _ = writeln!(json, "  \"bit_equality_gate\": \"passed\",");
        let _ = writeln!(json, "  \"content_hash\": \"{:016x}\",", art.content_hash());
        let _ = writeln!(json, "  \"blob_bytes\": {blob_bytes},");
        let _ = writeln!(
            json,
            "  \"blob_bytes_uncompressed\": {},",
            stats.bytes_uncompressed
        );
        let _ = writeln!(json, "  \"blob_table_points\": {},", stats.table_points);
        let _ = writeln!(
            json,
            "  \"blob_tables_compressed\": {},",
            stats.tables_compressed
        );
        let _ = writeln!(json, "  \"blob_tables_affine\": {},", stats.tables_affine);
        let _ = writeln!(json, "  \"codegen_source_bytes\": {gen_source_bytes},");
        let _ = writeln!(json, "  \"snapshot_ns_per_action\": {snapshot_ns:.1},");
        let _ = writeln!(json, "  \"artifact_ns_per_action\": {artifact_ns:.1},");
        let _ = writeln!(json, "  \"artifact_raw_ns_per_action\": {raw_ns:.1},");
        let _ = writeln!(json, "  \"codegen_ns_per_action\": {codegen_ns:.1},");
        let _ = writeln!(
            json,
            "  \"raw_speedup_vs_snapshot\": {:.3},",
            snapshot_ns / raw_ns
        );
        let _ = writeln!(
            json,
            "  \"codegen_speedup_vs_interpreter\": {:.3}",
            raw_ns / codegen_ns
        );
        json.push_str("}\n");
        std::fs::write(&path, json).expect("write bench JSON");
        println!("wrote {path}");
    }
}
