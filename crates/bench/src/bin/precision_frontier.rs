//! Accuracy-vs-bits frontier: per-layer precision policies over the
//! Fig. 7 precision arms.
//!
//! Each arm trains a Pendulum agent with an identical seed and schedule
//! but a different [`PrecisionPolicy`] assignment, freezes per its
//! policy, publishes a [`PolicySnapshot`], and is then measured on three
//! axes:
//!
//! 1. **Fidelity** — mean absolute action deviation from the
//!    full-precision reference arm over a fixed probe set (the software
//!    proxy for the Fig. 7 reward gap);
//! 2. **Silicon** — the plan priced through
//!    [`ResourceModel::price_layer_formats`] (MAC width, LUT, BRAM,
//!    weight bytes);
//! 3. **Serving throughput** — batched snapshot actions/sec.
//!
//! Before any timing, a **bit-equality gate** proves the redesigned
//! policy API is conservative: the `uniform16_policy` arm must reproduce
//! the legacy `with_qat(delay, 16)` arm bit-for-bit (weights and served
//! actions), and every arm's snapshot must replay its own served probe
//! actions exactly. A TD3 mixed-precision arm rides along, exercising
//! the twin-critic QAT wiring end to end.
//!
//! Environment:
//!
//! * `FIXAR_PRECISION_BENCH_STEPS` — training updates per arm (default
//!   200; CI's bench-smoke job uses a short count);
//! * `FIXAR_BENCH_JSON` — when set to a path, also writes the results
//!   as a JSON document (the `BENCH_precision_frontier.json` artifact).

use fixar_accel::{AccelConfig, LayerFormat, ResourceModel};
use fixar_fixed::{Fx32, QFormat};
use fixar_nn::PrecisionPolicy;
use fixar_rl::{Ddpg, DdpgConfig, PolicySnapshot, Td3, Td3Config, Transition, TransitionBatch};
use fixar_tensor::{Matrix, Parallelism};
use std::fmt::Write as _;
use std::time::Instant;

const STATE_DIM: usize = 3;
const ACTION_DIM: usize = 1;
const PROBE_ROWS: usize = 64;

fn base_config() -> DdpgConfig {
    let mut cfg = DdpgConfig::small_test();
    cfg.hidden = (64, 48);
    cfg.batch_size = 32;
    cfg
}

/// Deterministic synthetic replay batch (Pendulum-shaped).
fn training_batch() -> TransitionBatch {
    let transitions: Vec<Transition> = (0..64)
        .map(|i| Transition {
            state: (0..STATE_DIM)
                .map(|d| ((i * 3 + d) as f64 * 0.37).sin())
                .collect(),
            action: (0..ACTION_DIM)
                .map(|d| ((i + d * 5) as f64 * 0.21).cos() * 0.8)
                .collect(),
            reward: -((i % 11) as f64) * 0.1,
            next_state: (0..STATE_DIM)
                .map(|d| ((i * 3 + d + 1) as f64 * 0.37).sin())
                .collect(),
            terminal: i % 17 == 0,
        })
        .collect();
    let refs: Vec<&Transition> = transitions.iter().collect();
    TransitionBatch::from_transitions(&refs).unwrap()
}

fn probe_observations() -> Matrix<f64> {
    Matrix::from_fn(PROBE_ROWS, STATE_DIM, |r, c| {
        ((r * STATE_DIM + c) as f64 * 0.61).sin() * 0.9
    })
}

/// Trains one DDPG arm to a frozen snapshot.
fn train_ddpg_arm(cfg: DdpgConfig, steps: u64) -> (Ddpg<Fx32>, PolicySnapshot<Fx32>) {
    let mut agent = Ddpg::<Fx32>::new(STATE_DIM, ACTION_DIM, cfg).unwrap();
    let batch = training_batch();
    let probe = probe_observations();
    for t in 0..steps {
        // Feed the actor's monitors (rollout path) and train.
        agent.select_actions_batch(&probe).unwrap();
        agent.train_minibatch(&batch).unwrap();
        agent.on_timestep(t).unwrap();
    }
    let snap = agent.policy_snapshot(steps);
    (agent, snap)
}

/// Trains the TD3 arm to a frozen snapshot.
fn train_td3_arm(cfg: Td3Config, steps: u64) -> PolicySnapshot<Fx32> {
    let mut agent = Td3::<Fx32>::new(STATE_DIM, ACTION_DIM, cfg).unwrap();
    let batch = training_batch();
    let probe = probe_observations();
    for t in 0..steps {
        agent.select_actions_batch(&probe).unwrap();
        agent.train_minibatch(&batch).unwrap();
        agent.on_timestep(t).unwrap();
    }
    agent.policy_snapshot(steps)
}

/// Mean |a - b| over all probe actions.
fn mean_abs_dev(a: &Matrix<f64>, b: &Matrix<f64>) -> f64 {
    let n = (a.rows() * a.cols()) as f64;
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .sum::<f64>()
        / n
}

/// Maps a snapshot's per-point formats onto priced layers: layer `l`'s
/// storage runs at the format of its output activation point `l + 1`.
/// Excluded (full-precision) points — the regression output head — ride
/// the plan's widest quantized format, since the time-shared datapath
/// already carries that width; an entirely unquantized plan prices at
/// full 32-bit.
fn priced_plan(snap: &PolicySnapshot<Fx32>, hidden: (usize, usize)) -> Vec<LayerFormat> {
    let dims = [
        (STATE_DIM, hidden.0),
        (hidden.0, hidden.1),
        (hidden.1, ACTION_DIM),
    ];
    let formats = snap.point_formats();
    let widest = formats
        .iter()
        .flatten()
        .copied()
        .max_by_key(|f| f.total_bits());
    dims.iter()
        .enumerate()
        .map(|(l, &(i, o))| match formats[l + 1].or(widest) {
            Some(f) => LayerFormat::quantized(i, o, f),
            None => LayerFormat::full_precision(i, o),
        })
        .collect()
}

/// Batched serving actions/sec of a snapshot over the probe set.
fn time_serving(snap: &PolicySnapshot<Fx32>, iters: usize) -> f64 {
    let probe = probe_observations();
    let par = Parallelism::with_workers(2);
    snap.select_actions_batch(&probe, &par).unwrap();
    let t = Instant::now();
    for _ in 0..iters {
        snap.select_actions_batch(&probe, &par).unwrap();
    }
    (iters * PROBE_ROWS) as f64 / t.elapsed().as_secs_f64()
}

struct ArmResult {
    name: &'static str,
    algo: &'static str,
    mac_width_bits: u32,
    weight_mem_bytes: u64,
    pe_lut: f64,
    mem_bram: f64,
    action_dev: f64,
    actions_per_sec: f64,
    formats: String,
}

fn record(
    name: &'static str,
    algo: &'static str,
    snap: &PolicySnapshot<Fx32>,
    reference_actions: &Matrix<f64>,
    hidden: (usize, usize),
    model: &ResourceModel,
    iters: usize,
) -> ArmResult {
    let probe = probe_observations();
    let par = Parallelism::sequential();
    let served = snap.select_actions_batch(&probe, &par).unwrap();
    // Replay gate: the snapshot must reproduce its own served actions
    // per-sample, bit-for-bit, before we bother timing it.
    for r in 0..probe.rows() {
        let replayed = snap.select_action(probe.row(r)).unwrap();
        assert_eq!(
            served.row(r),
            replayed.as_slice(),
            "{name}: served row {r} failed bit-exact replay"
        );
    }
    let cost = model.price_layer_formats(&priced_plan(snap, hidden));
    let formats = snap
        .point_formats()
        .iter()
        .map(|f| f.map_or("fp".to_string(), |q| q.to_string()))
        .collect::<Vec<_>>()
        .join(",");
    ArmResult {
        name,
        algo,
        mac_width_bits: cost.mac_width_bits,
        weight_mem_bytes: cost.weight_mem_bytes,
        pe_lut: cost.pe.lut,
        mem_bram: cost.memory.bram,
        action_dev: mean_abs_dev(&served, reference_actions),
        actions_per_sec: time_serving(snap, iters),
        formats,
    }
}

fn main() {
    let steps: u64 = std::env::var("FIXAR_PRECISION_BENCH_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(200);
    let delay = (steps / 2).max(1);
    let hidden = base_config().hidden;
    let iters = 50;
    println!(
        "precision_frontier: Pendulum-shaped agents, 64x48 nets, Fx32, {steps} updates/arm, QAT delay {delay}"
    );

    let model = ResourceModel::new(AccelConfig::default());
    let probe = probe_observations();

    // Full-precision reference arm (no QAT): the fidelity anchor.
    let (_, fp_snap) = train_ddpg_arm(base_config(), steps);
    let fp_actions = fp_snap
        .select_actions_batch(&probe, &Parallelism::sequential())
        .unwrap();

    // Bit-equality gate: uniform policy == legacy global-bits runtime.
    let (legacy_agent, legacy_snap) = train_ddpg_arm(base_config().with_qat(delay, 16), steps);
    let (policy_agent, policy_snap) = train_ddpg_arm(
        base_config().with_qat_policies(
            delay,
            PrecisionPolicy::Uniform { bits: 16 },
            PrecisionPolicy::Uniform { bits: 16 },
        ),
        steps,
    );
    assert_eq!(
        legacy_agent.actor(),
        policy_agent.actor(),
        "GATE FAILED: uniform policy diverged from legacy actor weights"
    );
    let seq = Parallelism::sequential();
    assert_eq!(
        legacy_snap
            .select_actions_batch(&probe, &seq)
            .unwrap()
            .as_slice(),
        policy_snap
            .select_actions_batch(&probe, &seq)
            .unwrap()
            .as_slice(),
        "GATE FAILED: uniform policy served different actions than legacy"
    );
    println!("bit-equality gate: uniform16 policy == legacy runtime OK");

    // The frontier arms.
    let (_, u8_snap) = train_ddpg_arm(base_config().with_mixed_precision_qat(delay, 8, 8), steps);
    let (_, mixed_snap) =
        train_ddpg_arm(base_config().with_mixed_precision_qat(delay, 8, 16), steps);
    let tapered = PrecisionPolicy::PerPoint {
        formats: vec![
            Some(QFormat::q(2, 14).unwrap()),
            Some(QFormat::q(2, 10).unwrap()),
            Some(QFormat::q(2, 6).unwrap()),
            None,
        ],
        base_bits: 16,
    };
    let (_, tapered_snap) = train_ddpg_arm(
        base_config().with_qat_policies(delay, tapered, PrecisionPolicy::Uniform { bits: 16 }),
        steps,
    );
    let adaptive = PrecisionPolicy::Adaptive {
        min_bits: 6,
        max_bits: 16,
        target_delta: 1e-3,
    };
    let (_, adaptive_snap) = train_ddpg_arm(
        base_config().with_qat_policies(delay, adaptive, PrecisionPolicy::Uniform { bits: 16 }),
        steps,
    );
    let td3_snap = train_td3_arm(
        Td3Config {
            hidden,
            ..Td3Config::small_test()
        }
        .with_mixed_precision_qat(delay, 8, 16),
        steps,
    );

    let results = [
        record(
            "float_ref",
            "ddpg",
            &fp_snap,
            &fp_actions,
            hidden,
            &model,
            iters,
        ),
        record(
            "uniform16_legacy",
            "ddpg",
            &legacy_snap,
            &fp_actions,
            hidden,
            &model,
            iters,
        ),
        record(
            "uniform16_policy",
            "ddpg",
            &policy_snap,
            &fp_actions,
            hidden,
            &model,
            iters,
        ),
        record(
            "uniform8",
            "ddpg",
            &u8_snap,
            &fp_actions,
            hidden,
            &model,
            iters,
        ),
        record(
            "mixed_8_16",
            "ddpg",
            &mixed_snap,
            &fp_actions,
            hidden,
            &model,
            iters,
        ),
        record(
            "tapered_perpoint",
            "ddpg",
            &tapered_snap,
            &fp_actions,
            hidden,
            &model,
            iters,
        ),
        record(
            "adaptive",
            "ddpg",
            &adaptive_snap,
            &fp_actions,
            hidden,
            &model,
            iters,
        ),
        record(
            "td3_mixed_8_16",
            "td3",
            &td3_snap,
            &fp_actions,
            hidden,
            &model,
            iters,
        ),
    ];

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.algo.to_string(),
                format!("{}", r.mac_width_bits),
                format!("{}", r.weight_mem_bytes),
                format!("{:.0}", r.pe_lut),
                format!("{:.1}", r.mem_bram),
                format!("{:.5}", r.action_dev),
                format!("{:.0}", r.actions_per_sec),
            ]
        })
        .collect();
    println!(
        "{}",
        fixar_bench::render_table(
            &["arm", "algo", "mac_bits", "weight_B", "pe_lut", "mem_bram", "act_dev", "act/s"],
            &rows
        )
    );

    if let Ok(path) = std::env::var("FIXAR_BENCH_JSON") {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"precision_frontier\",");
        let _ = writeln!(json, "  \"env\": \"Pendulum-shaped\",");
        let _ = writeln!(json, "  \"hidden\": [{}, {}],", hidden.0, hidden.1);
        let _ = writeln!(json, "  \"backend\": \"Fx32\",");
        let _ = writeln!(json, "  \"train_updates\": {steps},");
        let _ = writeln!(json, "  \"qat_delay\": {delay},");
        let _ = writeln!(json, "  \"bit_equality_gate\": \"passed\",");
        json.push_str("  \"arms\": [\n");
        for (i, r) in results.iter().enumerate() {
            let comma = if i + 1 == results.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"arm\": \"{}\", \"algo\": \"{}\", \"mac_width_bits\": {}, \"weight_mem_bytes\": {}, \"pe_lut\": {:.0}, \"mem_bram\": {:.2}, \"mean_action_dev\": {:.6}, \"actions_per_sec\": {:.0}, \"formats\": \"{}\"}}{comma}",
                r.name,
                r.algo,
                r.mac_width_bits,
                r.weight_mem_bytes,
                r.pe_lut,
                r.mem_bram,
                r.action_dev,
                r.actions_per_sec,
                r.formats
            );
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench JSON");
        println!("wrote {path}");
    }
}
