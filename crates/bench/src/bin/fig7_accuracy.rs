//! Full-scale Fig. 7 harness: reward curves for the four precision arms.
//!
//! ```text
//! cargo run --release -p fixar-bench --bin fig7_accuracy -- \
//!     --env halfcheetah --steps 60000 --eval-every 5000 --hidden1 400 --hidden2 300
//! ```
//!
//! Defaults are scaled down (Pendulum, 12 000 steps, 64×48 nets) so the
//! harness finishes in minutes; pass the flags above to approach paper
//! scale (1M steps on MuJoCo-sized tasks is hours of CPU time — the
//! paper used an FPGA).

use fixar_bench::{arg, env_kind_arg, format_curve, render_table};

fn main() {
    let env = env_kind_arg();
    let steps: u64 = arg("steps", 12_000);
    let eval_every: u64 = arg("eval-every", steps / 8);
    let eval_episodes: usize = arg("eval-episodes", 5);
    let delay: u64 = arg("delay", steps / 3);
    let batch: usize = arg("batch", 64);

    let mut cfg = fixar_bench::quick_study_config();
    cfg.hidden = (arg("hidden1", 64), arg("hidden2", 48));
    cfg.batch_size = batch;
    cfg = cfg.with_qat(delay, 16);

    println!(
        "Fig. 7: algorithm accuracy on {} ({} steps, eval every {}, QAT delay {}, batch {}, hidden {:?})",
        env.name(),
        steps,
        eval_every,
        delay,
        batch,
        cfg.hidden
    );

    let reports =
        fixar::precision_study(env, cfg, steps, eval_every, eval_episodes).expect("study runs");

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.mode.label().to_string(),
                format!("{:.1}", r.training.tail_mean(3)),
                r.training
                    .qat_switch_step
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "-".into()),
                format!("{:.1}", r.platform_ips),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["mode", "final avg reward", "qat switch", "modelled IPS"],
            &rows
        )
    );
    for r in &reports {
        println!("{:>22}: {}", r.mode.label(), format_curve(r));
    }

    // The paper's qualitative claims, restated against this run.
    let float = reports[0].training.tail_mean(3);
    let fixed32 = reports[1].training.tail_mean(3);
    let fixed16 = reports[2].training.tail_mean(3);
    let dynamic = reports[3].training.tail_mean(3);
    println!("\nshape summary (higher is better):");
    println!(
        "  float32 {float:.1} | fixed32 {fixed32:.1} | dynamic {dynamic:.1} | fixed16 {fixed16:.1}"
    );
    println!("  paper: dynamic ≈ fixed32 ≈ float32 saturation; fixed16-from-scratch fails");
}
