//! Table II harness: FIXAR vs prior FPGA DRL accelerators, with both the
//! paper's reported FIXAR numbers and this model's regenerated ones.
//!
//! ```text
//! cargo run --release -p fixar-bench --bin table2_comparison
//! ```

use fixar::prelude::*;
use fixar_accel::comparison::{self, PlatformEntry};
use fixar_bench::{paper, render_table};

fn row(e: &PlatformEntry, fixar_kb: f64) -> Vec<String> {
    vec![
        e.name.to_string(),
        e.platform.to_string(),
        format!("{:.0}MHz", e.clock_mhz),
        e.algorithm.to_string(),
        e.task_env.to_string(),
        e.precision.label().to_string(),
        e.dsp.to_string(),
        format!("{:.1}KB", e.network_kb),
        format!("{:.1}", e.peak_ips),
        format!("{:.1}", e.normalized_peak_ips(fixar_kb)),
        e.ips_per_watt
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "-".into()),
    ]
}

fn main() {
    println!("Table II: comparison with previous works\n");

    let model = FixarPlatformModel::for_benchmark(17, 6).expect("paper dims");
    let peak_full = model.accelerator_ips(512, Precision::Full32);
    let ips_half = model.accelerator_ips(512, Precision::Half16);
    let eff = PowerModel::ips_per_watt(ips_half, paper::FPGA_POWER_W);

    println!("with this reproduction's modelled FIXAR numbers:");
    let entries = comparison::table2(peak_full, eff);
    let fixar_kb = entries[2].network_kb;
    let rows: Vec<Vec<String>> = entries.iter().map(|e| row(e, fixar_kb)).collect();
    let headers = [
        "work",
        "platform",
        "clock",
        "algorithm",
        "tasks",
        "precision",
        "DSP",
        "net size",
        "peak IPS",
        "norm. IPS",
        "IPS/W",
    ];
    println!("{}", render_table(&headers, &rows));

    println!("with the paper's reported FIXAR numbers:");
    let entries = comparison::table2(paper::PEAK_IPS_FULL, paper::IPS_PER_WATT);
    let rows: Vec<Vec<String>> = entries.iter().map(|e| row(e, fixar_kb)).collect();
    println!("{}", render_table(&headers, &rows));

    println!(
        "takeaways reproduced: FIXAR has the fewest DSPs, the only fixed-point \
         datapath, the best normalized peak IPS, and the best IPS/W."
    );
}
