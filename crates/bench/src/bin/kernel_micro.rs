//! Kernel-level microbenchmark: batched matrix-matrix kernels vs their
//! per-row (per-sample) counterparts, plus the **pool-parallel scaling
//! sweep** of every batched kernel across worker counts {1, 2, 4, 8},
//! at the quick-study layer shape (192×128) and batch 128 in `Fx32`.
//! Prints ns/sample per kernel — the raw numbers behind the end-to-end
//! speedups measured by `benches/batched_training.rs`.
//!
//! Two further arms ride along:
//!
//! * packed-weight kernels ([`Matrix::pack`]) against their unpacked
//!   counterparts, at the base shape and at 256×192 where the
//!   column-strided `gemv_t_batch` walk hurts most — every packed
//!   result is asserted bit-identical before timing;
//! * `quantizer_micro`: the per-element cost of each deploy-time
//!   quantizer spec (Shift, affine fast path, threshold-table search),
//!   isolated by subtracting a passthrough baseline artifact.
//!
//! Environment:
//!
//! * `FIXAR_KERNEL_MICRO_REPS` — timed repetitions per kernel
//!   (default 2000; CI's bench-smoke job uses a short count);
//! * `FIXAR_BENCH_JSON` — when set to a path, also writes the results
//!   as a JSON document (the `BENCH_kernel_micro.json` artifact that
//!   seeds the perf trajectory).

use fixar_deploy::{ActKind, PolicyArtifact};
use fixar_fixed::{AffineQuantizer, Fx32, QFormat};
use fixar_tensor::{Matrix, Parallelism};
use std::fmt::Write as _;
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BATCH: usize = 128;
const ROWS: usize = 192;
const COLS: usize = 128;

struct Record {
    name: String,
    ns_per_sample: f64,
}

fn push(records: &mut Vec<Record>, name: String, ns: f64) {
    println!("{name:<28} {ns:>9.1} ns/sample");
    records.push(Record {
        name,
        ns_per_sample: ns,
    });
}

fn time_ns_per_sample(reps: usize, samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    t.elapsed().as_secs_f64() * 1e9 / (reps * samples) as f64
}

fn main() {
    let reps: usize = std::env::var("FIXAR_KERNEL_MICRO_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(2000);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("kernel_micro: {ROWS}x{COLS} weights, batch {BATCH}, Fx32, {reps} reps, {cores} host core(s)");

    let w = Matrix::<f64>::from_fn(ROWS, COLS, |r, c| ((r * 7 + c) % 13) as f64 * 0.1 - 0.6)
        .cast::<Fx32>();
    let a = Matrix::<f64>::from_fn(BATCH, COLS, |b, c| ((b + c * 3) % 11) as f64 * 0.15 - 0.7)
        .cast::<Fx32>();
    let e = Matrix::<f64>::from_fn(BATCH, ROWS, |b, c| ((b * 3 + c) % 7) as f64 * 0.2 - 0.6)
        .cast::<Fx32>();
    let mut records: Vec<Record> = Vec::new();

    // Per-row (per-sample) references.
    let ns = time_ns_per_sample(reps, BATCH, || {
        for b in 0..BATCH {
            std::hint::black_box(w.gemv_alloc(std::hint::black_box(a.row(b))).unwrap());
        }
    });
    push(&mut records, "gemv per-row".into(), ns);
    let ns = time_ns_per_sample(reps, BATCH, || {
        for b in 0..BATCH {
            std::hint::black_box(w.gemv_t_alloc(std::hint::black_box(e.row(b))).unwrap());
        }
    });
    push(&mut records, "gemv_t per-row".into(), ns);
    let mut g = Matrix::<Fx32>::zeros(ROWS, COLS);
    let ns = time_ns_per_sample(reps, BATCH, || {
        for b in 0..BATCH {
            g.add_outer(
                std::hint::black_box(e.row(b)),
                std::hint::black_box(a.row(b)),
            )
            .unwrap();
        }
    });
    push(&mut records, "add_outer per-row".into(), ns);

    // Batched kernels across worker counts (1 worker = the sequential
    // batched kernel; every count is bit-identical, only throughput
    // differs — and scaling requires free host cores).
    for &workers in &WORKER_COUNTS {
        let par = Parallelism::with_workers(workers);
        let ns = time_ns_per_sample(reps, BATCH, || {
            std::hint::black_box(
                w.gemv_batch_par_alloc(std::hint::black_box(&a), &par)
                    .unwrap(),
            );
        });
        push(&mut records, format!("gemv_batch w{workers}"), ns);
    }
    for &workers in &WORKER_COUNTS {
        let par = Parallelism::with_workers(workers);
        let ns = time_ns_per_sample(reps, BATCH, || {
            std::hint::black_box(
                w.gemv_t_batch_par_alloc(std::hint::black_box(&e), &par)
                    .unwrap(),
            );
        });
        push(&mut records, format!("gemv_t_batch w{workers}"), ns);
    }
    for &workers in &WORKER_COUNTS {
        let par = Parallelism::with_workers(workers);
        let mut g = Matrix::<Fx32>::zeros(ROWS, COLS);
        let ns = time_ns_per_sample(reps, BATCH, || {
            g.add_outer_batch_par(std::hint::black_box(&e), std::hint::black_box(&a), &par)
                .unwrap();
        });
        push(&mut records, format!("add_outer_batch w{workers}"), ns);
    }
    let wt = w.transposed();
    for &workers in &WORKER_COUNTS {
        let par = Parallelism::with_workers(workers);
        let ns = time_ns_per_sample(reps, BATCH, || {
            std::hint::black_box(a.matmul_par(std::hint::black_box(&wt), &par).unwrap());
        });
        push(&mut records, format!("matmul w{workers}"), ns);
    }

    // Packed-weight kernels at the base shape: identical reduction
    // order, unit-stride inner loops. The gate proves bit-equality with
    // the unpacked kernel before any timing is recorded.
    let pack = w.pack();
    {
        let mut y = Matrix::<Fx32>::zeros(BATCH, ROWS);
        pack.gemv_batch(&a, &mut y).unwrap();
        assert_eq!(
            y,
            w.gemv_batch_par_alloc(&a, &Parallelism::with_workers(1))
                .unwrap(),
            "packed gemv_batch diverged from the unpacked kernel"
        );
        let mut yt = Matrix::<Fx32>::zeros(BATCH, COLS);
        pack.gemv_t_batch(&e, &mut yt).unwrap();
        assert_eq!(
            yt,
            w.gemv_t_batch_par_alloc(&e, &Parallelism::with_workers(1))
                .unwrap(),
            "packed gemv_t_batch diverged from the unpacked kernel"
        );
    }
    for &workers in &WORKER_COUNTS {
        let par = Parallelism::with_workers(workers);
        let mut y = Matrix::<Fx32>::zeros(BATCH, ROWS);
        let ns = time_ns_per_sample(reps, BATCH, || {
            pack.gemv_batch_par(std::hint::black_box(&a), &mut y, &par)
                .unwrap();
            std::hint::black_box(&y);
        });
        push(&mut records, format!("gemv_batch_packed w{workers}"), ns);
    }
    for &workers in &WORKER_COUNTS {
        let par = Parallelism::with_workers(workers);
        let mut y = Matrix::<Fx32>::zeros(BATCH, COLS);
        let ns = time_ns_per_sample(reps, BATCH, || {
            pack.gemv_t_batch_par(std::hint::black_box(&e), &mut y, &par)
                .unwrap();
            std::hint::black_box(&y);
        });
        push(&mut records, format!("gemv_t_batch_packed w{workers}"), ns);
    }

    // Wider shape arm: 256×192 is where the column-strided gemv_t walk
    // pays the most per element, so the packed layout's win is clearest.
    // Both sides reuse a preallocated output so the comparison is pure
    // kernel time.
    const ROWS2: usize = 256;
    const COLS2: usize = 192;
    let w2 = Matrix::<f64>::from_fn(ROWS2, COLS2, |r, c| ((r * 5 + c) % 17) as f64 * 0.08 - 0.6)
        .cast::<Fx32>();
    let e2 = Matrix::<f64>::from_fn(BATCH, ROWS2, |b, c| ((b * 3 + c) % 9) as f64 * 0.15 - 0.6)
        .cast::<Fx32>();
    let pack2 = w2.pack();
    let mut y2u = Matrix::<Fx32>::zeros(BATCH, COLS2);
    let mut y2p = Matrix::<Fx32>::zeros(BATCH, COLS2);
    w2.gemv_t_batch(&e2, &mut y2u).unwrap();
    pack2.gemv_t_batch(&e2, &mut y2p).unwrap();
    assert_eq!(
        y2u, y2p,
        "packed gemv_t_batch diverged from the unpacked kernel at 256x192"
    );
    let par1 = Parallelism::with_workers(1);
    let ns = time_ns_per_sample(reps, BATCH, || {
        w2.gemv_t_batch_par(std::hint::black_box(&e2), &mut y2u, &par1)
            .unwrap();
        std::hint::black_box(&y2u);
    });
    push(&mut records, "gemv_t_batch 256x192 w1".into(), ns);
    let ns = time_ns_per_sample(reps, BATCH, || {
        pack2
            .gemv_t_batch_par(std::hint::black_box(&e2), &mut y2p, &par1)
            .unwrap();
        std::hint::black_box(&y2p);
    });
    push(&mut records, "gemv_t_batch_packed 256x192 w1".into(), ns);

    quantizer_micro(reps, &mut records);

    if let Ok(path) = std::env::var("FIXAR_BENCH_JSON") {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"kernel_micro\",");
        let _ = writeln!(
            json,
            "  \"shape\": {{\"rows\": {ROWS}, \"cols\": {COLS}, \"batch\": {BATCH}}},"
        );
        let _ = writeln!(json, "  \"reps\": {reps},");
        let _ = writeln!(json, "  \"host_cores\": {cores},");
        let _ = writeln!(json, "  \"backend\": \"Fx32\",");
        json.push_str("  \"kernels\": [\n");
        for (i, r) in records.iter().enumerate() {
            let comma = if i + 1 == records.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"name\": \"{}\", \"ns_per_sample\": {:.1}}}{comma}",
                r.name, r.ns_per_sample
            );
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench JSON");
        println!("wrote {path}");
    }
}

/// Per-element cost of each deploy-time quantizer spec.
///
/// Four single-layer `[3, 64]` artifacts share identical weights and
/// differ only in the output activation point's spec: no quantizer at
/// all (the baseline), a power-of-two `Shift`, a 16-bit range whose
/// threshold table admits the O(1) affine multiply-shift, and a 16-bit
/// range whose bottom-clamped table forces the binary-search fallback.
/// The quantizer's per-element cost is the arm's ns/element minus the
/// baseline's, so the shared matrix walk cancels out.
fn quantizer_micro(reps: usize, records: &mut Vec<Record>) {
    const QDIM: usize = 64;
    const OBS: usize = 3;
    const POOL: usize = 64;
    println!("quantizer_micro: [{OBS}, {QDIM}] artifact, {POOL} raw obs, per-element ns");

    let weights = vec![(0..QDIM * OBS)
        .map(|i| (((i * 37) % 41) as i32 - 20) * (1 << 14))
        .collect::<Vec<i32>>()];
    let biases = vec![vec![0i32; QDIM]];
    let build = |q: Option<&AffineQuantizer>| {
        PolicyArtifact::from_parts(
            &[OBS, QDIM],
            ActKind::Identity,
            ActKind::Identity,
            weights.clone(),
            biases.clone(),
            &[None, q],
        )
        .expect("quantizer_micro artifact")
    };
    let base = build(None);
    let q_shift = AffineQuantizer::from_format(QFormat::q(4, 12).unwrap()).unwrap();
    let shift = build(Some(&q_shift));
    let q_affine = AffineQuantizer::from_range(-0.9, 1.2, 16).unwrap();
    let affine = build(Some(&q_affine));
    let q_table = AffineQuantizer::from_range(-5000.0, 5000.0, 16).unwrap();
    let table = build(Some(&q_table));

    // The arms must actually exercise the code paths they claim to: the
    // affine range's table qualifies for the multiply-shift fast path,
    // the wide bottom-clamped range provably does not.
    assert_eq!(base.blob_stats().table_points, 0);
    assert_eq!(shift.blob_stats().table_points, 0);
    assert_eq!(affine.blob_stats().table_points, 1);
    assert_eq!(affine.blob_stats().tables_affine, 1);
    assert_eq!(table.blob_stats().table_points, 1);
    assert_eq!(table.blob_stats().tables_affine, 0);

    let pool: Vec<[i32; OBS]> = (0..POOL)
        .map(|k| {
            let k = k as i32;
            [
                (k - 32) * (1 << 15),
                (k * 7 % 61 - 30) * (1 << 14),
                (k * 13 % 53 - 26) * (1 << 16),
            ]
        })
        .collect();
    let time_arm = |art: &PolicyArtifact| {
        time_ns_per_sample(reps, POOL * QDIM, || {
            for obs in &pool {
                std::hint::black_box(art.infer_raw(std::hint::black_box(obs)).unwrap());
            }
        })
    };
    let base_ns = time_arm(&base);
    push(records, "quant baseline (no spec)".into(), base_ns);
    for (name, art) in [
        ("quant_shift", &shift),
        ("quant_affine", &affine),
        ("quant_table_search", &table),
    ] {
        let ns = (time_arm(art) - base_ns).max(0.0);
        push(records, name.into(), ns);
    }
}
