//! Kernel-level microbenchmark: batched matrix-matrix kernels vs their
//! per-row (per-sample) counterparts, plus the **pool-parallel scaling
//! sweep** of every batched kernel across worker counts {1, 2, 4, 8},
//! at the quick-study layer shape (192×128) and batch 128 in `Fx32`.
//! Prints ns/sample per kernel — the raw numbers behind the end-to-end
//! speedups measured by `benches/batched_training.rs`.
//!
//! Environment:
//!
//! * `FIXAR_KERNEL_MICRO_REPS` — timed repetitions per kernel
//!   (default 2000; CI's bench-smoke job uses a short count);
//! * `FIXAR_BENCH_JSON` — when set to a path, also writes the results
//!   as a JSON document (the `BENCH_kernel_micro.json` artifact that
//!   seeds the perf trajectory).

use fixar_fixed::Fx32;
use fixar_tensor::{Matrix, Parallelism};
use std::fmt::Write as _;
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BATCH: usize = 128;
const ROWS: usize = 192;
const COLS: usize = 128;

struct Record {
    name: String,
    ns_per_sample: f64,
}

fn time_ns_per_sample(reps: usize, samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    t.elapsed().as_secs_f64() * 1e9 / (reps * samples) as f64
}

fn main() {
    let reps: usize = std::env::var("FIXAR_KERNEL_MICRO_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(2000);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("kernel_micro: {ROWS}x{COLS} weights, batch {BATCH}, Fx32, {reps} reps, {cores} host core(s)");

    let w = Matrix::<f64>::from_fn(ROWS, COLS, |r, c| ((r * 7 + c) % 13) as f64 * 0.1 - 0.6)
        .cast::<Fx32>();
    let a = Matrix::<f64>::from_fn(BATCH, COLS, |b, c| ((b + c * 3) % 11) as f64 * 0.15 - 0.7)
        .cast::<Fx32>();
    let e = Matrix::<f64>::from_fn(BATCH, ROWS, |b, c| ((b * 3 + c) % 7) as f64 * 0.2 - 0.6)
        .cast::<Fx32>();
    let mut records: Vec<Record> = Vec::new();
    let push = |records: &mut Vec<Record>, name: String, ns: f64| {
        println!("{name:<28} {ns:>9.1} ns/sample");
        records.push(Record {
            name,
            ns_per_sample: ns,
        });
    };

    // Per-row (per-sample) references.
    let ns = time_ns_per_sample(reps, BATCH, || {
        for b in 0..BATCH {
            std::hint::black_box(w.gemv_alloc(std::hint::black_box(a.row(b))).unwrap());
        }
    });
    push(&mut records, "gemv per-row".into(), ns);
    let ns = time_ns_per_sample(reps, BATCH, || {
        for b in 0..BATCH {
            std::hint::black_box(w.gemv_t_alloc(std::hint::black_box(e.row(b))).unwrap());
        }
    });
    push(&mut records, "gemv_t per-row".into(), ns);
    let mut g = Matrix::<Fx32>::zeros(ROWS, COLS);
    let ns = time_ns_per_sample(reps, BATCH, || {
        for b in 0..BATCH {
            g.add_outer(
                std::hint::black_box(e.row(b)),
                std::hint::black_box(a.row(b)),
            )
            .unwrap();
        }
    });
    push(&mut records, "add_outer per-row".into(), ns);

    // Batched kernels across worker counts (1 worker = the sequential
    // batched kernel; every count is bit-identical, only throughput
    // differs — and scaling requires free host cores).
    for &workers in &WORKER_COUNTS {
        let par = Parallelism::with_workers(workers);
        let ns = time_ns_per_sample(reps, BATCH, || {
            std::hint::black_box(
                w.gemv_batch_par_alloc(std::hint::black_box(&a), &par)
                    .unwrap(),
            );
        });
        push(&mut records, format!("gemv_batch w{workers}"), ns);
    }
    for &workers in &WORKER_COUNTS {
        let par = Parallelism::with_workers(workers);
        let ns = time_ns_per_sample(reps, BATCH, || {
            std::hint::black_box(
                w.gemv_t_batch_par_alloc(std::hint::black_box(&e), &par)
                    .unwrap(),
            );
        });
        push(&mut records, format!("gemv_t_batch w{workers}"), ns);
    }
    for &workers in &WORKER_COUNTS {
        let par = Parallelism::with_workers(workers);
        let mut g = Matrix::<Fx32>::zeros(ROWS, COLS);
        let ns = time_ns_per_sample(reps, BATCH, || {
            g.add_outer_batch_par(std::hint::black_box(&e), std::hint::black_box(&a), &par)
                .unwrap();
        });
        push(&mut records, format!("add_outer_batch w{workers}"), ns);
    }
    let wt = w.transposed();
    for &workers in &WORKER_COUNTS {
        let par = Parallelism::with_workers(workers);
        let ns = time_ns_per_sample(reps, BATCH, || {
            std::hint::black_box(a.matmul_par(std::hint::black_box(&wt), &par).unwrap());
        });
        push(&mut records, format!("matmul w{workers}"), ns);
    }

    if let Ok(path) = std::env::var("FIXAR_BENCH_JSON") {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"kernel_micro\",");
        let _ = writeln!(
            json,
            "  \"shape\": {{\"rows\": {ROWS}, \"cols\": {COLS}, \"batch\": {BATCH}}},"
        );
        let _ = writeln!(json, "  \"reps\": {reps},");
        let _ = writeln!(json, "  \"host_cores\": {cores},");
        let _ = writeln!(json, "  \"backend\": \"Fx32\",");
        json.push_str("  \"kernels\": [\n");
        for (i, r) in records.iter().enumerate() {
            let comma = if i + 1 == records.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"name\": \"{}\", \"ns_per_sample\": {:.1}}}{comma}",
                r.name, r.ns_per_sample
            );
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench JSON");
        println!("wrote {path}");
    }
}
