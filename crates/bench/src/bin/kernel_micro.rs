//! Kernel-level microbenchmark: batched matrix-matrix kernels vs their
//! per-row (per-sample) counterparts at the quick-study layer shape
//! (48×64) and batch 128, in `Fx32`. Prints ns/sample for each kernel —
//! the raw numbers behind the end-to-end speedup measured by
//! `benches/batched_training.rs`.

use fixar_fixed::Fx32;
use fixar_tensor::Matrix;
use std::time::Instant;

fn main() {
    let w =
        Matrix::<f64>::from_fn(48, 64, |r, c| ((r * 7 + c) % 13) as f64 * 0.1 - 0.6).cast::<Fx32>();
    let a = Matrix::<f64>::from_fn(128, 64, |b, c| ((b + c * 3) % 11) as f64 * 0.15 - 0.7)
        .cast::<Fx32>();
    let e =
        Matrix::<f64>::from_fn(128, 48, |b, c| ((b * 3 + c) % 7) as f64 * 0.2 - 0.6).cast::<Fx32>();
    let reps = 2000;

    let t = Instant::now();
    for _ in 0..reps {
        let y = w.gemv_batch_alloc(std::hint::black_box(&a)).unwrap();
        std::hint::black_box(y);
    }
    println!(
        "gemv_batch      {:>8.1} ns/sample",
        t.elapsed().as_secs_f64() * 1e9 / (reps * 128) as f64
    );

    let t = Instant::now();
    for _ in 0..reps {
        for b in 0..128 {
            let y = w.gemv_alloc(std::hint::black_box(a.row(b))).unwrap();
            std::hint::black_box(y);
        }
    }
    println!(
        "gemv per-row    {:>8.1} ns/sample",
        t.elapsed().as_secs_f64() * 1e9 / (reps * 128) as f64
    );

    let t = Instant::now();
    for _ in 0..reps {
        let y = w.gemv_t_batch_alloc(std::hint::black_box(&e)).unwrap();
        std::hint::black_box(y);
    }
    println!(
        "gemv_t_batch    {:>8.1} ns/sample",
        t.elapsed().as_secs_f64() * 1e9 / (reps * 128) as f64
    );

    let t = Instant::now();
    for _ in 0..reps {
        for b in 0..128 {
            let y = w.gemv_t_alloc(std::hint::black_box(e.row(b))).unwrap();
            std::hint::black_box(y);
        }
    }
    println!(
        "gemv_t per-row  {:>8.1} ns/sample",
        t.elapsed().as_secs_f64() * 1e9 / (reps * 128) as f64
    );

    let mut g1 = Matrix::<Fx32>::zeros(48, 64);
    let t = Instant::now();
    for _ in 0..reps {
        g1.add_outer_batch(std::hint::black_box(&e), std::hint::black_box(&a))
            .unwrap();
    }
    println!(
        "add_outer_batch {:>8.1} ns/sample",
        t.elapsed().as_secs_f64() * 1e9 / (reps * 128) as f64
    );

    let mut g2 = Matrix::<Fx32>::zeros(48, 64);
    let t = Instant::now();
    for _ in 0..reps {
        for b in 0..128 {
            g2.add_outer(
                std::hint::black_box(e.row(b)),
                std::hint::black_box(a.row(b)),
            )
            .unwrap();
        }
    }
    println!(
        "add_outer/row   {:>8.1} ns/sample",
        t.elapsed().as_secs_f64() * 1e9 / (reps * 128) as f64
    );
    std::hint::black_box((g1, g2));
}
