//! Request-serving throughput/latency: the deadline micro-batching
//! front door under open-loop client load.
//!
//! Simulated clients submit observations without waiting for their own
//! responses (a bounded in-flight window keeps memory sane), the
//! per-shard batchers coalesce them — flush on `max_batch` or
//! `max_delay`, whichever first — and every response is stamped with the
//! snapshot id that served it. The sweep covers request counts
//! {1k, 10k, 100k} × batch deadlines {0, 100µs, 1ms} × shards {1, 2, 4},
//! reporting p50/p99 client-observed latency and served actions/sec.
//!
//! **Bit-equality gate:** before any timing, a serving run (including a
//! live mid-run snapshot swap) is replayed offline against the recorded
//! snapshot ids and must match bit-for-bit — the timing numbers of a
//! server that broke the determinism contract would be meaningless, so
//! the bench panics instead of reporting them.
//!
//! Environment:
//!
//! * `FIXAR_SERVE_BENCH_REQUESTS` — cap on the request-count axis
//!   (default 100 000; CI's bench-smoke job sets a short cap);
//! * `FIXAR_BENCH_JSON` — when set to a path, also writes the results
//!   as a JSON document (the `BENCH_serve_latency.json` CI artifact).

use fixar_fixed::Fx32;
use fixar_rl::{Ddpg, DdpgConfig, PolicySnapshot};
use fixar_serve::{ActionServer, ServeConfig};
use std::fmt::Write as _;
use std::thread;
use std::time::{Duration, Instant};

const REQUEST_COUNTS: [usize; 3] = [1_000, 10_000, 100_000];
const DEADLINES_US: [u64; 3] = [0, 100, 1_000];
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const CLIENTS: usize = 4;
const INFLIGHT_WINDOW: usize = 64;

struct Record {
    requests: usize,
    deadline_us: u64,
    shards: usize,
    p50_us: f64,
    p99_us: f64,
    actions_per_sec: f64,
    mean_batch_rows: f64,
    max_batch_rows: u64,
}

fn agent(seed: u64) -> Ddpg<Fx32> {
    // Pendulum-shaped agent at the quick-study network scale (64×48
    // hidden), matching the fleet_serving bench.
    let mut cfg = DdpgConfig::small_test();
    cfg.hidden = (64, 48);
    cfg.seed = seed;
    Ddpg::new(3, 1, cfg).unwrap()
}

fn obs(i: usize) -> Vec<f64> {
    (0..3).map(|c| ((i * 3 + c) as f64 * 0.43).sin()).collect()
}

/// Serves `total` requests from `CLIENTS` open-loop client threads,
/// returning (sorted latencies in µs, wall seconds).
fn drive(server: &ActionServer<Fx32>, total: usize, record_obs: bool) -> DriveResult {
    let per_client = total / CLIENTS;
    let wall = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let client = server.client();
            thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                let mut served = Vec::new();
                let mut window = std::collections::VecDeque::with_capacity(INFLIGHT_WINDOW);
                let drain =
                    |w: &mut std::collections::VecDeque<(
                        Vec<f64>,
                        Instant,
                        fixar_serve::PendingAction,
                    )>,
                     latencies: &mut Vec<f64>,
                     served: &mut Vec<(Vec<f64>, u64, Vec<f64>)>| {
                        let (o, t0, pending) = w.pop_front().expect("window underflow");
                        let resp = pending.wait().expect("serving failed");
                        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                        if record_obs {
                            served.push((o, resp.snapshot_id, resp.action));
                        }
                    };
                for i in 0..per_client {
                    let o = obs(t * 1_000_000 + i);
                    let pending = client.submit(&o).expect("submit failed");
                    window.push_back((o, Instant::now(), pending));
                    if window.len() == INFLIGHT_WINDOW {
                        drain(&mut window, &mut latencies, &mut served);
                    }
                }
                while !window.is_empty() {
                    drain(&mut window, &mut latencies, &mut served);
                }
                (latencies, served)
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(total);
    let mut served = Vec::new();
    for t in threads {
        let (l, s) = t.join().unwrap();
        latencies.extend(l);
        served.extend(s);
    }
    let wall_s = wall.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    DriveResult {
        latencies_us: latencies,
        wall_s,
        served,
    }
}

struct DriveResult {
    latencies_us: Vec<f64>,
    wall_s: f64,
    served: Vec<(Vec<f64>, u64, Vec<f64>)>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// The determinism gate: serve with a mid-run snapshot swap, replay
/// offline against the recorded ids, panic on any bit difference.
fn bit_equality_gate(a0: &Ddpg<Fx32>, a1: &Ddpg<Fx32>) {
    let server = ActionServer::start(
        a0.policy_snapshot(0),
        ServeConfig {
            max_batch: 32,
            max_delay: Duration::from_micros(100),
            shards: 2,
            workers: 2,
        },
    )
    .expect("gate server");
    let publisher = server.publisher();
    let swap = {
        let publisher = publisher.clone();
        let snap = a1.policy_snapshot(1);
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(1));
            publisher.publish(snap).expect("mid-run publish");
        })
    };
    let result = drive(&server, 512, true);
    swap.join().unwrap();
    drop(server);

    let replicas: [PolicySnapshot<Fx32>; 2] = [a0.policy_snapshot(0), a1.policy_snapshot(1)];
    assert_eq!(result.served.len(), 512, "gate lost responses");
    for (o, id, action) in &result.served {
        let snap = &replicas[*id as usize];
        let replayed = snap.select_action(o).expect("offline replay");
        assert_eq!(
            action, &replayed,
            "BIT-EQUALITY GATE FAILED: served action diverges from offline replay \
             of snapshot {id} — refusing to report timings"
        );
    }
    println!("bit-equality gate: 512 served responses (with mid-run snapshot swap) replay exactly");
}

fn main() {
    let cap: usize = std::env::var("FIXAR_SERVE_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(100_000);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "serve_latency: Pendulum-shaped 64x48 actor, Fx32, {CLIENTS} open-loop clients \
         (window {INFLIGHT_WINDOW}), request cap {cap}, {cores} host core(s)"
    );

    let a0 = agent(0);
    let a1 = agent(1);
    bit_equality_gate(&a0, &a1);

    let counts: Vec<usize> = REQUEST_COUNTS
        .iter()
        .copied()
        .filter(|&c| c <= cap)
        .collect();
    let counts = if counts.is_empty() { vec![cap] } else { counts };

    let mut records: Vec<Record> = Vec::new();
    for &requests in &counts {
        for &deadline_us in &DEADLINES_US {
            for &shards in &SHARD_COUNTS {
                let server = ActionServer::start(
                    a0.policy_snapshot(0),
                    ServeConfig {
                        max_batch: 32,
                        max_delay: Duration::from_micros(deadline_us),
                        shards,
                        workers: 2,
                    },
                )
                .expect("bench server");
                let result = drive(&server, requests, false);
                let stats = server.shutdown();
                let served = result.latencies_us.len();
                let r = Record {
                    requests,
                    deadline_us,
                    shards,
                    p50_us: percentile(&result.latencies_us, 0.50),
                    p99_us: percentile(&result.latencies_us, 0.99),
                    actions_per_sec: served as f64 / result.wall_s,
                    mean_batch_rows: stats.mean_batch_rows(),
                    max_batch_rows: stats.max_batch_rows(),
                };
                println!(
                    "req {requests:>6}  deadline {deadline_us:>5}us  shards {shards}  \
                     p50 {:>9.1}us  p99 {:>9.1}us  {:>10.0} actions/s  mean batch {:>5.1}",
                    r.p50_us, r.p99_us, r.actions_per_sec, r.mean_batch_rows
                );
                records.push(r);
            }
        }
    }

    if let Ok(path) = std::env::var("FIXAR_BENCH_JSON") {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"serve_latency\",");
        let _ = writeln!(json, "  \"env\": \"Pendulum\",");
        let _ = writeln!(json, "  \"hidden\": [64, 48],");
        let _ = writeln!(json, "  \"backend\": \"Fx32\",");
        let _ = writeln!(json, "  \"clients\": {CLIENTS},");
        let _ = writeln!(json, "  \"inflight_window\": {INFLIGHT_WINDOW},");
        let _ = writeln!(json, "  \"max_batch\": 32,");
        let _ = writeln!(json, "  \"bit_equality_gate\": \"passed\",");
        let _ = writeln!(json, "  \"host_cores\": {cores},");
        json.push_str("  \"series\": [\n");
        for (i, r) in records.iter().enumerate() {
            let comma = if i + 1 == records.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"requests\": {}, \"deadline_us\": {}, \"shards\": {}, \
                 \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"actions_per_sec\": {:.0}, \
                 \"mean_batch_rows\": {:.2}, \"max_batch_rows\": {}}}{comma}",
                r.requests,
                r.deadline_us,
                r.shards,
                r.p50_us,
                r.p99_us,
                r.actions_per_sec,
                r.mean_batch_rows,
                r.max_batch_rows
            );
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench JSON");
        println!("wrote {path}");
    }
}
