//! Analytic timestep timing for both platforms (Figs. 8 and 9).

use fixar_accel::{AccelConfig, AccelError, GpuModel, Precision, TrainingSchedule};

/// Host-side timing constants, calibrated to Fig. 9's measurements:
///
/// * the MuJoCo-emulating CPU process costs ≈ 2 ms per timestep,
///   roughly constant across batch sizes;
/// * the Xilinx runtime's buffer allocation and PCIe import has a large
///   fixed overhead that "increases marginally even though the batch
///   size doubles" — modelled as a base cost plus a small per-sample
///   term.
///
/// With the accelerator's cycle model these reproduce the paper's
/// end-to-end numbers: ≈ 25.3k IPS at batch 512 on HalfCheetah and a
/// bottleneck that shifts from the CPU to the FPGA as batch grows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostModel {
    /// Environment (physics + reward) time per timestep (s).
    pub env_time_s: f64,
    /// Fixed runtime overhead per timestep (s).
    pub runtime_base_s: f64,
    /// Marginal runtime cost per batch sample (s).
    pub runtime_per_sample_s: f64,
}

impl Default for HostModel {
    fn default() -> Self {
        Self {
            env_time_s: 2.0e-3,
            runtime_base_s: 1.5e-3,
            runtime_per_sample_s: 1.35e-5,
        }
    }
}

impl HostModel {
    /// Runtime/PCIe import time for a batch.
    pub fn runtime_s(&self, batch: usize) -> f64 {
        self.runtime_base_s + batch as f64 * self.runtime_per_sample_s
    }
}

/// One timestep's execution-time decomposition (Fig. 9a) and ratio view
/// (Fig. 9b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimestepBreakdown {
    /// Batch size of the timestep.
    pub batch: usize,
    /// Host CPU (environment emulation) seconds.
    pub cpu_env_s: f64,
    /// Runtime/PCIe import seconds.
    pub runtime_s: f64,
    /// Accelerator compute seconds.
    pub accel_s: f64,
}

impl TimestepBreakdown {
    /// Total timestep latency.
    pub fn total_s(&self) -> f64 {
        self.cpu_env_s + self.runtime_s + self.accel_s
    }

    /// `(cpu, runtime, accelerator)` fractions of the total (Fig. 9b).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total_s();
        (self.cpu_env_s / t, self.runtime_s / t, self.accel_s / t)
    }

    /// End-to-end IPS: samples collected per second of system time (the
    /// paper's training-throughput metric).
    pub fn ips(&self) -> f64 {
        self.batch as f64 / self.total_s()
    }

    /// Which component dominates — the Fig. 9b bottleneck story.
    pub fn bottleneck(&self) -> &'static str {
        if self.cpu_env_s >= self.runtime_s && self.cpu_env_s >= self.accel_s {
            "cpu"
        } else if self.runtime_s >= self.accel_s {
            "runtime"
        } else {
            "fpga"
        }
    }
}

/// End-to-end timing model of the FIXAR CPU-FPGA platform for one
/// benchmark's network dimensions.
#[derive(Debug, Clone)]
pub struct FixarPlatformModel {
    host: HostModel,
    accel: AccelConfig,
    actor_sizes: Vec<usize>,
    critic_sizes: Vec<usize>,
}

impl FixarPlatformModel {
    /// Builds the model for a benchmark's observation/action dimensions,
    /// with the paper's 400×300 networks and default hardware.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] for zero dimensions.
    pub fn for_benchmark(obs_dim: usize, action_dim: usize) -> Result<Self, AccelError> {
        Self::new(
            HostModel::default(),
            AccelConfig::default(),
            obs_dim,
            action_dim,
        )
    }

    /// Fully parameterized constructor.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] for zero dimensions.
    pub fn new(
        host: HostModel,
        accel: AccelConfig,
        obs_dim: usize,
        action_dim: usize,
    ) -> Result<Self, AccelError> {
        if obs_dim == 0 || action_dim == 0 {
            return Err(AccelError::InvalidConfig(
                "benchmark dimensions must be positive".into(),
            ));
        }
        Ok(Self {
            host,
            accel,
            actor_sizes: vec![obs_dim, 400, 300, action_dim],
            critic_sizes: vec![obs_dim + action_dim, 400, 300, 1],
        })
    }

    /// Actor topology used by the model.
    pub fn actor_sizes(&self) -> &[usize] {
        &self.actor_sizes
    }

    /// Per-timestep breakdown at a batch size and precision phase.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] for a zero batch.
    pub fn breakdown(
        &self,
        batch: usize,
        precision: Precision,
    ) -> Result<TimestepBreakdown, AccelError> {
        if batch == 0 {
            return Err(AccelError::InvalidConfig("batch must be positive".into()));
        }
        let sched = TrainingSchedule::for_ddpg(
            &self.accel,
            &self.actor_sizes,
            &self.critic_sizes,
            batch,
            precision,
        );
        Ok(TimestepBreakdown {
            batch,
            cpu_env_s: self.host.env_time_s,
            runtime_s: self.host.runtime_s(batch),
            accel_s: sched.latency_s(&self.accel),
        })
    }

    /// Per-timestep breakdown with the accelerator running the
    /// **intra-batch** (structural) schedule — each core streams its
    /// shard of the minibatch, mirroring how the software twin's batched
    /// kernels actually execute. This is the path [`FixarCosim`] charges
    /// simulated time through.
    ///
    /// At batch 1 on a single-core config this is cycle-identical to
    /// [`FixarPlatformModel::breakdown`] (the per-sample schedule) —
    /// the consistency the model tests pin down.
    ///
    /// [`FixarCosim`]: crate::FixarCosim
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] for a zero batch.
    pub fn breakdown_batched(
        &self,
        batch: usize,
        precision: Precision,
    ) -> Result<TimestepBreakdown, AccelError> {
        if batch == 0 {
            return Err(AccelError::InvalidConfig("batch must be positive".into()));
        }
        let sched = TrainingSchedule::for_ddpg_batched(
            &self.accel,
            &self.actor_sizes,
            &self.critic_sizes,
            batch,
            precision,
        );
        Ok(TimestepBreakdown {
            batch,
            cpu_env_s: self.host.env_time_s,
            runtime_s: self.host.runtime_s(batch),
            accel_s: sched.latency_s(&self.accel),
        })
    }

    /// End-to-end platform IPS (Fig. 8's bars).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] for a zero batch.
    pub fn ips(&self, batch: usize, precision: Precision) -> Result<f64, AccelError> {
        Ok(self.breakdown(batch, precision)?.ips())
    }

    /// Accelerator-only IPS (Fig. 10a's FIXAR bars).
    pub fn accelerator_ips(&self, batch: usize, precision: Precision) -> f64 {
        TrainingSchedule::for_ddpg(
            &self.accel,
            &self.actor_sizes,
            &self.critic_sizes,
            batch,
            precision,
        )
        .ips(&self.accel)
    }

    /// Accelerator PE occupancy at a batch size.
    pub fn accelerator_utilization(&self, batch: usize, precision: Precision) -> f64 {
        TrainingSchedule::for_ddpg(
            &self.accel,
            &self.actor_sizes,
            &self.critic_sizes,
            batch,
            precision,
        )
        .utilization()
    }
}

/// The CPU-GPU baseline: the same host environment cost, a lighter
/// native CUDA runtime, and the Titan RTX latency model.
#[derive(Debug, Clone)]
pub struct CpuGpuPlatformModel {
    host: HostModel,
    gpu: GpuModel,
}

impl Default for CpuGpuPlatformModel {
    fn default() -> Self {
        Self::for_benchmark()
    }
}

impl CpuGpuPlatformModel {
    /// Builds the baseline with calibrated constants (the CUDA runtime's
    /// per-step overhead is far below the Vitis buffer-import cost — the
    /// "inefficiency in the run-time system" the paper concedes).
    pub fn for_benchmark() -> Self {
        Self {
            host: HostModel {
                env_time_s: 2.0e-3,
                runtime_base_s: 1.0e-3,
                runtime_per_sample_s: 0.0,
            },
            gpu: GpuModel::default(),
        }
    }

    /// Per-timestep breakdown.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` (propagated from the GPU model).
    pub fn breakdown(&self, batch: usize) -> TimestepBreakdown {
        TimestepBreakdown {
            batch,
            cpu_env_s: self.host.env_time_s,
            runtime_s: self.host.runtime_s(batch),
            accel_s: self.gpu.timestep_latency_s(batch),
        }
    }

    /// End-to-end platform IPS.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn ips(&self, batch: usize) -> f64 {
        self.breakdown(batch).ips()
    }

    /// GPU-only IPS (Fig. 10a's GPU bars).
    pub fn accelerator_ips(&self, batch: usize) -> f64 {
        self.gpu.ips(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn halfcheetah() -> FixarPlatformModel {
        FixarPlatformModel::for_benchmark(17, 6).unwrap()
    }

    #[test]
    fn paper_headline_platform_ips() {
        // 25 293.3 IPS at batch 512 (HalfCheetah, post-QAT). The model
        // must land within a few percent.
        let ips = halfcheetah().ips(512, Precision::Half16).unwrap();
        assert!(
            (23_000.0..28_000.0).contains(&ips),
            "platform IPS {ips} vs paper 25 293.3"
        );
    }

    #[test]
    fn batched_breakdown_matches_per_sample_at_batch_1_up_to_residue() {
        // The structural (intra-batch) path the co-simulator charges
        // time through collapses to the per-sample schedule when there
        // is nothing to batch and one core to stream it — identical MAC
        // tiles and phase overheads, differing only by the documented
        // activation line-buffer residue (`sample_overhead_cycles/16`)
        // that batch staging charges per sample.
        let accel = AccelConfig {
            n_cores: 1,
            ..AccelConfig::default()
        };
        let residue_s = (accel.sample_overhead_cycles / 16) as f64 / accel.clock_hz;
        let model = FixarPlatformModel::new(HostModel::default(), accel, 17, 6).unwrap();
        for precision in [Precision::Full32, Precision::Half16] {
            let per_sample = model.breakdown(1, precision).unwrap();
            let batched = model.breakdown_batched(1, precision).unwrap();
            let diff = batched.accel_s - per_sample.accel_s;
            assert!(
                (diff - residue_s).abs() < 1e-12,
                "{precision:?}: diff {diff} vs residue {residue_s}"
            );
        }
    }

    #[test]
    fn batched_breakdown_is_faster_once_there_is_a_batch_to_amortize() {
        let model = halfcheetah();
        for batch in [64, 256, 512] {
            for precision in [Precision::Full32, Precision::Half16] {
                let per_sample = model.breakdown(batch, precision).unwrap();
                let batched = model.breakdown_batched(batch, precision).unwrap();
                assert!(
                    batched.accel_s < per_sample.accel_s,
                    "batch {batch} {precision:?}"
                );
            }
        }
    }

    #[test]
    fn platform_beats_cpu_gpu_by_the_paper_margin() {
        // Fig. 8: FIXAR is 1.8–4.8× faster end to end.
        let fixar = halfcheetah();
        let gpu = CpuGpuPlatformModel::for_benchmark();
        for batch in [64, 128, 256, 512] {
            let ratio = fixar.ips(batch, Precision::Half16).unwrap() / gpu.ips(batch);
            assert!(
                (1.5..5.5).contains(&ratio),
                "batch {batch}: speedup {ratio} outside the paper's 1.8–4.8× band"
            );
        }
    }

    #[test]
    fn both_platforms_improve_with_batch_size() {
        let fixar = halfcheetah();
        let gpu = CpuGpuPlatformModel::for_benchmark();
        let mut prev_f = 0.0;
        let mut prev_g = 0.0;
        for batch in [64, 128, 256, 512] {
            let f = fixar.ips(batch, Precision::Half16).unwrap();
            let g = gpu.ips(batch);
            assert!(f > prev_f && g > prev_g, "IPS must rise with batch");
            prev_f = f;
            prev_g = g;
        }
    }

    #[test]
    fn cpu_time_is_constant_and_runtime_grows_marginally() {
        // Fig. 9a's two host-side observations.
        let m = halfcheetah();
        let b64 = m.breakdown(64, Precision::Half16).unwrap();
        let b512 = m.breakdown(512, Precision::Half16).unwrap();
        assert_eq!(b64.cpu_env_s, b512.cpu_env_s);
        // Batch grew 8×; runtime grows far less than 8×.
        assert!(b512.runtime_s / b64.runtime_s < 4.0);
        // FPGA time is roughly linear in batch.
        let accel_ratio = b512.accel_s / b64.accel_s;
        assert!(
            (6.0..9.0).contains(&accel_ratio),
            "accel ratio {accel_ratio}"
        );
    }

    #[test]
    fn bottleneck_shifts_from_host_to_fpga() {
        // Fig. 9b: the system bottleneck moves to the FPGA as batch grows.
        let m = halfcheetah();
        let small = m.breakdown(64, Precision::Half16).unwrap();
        let large = m.breakdown(512, Precision::Half16).unwrap();
        assert_ne!(small.bottleneck(), "fpga", "small batches are host-bound");
        assert_eq!(large.bottleneck(), "fpga", "large batches are FPGA-bound");
        let (_, _, accel_frac_small) = small.fractions();
        let (_, _, accel_frac_large) = large.fractions();
        assert!(accel_frac_large > accel_frac_small);
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = halfcheetah().breakdown(128, Precision::Full32).unwrap();
        let (c, r, a) = b.fractions();
        assert!((c + r + a - 1.0).abs() < 1e-12);
        assert!(b.total_s() > 0.0);
    }

    #[test]
    fn accelerator_only_gap_matches_fig10() {
        // Fig. 10a: FIXAR's accelerator is ≈5.5× the GPU at batch 512.
        let fixar = halfcheetah();
        let gpu = CpuGpuPlatformModel::for_benchmark();
        let ratio = fixar.accelerator_ips(512, Precision::Half16) / gpu.accelerator_ips(512);
        assert!((4.5..6.5).contains(&ratio), "accelerator gap {ratio}");
    }

    #[test]
    fn all_three_benchmarks_have_sane_models() {
        for (obs, act) in [(17, 6), (11, 3), (8, 2)] {
            let m = FixarPlatformModel::for_benchmark(obs, act).unwrap();
            let ips = m.ips(256, Precision::Half16).unwrap();
            assert!(ips > 10_000.0, "({obs},{act}) ips={ips}");
            // Smaller networks are never slower than HalfCheetah's.
            assert!(ips >= halfcheetah().ips(256, Precision::Half16).unwrap() * 0.99);
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(FixarPlatformModel::for_benchmark(0, 6).is_err());
        assert!(halfcheetah().breakdown(0, Precision::Full32).is_err());
    }
}
