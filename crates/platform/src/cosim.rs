//! Functional + timing co-simulation of the FIXAR platform.

use fixar_accel::{AccelConfig, FixarAccelerator, Precision};
use fixar_env::Environment;
use fixar_fixed::Fx32;
use fixar_rl::{DdpgConfig, RlError, Trainer, TrainingReport};

use crate::models::{FixarPlatformModel, HostModel, TimestepBreakdown};

/// Result of a co-simulated training run: the learning outcome plus the
/// platform time it would have consumed on the modelled hardware.
#[derive(Debug, Clone)]
pub struct CosimReport {
    /// Reward curve and training statistics (from `fixar-rl`).
    pub training: TrainingReport,
    /// Total simulated wall-clock seconds on the CPU-FPGA platform.
    pub sim_time_s: f64,
    /// Samples per simulated second over the whole run.
    pub avg_ips: f64,
    /// Breakdown of the final timestep (post-QAT when the schedule
    /// fired).
    pub final_breakdown: TimestepBreakdown,
    /// Simulated time at which activations switched to 16 bits.
    pub qat_switch_time_s: Option<f64>,
}

/// Co-simulator: real DDPG+QAT training in `Fx32` arithmetic (the exact
/// numerics of the accelerator datapath) advancing a simulated platform
/// clock per timestep. After the QAT schedule freezes, the accelerator
/// model switches to half-precision and the simulated timestep shortens —
/// the dynamic-precision speedup happens *during* the run, as on the real
/// platform.
///
/// # Example
///
/// ```no_run
/// use fixar_env::Pendulum;
/// use fixar_platform::FixarCosim;
/// use fixar_rl::DdpgConfig;
///
/// let cfg = DdpgConfig::small_test().with_qat(500, 16);
/// let mut cosim = FixarCosim::new(
///     Box::new(Pendulum::new(1)),
///     Box::new(Pendulum::new(2)),
///     cfg,
/// )?;
/// let report = cosim.run(1_000, 500, 2)?;
/// assert!(report.sim_time_s > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct FixarCosim {
    trainer: Trainer<Fx32>,
    model: FixarPlatformModel,
    accel: FixarAccelerator,
    batch: usize,
    sim_time_s: f64,
}

impl FixarCosim {
    /// Builds the co-simulator with default hardware models.
    ///
    /// # Errors
    ///
    /// Returns [`RlError`] for inconsistent environments/configs; panics
    /// never — hardware-model errors surface as `InvalidConfig`.
    pub fn new(
        env: Box<dyn Environment>,
        eval_env: Box<dyn Environment>,
        cfg: DdpgConfig,
    ) -> Result<Self, RlError> {
        let spec = env.spec();
        let model = FixarPlatformModel::new(
            HostModel::default(),
            AccelConfig::default(),
            spec.obs_dim,
            spec.action_dim,
        )
        .map_err(|e| RlError::InvalidConfig(e.to_string()))?;
        let accel = FixarAccelerator::new(AccelConfig::default())
            .map_err(|e| RlError::InvalidConfig(e.to_string()))?;
        let batch = cfg.batch_size;
        let trainer = Trainer::new(env, eval_env, cfg)?;
        Ok(Self {
            trainer,
            model,
            accel,
            batch,
            sim_time_s: 0.0,
        })
    }

    /// The wrapped trainer (inspection).
    pub fn trainer(&self) -> &Trainer<Fx32> {
        &self.trainer
    }

    /// The accelerator model, with the agent's networks loaded after a
    /// run (weight-memory image inspection).
    pub fn accelerator(&self) -> &FixarAccelerator {
        &self.accel
    }

    /// Simulated platform seconds elapsed so far.
    pub fn sim_time_s(&self) -> f64 {
        self.sim_time_s
    }

    /// Runs `steps` timesteps of functional training, advancing the
    /// simulated clock per Fig. 3's sequence, and loads the final
    /// weights into the accelerator's weight memory.
    ///
    /// # Errors
    ///
    /// Propagates training errors from `fixar-rl`.
    pub fn run(
        &mut self,
        steps: u64,
        eval_every: u64,
        eval_episodes: usize,
    ) -> Result<CosimReport, RlError> {
        // Chunked execution so the simulated clock can react to the QAT
        // switch with eval-period granularity.
        let chunk = eval_every.min(steps).max(1);
        let mut curve = Vec::new();
        let mut episodes = 0;
        let mut qat_switch_step = None;
        let mut qat_switch_time = None;
        let mut final_metrics = Default::default();
        let mut done = 0u64;
        while done < steps {
            let n = chunk.min(steps - done);
            let precision = if self.trainer.agent().qat_frozen() {
                Precision::Half16
            } else {
                Precision::Full32
            };
            // Charge simulated time through the batched structural
            // schedule — the accelerator path that mirrors how the
            // software twin's batched kernels actually execute.
            let breakdown = self
                .model
                .breakdown_batched(self.batch, precision)
                .map_err(|e| RlError::InvalidConfig(e.to_string()))?;
            let report = self.trainer.run(n, eval_every, eval_episodes)?;
            self.sim_time_s += breakdown.total_s() * n as f64;
            curve.extend(report.curve);
            episodes += report.train_episodes;
            final_metrics = report.final_metrics;
            if let Some(s) = report.qat_switch_step {
                qat_switch_step = Some(s);
                qat_switch_time = Some(self.sim_time_s);
            }
            done += n;
        }

        // Mirror the trained weights into the accelerator image.
        let agent = self.trainer.agent();
        self.accel
            .load_ddpg(agent.actor(), agent.critic())
            .map_err(|e| RlError::InvalidConfig(e.to_string()))?;

        let final_precision = if self.trainer.agent().qat_frozen() {
            Precision::Half16
        } else {
            Precision::Full32
        };
        let final_breakdown = self
            .model
            .breakdown_batched(self.batch, final_precision)
            .map_err(|e| RlError::InvalidConfig(e.to_string()))?;
        let total_steps = done;
        Ok(CosimReport {
            training: TrainingReport {
                curve,
                train_episodes: episodes,
                total_steps,
                qat_switch_step,
                final_metrics,
            },
            sim_time_s: self.sim_time_s,
            avg_ips: self.batch as f64 * total_steps as f64 / self.sim_time_s,
            final_breakdown,
            qat_switch_time_s: qat_switch_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_env::Pendulum;
    use fixar_rl::DdpgConfig;

    fn cosim(cfg: DdpgConfig) -> FixarCosim {
        FixarCosim::new(Box::new(Pendulum::new(1)), Box::new(Pendulum::new(2)), cfg).unwrap()
    }

    #[test]
    fn cosim_advances_simulated_time() {
        let mut c = cosim(DdpgConfig::small_test());
        let report = c.run(100, 100, 1).unwrap();
        assert!(report.sim_time_s > 0.0);
        assert!(report.avg_ips > 0.0);
        assert_eq!(report.training.total_steps, 100);
        // Simulated time per timestep is in the milliseconds regime.
        let per_step = report.sim_time_s / 100.0;
        assert!((1e-4..0.2).contains(&per_step), "per-step {per_step}s");
    }

    #[test]
    fn qat_switch_speeds_up_the_simulated_platform() {
        let cfg = DdpgConfig::small_test().with_qat(150, 16);
        let mut c = cosim(cfg);
        let report = c.run(300, 50, 1).unwrap();
        assert!(report.training.qat_switch_step.is_some());
        assert!(report.qat_switch_time_s.is_some());
        // Final timestep runs in half precision: strictly faster than the
        // full-precision breakdown at the same batch.
        let full = c
            .model
            .breakdown_batched(c.batch, Precision::Full32)
            .unwrap();
        assert!(report.final_breakdown.total_s() < full.total_s());
    }

    #[test]
    fn trained_weights_land_in_the_accelerator_memory() {
        let mut c = cosim(DdpgConfig::small_test());
        c.run(80, 80, 1).unwrap();
        assert!(c.accelerator().model_bytes() > 0);
    }
}
