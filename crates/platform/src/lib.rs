//! The FIXAR CPU-FPGA platform: host CPU emulating the environment, FPGA
//! accelerator running the agent's DNN operations (paper Figs. 2 and 3).
//!
//! Two layers:
//!
//! * **Timing models** — [`FixarPlatformModel`] and [`CpuGpuPlatformModel`]
//!   decompose one timestep into host-CPU environment time, runtime/PCIe
//!   import time, and accelerator compute time (Fig. 9), and integrate
//!   them into the end-to-end IPS numbers of Fig. 8. Constants are
//!   calibrated in `HostModel`'s docs.
//! * **Co-simulation** — [`FixarCosim`] runs *real* DDPG+QAT training
//!   (via `fixar-rl`, arithmetic bit-equivalent to the accelerator
//!   datapath) while advancing a simulated clock from the timing models,
//!   switching the accelerator to half-precision the moment the QAT
//!   schedule freezes — so a training run reports both a reward curve
//!   and the platform throughput it would have achieved on the U50.
//!
//! # Example
//!
//! ```
//! use fixar_platform::{CpuGpuPlatformModel, FixarPlatformModel};
//! use fixar_accel::Precision;
//!
//! let fixar = FixarPlatformModel::for_benchmark(17, 6)?;
//! let gpu = CpuGpuPlatformModel::for_benchmark();
//! let f = fixar.ips(512, Precision::Half16)?;
//! let g = gpu.ips(512);
//! assert!(f > 1.8 * g, "FIXAR should beat CPU-GPU: {f} vs {g}");
//! # Ok::<(), fixar_accel::AccelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cosim;
mod models;

pub use cosim::{CosimReport, FixarCosim};
pub use models::{CpuGpuPlatformModel, FixarPlatformModel, HostModel, TimestepBreakdown};
