//! Continuous-control environments for the FIXAR platform.
//!
//! The paper evaluates on three MuJoCo locomotion benchmarks; this crate
//! rebuilds them on the [`fixar_sim`] planar physics engine with the same
//! observation/action dimensionality:
//!
//! | Benchmark      | Observations | Actions | Notes                         |
//! |----------------|-------------:|--------:|-------------------------------|
//! | [`HalfCheetah`] | 17          | 6       | planar cheetah, never falls   |
//! | [`Hopper`]      | 11          | 3       | terminates when fallen        |
//! | [`Swimmer`]     | 8           | 2       | viscous fluid, no gravity     |
//! | [`Pendulum`]    | 3           | 1       | analytic; fast tests/examples |
//!
//! (The paper prints "6-dimensional action" for Hopper — a typo; a hopper
//! has three actuated joints. See DESIGN.md §1.)
//!
//! Episodes are 1000 steps (200 for Pendulum), matching the paper's
//! "episode = 1000 timesteps". All environments are deterministic given a
//! seed, which the Fig. 7 precision study relies on.
//!
//! For multi-env serving, [`EnvPool`] owns a homogeneous fleet of
//! environments with independent seeds and episode lifecycles, steps
//! them in lockstep with auto-reset, and packs observations into one
//! matrix per step for the batched inference path.
//!
//! # Example
//!
//! ```
//! use fixar_env::{Environment, Pendulum};
//!
//! let mut env = Pendulum::new(7);
//! let obs = env.reset();
//! assert_eq!(obs.len(), env.spec().obs_dim);
//! let step = env.step(&[0.5]);
//! assert!(step.reward.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod half_cheetah;
mod hopper;
mod pendulum;
mod pool;
mod rig;
mod swimmer;

pub use half_cheetah::HalfCheetah;
pub use hopper::Hopper;
pub use pendulum::Pendulum;
pub use pool::{fleet_env_seed, EnvPool, EpisodeStats, FleetStep, FLEET_SEED_STRIDE};
pub use swimmer::Swimmer;

/// Static description of an environment's interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvSpec {
    /// Human-readable benchmark name.
    pub name: &'static str,
    /// Observation vector length.
    pub obs_dim: usize,
    /// Action vector length.
    pub action_dim: usize,
    /// Episode cap in control steps.
    pub max_episode_steps: usize,
}

/// Result of one control step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// Next observation.
    pub observation: Vec<f64>,
    /// Scalar reward.
    pub reward: f64,
    /// `true` when the task reached a failure state (the paper's "agent
    /// falls down").
    pub terminated: bool,
    /// `true` when the episode hit the step cap.
    pub truncated: bool,
}

impl StepResult {
    /// `terminated || truncated` — the episode is over either way.
    pub fn done(&self) -> bool {
        self.terminated || self.truncated
    }
}

/// A reinforcement-learning environment with continuous observations and
/// actions in `[-1, 1]^action_dim`.
///
/// Implementations clamp out-of-range actions rather than erroring — the
/// actor's tanh output is bounded, but exploration noise is added on top.
pub trait Environment: Send {
    /// Interface description.
    fn spec(&self) -> EnvSpec;

    /// Starts a new episode and returns the initial observation. Reset
    /// randomness comes from the environment's seeded RNG.
    fn reset(&mut self) -> Vec<f64>;

    /// Reseeds the environment's RNG (evaluation reproducibility).
    fn seed(&mut self, seed: u64);

    /// Advances one control step.
    ///
    /// # Panics
    ///
    /// Panics if `action.len() != spec().action_dim`.
    fn step(&mut self, action: &[f64]) -> StepResult;
}

/// The benchmarks of the paper's evaluation, plus the fast Pendulum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvKind {
    /// 17-obs / 6-action planar cheetah.
    HalfCheetah,
    /// 11-obs / 3-action hopper.
    Hopper,
    /// 8-obs / 2-action swimmer.
    Swimmer,
    /// 3-obs / 1-action pendulum swing-up.
    Pendulum,
}

impl EnvKind {
    /// All paper benchmarks (Fig. 8 iterates these).
    pub const PAPER_BENCHMARKS: [EnvKind; 3] =
        [EnvKind::HalfCheetah, EnvKind::Hopper, EnvKind::Swimmer];

    /// Instantiates the environment with a seed.
    pub fn make(self, seed: u64) -> Box<dyn Environment> {
        match self {
            EnvKind::HalfCheetah => Box::new(HalfCheetah::new(seed)),
            EnvKind::Hopper => Box::new(Hopper::new(seed)),
            EnvKind::Swimmer => Box::new(Swimmer::new(seed)),
            EnvKind::Pendulum => Box::new(Pendulum::new(seed)),
        }
    }

    /// Benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            EnvKind::HalfCheetah => "HalfCheetah",
            EnvKind::Hopper => "Hopper",
            EnvKind::Swimmer => "Swimmer",
            EnvKind::Pendulum => "Pendulum",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions_match_table() {
        let dims = [
            (EnvKind::HalfCheetah, 17, 6),
            (EnvKind::Hopper, 11, 3),
            (EnvKind::Swimmer, 8, 2),
            (EnvKind::Pendulum, 3, 1),
        ];
        for (kind, obs, act) in dims {
            let env = kind.make(0);
            let spec = env.spec();
            assert_eq!(spec.obs_dim, obs, "{}", kind.name());
            assert_eq!(spec.action_dim, act, "{}", kind.name());
        }
    }

    #[test]
    fn locomotion_episodes_cap_at_1000() {
        for kind in EnvKind::PAPER_BENCHMARKS {
            let env = kind.make(0);
            assert_eq!(env.spec().max_episode_steps, 1000, "{}", kind.name());
        }
    }

    #[test]
    fn random_rollouts_stay_finite() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for kind in [
            EnvKind::HalfCheetah,
            EnvKind::Hopper,
            EnvKind::Swimmer,
            EnvKind::Pendulum,
        ] {
            let mut env = kind.make(11);
            let mut obs = env.reset();
            for step in 0..300 {
                let action: Vec<f64> = (0..env.spec().action_dim)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect();
                let res = env.step(&action);
                assert!(
                    res.observation.iter().all(|v| v.is_finite()),
                    "{} step {step}: non-finite obs",
                    kind.name()
                );
                assert!(res.reward.is_finite(), "{} reward", kind.name());
                let done = res.done();
                obs = res.observation;
                if done {
                    obs = env.reset();
                }
            }
            assert_eq!(obs.len(), env.spec().obs_dim);
        }
    }

    #[test]
    fn resets_are_reproducible_per_seed() {
        for kind in EnvKind::PAPER_BENCHMARKS {
            let mut a = kind.make(42);
            let mut b = kind.make(42);
            assert_eq!(a.reset(), b.reset(), "{}", kind.name());
            let act = vec![0.3; a.spec().action_dim];
            for _ in 0..50 {
                let ra = a.step(&act);
                let rb = b.step(&act);
                assert_eq!(ra, rb, "{}", kind.name());
            }
        }
    }

    #[test]
    fn step_count_truncates_episode() {
        let mut env = Pendulum::new(0);
        env.reset();
        let mut last = None;
        for _ in 0..200 {
            last = Some(env.step(&[0.0]));
        }
        let last = last.unwrap();
        assert!(last.truncated);
        assert!(!last.terminated);
    }
}
