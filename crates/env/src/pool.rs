//! A lockstep fleet of environments served by one agent.
//!
//! The serving story of the FIXAR host side: many concurrent episodes
//! per agent, every inference pass a batched kernel. [`EnvPool`] owns
//! `N` boxed [`Environment`]s with independent seeds and episode
//! lifecycles, steps them in lockstep, auto-resets finished episodes,
//! and packs observations into one `Matrix<f64>` per step so the
//! caller's action selection can go through the batched forward path
//! instead of `N` per-sample passes.

use fixar_tensor::Matrix;

use crate::{EnvKind, EnvSpec, Environment};

/// Per-env seed stride for [`EnvPool::from_kind`] — an odd constant
/// deliberately **different** from the SplitMix64 gamma of the vendored
/// `rand` shim, so adjacent env streams are not shifted copies of each
/// other. Slot 0 keeps the base seed unchanged, which is what makes a
/// fleet of one reproduce a solo environment exactly.
pub const FLEET_SEED_STRIDE: u64 = 0xA076_1D64_78BD_642F;

/// Seed of fleet slot `env_idx` derived from `base_seed` (the scheme
/// [`EnvPool::from_kind`] uses). Exposed so tests and solo reruns can
/// reconstruct any single slot's environment bit-for-bit.
pub fn fleet_env_seed(base_seed: u64, env_idx: usize) -> u64 {
    base_seed.wrapping_add((env_idx as u64).wrapping_mul(FLEET_SEED_STRIDE))
}

/// Accounting record emitted when one fleet slot finishes an episode.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeStats {
    /// Fleet slot that finished.
    pub env: usize,
    /// Zero-based index of the finished episode within that slot.
    pub episode: usize,
    /// Control steps the episode lasted.
    pub steps: usize,
    /// Cumulative (undiscounted) reward of the episode.
    pub ret: f64,
}

/// Result of stepping the whole fleet once.
///
/// `next_observations` holds the **raw** successor observations `s'`
/// (pre-reset) — exactly what a replay transition stores — while the
/// pool's own [`EnvPool::observations`] already shows the post-reset
/// observation for any slot whose episode ended.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStep {
    /// Raw per-env successor observations (one env per row, pre-reset).
    pub next_observations: Matrix<f64>,
    /// Per-env rewards.
    pub rewards: Vec<f64>,
    /// Per-env terminal flags (failure states; no bootstrapping).
    pub terminated: Vec<bool>,
    /// Per-env truncation flags (step-cap hits).
    pub truncated: Vec<bool>,
    /// Episodes that ended on this step, in ascending env order.
    pub finished: Vec<EpisodeStats>,
}

/// A fleet of `N` environments with independent seeds and episode
/// lifecycles, stepped in lockstep with auto-reset.
///
/// Construction does **not** reset the environments — call
/// [`EnvPool::reset_all`] before the first [`EnvPool::step`], exactly
/// as a solo environment is reset before its first step (this keeps a
/// fleet of one on the same reset stream as a solo run). Episode
/// accounting is per slot: each finished episode is reported once
/// through [`FleetStep::finished`] and tallied in
/// [`EnvPool::episodes_completed`].
///
/// # Example
///
/// ```
/// use fixar_env::{EnvKind, EnvPool};
/// use fixar_tensor::Matrix;
///
/// let mut pool = EnvPool::from_kind(EnvKind::Pendulum, 4, 7);
/// let obs = pool.reset_all().clone();
/// assert_eq!(obs.shape(), (4, 3));
/// let actions = Matrix::<f64>::zeros(4, 1);
/// let step = pool.step(&actions);
/// assert!(step.rewards.iter().all(|r| r.is_finite()));
/// assert_eq!(pool.observations().shape(), (4, 3));
/// ```
pub struct EnvPool {
    envs: Vec<Box<dyn Environment>>,
    spec: EnvSpec,
    obs: Matrix<f64>,
    episode_steps: Vec<usize>,
    episode_returns: Vec<f64>,
    episodes_completed: Vec<usize>,
}

impl EnvPool {
    /// Builds a pool from pre-seeded environments.
    ///
    /// # Panics
    ///
    /// Panics if `envs` is empty or the environments disagree on their
    /// [`EnvSpec`] (a fleet must be homogeneous so observations pack
    /// into one matrix).
    pub fn new(envs: Vec<Box<dyn Environment>>) -> Self {
        assert!(!envs.is_empty(), "a fleet needs at least one environment");
        let spec = envs[0].spec();
        for (i, env) in envs.iter().enumerate() {
            assert_eq!(
                env.spec(),
                spec,
                "fleet slot {i} disagrees with slot 0 on the environment spec"
            );
        }
        let n = envs.len();
        Self {
            obs: Matrix::zeros(n, spec.obs_dim),
            episode_steps: vec![0; n],
            episode_returns: vec![0.0; n],
            episodes_completed: vec![0; n],
            envs,
            spec,
        }
    }

    /// Builds a homogeneous fleet of `n` environments of `kind`, slot
    /// `i` seeded with [`fleet_env_seed`]`(base_seed, i)` — slot 0 keeps
    /// `base_seed` itself, so a fleet of one reproduces a solo
    /// environment exactly.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn from_kind(kind: EnvKind, n: usize, base_seed: u64) -> Self {
        Self::new(
            (0..n)
                .map(|i| kind.make(fleet_env_seed(base_seed, i)))
                .collect(),
        )
    }

    /// Fleet size `N`.
    pub fn len(&self) -> usize {
        self.envs.len()
    }

    /// Always `false`: construction rejects empty fleets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The (shared) environment spec.
    pub fn spec(&self) -> &EnvSpec {
        &self.spec
    }

    /// Current per-env observations (one env per row), post-auto-reset.
    pub fn observations(&self) -> &Matrix<f64> {
        &self.obs
    }

    /// Episodes completed per slot since construction.
    pub fn episodes_completed(&self) -> &[usize] {
        &self.episodes_completed
    }

    /// Cumulative reward of each slot's episode **in progress**.
    pub fn episode_returns(&self) -> &[f64] {
        &self.episode_returns
    }

    /// Steps taken in each slot's episode in progress.
    pub fn episode_steps(&self) -> &[usize] {
        &self.episode_steps
    }

    /// Starts a fresh episode in every slot (ascending env order) and
    /// returns the packed initial observations. In-progress episode
    /// accounting is discarded; completed-episode tallies are kept.
    pub fn reset_all(&mut self) -> &Matrix<f64> {
        for (i, env) in self.envs.iter_mut().enumerate() {
            let o = env.reset();
            self.obs.row_mut(i).copy_from_slice(&o);
            self.episode_steps[i] = 0;
            self.episode_returns[i] = 0.0;
        }
        &self.obs
    }

    /// Steps every slot with its row of `actions` (ascending env
    /// order), auto-resetting any slot whose episode ended. Returns the
    /// raw per-env step results; [`EnvPool::observations`] afterwards
    /// holds the post-reset observation for finished slots and the
    /// successor observation for the rest.
    ///
    /// # Panics
    ///
    /// Panics if `actions` is not `N × action_dim`.
    pub fn step(&mut self, actions: &Matrix<f64>) -> FleetStep {
        self.step_range(0..self.envs.len(), actions)
    }

    /// Steps only the slots in `range` (ascending env order within it),
    /// with row `i` of `actions` driving slot `range.start + i` — the
    /// half-fleet primitive of double-buffered serving: the trainer
    /// steps one buffer's slots on the host while the pool computes the
    /// other buffer's actions. Auto-reset, per-slot episode accounting,
    /// and the returned [`FleetStep`] (sized `range.len()`, with
    /// [`EpisodeStats::env`] holding **absolute** slot indices) behave
    /// exactly as in [`EnvPool::step`], which is this method over
    /// `0..N`: stepping two disjoint ranges in ascending order is
    /// bit-identical to one full lockstep step, because slots are
    /// independent.
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the fleet or `actions` is not
    /// `range.len() × action_dim`.
    pub fn step_range(
        &mut self,
        range: std::ops::Range<usize>,
        actions: &Matrix<f64>,
    ) -> FleetStep {
        assert!(range.end <= self.envs.len(), "slot range out of fleet");
        assert_eq!(
            actions.shape(),
            (range.len(), self.spec.action_dim),
            "fleet actions must be range.len() x action_dim"
        );
        let mut next_observations = Matrix::zeros(range.len(), self.spec.obs_dim);
        let mut rewards = Vec::with_capacity(range.len());
        let mut terminated = Vec::with_capacity(range.len());
        let mut truncated = Vec::with_capacity(range.len());
        let mut finished = Vec::new();
        for (local, i) in range.enumerate() {
            let res = self.envs[i].step(actions.row(local));
            next_observations
                .row_mut(local)
                .copy_from_slice(&res.observation);
            self.episode_steps[i] += 1;
            self.episode_returns[i] += res.reward;
            rewards.push(res.reward);
            terminated.push(res.terminated);
            truncated.push(res.truncated);
            if res.terminated || res.truncated {
                finished.push(EpisodeStats {
                    env: i,
                    episode: self.episodes_completed[i],
                    steps: self.episode_steps[i],
                    ret: self.episode_returns[i],
                });
                self.episodes_completed[i] += 1;
                self.episode_steps[i] = 0;
                self.episode_returns[i] = 0.0;
                let o = self.envs[i].reset();
                self.obs.row_mut(i).copy_from_slice(&o);
            } else {
                self.obs.row_mut(i).copy_from_slice(&res.observation);
            }
        }
        FleetStep {
            next_observations,
            rewards,
            terminated,
            truncated,
            finished,
        }
    }
}

impl std::fmt::Debug for EnvPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnvPool")
            .field("name", &self.spec.name)
            .field("len", &self.envs.len())
            .field("episodes_completed", &self.episodes_completed)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pendulum;

    #[test]
    fn fleet_slots_match_solo_environments() {
        // Each slot of a lockstep fleet must behave exactly like a solo
        // environment with the same seed fed the same actions.
        let n = 3;
        let mut pool = EnvPool::from_kind(EnvKind::Pendulum, n, 42);
        pool.reset_all();
        let mut solos: Vec<Box<dyn Environment>> = (0..n)
            .map(|i| EnvKind::Pendulum.make(fleet_env_seed(42, i)))
            .collect();
        let solo_obs: Vec<Vec<f64>> = solos.iter_mut().map(|e| e.reset()).collect();
        for (i, o) in solo_obs.iter().enumerate() {
            assert_eq!(pool.observations().row(i), o.as_slice(), "slot {i}");
        }
        let actions = Matrix::from_fn(n, 1, |i, _| (i as f64 - 1.0) * 0.5);
        for _ in 0..250 {
            let fs = pool.step(&actions);
            for (i, solo) in solos.iter_mut().enumerate() {
                let r = solo.step(actions.row(i));
                assert_eq!(fs.next_observations.row(i), r.observation.as_slice());
                assert_eq!(fs.rewards[i], r.reward);
                assert_eq!(fs.terminated[i], r.terminated);
                assert_eq!(fs.truncated[i], r.truncated);
                if r.terminated || r.truncated {
                    let o = solo.reset();
                    assert_eq!(pool.observations().row(i), o.as_slice());
                }
            }
        }
    }

    #[test]
    fn auto_reset_accounts_episodes_per_slot() {
        // Pendulum truncates at 200 steps; 450 steps = 2 completed
        // episodes per slot with a third in progress.
        let mut pool = EnvPool::from_kind(EnvKind::Pendulum, 2, 0);
        pool.reset_all();
        let actions = Matrix::<f64>::zeros(2, 1);
        let mut finished = Vec::new();
        for _ in 0..450 {
            finished.extend(pool.step(&actions).finished);
        }
        assert_eq!(pool.episodes_completed(), &[2, 2]);
        assert_eq!(finished.len(), 4);
        for stats in &finished {
            assert_eq!(stats.steps, 200);
            assert!(stats.ret.is_finite() && stats.ret <= 0.0);
        }
        // Both slots finished episodes 0 and 1, reported in env order.
        assert_eq!(finished[0].env, 0);
        assert_eq!(finished[1].env, 1);
        assert_eq!(finished[2].episode, 1);
        assert_eq!(pool.episode_steps(), &[50, 50]);
    }

    #[test]
    fn stepping_two_ranges_is_bit_identical_to_one_lockstep_step() {
        // The double-buffering contract: step(0..h) then step(h..n)
        // reproduces step(0..n) exactly — observations, rewards,
        // episode accounting, auto-resets — across episode boundaries.
        let n = 5;
        let h = n / 2;
        let mut lockstep = EnvPool::from_kind(EnvKind::Pendulum, n, 7);
        let mut halved = EnvPool::from_kind(EnvKind::Pendulum, n, 7);
        lockstep.reset_all();
        halved.reset_all();
        let actions = Matrix::from_fn(n, 1, |i, _| (i as f64 - 2.0) * 0.4);
        let a_lo = actions.row_range(0, h);
        let a_hi = actions.row_range(h, n);
        for _ in 0..230 {
            let full = lockstep.step(&actions);
            let lo = halved.step_range(0..h, &a_lo);
            let hi = halved.step_range(h..n, &a_hi);
            for i in 0..h {
                assert_eq!(full.next_observations.row(i), lo.next_observations.row(i));
                assert_eq!(full.rewards[i], lo.rewards[i]);
                assert_eq!(full.truncated[i], lo.truncated[i]);
            }
            for i in h..n {
                let local = i - h;
                assert_eq!(
                    full.next_observations.row(i),
                    hi.next_observations.row(local)
                );
                assert_eq!(full.rewards[i], hi.rewards[local]);
            }
            // Finished episodes concatenate in ascending env order.
            let mut halves = lo.finished.clone();
            halves.extend(hi.finished.clone());
            assert_eq!(full.finished, halves);
            assert_eq!(lockstep.observations(), halved.observations());
        }
        assert_eq!(
            lockstep.episodes_completed(),
            halved.episodes_completed(),
            "per-slot episode tallies must agree"
        );
    }

    #[test]
    #[should_panic(expected = "out of fleet")]
    fn step_range_rejects_out_of_fleet_ranges() {
        let mut pool = EnvPool::from_kind(EnvKind::Pendulum, 2, 0);
        pool.reset_all();
        let _ = pool.step_range(1..3, &Matrix::<f64>::zeros(2, 1));
    }

    #[test]
    fn slot_zero_keeps_the_base_seed() {
        let mut pool = EnvPool::from_kind(EnvKind::Pendulum, 4, 123);
        let mut solo = Pendulum::new(123);
        assert_eq!(pool.reset_all().row(0), solo.reset().as_slice());
        assert_eq!(fleet_env_seed(123, 0), 123);
        assert_ne!(fleet_env_seed(123, 1), fleet_env_seed(123, 2));
    }

    #[test]
    #[should_panic(expected = "at least one environment")]
    fn empty_fleet_rejected() {
        let _ = EnvPool::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "disagrees with slot 0")]
    fn heterogeneous_fleet_rejected() {
        use crate::Swimmer;
        let _ = EnvPool::new(vec![
            Box::new(Pendulum::new(0)) as Box<dyn Environment>,
            Box::new(Swimmer::new(0)),
        ]);
    }

    #[test]
    #[should_panic(expected = "x action_dim")]
    fn wrong_action_shape_rejected() {
        let mut pool = EnvPool::from_kind(EnvKind::Pendulum, 2, 0);
        pool.reset_all();
        let _ = pool.step(&Matrix::<f64>::zeros(3, 1));
    }
}
