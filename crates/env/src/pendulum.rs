//! Analytic pendulum swing-up (the Gym `Pendulum-v1` dynamics).
//!
//! Not part of the paper's benchmark set, but invaluable here: its DDPG
//! learning signal appears within a few thousand steps, so the integration
//! tests and quickstart example can demonstrate the full FIXAR training
//! pipeline in seconds instead of hours.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{EnvSpec, Environment, StepResult};

const MAX_SPEED: f64 = 8.0;
const MAX_TORQUE: f64 = 2.0;
const DT: f64 = 0.05;
const GRAVITY: f64 = 10.0;
const MASS: f64 = 1.0;
const LENGTH: f64 = 1.0;
const MAX_STEPS: usize = 200;

/// Torque-limited pendulum swing-up with a 3-dimensional observation
/// `[cos θ, sin θ, θ̇]` and a single torque action.
#[derive(Debug, Clone)]
pub struct Pendulum {
    theta: f64,
    theta_dot: f64,
    steps: usize,
    rng: StdRng,
}

impl Pendulum {
    /// Creates the environment with a reset seed.
    pub fn new(seed: u64) -> Self {
        Self {
            theta: std::f64::consts::PI,
            theta_dot: 0.0,
            steps: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn observation(&self) -> Vec<f64> {
        vec![self.theta.cos(), self.theta.sin(), self.theta_dot]
    }
}

/// Wraps an angle into `[-π, π]`.
fn angle_normalize(x: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut a = (x + std::f64::consts::PI) % two_pi;
    if a < 0.0 {
        a += two_pi;
    }
    a - std::f64::consts::PI
}

impl Environment for Pendulum {
    fn spec(&self) -> EnvSpec {
        EnvSpec {
            name: "Pendulum",
            obs_dim: 3,
            action_dim: 1,
            max_episode_steps: MAX_STEPS,
        }
    }

    fn reset(&mut self) -> Vec<f64> {
        self.theta = self
            .rng
            .gen_range(-std::f64::consts::PI..std::f64::consts::PI);
        self.theta_dot = self.rng.gen_range(-1.0..1.0);
        self.steps = 0;
        self.observation()
    }

    fn seed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    fn step(&mut self, action: &[f64]) -> StepResult {
        assert_eq!(action.len(), 1, "pendulum takes exactly one action");
        let u = (action[0].clamp(-1.0, 1.0)) * MAX_TORQUE;
        let th = angle_normalize(self.theta);
        let cost = th * th + 0.1 * self.theta_dot * self.theta_dot + 0.001 * u * u;

        // θ̈ = 3g/(2l)·sin θ + 3/(m l²)·u, θ measured from upright.
        let acc =
            3.0 * GRAVITY / (2.0 * LENGTH) * self.theta.sin() + 3.0 / (MASS * LENGTH * LENGTH) * u;
        self.theta_dot = (self.theta_dot + acc * DT).clamp(-MAX_SPEED, MAX_SPEED);
        self.theta += self.theta_dot * DT;
        self.steps += 1;

        StepResult {
            observation: self.observation(),
            reward: -cost,
            terminated: false,
            truncated: self.steps >= MAX_STEPS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reward_is_best_at_upright_rest() {
        let mut env = Pendulum::new(0);
        env.reset();
        env.theta = 0.0;
        env.theta_dot = 0.0;
        let r_up = env.step(&[0.0]).reward;
        env.theta = std::f64::consts::PI;
        env.theta_dot = 0.0;
        let r_down = env.step(&[0.0]).reward;
        assert!(r_up > r_down);
        assert!(r_up > -0.1, "upright no-torque reward ~ 0, got {r_up}");
    }

    #[test]
    fn speed_is_clamped() {
        let mut env = Pendulum::new(0);
        env.reset();
        for _ in 0..100 {
            env.step(&[1.0]);
        }
        assert!(env.theta_dot.abs() <= MAX_SPEED);
    }

    #[test]
    fn angle_normalize_wraps() {
        // 3π and −3π both normalize to ±π (the same physical angle).
        assert!(
            (angle_normalize(3.0 * std::f64::consts::PI).abs() - std::f64::consts::PI).abs() < 1e-9
        );
        assert!((angle_normalize(0.5) - 0.5).abs() < 1e-12);
        assert!(
            (angle_normalize(-3.0 * std::f64::consts::PI).abs() - std::f64::consts::PI).abs()
                < 1e-9
        );
        assert!(angle_normalize(2.0 * std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn gravity_pulls_pendulum_from_near_upright() {
        let mut env = Pendulum::new(0);
        env.reset();
        env.theta = 0.1; // slightly off upright
        env.theta_dot = 0.0;
        env.step(&[0.0]);
        assert!(env.theta_dot > 0.0, "should accelerate away from upright");
    }

    #[test]
    #[should_panic(expected = "exactly one action")]
    fn wrong_action_dim_panics() {
        let mut env = Pendulum::new(0);
        env.reset();
        let _ = env.step(&[0.0, 1.0]);
    }
}
