//! Three-link swimmer in a viscous medium (8 observations, 2 actions).

use fixar_sim::{BodyDef, BodyHandle, JointDef, Shape, Vec2, World, WorldConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::rig::{control_cost, Rig};
use crate::{EnvSpec, Environment, StepResult};

const MAX_STEPS: usize = 1000;
const SUBSTEPS: usize = 10;
const CTRL_COST: f64 = 1e-4;

/// A three-link swimmer in a gravity-free viscous fluid, actuated at its
/// two inter-link joints. Anisotropic drag (perpendicular ≫ axial) makes
/// undulation propulsive, exactly like MuJoCo's swimmer medium.
///
/// Observations (8): head-link orientation, two joint angles, center-of-
/// mass velocity (x, y), head angular velocity, two joint velocities.
/// Reward is forward center-of-mass velocity minus a tiny control cost;
/// the swimmer never terminates.
#[derive(Debug, Clone)]
pub struct Swimmer {
    rig: Rig,
    links: Vec<BodyHandle>,
    steps: usize,
    rng: StdRng,
}

impl Swimmer {
    /// Assembles the morphology with a reset seed.
    pub fn new(seed: u64) -> Self {
        let cfg = WorldConfig {
            gravity: 0.0,
            ground_enabled: false,
            linear_damping: 0.0,
            angular_damping: 0.0,
            fluid_drag_perp: 4.0,
            fluid_drag_par: 0.15,
            ..WorldConfig::default()
        };
        let mut world = World::new(cfg);

        let mut links = Vec::with_capacity(3);
        for i in 0..3 {
            links.push(
                world.add_body(
                    BodyDef::dynamic(
                        1.0,
                        Shape::Capsule {
                            half_len: 0.5,
                            radius: 0.05,
                        },
                    )
                    .at(Vec2::new(-(i as f64), 0.0)),
                ),
            );
        }
        let gears = vec![6.0, 6.0];
        let joints = vec![
            world.add_joint(
                JointDef::new(
                    links[0],
                    links[1],
                    Vec2::new(-0.5, 0.0),
                    Vec2::new(0.5, 0.0),
                )
                .with_limits(-1.7, 1.7)
                .with_motor(gears[0]),
            ),
            world.add_joint(
                JointDef::new(
                    links[1],
                    links[2],
                    Vec2::new(-0.5, 0.0),
                    Vec2::new(0.5, 0.0),
                )
                .with_limits(-1.7, 1.7)
                .with_motor(gears[1]),
            ),
        ];

        let rig = Rig::assembled(world, links[0], joints, gears, SUBSTEPS);
        Self {
            rig,
            links,
            steps: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn center_of_mass_velocity(&self) -> Vec2 {
        let mut v = Vec2::ZERO;
        for &l in &self.links {
            v += self.rig.world.body(l).velocity();
        }
        v / self.links.len() as f64
    }

    fn observation(&self) -> Vec<f64> {
        let head = self.rig.world.body(self.rig.torso);
        let (angles, vels) = self.rig.joint_obs();
        let com_v = self.center_of_mass_velocity();
        let mut obs = Vec::with_capacity(8);
        obs.push(head.angle());
        obs.extend_from_slice(&angles);
        obs.push(com_v.x);
        obs.push(com_v.y);
        obs.push(head.angular_velocity());
        obs.extend_from_slice(&vels);
        obs
    }
}

impl Environment for Swimmer {
    fn spec(&self) -> EnvSpec {
        EnvSpec {
            name: "Swimmer",
            obs_dim: 8,
            action_dim: 2,
            max_episode_steps: MAX_STEPS,
        }
    }

    fn reset(&mut self) -> Vec<f64> {
        self.rig.reset_with_noise(&mut self.rng, 0.005, 0.01);
        self.steps = 0;
        self.observation()
    }

    fn seed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    fn step(&mut self, action: &[f64]) -> StepResult {
        assert_eq!(action.len(), 2, "swimmer takes 2 actions");
        let com_x_before: f64 = self
            .links
            .iter()
            .map(|&l| self.rig.world.body(l).position().x)
            .sum::<f64>()
            / 3.0;
        self.rig.actuate(action);
        let com_x_after: f64 = self
            .links
            .iter()
            .map(|&l| self.rig.world.body(l).position().x)
            .sum::<f64>()
            / 3.0;
        let forward_velocity = (com_x_after - com_x_before) / self.rig.control_dt();
        self.steps += 1;
        StepResult {
            observation: self.observation(),
            reward: forward_velocity - control_cost(action, CTRL_COST),
            terminated: false,
            truncated: self.steps >= MAX_STEPS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_has_8_dims() {
        let mut env = Swimmer::new(0);
        assert_eq!(env.reset().len(), 8);
    }

    #[test]
    fn idle_swimmer_stays_put() {
        let mut env = Swimmer::new(0);
        env.reset();
        let mut total = 0.0;
        for _ in 0..100 {
            total += env.step(&[0.0, 0.0]).reward;
        }
        assert!(total.abs() < 0.5, "idle swimmer drifted: {total}");
    }

    #[test]
    fn undulation_produces_net_motion() {
        // A phase-shifted sinusoidal gait must move the swimmer more than
        // an idle one — the anisotropic drag makes it propulsive.
        let mut env = Swimmer::new(0);
        env.reset();
        let mut displacement = 0.0;
        for i in 0..400 {
            let t = i as f64 * 0.1;
            let r = env.step(&[t.sin(), (t + 1.5).sin()]);
            displacement += r.reward * env.rig.control_dt();
        }
        assert!(
            displacement.abs() > 0.02,
            "undulation should displace the swimmer, got {displacement}"
        );
    }

    #[test]
    fn no_gravity_in_the_medium() {
        let mut env = Swimmer::new(0);
        env.reset();
        for _ in 0..100 {
            env.step(&[0.0, 0.0]);
        }
        let y = env.rig.world.body(env.rig.torso).position().y;
        assert!(y.abs() < 0.05, "swimmer sank: y={y}");
    }
}
