//! Shared plumbing for the physics-backed locomotion environments.

use fixar_sim::{BodyHandle, JointHandle, Vec2, World};
use rand::rngs::StdRng;
use rand::Rng;

/// An articulated morphology inside a world, with enough bookkeeping to
/// reset it and drive its motors from normalized actions.
#[derive(Debug, Clone)]
pub(crate) struct Rig {
    pub world: World,
    pub torso: BodyHandle,
    pub joints: Vec<JointHandle>,
    /// Torque applied per unit action for each joint (the MuJoCo "gear").
    pub gears: Vec<f64>,
    /// Initial pose of every body, captured at assembly.
    initial: Vec<(BodyHandle, Vec2, f64)>,
    /// Physics substeps per control step.
    pub substeps: usize,
}

impl Rig {
    /// Captures the current pose of all bodies as the reset pose.
    pub fn assembled(
        world: World,
        torso: BodyHandle,
        joints: Vec<JointHandle>,
        gears: Vec<f64>,
        substeps: usize,
    ) -> Self {
        assert_eq!(joints.len(), gears.len(), "one gear per joint");
        assert!(substeps > 0, "need at least one substep");
        let initial = (0..world.body_count())
            .map(|i| {
                let h = world.body_handle(i).expect("enumerating own bodies");
                let b = world.body(h);
                (h, b.position(), b.angle())
            })
            .collect();
        Self {
            world,
            torso,
            joints,
            gears,
            initial,
            substeps,
        }
    }

    /// Restores the assembly pose with small uniform noise on positions,
    /// angles, and velocities (MuJoCo-style reset jitter).
    pub fn reset_with_noise(&mut self, rng: &mut StdRng, pos_noise: f64, vel_noise: f64) {
        for &(h, pos, angle) in &self.initial {
            let body = self.world.body_mut(h);
            if body.is_static() {
                continue;
            }
            let dp = Vec2::new(
                rng.gen_range(-pos_noise..=pos_noise),
                rng.gen_range(-pos_noise..=pos_noise),
            );
            let da = rng.gen_range(-pos_noise..=pos_noise);
            let dv = Vec2::new(
                rng.gen_range(-vel_noise..=vel_noise),
                rng.gen_range(-vel_noise..=vel_noise),
            );
            let dw = rng.gen_range(-vel_noise..=vel_noise);
            body.set_state(pos + dp, angle + da, dv, dw);
        }
    }

    /// Applies clamped normalized actions to the joint motors and runs
    /// the physics substeps.
    ///
    /// # Panics
    ///
    /// Panics if `actions.len() != joints.len()`.
    pub fn actuate(&mut self, actions: &[f64]) {
        assert_eq!(actions.len(), self.joints.len(), "action dim mismatch");
        for ((&j, &gear), &a) in self.joints.iter().zip(&self.gears).zip(actions) {
            self.world.set_motor_torque(j, a.clamp(-1.0, 1.0) * gear);
        }
        for _ in 0..self.substeps {
            self.world.step();
        }
    }

    /// Relative angle and velocity of every joint.
    pub fn joint_obs(&self) -> (Vec<f64>, Vec<f64>) {
        let mut angles = Vec::with_capacity(self.joints.len());
        let mut vels = Vec::with_capacity(self.joints.len());
        for &j in &self.joints {
            let (a, v) = self.world.joint_state(j);
            angles.push(a);
            vels.push(v);
        }
        (angles, vels)
    }

    /// Control timestep in seconds.
    pub fn control_dt(&self) -> f64 {
        self.world.config().dt * self.substeps as f64
    }
}

/// Quadratic control cost `coeff · Σ aᵢ²` shared by all locomotion
/// rewards. Actions are clamped to `[-1, 1]` first — the documented
/// environment contract is that out-of-range actions behave exactly like
/// their clamped versions, cost included.
pub(crate) fn control_cost(actions: &[f64], coeff: f64) -> f64 {
    coeff
        * actions
            .iter()
            .map(|a| {
                let c = a.clamp(-1.0, 1.0);
                c * c
            })
            .sum::<f64>()
}
