//! Planar cheetah locomotion (17 observations, 6 actions).

use fixar_sim::{BodyDef, JointDef, Shape, Vec2, World, WorldConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::rig::{control_cost, Rig};
use crate::{EnvSpec, Environment, StepResult};

const MAX_STEPS: usize = 1000;
const SUBSTEPS: usize = 10;
const CTRL_COST: f64 = 0.05;
/// Hip height that keeps the assembled feet just above the ground.
const TORSO_Y: f64 = 0.85;

/// A planar "half cheetah": a horizontal torso with two three-segment
/// legs (thigh, shin, foot), six torque-controlled joints.
///
/// Observations (17, mirroring MuJoCo's layout): torso height and pitch,
/// six joint angles, torso linear velocity (x, y) and angular velocity,
/// six joint velocities. Reward is forward torso velocity minus a
/// quadratic control cost; the cheetah cannot fall, so episodes only
/// truncate at 1000 steps.
#[derive(Debug, Clone)]
pub struct HalfCheetah {
    rig: Rig,
    steps: usize,
    rng: StdRng,
}

impl HalfCheetah {
    /// Assembles the morphology with a reset seed.
    pub fn new(seed: u64) -> Self {
        let mut world = World::new(WorldConfig::default());

        let torso = world.add_body(
            BodyDef::dynamic(
                7.0,
                Shape::Capsule {
                    half_len: 0.5,
                    radius: 0.046,
                },
            )
            .at(Vec2::new(0.0, TORSO_Y)),
        );

        // Gears follow MuJoCo's relative scaling (hip > knee > ankle) and
        // double as the joint motor torque budgets.
        let gears = vec![50.0, 35.0, 20.0, 50.0, 30.0, 15.0];
        let mut joints = Vec::with_capacity(6);
        // Legs hang at both torso ends: (hip x, [thigh, shin, foot] specs).
        for (leg, &hip_x) in [-0.5f64, 0.5].iter().enumerate() {
            let mut parent = torso;
            let mut parent_anchor = Vec2::new(hip_x, 0.0);
            let mut top_y = TORSO_Y;
            for (seg_idx, &(half_len, radius, mass)) in [
                (0.145, 0.046, 1.5), // thigh
                (0.15, 0.046, 1.0),  // shin
                (0.094, 0.046, 0.5), // foot
            ]
            .iter()
            .enumerate()
            {
                let center = Vec2::new(hip_x, top_y - half_len);
                // Segments point straight down: capsule local +x maps to
                // world −y under a −π/2 rotation.
                let seg = world.add_body(
                    BodyDef::dynamic(mass, Shape::Capsule { half_len, radius })
                        .at(center)
                        .rotated(-std::f64::consts::FRAC_PI_2),
                );
                // Passive springs follow MuJoCo's HalfCheetah, which has
                // stiff return springs on every leg joint.
                let (stiffness, damping) = [(35.0, 1.2), (25.0, 1.0), (12.0, 0.6)][seg_idx];
                joints.push(
                    world.add_joint(
                        JointDef::new(parent, seg, parent_anchor, Vec2::new(-half_len, 0.0))
                            .with_limits(-1.0, 1.0)
                            .with_motor(gears[leg * 3 + seg_idx])
                            .with_spring(stiffness, damping),
                    ),
                );
                parent = seg;
                parent_anchor = Vec2::new(half_len, 0.0);
                top_y -= 2.0 * half_len;
            }
        }
        let rig = Rig::assembled(world, torso, joints, gears, SUBSTEPS);
        Self {
            rig,
            steps: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn observation(&self) -> Vec<f64> {
        let torso = self.rig.world.body(self.rig.torso);
        let (angles, vels) = self.rig.joint_obs();
        let mut obs = Vec::with_capacity(17);
        obs.push(torso.position().y);
        obs.push(torso.angle());
        obs.extend_from_slice(&angles);
        obs.push(torso.velocity().x);
        obs.push(torso.velocity().y);
        obs.push(torso.angular_velocity());
        obs.extend_from_slice(&vels);
        obs
    }
}

impl Environment for HalfCheetah {
    fn spec(&self) -> EnvSpec {
        EnvSpec {
            name: "HalfCheetah",
            obs_dim: 17,
            action_dim: 6,
            max_episode_steps: MAX_STEPS,
        }
    }

    fn reset(&mut self) -> Vec<f64> {
        self.rig.reset_with_noise(&mut self.rng, 0.005, 0.01);
        self.steps = 0;
        self.observation()
    }

    fn seed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    fn step(&mut self, action: &[f64]) -> StepResult {
        assert_eq!(action.len(), 6, "half cheetah takes 6 actions");
        let x_before = self.rig.world.body(self.rig.torso).position().x;
        self.rig.actuate(action);
        let x_after = self.rig.world.body(self.rig.torso).position().x;
        let forward_velocity = (x_after - x_before) / self.rig.control_dt();
        self.steps += 1;
        StepResult {
            observation: self.observation(),
            reward: forward_velocity - control_cost(action, CTRL_COST),
            terminated: false,
            truncated: self.steps >= MAX_STEPS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_has_17_dims() {
        let mut env = HalfCheetah::new(0);
        assert_eq!(env.reset().len(), 17);
    }

    #[test]
    fn assembled_feet_start_above_ground() {
        let env = HalfCheetah::new(0);
        // All bodies above the ground plane at assembly.
        for i in 0..env.rig.world.body_count() {
            let h = env.rig.world.body_handle(i).unwrap();
            assert!(env.rig.world.body(h).position().y > 0.0);
        }
    }

    #[test]
    fn standing_still_is_cheap_and_stable() {
        let mut env = HalfCheetah::new(3);
        env.reset();
        let mut total = 0.0;
        for _ in 0..100 {
            let r = env.step(&[0.0; 6]);
            total += r.reward;
            assert!(!r.terminated);
        }
        // No control cost, little movement: reward magnitude stays small.
        assert!(total.abs() < 50.0, "drifting too much while idle: {total}");
        let torso = env.rig.world.body(env.rig.torso);
        assert!(torso.position().y > 0.2, "cheetah collapsed while idle");
    }

    #[test]
    fn control_cost_reduces_reward() {
        let mut env = HalfCheetah::new(3);
        env.reset();
        let r_idle = env.step(&[0.0; 6]);
        let mut env2 = HalfCheetah::new(3);
        env2.reset();
        let r_act = env2.step(&[1.0; 6]);
        // Same initial state; acting costs 6·0.05 more control penalty
        // (velocity changes too, but the cost term must be present).
        let cost = control_cost(&[1.0; 6], CTRL_COST);
        assert!((cost - 0.3).abs() < 1e-12);
        let _ = (r_idle, r_act);
    }

    #[test]
    fn never_terminates() {
        let mut env = HalfCheetah::new(1);
        env.reset();
        for _ in 0..200 {
            let r = env.step(&[0.9, -0.9, 0.9, -0.9, 0.9, -0.9]);
            assert!(!r.terminated);
        }
    }
}
