//! One-legged hopper locomotion (11 observations, 3 actions).

use fixar_sim::{BodyDef, JointDef, Shape, Vec2, World, WorldConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::rig::{control_cost, Rig};
use crate::{EnvSpec, Environment, StepResult};

const MAX_STEPS: usize = 1000;
const SUBSTEPS: usize = 10;
const CTRL_COST: f64 = 0.003;
const ALIVE_BONUS: f64 = 1.0;
/// Torso center height below which the hopper counts as fallen.
const FALL_HEIGHT: f64 = 0.8;
/// Torso pitch deviation beyond which the hopper counts as fallen.
const FALL_ANGLE: f64 = 0.7;

/// A planar hopper: vertical torso, thigh, shin, and a horizontal foot,
/// actuated at hip, knee, and ankle.
///
/// Observations (11): torso height and pitch deviation, three joint
/// angles, torso linear velocity (x, y) and angular velocity, three joint
/// velocities. Reward is forward velocity plus an alive bonus minus a
/// control cost; the episode terminates when the torso drops or tips
/// over — the paper's "agent falls down" criterion for evaluation.
///
/// The paper's text says "6-dimensional action" for Hopper, which is a
/// typo (three actuated joints); see DESIGN.md §1.
#[derive(Debug, Clone)]
pub struct Hopper {
    rig: Rig,
    steps: usize,
    rng: StdRng,
    initial_torso_angle: f64,
}

impl Hopper {
    /// Assembles the morphology with a reset seed.
    pub fn new(seed: u64) -> Self {
        let mut world = World::new(WorldConfig::default());

        // Stack heights, bottom-up: foot center 0.06, shin joins at the
        // foot center, thigh above the shin, torso on top.
        let foot_y = 0.06;
        let shin_y = foot_y + 0.25;
        let thigh_y = shin_y + 0.25 + 0.225;
        let torso_y = thigh_y + 0.225 + 0.2;

        let vertical = -std::f64::consts::FRAC_PI_2;
        let torso = world.add_body(
            BodyDef::dynamic(
                3.5,
                Shape::Capsule {
                    half_len: 0.2,
                    radius: 0.05,
                },
            )
            .at(Vec2::new(0.0, torso_y))
            .rotated(vertical),
        );
        let thigh = world.add_body(
            BodyDef::dynamic(
                3.0,
                Shape::Capsule {
                    half_len: 0.225,
                    radius: 0.05,
                },
            )
            .at(Vec2::new(0.0, thigh_y))
            .rotated(vertical),
        );
        let shin = world.add_body(
            BodyDef::dynamic(
                2.5,
                Shape::Capsule {
                    half_len: 0.25,
                    radius: 0.04,
                },
            )
            .at(Vec2::new(0.0, shin_y))
            .rotated(vertical),
        );
        // Foot stays horizontal so the hopper has a support polygon.
        let foot = world.add_body(
            BodyDef::dynamic(
                1.0,
                Shape::Capsule {
                    half_len: 0.195,
                    radius: 0.06,
                },
            )
            .at(Vec2::new(0.065, foot_y)),
        );

        let gears = vec![90.0, 90.0, 60.0];
        let joints = vec![
            // Hip: torso bottom ↔ thigh top.
            world.add_joint(
                JointDef::new(torso, thigh, Vec2::new(0.2, 0.0), Vec2::new(-0.225, 0.0))
                    .with_limits(-0.9, 0.3)
                    .with_motor(gears[0]),
            ),
            // Knee: thigh bottom ↔ shin top.
            world.add_joint(
                JointDef::new(thigh, shin, Vec2::new(0.225, 0.0), Vec2::new(-0.25, 0.0))
                    .with_limits(-1.2, 0.1)
                    .with_motor(gears[1]),
            ),
            // Ankle: shin bottom ↔ foot, slightly behind the foot center.
            world.add_joint(
                JointDef::new(shin, foot, Vec2::new(0.25, 0.0), Vec2::new(-0.065, 0.0))
                    .with_limits(-0.6, 0.6)
                    .with_motor(gears[2]),
            ),
        ];

        let rig = Rig::assembled(world, torso, joints, gears, SUBSTEPS);
        Self {
            rig,
            steps: 0,
            rng: StdRng::seed_from_u64(seed),
            initial_torso_angle: vertical,
        }
    }

    fn torso_pitch_deviation(&self) -> f64 {
        self.rig.world.body(self.rig.torso).angle() - self.initial_torso_angle
    }

    fn has_fallen(&self) -> bool {
        let torso = self.rig.world.body(self.rig.torso);
        torso.position().y < FALL_HEIGHT || self.torso_pitch_deviation().abs() > FALL_ANGLE
    }

    fn observation(&self) -> Vec<f64> {
        let torso = self.rig.world.body(self.rig.torso);
        let (angles, vels) = self.rig.joint_obs();
        let mut obs = Vec::with_capacity(11);
        obs.push(torso.position().y);
        obs.push(self.torso_pitch_deviation());
        obs.extend_from_slice(&angles);
        obs.push(torso.velocity().x);
        obs.push(torso.velocity().y);
        obs.push(torso.angular_velocity());
        obs.extend_from_slice(&vels);
        obs
    }
}

impl Environment for Hopper {
    fn spec(&self) -> EnvSpec {
        EnvSpec {
            name: "Hopper",
            obs_dim: 11,
            action_dim: 3,
            max_episode_steps: MAX_STEPS,
        }
    }

    fn reset(&mut self) -> Vec<f64> {
        self.rig.reset_with_noise(&mut self.rng, 0.005, 0.01);
        self.steps = 0;
        self.observation()
    }

    fn seed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    fn step(&mut self, action: &[f64]) -> StepResult {
        assert_eq!(action.len(), 3, "hopper takes 3 actions");
        let x_before = self.rig.world.body(self.rig.torso).position().x;
        self.rig.actuate(action);
        let x_after = self.rig.world.body(self.rig.torso).position().x;
        let forward_velocity = (x_after - x_before) / self.rig.control_dt();
        self.steps += 1;
        let terminated = self.has_fallen();
        StepResult {
            observation: self.observation(),
            reward: forward_velocity + ALIVE_BONUS - control_cost(action, CTRL_COST),
            terminated,
            truncated: self.steps >= MAX_STEPS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_has_11_dims() {
        let mut env = Hopper::new(0);
        assert_eq!(env.reset().len(), 11);
    }

    #[test]
    fn starts_upright_and_above_fall_height() {
        let mut env = Hopper::new(0);
        env.reset();
        assert!(!env.has_fallen());
        let torso_y = env.rig.world.body(env.rig.torso).position().y;
        assert!(torso_y > FALL_HEIGHT + 0.1, "torso starts at {torso_y}");
    }

    #[test]
    fn alive_bonus_dominates_idle_reward() {
        let mut env = Hopper::new(2);
        env.reset();
        let r = env.step(&[0.0; 3]);
        assert!(
            r.reward > 0.0,
            "idle hopper earns the alive bonus: {}",
            r.reward
        );
    }

    #[test]
    fn violent_actions_eventually_terminate() {
        let mut env = Hopper::new(9);
        env.reset();
        let mut terminated = false;
        for i in 0..600 {
            let a = if i % 2 == 0 { 1.0 } else { -1.0 };
            let r = env.step(&[a, -a, a]);
            if r.terminated {
                terminated = true;
                break;
            }
        }
        assert!(terminated, "thrashing hopper should fall within 600 steps");
    }

    #[test]
    fn fall_detector_uses_height() {
        let mut env = Hopper::new(0);
        env.reset();
        let torso = env.rig.torso;
        let pos = env.rig.world.body(torso).position();
        env.rig.world.body_mut(torso).set_state(
            fixar_sim::Vec2::new(pos.x, 0.3),
            env.initial_torso_angle,
            fixar_sim::Vec2::ZERO,
            0.0,
        );
        assert!(env.has_fallen());
    }
}
