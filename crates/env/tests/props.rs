//! Property-based tests for the environments: whatever the agent does,
//! the simulation must stay finite, deterministic, and within spec.

use fixar_env::EnvKind;
use proptest::prelude::*;

fn action_seq(dim: usize, len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-1.5..1.5f64, dim), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary (even out-of-range) action sequences keep every
    /// benchmark's observations and rewards finite and correctly sized.
    #[test]
    fn rollouts_stay_finite_and_well_shaped(
        seed in 0u64..500,
        actions in action_seq(6, 40),
    ) {
        for kind in [EnvKind::HalfCheetah, EnvKind::Hopper, EnvKind::Swimmer, EnvKind::Pendulum] {
            let mut env = kind.make(seed);
            let spec = env.spec();
            let obs = env.reset();
            prop_assert_eq!(obs.len(), spec.obs_dim);
            for a in &actions {
                let trimmed: Vec<f64> = a.iter().take(spec.action_dim).cloned().collect();
                let res = env.step(&trimmed);
                prop_assert_eq!(res.observation.len(), spec.obs_dim);
                prop_assert!(res.observation.iter().all(|v| v.is_finite()));
                prop_assert!(res.reward.is_finite());
                if res.done() {
                    env.reset();
                }
            }
        }
    }

    /// Identical seeds and actions produce identical trajectories — the
    /// determinism the four-arm precision study depends on.
    #[test]
    fn trajectories_are_reproducible(
        seed in 0u64..200,
        actions in action_seq(3, 25),
    ) {
        for kind in [EnvKind::Hopper, EnvKind::Pendulum] {
            let mut a = kind.make(seed);
            let mut b = kind.make(seed);
            prop_assert_eq!(a.reset(), b.reset());
            let dim = a.spec().action_dim;
            for act in &actions {
                let trimmed: Vec<f64> = act.iter().take(dim).cloned().collect();
                prop_assert_eq!(a.step(&trimmed), b.step(&trimmed));
            }
        }
    }

    /// Out-of-range actions behave exactly like their clamped versions
    /// (the documented clamping contract).
    #[test]
    fn actions_are_clamped_not_amplified(
        seed in 0u64..200,
        raw in prop::collection::vec(-10.0..10.0f64, 2),
    ) {
        let mut wild = EnvKind::Swimmer.make(seed);
        let mut tame = EnvKind::Swimmer.make(seed);
        wild.reset();
        tame.reset();
        let clamped: Vec<f64> = raw.iter().map(|v| v.clamp(-1.0, 1.0)).collect();
        for _ in 0..10 {
            let rw = wild.step(&raw);
            let rt = tame.step(&clamped);
            prop_assert_eq!(rw, rt);
        }
    }

    /// Episodes never exceed the spec's step cap.
    #[test]
    fn episodes_respect_the_cap(seed in 0u64..100) {
        let mut env = EnvKind::Pendulum.make(seed);
        env.reset();
        let cap = env.spec().max_episode_steps;
        let mut steps = 0;
        loop {
            let res = env.step(&[0.3]);
            steps += 1;
            prop_assert!(steps <= cap, "episode exceeded cap");
            if res.done() {
                break;
            }
        }
        prop_assert_eq!(steps, cap); // Pendulum only truncates
    }
}
