//! Atomic-swap snapshot publication — the double-buffer pattern with an
//! id attached.

use std::sync::{Arc, Mutex};

use fixar_fixed::Scalar;
use fixar_rl::PolicySnapshot;

use crate::ServeError;

/// Holds the snapshot currently being served, swapped atomically on
/// publish.
///
/// The slot is a `Mutex<Arc<_>>` held only for the pointer clone/swap —
/// O(1), never across an inference — so the trainer publishing a new
/// snapshot never blocks a batcher mid-batch, and a batcher loading the
/// snapshot never blocks the trainer. Batchers that already loaded the
/// old `Arc` finish their in-flight batch on it (one batch = one
/// snapshot id); the next batch sees the new one.
///
/// # Example
///
/// ```
/// use fixar_rl::{Ddpg, DdpgConfig};
/// use fixar_serve::SnapshotStore;
///
/// let agent = Ddpg::<f32>::new(3, 1, DdpgConfig::small_test()).unwrap();
/// let store = SnapshotStore::new(agent.policy_snapshot(0));
/// assert_eq!(store.load().id(), 0);
/// store.publish(agent.policy_snapshot(1)).unwrap();
/// assert_eq!(store.load().id(), 1);
/// // Ids must strictly increase.
/// assert!(store.publish(agent.policy_snapshot(1)).is_err());
/// ```
#[derive(Debug)]
pub struct SnapshotStore<S: Scalar> {
    slot: Mutex<Arc<PolicySnapshot<S>>>,
}

impl<S: Scalar> SnapshotStore<S> {
    /// Creates a store serving `initial`.
    pub fn new(initial: PolicySnapshot<S>) -> Self {
        Self {
            slot: Mutex::new(Arc::new(initial)),
        }
    }

    /// The snapshot to serve the *next* batch from. The returned `Arc`
    /// stays valid (and immutable) for as long as the caller holds it,
    /// even across later publishes.
    pub fn load(&self) -> Arc<PolicySnapshot<S>> {
        Arc::clone(&self.slot.lock().expect("snapshot slot"))
    }

    /// Id of the snapshot currently being served.
    pub fn current_id(&self) -> u64 {
        self.slot.lock().expect("snapshot slot").id()
    }

    /// Atomically swaps in `snapshot`, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::StaleSnapshot`] unless the id strictly
    /// exceeds the served one — publication order is the id order, which
    /// is what makes "replay against the recorded id" well defined.
    pub fn publish(&self, snapshot: PolicySnapshot<S>) -> Result<u64, ServeError> {
        let mut slot = self.slot.lock().expect("snapshot slot");
        if snapshot.id() <= slot.id() {
            return Err(ServeError::StaleSnapshot {
                current: slot.id(),
                offered: snapshot.id(),
            });
        }
        let id = snapshot.id();
        *slot = Arc::new(snapshot);
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_rl::{Ddpg, DdpgConfig};

    #[test]
    fn publish_enforces_monotone_ids_and_old_arcs_survive() {
        let agent = Ddpg::<f32>::new(3, 1, DdpgConfig::small_test()).unwrap();
        let store = SnapshotStore::new(agent.policy_snapshot(5));
        let held = store.load();
        assert_eq!(store.publish(agent.policy_snapshot(9)).unwrap(), 9);
        assert_eq!(store.current_id(), 9);
        // A batcher holding the old snapshot still serves id 5.
        assert_eq!(held.id(), 5);
        assert_eq!(
            store.publish(agent.policy_snapshot(9)),
            Err(ServeError::StaleSnapshot {
                current: 9,
                offered: 9
            })
        );
    }
}
